#include "regalloc/queue_alloc.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

QueueAllocation
allocateQueues(const Ddg &ddg, const MachineModel &machine,
               const PartialSchedule &ps)
{
    QueueAllocation alloc;
    alloc.lifetimes = computeLifetimes(ddg, machine, ps);
    alloc.lrf.assign(static_cast<size_t>(machine.numClusters()), {});
    alloc.cqrf.assign(
        static_cast<size_t>(machine.numClusters()) * 2, {});

    auto account = [](QueueFileStats &f, const Lifetime &lt) {
        ++f.queues;
        f.maxDepth = std::max(f.maxDepth, lt.depth);
        f.totalDepth += lt.depth;
    };

    for (const Lifetime &lt : alloc.lifetimes) {
        if (lt.location == QueueLocation::Lrf) {
            account(alloc.lrf[static_cast<size_t>(lt.cluster)], lt);
        } else {
            size_t idx = static_cast<size_t>(lt.cluster) * 2 +
                         (lt.direction > 0 ? 0 : 1);
            account(alloc.cqrf[idx], lt);
        }
    }

    for (const QueueFileStats &f : alloc.lrf) {
        alloc.totalStorage += f.totalDepth;
        alloc.maxQueuesPerFile =
            std::max(alloc.maxQueuesPerFile, f.queues);
    }
    for (const QueueFileStats &f : alloc.cqrf) {
        alloc.totalStorage += f.totalDepth;
        alloc.maxQueuesPerFile =
            std::max(alloc.maxQueuesPerFile, f.queues);
    }
    return alloc;
}

std::string
QueueAllocation::summary() const
{
    std::string s = strfmt("%zu lifetimes, %d storage positions, "
                           "max %d queues/file\n",
                           lifetimes.size(), totalStorage,
                           maxQueuesPerFile);
    for (size_t c = 0; c < lrf.size(); ++c) {
        s += strfmt("  cluster %zu: LRF %d queues (max depth %d), "
                    "CQRF+ %d queues, CQRF- %d queues\n",
                    c, lrf[c].queues, lrf[c].maxDepth,
                    cqrf[c * 2].queues, cqrf[c * 2 + 1].queues);
    }
    return s;
}

} // namespace dms
