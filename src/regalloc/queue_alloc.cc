#include "regalloc/queue_alloc.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

QueueAllocation
allocateQueues(const Ddg &ddg, const MachineModel &machine,
               const PartialSchedule &ps)
{
    QueueAllocation alloc;
    alloc.lifetimes = computeLifetimes(ddg, machine, ps);
    alloc.topology = machine.topology();
    alloc.lrf.assign(static_cast<size_t>(machine.numClusters()), {});

    const int nlinks = machine.numLinks();
    alloc.cqrf.assign(static_cast<size_t>(nlinks), {});
    alloc.links.resize(static_cast<size_t>(nlinks));
    for (int l = 0; l < nlinks; ++l)
        alloc.links[static_cast<size_t>(l)] = machine.linkAt(l);

    for (Lifetime &lt : alloc.lifetimes) {
        QueueFileStats &f =
            lt.location == QueueLocation::Lrf
                ? alloc.lrf[static_cast<size_t>(lt.cluster)]
                : alloc.cqrf[static_cast<size_t>(lt.link)];
        lt.queueIndex = f.queues;
        ++f.queues;
        f.maxDepth = std::max(f.maxDepth, lt.depth);
        f.totalDepth += lt.depth;
    }

    for (const QueueFileStats &f : alloc.lrf) {
        alloc.totalStorage += f.totalDepth;
        alloc.maxQueuesPerFile =
            std::max(alloc.maxQueuesPerFile, f.queues);
        alloc.filesUsed += f.queues > 0;
    }
    for (const QueueFileStats &f : alloc.cqrf) {
        alloc.totalStorage += f.totalDepth;
        alloc.maxQueuesPerFile =
            std::max(alloc.maxQueuesPerFile, f.queues);
        alloc.linksUsed += f.queues > 0;
        alloc.filesUsed += f.queues > 0;
        alloc.maxQueuesPerLink =
            std::max(alloc.maxQueuesPerLink, f.queues);
    }
    return alloc;
}

std::string
QueueAllocation::summary() const
{
    std::string s = strfmt("%zu lifetimes, %d storage positions, "
                           "max %d queues/file\n",
                           lifetimes.size(), totalStorage,
                           maxQueuesPerFile);
    if (topology == TopologyKind::Ring) {
        // The ring's two links per cluster are its CQRF+/CQRF-.
        for (size_t c = 0; c < lrf.size(); ++c) {
            s += strfmt("  cluster %zu: LRF %d queues (max depth "
                        "%d), CQRF+ %d queues, CQRF- %d queues\n",
                        c, lrf[c].queues, lrf[c].maxDepth,
                        cqrf[c * 2].queues, cqrf[c * 2 + 1].queues);
        }
        return s;
    }
    for (size_t c = 0; c < lrf.size(); ++c) {
        s += strfmt("  cluster %zu: LRF %d queues (max depth %d)\n",
                    c, lrf[c].queues, lrf[c].maxDepth);
    }
    for (size_t l = 0; l < cqrf.size(); ++l) {
        if (cqrf[l].queues == 0)
            continue;
        s += strfmt("  link c%d->c%d: %d queues (max depth %d)\n",
                    links[l].src, links[l].dst, cqrf[l].queues,
                    cqrf[l].maxDepth);
    }
    return s;
}

} // namespace dms
