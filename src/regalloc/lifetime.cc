#include "regalloc/lifetime.h"

#include "support/diag.h"

namespace dms {

std::vector<Lifetime>
computeLifetimes(const Ddg &ddg, const MachineModel &machine,
                 const PartialSchedule &ps)
{
    std::vector<Lifetime> out;
    const int ii = ps.ii();

    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeActive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        if (ed.kind != DepKind::Flow)
            continue;
        if (!ps.isScheduled(ed.src) || !ps.isScheduled(ed.dst))
            continue;

        Lifetime lt;
        lt.edge = e;
        lt.def = ed.src;
        lt.use = ed.dst;
        lt.span = ps.timeOf(ed.dst) + ii * ed.distance -
                  ps.timeOf(ed.src) - ed.latency;
        DMS_ASSERT(lt.span >= 0,
                   "negative lifetime span on edge %s->%s",
                   ddg.opLabel(ed.src).c_str(),
                   ddg.opLabel(ed.dst).c_str());
        lt.depth = lt.span / ii + 1;

        ClusterId cs = ps.clusterOf(ed.src);
        ClusterId cd = ps.clusterOf(ed.dst);
        if (cs == cd) {
            lt.location = QueueLocation::Lrf;
            lt.cluster = cs;
        } else {
            DMS_ASSERT(machine.distance(cs, cd) == 1,
                       "lifetime spans %d hops",
                       machine.distance(cs, cd));
            lt.location = QueueLocation::Cqrf;
            lt.cluster = cs;
            lt.link = machine.linkBetween(cs, cd);
            DMS_ASSERT(lt.link >= 0,
                       "no link between adjacent clusters %d->%d",
                       cs, cd);
            if (machine.topology() == TopologyKind::Ring) {
                lt.direction =
                    machine.neighbor(cs, +1) == cd ? +1 : -1;
            }
        }
        out.push_back(lt);
    }
    return out;
}

} // namespace dms
