#ifndef DMS_REGALLOC_QUEUE_ALLOC_H
#define DMS_REGALLOC_QUEUE_ALLOC_H

/**
 * @file
 * Queue register allocation. Each lifetime is assigned its own FIFO
 * queue in the producer-side LRF (intra-cluster) or the CQRF of the
 * crossed inter-cluster link (one file per directed link, on any
 * topology — the ring's two per-cluster directions, a mesh's torus
 * neighbours, or a crossbar's full pair set). Because one
 * lifetime's instances enter and leave strictly in iteration order,
 * a private queue is always FIFO-feasible; the allocator therefore
 * reports the per-file queue counts and depths the hardware must
 * provide (the EURO-PAR'97 paper [5] additionally shares queues
 * between compatible lifetimes; we keep one queue per lifetime and
 * report the requirement).
 */

#include <string>
#include <vector>

#include "regalloc/lifetime.h"

namespace dms {

/** Requirements of one queue file. */
struct QueueFileStats
{
    int queues = 0;     ///< queues in use (one per lifetime)
    int maxDepth = 0;   ///< deepest queue
    int totalDepth = 0; ///< sum of depths (storage positions)
};

/** Full allocation result. */
struct QueueAllocation
{
    std::vector<Lifetime> lifetimes;

    /** LRF of each cluster. */
    std::vector<QueueFileStats> lrf;

    /**
     * CQRF of each directed inter-cluster link, indexed by link id
     * (MachineModel::linkAt order). On a ring this is the legacy
     * layout exactly: index 2*c is the file written by cluster c
     * toward neighbor(c, +1) and 2*c+1 toward neighbor(c, -1).
     */
    std::vector<QueueFileStats> cqrf;

    /** Endpoints of each CQRF's link, parallel to @c cqrf. */
    std::vector<InterClusterLink> links;

    /** Topology the allocation was made for (summary format). */
    TopologyKind topology = TopologyKind::Ring;

    /** Aggregate storage positions across all files. */
    int totalStorage = 0;

    /** Largest queue count needed in any single file. */
    int maxQueuesPerFile = 0;

    /** @name Per-link pressure */
    /// @{

    /** Links whose CQRF holds at least one queue. */
    int linksUsed = 0;

    /** Largest queue count needed on any single link's CQRF. */
    int maxQueuesPerLink = 0;

    /** Files (LRF and CQRF) holding at least one queue. */
    int filesUsed = 0;

    /// @}

    std::string summary() const;
};

/** Allocate queues for a complete legal schedule. */
QueueAllocation allocateQueues(const Ddg &ddg,
                               const MachineModel &machine,
                               const PartialSchedule &ps);

} // namespace dms

#endif // DMS_REGALLOC_QUEUE_ALLOC_H
