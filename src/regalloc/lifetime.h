#ifndef DMS_REGALLOC_LIFETIME_H
#define DMS_REGALLOC_LIFETIME_H

/**
 * @file
 * Loop-variant lifetimes of a modulo schedule. After the single-use
 * pre-pass every flow edge is one lifetime: the value enters a
 * queue when the producer's result is ready and leaves when its
 * single consumer reads it, distance iterations later. This module
 * computes per-edge spans and queue depths; queue assignment is in
 * queue_alloc.h (substrate from Fernandes/Llosa/Topham,
 * EURO-PAR'97 [5]).
 *
 * Cross-cluster lifetimes live in the CQRF of the directed link
 * they cross (MachineModel::linkBetween), on any topology. A
 * multi-hop communication is realized by the scheduler as a chain
 * of one-hop move operations, so each hop of the route is its own
 * flow edge — and therefore its own lifetime occupying a queue
 * slot on every traversed link.
 */

#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/** Where a lifetime's queue lives. */
enum class QueueLocation : std::uint8_t {
    Lrf,   ///< producer and consumer in the same cluster
    Cqrf,  ///< adjacent clusters: the boundary queue file
};

/** One value lifetime (one flow edge of the scheduled DDG). */
struct Lifetime
{
    EdgeId edge = kInvalidEdge;
    OpId def = kInvalidOp;
    OpId use = kInvalidOp;

    /**
     * Cycles the value sits in its queue:
     * time(use) + II*distance - time(def) - latency(def). Always
     * >= 0 in a legal schedule.
     */
    int span = 0;

    /**
     * Maximum simultaneously-live values of this lifetime:
     * floor(span / II) + 1 (a new instance enters every II).
     * This is the FIFO depth the queue must provide.
     */
    int depth = 0;

    QueueLocation location = QueueLocation::Lrf;

    /** LRF: owning cluster. CQRF: the *writer's* cluster. */
    ClusterId cluster = kInvalidCluster;

    /**
     * CQRF only: the directed link whose queue file holds the
     * value (MachineModel::linkAt index). -1 for LRF lifetimes.
     */
    int link = -1;

    /**
     * CQRF on a ring only: direction from writer to reader
     * (+1/-1), the legacy per-cluster view of the link. 0 on other
     * topologies and for LRF lifetimes.
     */
    int direction = 0;

    /**
     * Queue number inside the lifetime's file, assigned by
     * allocateQueues in lifetime order (-1 before assignment).
     */
    int queueIndex = -1;
};

/**
 * Compute the lifetime of every active flow edge between scheduled
 * ops. On clustered machines every edge must be intra-cluster or
 * one hop on any topology (the schedule verifier enforces this
 * first; longer routes appear as chains of one-hop move edges).
 */
std::vector<Lifetime> computeLifetimes(const Ddg &ddg,
                                       const MachineModel &machine,
                                       const PartialSchedule &ps);

} // namespace dms

#endif // DMS_REGALLOC_LIFETIME_H
