#ifndef DMS_REGALLOC_SHARING_H
#define DMS_REGALLOC_SHARING_H

/**
 * @file
 * Queue sharing (the optimization of the authors' EURO-PAR'97
 * paper [5]): several lifetimes can live in one FIFO queue when
 * their values enter and leave in a consistent order, cutting the
 * number of queues each register file must provide.
 *
 * Two lifetimes A and B of the same file are compatible iff the
 * merged enter/exit streams never overtake: with enter phases
 * p_A + i*II / p_B + j*II and exit phases q_A + i*II / q_B + j*II,
 * FIFO order holds for all instances iff no integer multiple of II
 * separates (p_A - p_B) from (q_A - q_B) — i.e. both differences
 * fall strictly inside the same length-II interval. Simultaneous
 * enters or exits are rejected (a queue has one write and one read
 * port). Compatibility is pairwise-sufficient: consistent pairwise
 * order implies a consistent total order of the merged streams.
 */

#include "regalloc/queue_alloc.h"

namespace dms {

/** One shared physical queue. */
struct SharedQueue
{
    /** Indices into QueueAllocation::lifetimes. */
    std::vector<int> members;

    /** Peak simultaneous values across all members. */
    int depth = 0;
};

/** Result of sharing one allocation. */
struct SharedAllocation
{
    std::vector<SharedQueue> queues;

    /** Queues before sharing (one per lifetime). */
    int queuesBefore = 0;

    /** Queues after sharing. */
    int queuesAfter = 0;

    double
    reduction() const
    {
        return queuesBefore == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(queuesAfter) /
                               queuesBefore;
    }
};

/**
 * True if lifetimes @p a and @p b (same register file) can share a
 * FIFO queue at initiation interval @p ii.
 */
bool canShareQueue(const Lifetime &a, const Lifetime &b, int ii,
                   const Ddg &ddg, const PartialSchedule &ps);

/**
 * Greedy first-fit sharing over a complete allocation. Lifetimes
 * are grouped per register file (LRF per cluster, CQRF per
 * directed inter-cluster link) and packed into the fewest queues
 * the greedy order finds.
 */
SharedAllocation shareQueues(const QueueAllocation &alloc,
                             const Ddg &ddg,
                             const PartialSchedule &ps);

} // namespace dms

#endif // DMS_REGALLOC_SHARING_H
