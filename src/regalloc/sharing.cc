#include "regalloc/sharing.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/diag.h"

namespace dms {

namespace {

/** Enter (value ready) absolute phase of a lifetime. */
long
enterPhase(const Lifetime &lt, const Ddg &ddg,
           const PartialSchedule &ps)
{
    return ps.timeOf(lt.def) + ddg.edge(lt.edge).latency;
}

/** Exit (value consumed) absolute phase of a lifetime. */
long
exitPhase(const Lifetime &lt, const Ddg &ddg,
          const PartialSchedule &ps)
{
    return ps.timeOf(lt.use) +
           static_cast<long>(ps.ii()) * ddg.edge(lt.edge).distance;
}

/**
 * Register-file identity for grouping: the owning cluster's LRF or
 * the crossed link's CQRF. Ring lifetimes carry both a direction
 * and a link (the latter determined by the former), so keeping the
 * direction in the key preserves the legacy group order; on other
 * topologies the direction is 0 and the link discriminates.
 */
std::tuple<int, int, int, int>
fileKey(const Lifetime &lt)
{
    return {static_cast<int>(lt.location), lt.cluster,
            lt.direction, lt.link};
}

} // namespace

bool
canShareQueue(const Lifetime &a, const Lifetime &b, int ii,
              const Ddg &ddg, const PartialSchedule &ps)
{
    if (fileKey(a) != fileKey(b))
        return false;

    long de = enterPhase(a, ddg, ps) - enterPhase(b, ddg, ps);
    long dx = exitPhase(a, ddg, ps) - exitPhase(b, ddg, ps);

    // Port conflicts: simultaneous enters or exits every period.
    if (de % ii == 0 || dx % ii == 0)
        return false;

    // FIFO: no multiple of II may lie between the enter-offset and
    // the exit-offset, or some instance pair overtakes.
    auto interval = [&](long d) {
        // floor division toward -inf.
        long q = d / ii;
        if (d % ii != 0 && ((d < 0) != (ii < 0)))
            --q;
        return q;
    };
    return interval(de) == interval(dx);
}

SharedAllocation
shareQueues(const QueueAllocation &alloc, const Ddg &ddg,
            const PartialSchedule &ps)
{
    SharedAllocation out;
    out.queuesBefore = static_cast<int>(alloc.lifetimes.size());

    // Group lifetimes per register file.
    std::map<std::tuple<int, int, int, int>, std::vector<int>>
        files;
    for (size_t i = 0; i < alloc.lifetimes.size(); ++i) {
        files[fileKey(alloc.lifetimes[i])].push_back(
            static_cast<int>(i));
    }

    const int ii = ps.ii();
    for (auto &[key, members] : files) {
        (void)key;
        // Longest spans first: they are the hardest to pack.
        std::sort(members.begin(), members.end(), [&](int x, int y) {
            int sx = alloc.lifetimes[static_cast<size_t>(x)].span;
            int sy = alloc.lifetimes[static_cast<size_t>(y)].span;
            return sx != sy ? sx > sy : x < y;
        });

        std::vector<SharedQueue> queues;
        for (int m : members) {
            const Lifetime &lt =
                alloc.lifetimes[static_cast<size_t>(m)];
            bool placed = false;
            for (SharedQueue &q : queues) {
                bool ok = true;
                for (int other : q.members) {
                    if (!canShareQueue(
                            lt,
                            alloc.lifetimes[static_cast<size_t>(
                                other)],
                            ii, ddg, ps)) {
                        ok = false;
                        break;
                    }
                }
                if (ok) {
                    q.members.push_back(m);
                    placed = true;
                    break;
                }
            }
            if (!placed)
                queues.push_back(SharedQueue{{m}, 0});
        }

        // Depth of a shared queue: peak simultaneous values,
        // measured exactly over one steady-state period.
        for (SharedQueue &q : queues) {
            for (int phase = 0; phase < ii; ++phase) {
                int live = 0;
                for (int m : q.members) {
                    const Lifetime &lt =
                        alloc.lifetimes[static_cast<size_t>(m)];
                    long p = enterPhase(lt, ddg, ps);
                    long x = exitPhase(lt, ddg, ps);
                    // Instances live at absolute time T (large,
                    // steady state) with T ≡ phase (mod II):
                    // count i with p + i*II <= T <= x + i*II —
                    // the pop cycle counts as occupied, so even
                    // same-cycle transits need one slot. Evaluate
                    // at T = phase + K*II for a K beyond every
                    // ramp.
                    long T = phase + 64L * ii +
                             (std::max(p, x) / ii + 1) * ii;
                    auto fdiv = [](long a, long b) {
                        long qd = a / b;
                        if (a % b != 0 && ((a < 0) != (b < 0)))
                            --qd;
                        return qd;
                    };
                    live += static_cast<int>(fdiv(T - p, ii) -
                                             fdiv(T - x - 1, ii));
                }
                q.depth = std::max(q.depth, live);
            }
            out.queues.push_back(std::move(q));
        }
    }

    out.queuesAfter = static_cast<int>(out.queues.size());
    return out;
}

} // namespace dms
