#ifndef DMS_SERVE_CACHE_H
#define DMS_SERVE_CACHE_H

/**
 * @file
 * The memoizing result cache behind the compile service: a sharded
 * map from canonical request keys to single-flight entries. An
 * entry is created exactly once per key (the creator compiles; the
 * service publishes the result through the entry's promise), so
 * identical in-flight requests coalesce onto one compilation and
 * later identical requests are pure lookups.
 *
 * Keys are the canonical request text (see service.cc); the FNV
 * hash only picks the shard and avoids re-hashing the key string
 * per map probe — equality is always on the full key, so hash
 * collisions cannot alias two different requests.
 *
 * Capacity is enforced per shard with a pluggable eviction policy
 * (EvictPolicy) over *droppable* entries only — failed entries
 * (dead aliases of retired compiles) always go first, then ready
 * ones per policy:
 *
 *   - Fifo: drop the oldest insertion (the pre-policy behavior);
 *   - Lru:  drop the least recently *used* — every hit refreshes
 *           an entry's recency, so a hot key survives arbitrary
 *           cold churn;
 *   - Cost: drop the cheapest-to-recompute ready entry — cost is
 *           the measured compile latency the worker stamps on the
 *           entry (CacheEntry::costMs), so an expensive schedule
 *           is kept over many trivial ones.
 *
 * In-flight entries are never evicted under any policy: evicting
 * one would break the coalescing guarantee, so a shard may
 * transiently exceed its cap when everything in it is still
 * compiling. Whatever the policy, the conservation law
 * inserted == size() + evictions() + retired() holds exactly.
 */

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dms {

struct CompileResult;

/** FNV-1a over bytes; the shard/bucket hash of the result cache. */
std::uint64_t fnv1a64(std::string_view s);

/** Which ready entry goes when a shard is over capacity. */
enum class EvictPolicy : std::uint8_t {
    Fifo, ///< oldest insertion first
    Lru,  ///< least recently used first
    Cost, ///< cheapest measured compile first
};

/** Lowercase policy name, e.g. "lru". */
const char *evictPolicyName(EvictPolicy policy);

/** Parse "fifo"/"lru"/"cost"; false on anything else. */
bool evictPolicyFromName(std::string_view name, EvictPolicy &out);

/**
 * One memo slot: a single-flight rendezvous that becomes a cached
 * result. Waiters (coalesced or hitting requests) block on the
 * shared future; the one compiling thread fulfills the promise and
 * flips ready.
 */
struct CacheEntry
{
    CacheEntry() : future(promise.get_future().share()) {}

    std::promise<std::shared_ptr<const CompileResult>> promise;
    std::shared_future<std::shared_ptr<const CompileResult>> future;
    std::atomic<bool> ready{false};

    /**
     * Set (before ready) when the compile resolved to a
     * non-retryable-as-cached outcome — a Failed/Expired/Rejected
     * result must not be served to later requests. A failed entry
     * still resolves its future (waiters already coalesced onto it
     * see the structured failure), but lookups treat it as absent
     * so the next request for the key retries the compile.
     */
    std::atomic<bool> failed{false};

    /**
     * Measured compile latency in milliseconds, stamped by the
     * worker before ready flips. The Cost eviction policy reads it
     * to keep expensive schedules resident; 0 until a compile
     * finishes (an in-flight entry is pinned anyway).
     */
    std::atomic<double> costMs{0.0};
};

/** Sharded single-flight memo map. */
class ResultCache
{
  public:
    /** How a key lookup resolved. */
    enum class Lookup : std::uint8_t {
        Hit,      ///< entry exists and its result is ready
        InFlight, ///< entry exists, compilation still running
        Inserted, ///< entry was created; the caller must compile
    };

    /**
     * @param shards   number of independent shards (>= 1)
     * @param capacity total ready-entry capacity across shards
     * @param policy   which ready entry goes when over capacity
     */
    ResultCache(int shards, int capacity,
                EvictPolicy policy = EvictPolicy::Fifo);

    /**
     * Find or create the entry for @p key (@p hash must be
     * fnv1a64(key)). @p entry is always filled on return. A Hit
     * refreshes the entry's recency under the Lru policy.
     */
    Lookup acquire(const std::string &key, std::uint64_t hash,
                   std::shared_ptr<CacheEntry> &entry);

    /**
     * Find the entry for @p key without creating one; nullptr when
     * absent *or failed* (a failed entry is logically gone — it is
     * physically reclaimed by retire/acquire/eviction). A found
     * ready entry is refreshed under Lru, exactly like acquire —
     * the raw-text fast path of the service probes its alias map
     * with this before paying for canonicalization.
     */
    std::shared_ptr<CacheEntry> find(const std::string &key,
                                     std::uint64_t hash);

    /**
     * Eagerly reclaim a failed @p entry under @p key. Erases only
     * if the resident entry *is* @p entry (identity compare): a
     * fresh same-key entry inserted by a retrying request must not
     * be clobbered. Counted under retired(), never evictions().
     */
    void retire(const std::string &key, std::uint64_t hash,
                const std::shared_ptr<CacheEntry> &entry);

    /**
     * Map @p key to an @p entry owned elsewhere (capacity-bounded,
     * same eviction policy as acquire). Used for raw-spelling
     * aliases of a canonical entry; inserting an existing key is a
     * no-op.
     */
    void insertAlias(const std::string &key, std::uint64_t hash,
                     std::shared_ptr<CacheEntry> entry);

    /** Entries currently resident (ready + in-flight). */
    std::uint64_t size() const;

    /** Ready (successful) entries evicted for capacity so far. */
    std::uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /** Failed entries reclaimed so far (never capacity events). */
    std::uint64_t retired() const
    {
        return retired_.load(std::memory_order_relaxed);
    }

    EvictPolicy policy() const { return policy_; }

  private:
    struct Slot
    {
        std::shared_ptr<CacheEntry> entry;
        /** This key's position in the shard's order list. */
        std::list<std::string>::iterator pos;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, Slot> entries;
        /**
         * Eviction scan order, front = first victim candidate.
         * Fifo: insertion order, untouched afterwards. Lru:
         * insertion order with every access splicing the key to
         * the back. Cost: insertion order too — the cost scan
         * ranks by CacheEntry::costMs and uses list position only
         * to break ties (older first).
         */
        std::list<std::string> order;
    };

    void touchLocked(Shard &shard, Slot &slot);
    void evictIfFull(Shard &shard);
    void eraseLocked(Shard &shard, const std::string &key);

    std::vector<Shard> shards_;
    int perShardCap_;
    EvictPolicy policy_;
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> retired_{0};
};

} // namespace dms

#endif // DMS_SERVE_CACHE_H
