#ifndef DMS_SERVE_NET_H
#define DMS_SERVE_NET_H

/**
 * @file
 * The TCP front-end of the compile service: a line-oriented wire
 * protocol ("dms wire v1") carrying the repo's existing canonical
 * text formats over a socket, a NetServer that maps each request
 * line onto the ticket/deadline/trySubmit machinery of
 * CompileService, and a NetClient for the loadgen and tests.
 *
 * ## Wire format
 *
 * One message per line, fields separated by tabs, every message
 * led by the magic token `dms1`. Field values are `key=value`
 * tokens with backslash escaping of the four bytes the framing
 * reserves: `\\` `\n` `\t` `\r` — which is exactly what lets the
 * multi-line loopToText/machineToText formats ride in a single
 * line. Unknown keys are framing errors (strictness over
 * forward-compat: the protocol is versioned by the magic).
 *
 * Requests:
 *
 *     dms1 <TAB> compile <TAB> loop=<esc> <TAB> machine=<esc>
 *          [<TAB> sched=<esc>] [<TAB> deadline_ms=<int>]
 *          [<TAB> unroll=<int>] [<TAB> umax=<int>]
 *          [<TAB> uops=<int>]  [<TAB> verify=<0|1>]
 *          [<TAB> ra=<0|1>]    [<TAB> cg=<0|1>]
 *     dms1 <TAB> stats
 *     dms1 <TAB> metrics
 *     dms1 <TAB> trace
 *
 * Responses:
 *
 *     dms1 <TAB> result <TAB> status=<name> <TAB> parsed=<0|1>
 *          <TAB> ok=<0|1> <TAB> error=<esc> <TAB> fail_site=<esc>
 *          <TAB> ii=.. mii=.. stages=.. unroll=.. moves=..
 *          copies=.. iter=.. cycles=.. useful=.. qfiles=..
 *          qreq=.. qstore=.. qlink=.. <TAB> kernel=<esc>
 *     dms1 <TAB> statsr <TAB> text=<esc serveStatsToText>
 *     dms1 <TAB> metricsr <TAB> text=<esc metricsToText>
 *     dms1 <TAB> tracer <TAB> text=<esc tracesToJson>
 *
 * The result line carries every LoopRun field plus the emitted
 * kernel text, so a TCP round trip is bit-identical to the
 * in-process CompileResult (the socket-parity test pins this).
 *
 * A line that fails framing is counted (netFramingRejects) and
 * answered with a structured Invalid result — never a dropped
 * connection, never a crash. Each framing reject is also routed
 * through CompileService::submit() as an unparseable request so
 * the service's `invalid` counter covers it (the dmslint identity
 * net_framing_rejects <= invalid).
 *
 * Fault sites: `serve.net.accept` (connection dropped at accept),
 * `serve.net.read` and `serve.net.write` (connection dropped
 * mid-stream) extend the DMS_FAULTS surface across the network
 * boundary; clients see EOF and retry under their RetryPolicy.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "serve/service.h"

namespace dms {

/** Escape `\` `\n` `\t` `\r` so @p s fits in one wire field. */
std::string wireEscape(std::string_view s);

/**
 * Reverse wireEscape. False on a dangling `\` or an unknown
 * escape; @p out is the prefix decoded so far.
 */
bool wireUnescape(std::string_view s, std::string &out);

/** Parsed form of one request line. */
struct WireRequest
{
    enum class Verb : std::uint8_t {
        Compile, ///< one CompileRequest
        Stats,   ///< server stats snapshot
        Metrics, ///< full metrics snapshot (dmsmetrics v1 text)
        Trace,   ///< collected traces (Chrome trace_event JSON)
    };

    Verb verb = Verb::Compile;
    CompileRequest request; ///< valid when verb == Compile
};

/** Serialize @p req into one request line (no trailing newline). */
std::string wireRequestToLine(const WireRequest &req);

/**
 * Parse one request line. False on any framing error (bad magic,
 * unknown verb or key, bad escape or integer, missing loop or
 * machine) with @p error naming the offense.
 */
bool wireRequestFromLine(const std::string &line, WireRequest &out,
                         std::string &error);

/** Serialize a compile result into one response line. */
std::string wireResultToLine(const CompileResult &result);

/** Parse a result response line; false on framing errors. */
bool wireResultFromLine(const std::string &line, CompileResult &out,
                        std::string &error);

/** Serialize a stats-snapshot response line. */
std::string wireStatsToLine(const std::string &statsText);

/** Parse a stats response line back into the snapshot text. */
bool wireStatsFromLine(const std::string &line,
                       std::string &statsText, std::string &error);

/** Serialize a metrics-snapshot response line. */
std::string wireMetricsToLine(const std::string &metricsText);

/** Parse a metrics response line back into the snapshot text. */
bool wireMetricsFromLine(const std::string &line,
                         std::string &metricsText,
                         std::string &error);

/** Serialize a trace-export response line (trace_event JSON). */
std::string wireTraceToLine(const std::string &traceJson);

/** Parse a trace response line back into the JSON text. */
bool wireTraceFromLine(const std::string &line,
                       std::string &traceJson, std::string &error);

/** Network front-end shape knobs. */
struct NetServerOptions
{
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port. */
    int port = 0;

    /**
     * Longest accepted request line. A line that exceeds this
     * without a newline is rejected as framing and the rest of it
     * discarded; the connection survives.
     */
    int maxLineBytes = 1 << 20;

    /**
     * Shed wait forwarded to trySubmit() per network request: the
     * bounded queue stays the backpressure point, and an
     * overloaded server answers Rejected (which clients retry)
     * instead of stalling the connection forever.
     */
    int submitWaitMs = 200;
};

/**
 * The TCP listener: accept thread + one thread per connection,
 * each connection handling one request line at a time against the
 * shared CompileService. stop() (or destruction) closes every
 * socket, joins every thread, and leaves the service drained by
 * its own shutdown path.
 */
class NetServer
{
  public:
    explicit NetServer(CompileService &service,
                       NetServerOptions opts = {});
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /** Bind + listen + start accepting; false with @p error set. */
    bool start(std::string &error);

    /** Idempotent: close all sockets and join all threads. */
    void stop();

    /** The bound port (resolves option port 0). */
    int port() const;

    /**
     * The service's stats snapshot with this front-end's network
     * counters merged in — the snapshot the `stats` verb serves
     * and dmsd writes via --stats-out.
     */
    ServeStats stats() const;

    /**
     * The service's metrics snapshot with this front-end's five
     * net.* counters appended (re-sorted) — the snapshot the
     * `metrics` verb serves and dmsd writes via --metrics-out.
     */
    obs::MetricsSnapshot metrics() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Blocking client for the wire protocol: one socket, one request
 * in flight. Transport errors (connect refused, EOF mid-response,
 * unparseable response) return false — the caller treats them as
 * a retryable Failed and reconnects; they never throw.
 */
class NetClient
{
  public:
    NetClient();
    ~NetClient();

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /**
     * Connect to @p host:@p port, retrying until @p timeoutMs
     * elapses (covers the daemon still starting up). False with
     * @p error set when the deadline passes unconnected.
     */
    bool connect(const std::string &host, int port, int timeoutMs,
                 std::string &error);

    /** Drop the socket; connect() may be called again. */
    void close();

    bool connected() const;

    /**
     * One compile round trip. True iff a well-formed result line
     * came back (@p out then carries the service's verdict,
     * including structured failures); false on transport errors,
     * after which the socket is closed.
     */
    bool compile(const CompileRequest &request, CompileResult &out,
                 std::string &error);

    /** One stats round trip; @p text gets the snapshot. */
    bool fetchStats(std::string &text, std::string &error);

    /** One metrics round trip; @p text gets dmsmetrics v1 text. */
    bool fetchMetrics(std::string &text, std::string &error);

    /** One trace round trip; @p text gets trace_event JSON. */
    bool fetchTrace(std::string &text, std::string &error);

  private:
    bool roundTrip(const std::string &line, std::string &response,
                   std::string &error);

    int fd_ = -1;
    std::string rbuf_;
};

} // namespace dms

#endif // DMS_SERVE_NET_H
