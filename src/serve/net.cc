#include "serve/net.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/trace.h"
#include "support/diag.h"
#include "support/faultinject.h"
#include "support/strings.h"

namespace dms {

std::string
wireEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    return out;
}

bool
wireUnescape(std::string_view s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (++i >= s.size())
            return false; // dangling backslash
        switch (s[i]) {
        case '\\':
            out += '\\';
            break;
        case 'n':
            out += '\n';
            break;
        case 't':
            out += '\t';
            break;
        case 'r':
            out += '\r';
            break;
        default:
            return false; // unknown escape
        }
    }
    return true;
}

namespace {

constexpr char kMagic[] = "dms1";

bool
compileStatusFromName(std::string_view name, CompileStatus &out)
{
    for (int s = 0; s < 7; ++s) {
        const auto status = static_cast<CompileStatus>(s);
        if (name == compileStatusName(status)) {
            out = status;
            return true;
        }
    }
    return false;
}

/** Strict signed 64-bit parse (the wire carries LoopRun longs). */
bool
parseWireLong(std::string_view s, long long &out)
{
    if (s.empty())
        return false;
    size_t i = 0;
    bool neg = false;
    if (s[0] == '-') {
        neg = true;
        i = 1;
        if (s.size() == 1)
            return false;
    }
    long long v = 0;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        int digit = s[i] - '0';
        if (v > (0x7fffffffffffffffLL - digit) / 10)
            return false; // overflow
        v = v * 10 + digit;
    }
    out = neg ? -v : v;
    return true;
}

void
appendField(std::string &line, const char *key,
            std::string_view value)
{
    line += '\t';
    line += key;
    line += '=';
    line += wireEscape(value);
}

void
appendInt(std::string &line, const char *key, long long value)
{
    line += strfmt("\t%s=%lld", key, value);
}

/** Split one `key=value` token; false when '=' is absent. */
bool
splitField(std::string_view token, std::string_view &key,
           std::string_view &value)
{
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos)
        return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

} // namespace

std::string
wireRequestToLine(const WireRequest &req)
{
    std::string line = kMagic;
    if (req.verb == WireRequest::Verb::Stats) {
        line += "\tstats";
        return line;
    }
    if (req.verb == WireRequest::Verb::Metrics) {
        line += "\tmetrics";
        return line;
    }
    if (req.verb == WireRequest::Verb::Trace) {
        line += "\ttrace";
        return line;
    }
    const CompileRequest &r = req.request;
    line += "\tcompile";
    appendField(line, "loop", r.loopText);
    appendField(line, "machine", r.machineText);
    appendField(line, "sched", r.options.scheduler);
    appendInt(line, "deadline_ms", r.deadlineMs);
    appendInt(line, "unroll", r.options.forceUnroll);
    appendInt(line, "umax", r.options.unrollMaxFactor);
    appendInt(line, "uops", r.options.unrollMaxOps);
    appendInt(line, "verify", r.options.verify ? 1 : 0);
    appendInt(line, "ra", r.options.regalloc ? 1 : 0);
    appendInt(line, "cg", r.options.codegen ? 1 : 0);
    return line;
}

bool
wireRequestFromLine(const std::string &line, WireRequest &out,
                    std::string &error)
{
    const std::vector<std::string> tokens = split(line, '\t');
    if (tokens.empty() || tokens[0] != kMagic) {
        error = "bad magic (want 'dms1')";
        return false;
    }
    if (tokens.size() < 2) {
        error = "missing verb";
        return false;
    }
    WireRequest parsed;
    if (tokens[1] == "stats") {
        if (tokens.size() != 2) {
            error = "stats takes no fields";
            return false;
        }
        parsed.verb = WireRequest::Verb::Stats;
        out = parsed;
        return true;
    }
    if (tokens[1] == "metrics") {
        if (tokens.size() != 2) {
            error = "metrics takes no fields";
            return false;
        }
        parsed.verb = WireRequest::Verb::Metrics;
        out = parsed;
        return true;
    }
    if (tokens[1] == "trace") {
        if (tokens.size() != 2) {
            error = "trace takes no fields";
            return false;
        }
        parsed.verb = WireRequest::Verb::Trace;
        out = parsed;
        return true;
    }
    if (tokens[1] != "compile") {
        error = strfmt("unknown verb '%s'", tokens[1].c_str());
        return false;
    }
    parsed.verb = WireRequest::Verb::Compile;
    bool haveLoop = false;
    bool haveMachine = false;
    for (size_t i = 2; i < tokens.size(); ++i) {
        std::string_view key;
        std::string_view value;
        if (!splitField(tokens[i], key, value)) {
            error = strfmt("field %zu is not key=value", i);
            return false;
        }
        const auto text = [&](std::string &dst) {
            if (!wireUnescape(value, dst)) {
                error = strfmt("bad escape in '%.*s'",
                               static_cast<int>(key.size()),
                               key.data());
                return false;
            }
            return true;
        };
        const auto num = [&](int lo, int hi, int &dst) {
            long long v = 0;
            if (!parseWireLong(value, v) || v < lo || v > hi) {
                error = strfmt("bad integer for '%.*s'",
                               static_cast<int>(key.size()),
                               key.data());
                return false;
            }
            dst = static_cast<int>(v);
            return true;
        };
        int flag = 0;
        if (key == "loop") {
            if (!text(parsed.request.loopText))
                return false;
            haveLoop = true;
        } else if (key == "machine") {
            if (!text(parsed.request.machineText))
                return false;
            haveMachine = true;
        } else if (key == "sched") {
            if (!text(parsed.request.options.scheduler))
                return false;
        } else if (key == "deadline_ms") {
            if (!num(0, 1 << 30, parsed.request.deadlineMs))
                return false;
        } else if (key == "unroll") {
            if (!num(0, 1 << 20,
                     parsed.request.options.forceUnroll))
                return false;
        } else if (key == "umax") {
            if (!num(1, 1 << 20,
                     parsed.request.options.unrollMaxFactor))
                return false;
        } else if (key == "uops") {
            if (!num(1, 1 << 30,
                     parsed.request.options.unrollMaxOps))
                return false;
        } else if (key == "verify") {
            if (!num(0, 1, flag))
                return false;
            parsed.request.options.verify = flag != 0;
        } else if (key == "ra") {
            if (!num(0, 1, flag))
                return false;
            parsed.request.options.regalloc = flag != 0;
        } else if (key == "cg") {
            if (!num(0, 1, flag))
                return false;
            parsed.request.options.codegen = flag != 0;
        } else {
            error = strfmt("unknown key '%.*s'",
                           static_cast<int>(key.size()),
                           key.data());
            return false;
        }
    }
    if (!haveLoop || !haveMachine) {
        error = "compile needs loop= and machine=";
        return false;
    }
    out = std::move(parsed);
    return true;
}

std::string
wireResultToLine(const CompileResult &result)
{
    std::string line = kMagic;
    line += "\tresult";
    appendField(line, "status",
                compileStatusName(result.status));
    appendInt(line, "parsed", result.parsed ? 1 : 0);
    appendInt(line, "ok", result.ok ? 1 : 0);
    appendField(line, "error", result.error);
    appendField(line, "fail_site", result.failSite);
    appendInt(line, "ii", result.run.ii);
    appendInt(line, "mii", result.run.mii);
    appendInt(line, "stages", result.run.stageCount);
    appendInt(line, "unroll", result.run.unrollFactor);
    appendInt(line, "moves", result.run.movesInserted);
    appendInt(line, "copies", result.run.copiesInserted);
    appendInt(line, "iter", result.run.iterations);
    appendInt(line, "cycles", result.run.cycles);
    appendInt(line, "useful", result.run.usefulIssues);
    appendInt(line, "qfiles", result.run.queueFiles);
    appendInt(line, "qreq", result.run.queuesRequired);
    appendInt(line, "qstore", result.run.queueStorage);
    appendInt(line, "qlink", result.run.maxLinkQueues);
    appendField(line, "kernel", result.kernelText);
    return line;
}

bool
wireResultFromLine(const std::string &line, CompileResult &out,
                   std::string &error)
{
    const std::vector<std::string> tokens = split(line, '\t');
    if (tokens.size() < 2 || tokens[0] != kMagic ||
        tokens[1] != "result") {
        error = "not a result line";
        return false;
    }
    CompileResult parsed;
    bool haveStatus = false;
    for (size_t i = 2; i < tokens.size(); ++i) {
        std::string_view key;
        std::string_view value;
        if (!splitField(tokens[i], key, value)) {
            error = strfmt("field %zu is not key=value", i);
            return false;
        }
        const auto text = [&](std::string &dst) {
            if (!wireUnescape(value, dst)) {
                error = strfmt("bad escape in '%.*s'",
                               static_cast<int>(key.size()),
                               key.data());
                return false;
            }
            return true;
        };
        const auto numInt = [&](int &dst) {
            long long v = 0;
            if (!parseWireLong(value, v) || v < -(1LL << 31) ||
                v > (1LL << 31)) {
                error = strfmt("bad integer for '%.*s'",
                               static_cast<int>(key.size()),
                               key.data());
                return false;
            }
            dst = static_cast<int>(v);
            return true;
        };
        const auto numLong = [&](long &dst) {
            long long v = 0;
            if (!parseWireLong(value, v)) {
                error = strfmt("bad integer for '%.*s'",
                               static_cast<int>(key.size()),
                               key.data());
                return false;
            }
            dst = static_cast<long>(v);
            return true;
        };
        int flag = 0;
        if (key == "status") {
            if (!compileStatusFromName(value, parsed.status)) {
                error = strfmt("unknown status '%.*s'",
                               static_cast<int>(value.size()),
                               value.data());
                return false;
            }
            haveStatus = true;
        } else if (key == "parsed") {
            if (!numInt(flag))
                return false;
            parsed.parsed = flag != 0;
        } else if (key == "ok") {
            if (!numInt(flag))
                return false;
            parsed.ok = flag != 0;
        } else if (key == "error") {
            if (!text(parsed.error))
                return false;
        } else if (key == "fail_site") {
            if (!text(parsed.failSite))
                return false;
        } else if (key == "ii") {
            if (!numInt(parsed.run.ii))
                return false;
        } else if (key == "mii") {
            if (!numInt(parsed.run.mii))
                return false;
        } else if (key == "stages") {
            if (!numInt(parsed.run.stageCount))
                return false;
        } else if (key == "unroll") {
            if (!numInt(parsed.run.unrollFactor))
                return false;
        } else if (key == "moves") {
            if (!numInt(parsed.run.movesInserted))
                return false;
        } else if (key == "copies") {
            if (!numInt(parsed.run.copiesInserted))
                return false;
        } else if (key == "iter") {
            if (!numLong(parsed.run.iterations))
                return false;
        } else if (key == "cycles") {
            if (!numLong(parsed.run.cycles))
                return false;
        } else if (key == "useful") {
            if (!numLong(parsed.run.usefulIssues))
                return false;
        } else if (key == "qfiles") {
            if (!numInt(parsed.run.queueFiles))
                return false;
        } else if (key == "qreq") {
            if (!numInt(parsed.run.queuesRequired))
                return false;
        } else if (key == "qstore") {
            if (!numInt(parsed.run.queueStorage))
                return false;
        } else if (key == "qlink") {
            if (!numInt(parsed.run.maxLinkQueues))
                return false;
        } else if (key == "kernel") {
            if (!text(parsed.kernelText))
                return false;
        } else {
            error = strfmt("unknown key '%.*s'",
                           static_cast<int>(key.size()),
                           key.data());
            return false;
        }
    }
    if (!haveStatus) {
        error = "result line missing status=";
        return false;
    }
    parsed.run.ok = parsed.ok;
    out = std::move(parsed);
    return true;
}

std::string
wireStatsToLine(const std::string &statsText)
{
    std::string line = kMagic;
    line += "\tstatsr";
    appendField(line, "text", statsText);
    return line;
}

bool
wireStatsFromLine(const std::string &line, std::string &statsText,
                  std::string &error)
{
    const std::vector<std::string> tokens = split(line, '\t');
    if (tokens.size() != 3 || tokens[0] != kMagic ||
        tokens[1] != "statsr") {
        error = "not a stats response line";
        return false;
    }
    std::string_view key;
    std::string_view value;
    if (!splitField(tokens[2], key, value) || key != "text") {
        error = "stats response wants text=";
        return false;
    }
    if (!wireUnescape(value, statsText)) {
        error = "bad escape in stats text";
        return false;
    }
    return true;
}

std::string
wireMetricsToLine(const std::string &metricsText)
{
    std::string line = kMagic;
    line += "\tmetricsr";
    appendField(line, "text", metricsText);
    return line;
}

bool
wireMetricsFromLine(const std::string &line,
                    std::string &metricsText, std::string &error)
{
    const std::vector<std::string> tokens = split(line, '\t');
    if (tokens.size() != 3 || tokens[0] != kMagic ||
        tokens[1] != "metricsr") {
        error = "not a metrics response line";
        return false;
    }
    std::string_view key;
    std::string_view value;
    if (!splitField(tokens[2], key, value) || key != "text") {
        error = "metrics response wants text=";
        return false;
    }
    if (!wireUnescape(value, metricsText)) {
        error = "bad escape in metrics text";
        return false;
    }
    return true;
}

std::string
wireTraceToLine(const std::string &traceJson)
{
    std::string line = kMagic;
    line += "\ttracer";
    appendField(line, "text", traceJson);
    return line;
}

bool
wireTraceFromLine(const std::string &line, std::string &traceJson,
                  std::string &error)
{
    const std::vector<std::string> tokens = split(line, '\t');
    if (tokens.size() != 3 || tokens[0] != kMagic ||
        tokens[1] != "tracer") {
        error = "not a trace response line";
        return false;
    }
    std::string_view key;
    std::string_view value;
    if (!splitField(tokens[2], key, value) || key != "text") {
        error = "trace response wants text=";
        return false;
    }
    if (!wireUnescape(value, traceJson)) {
        error = "bad escape in trace text";
        return false;
    }
    return true;
}

namespace {

/** Write all of @p data to @p fd; false on any error. */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off,
                   MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

struct NetServer::Impl
{
    Impl(CompileService &s, const NetServerOptions &o)
        : service(s), opts(o)
    {
    }

    CompileService &service;
    NetServerOptions opts;

    int listenFd = -1;
    int boundPort = 0;
    std::atomic<bool> stopping{false};
    std::atomic<bool> stopped{false};
    std::thread acceptThread;

    std::mutex connMu;
    std::vector<int> connFds;          ///< guarded by connMu
    std::vector<std::thread> connThreads; ///< guarded by connMu

    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> framingRejects{0};
    std::atomic<std::uint64_t> bytesIn{0};
    std::atomic<std::uint64_t> bytesOut{0};

    void
    acceptLoop()
    {
        for (;;) {
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (stopping.load(std::memory_order_acquire))
                    break;
                if (errno == EINTR || errno == ECONNABORTED)
                    continue;
                break;
            }
            if (stopping.load(std::memory_order_acquire)) {
                ::close(fd);
                break;
            }
            // A fault here models a connection lost at accept
            // time: the client sees an immediate EOF and retries.
            try {
                faultPoint("serve.net.accept");
            } catch (const InjectedFault &) {
                ::close(fd);
                continue;
            }
            connections.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(connMu);
            connFds.push_back(fd);
            connThreads.emplace_back(
                [this, fd] { connLoop(fd); });
        }
    }

    void
    connLoop(int fd)
    {
        std::string buf;
        char chunk[4096];
        bool discarding = false;
        for (;;) {
            // A fault here models the connection dying mid-read.
            try {
                faultPoint("serve.net.read");
            } catch (const InjectedFault &) {
                break;
            }
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            bytesIn.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
            buf.append(chunk, static_cast<size_t>(n));

            bool dead = false;
            size_t nl;
            while ((nl = buf.find('\n')) != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (discarding) {
                    // The tail of an already-rejected oversized
                    // line; the connection resyncs here.
                    discarding = false;
                    continue;
                }
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                requests.fetch_add(1, std::memory_order_relaxed);
                if (!respond(fd, handleLine(line))) {
                    dead = true;
                    break;
                }
            }
            if (dead)
                break;
            if (!discarding &&
                buf.size() >
                    static_cast<size_t>(opts.maxLineBytes)) {
                // Oversized line: reject what we have, then skip
                // to the next newline so the connection survives.
                requests.fetch_add(1, std::memory_order_relaxed);
                if (!respond(fd, framingReject(strfmt(
                                 "line exceeds %d bytes",
                                 opts.maxLineBytes))))
                    break;
                buf.clear();
                discarding = true;
            }
        }
        {
            std::lock_guard<std::mutex> lock(connMu);
            auto it = std::find(connFds.begin(), connFds.end(), fd);
            if (it != connFds.end())
                connFds.erase(it);
        }
        ::close(fd);
    }

    bool
    respond(int fd, const std::string &line)
    {
        // A fault here models the connection dying mid-write.
        try {
            faultPoint("serve.net.write");
        } catch (const InjectedFault &) {
            return false;
        }
        std::string out = line;
        out += '\n';
        if (!writeAll(fd, out))
            return false;
        bytesOut.fetch_add(out.size(), std::memory_order_relaxed);
        return true;
    }

    /**
     * A line that failed framing. The reject is routed through the
     * service as an unparseable request so it lands in the
     * `invalid` counter — the identity dmslint audits
     * (net_framing_rejects <= invalid). Under fault injection the
     * accounting submit itself can resolve Failed/Expired instead;
     * then the client gets that structured (retryable) result and
     * the reject is *not* counted, keeping the identity exact.
     */
    std::string
    framingReject(std::string why)
    {
        CompileRequest junk;
        junk.machineText = "<wire framing reject>";
        CompileService::Ticket ticket = service.submit(junk);
        CompileService::ResultPtr accounted =
            ticket.future.get();
        if (ticket.source != CompileService::Source::Invalid)
            return wireResultToLine(*accounted);
        framingRejects.fetch_add(1, std::memory_order_relaxed);
        CompileResult result;
        result.status = CompileStatus::Invalid;
        result.parsed = false;
        result.error = "framing: " + std::move(why);
        return wireResultToLine(result);
    }

    std::string
    handleLine(const std::string &line)
    {
        WireRequest wire;
        std::string err;
        if (!wireRequestFromLine(line, wire, err))
            return framingReject(std::move(err));

        if (wire.verb == WireRequest::Verb::Stats)
            return wireStatsToLine(serveStatsToText(snapshot()));

        if (wire.verb == WireRequest::Verb::Metrics)
            return wireMetricsToLine(
                obs::metricsToText(metricsSnapshot()));

        if (wire.verb == WireRequest::Verb::Trace)
            return wireTraceToLine(obs::tracesToJson(
                obs::TraceLog::instance().traces()));

        // The network request rides the same machinery as an
        // in-process one: trySubmit keeps the bounded queue the
        // backpressure point (overload answers Rejected), and the
        // deadline wait mirrors CompileService::compile —
        // cancel the worker, synthesize Expired for this caller.
        const auto t0 = std::chrono::steady_clock::now();
        CompileService::Ticket ticket =
            service.trySubmit(wire.request, opts.submitWaitMs);
        CompileService::ResultPtr result;
        const int deadlineMs = wire.request.deadlineMs;
        if (deadlineMs > 0 &&
            ticket.future.wait_until(
                t0 + std::chrono::milliseconds(deadlineMs)) ==
                std::future_status::timeout) {
            if (ticket.cancel != nullptr)
                ticket.cancel->cancel();
            auto expired = std::make_shared<CompileResult>();
            expired->status = CompileStatus::Expired;
            expired->parsed = true;
            expired->error = strfmt("deadline of %d ms exceeded",
                                    deadlineMs);
            result = std::move(expired);
        } else {
            result = ticket.future.get();
        }
        // Wire requests land in the same latency histogram as
        // in-process compile() calls, so the stats and metrics
        // verbs report real serving latencies for a pure daemon.
        const auto t1 = std::chrono::steady_clock::now();
        service.recordLatencyMs(
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
        return wireResultToLine(*result);
    }

    ServeStats
    snapshot() const
    {
        ServeStats s = service.stats();
        s.netConnections =
            connections.load(std::memory_order_relaxed);
        s.netRequests = requests.load(std::memory_order_relaxed);
        s.netFramingRejects =
            framingRejects.load(std::memory_order_relaxed);
        s.netBytesIn = bytesIn.load(std::memory_order_relaxed);
        s.netBytesOut = bytesOut.load(std::memory_order_relaxed);
        return s;
    }

    obs::MetricsSnapshot
    metricsSnapshot() const
    {
        obs::MetricsSnapshot snap = service.metrics();
        snap.addCounter(
            "net.connections",
            connections.load(std::memory_order_relaxed));
        snap.addCounter("net.requests",
                        requests.load(std::memory_order_relaxed));
        snap.addCounter(
            "net.framing_rejects",
            framingRejects.load(std::memory_order_relaxed));
        snap.addCounter("net.bytes_in",
                        bytesIn.load(std::memory_order_relaxed));
        snap.addCounter("net.bytes_out",
                        bytesOut.load(std::memory_order_relaxed));
        snap.sortByName();
        return snap;
    }
};

NetServer::NetServer(CompileService &service, NetServerOptions opts)
    : impl_(new Impl(service, opts))
{
}

NetServer::~NetServer() { stop(); }

bool
NetServer::start(std::string &error)
{
    Impl &im = *impl_;
    im.listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (im.listenFd < 0) {
        error = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(im.listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(im.opts.port));
    if (::bind(im.listenFd,
               reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        error = strfmt("bind port %d: %s", im.opts.port,
                       std::strerror(errno));
        ::close(im.listenFd);
        im.listenFd = -1;
        return false;
    }
    if (::listen(im.listenFd, 64) != 0) {
        error = strfmt("listen: %s", std::strerror(errno));
        ::close(im.listenFd);
        im.listenFd = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(im.listenFd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        im.boundPort = ntohs(bound.sin_port);
    im.acceptThread = std::thread([&im] { im.acceptLoop(); });
    return true;
}

void
NetServer::stop()
{
    Impl &im = *impl_;
    if (im.stopped.exchange(true))
        return;
    im.stopping.store(true, std::memory_order_release);
    if (im.listenFd >= 0)
        ::shutdown(im.listenFd, SHUT_RDWR);
    if (im.acceptThread.joinable())
        im.acceptThread.join();
    if (im.listenFd >= 0) {
        ::close(im.listenFd);
        im.listenFd = -1;
    }
    // Wake every blocked recv; each connection thread removes its
    // fd from connFds (under connMu) before closing it, so the
    // fds shut down here are never stale.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(im.connMu);
        for (int fd : im.connFds)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(im.connThreads);
    }
    for (std::thread &t : threads)
        t.join();
}

int
NetServer::port() const
{
    return impl_->boundPort;
}

ServeStats
NetServer::stats() const
{
    return impl_->snapshot();
}

obs::MetricsSnapshot
NetServer::metrics() const
{
    return impl_->metricsSnapshot();
}

NetClient::NetClient() = default;

NetClient::~NetClient() { close(); }

bool
NetClient::connect(const std::string &host, int port,
                   int timeoutMs, std::string &error)
{
    close();
    const char *ip =
        host == "localhost" ? "127.0.0.1" : host.c_str();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
        error = strfmt("bad IPv4 address '%s'", host.c_str());
        return false;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max(timeoutMs, 0));
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd,
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0) {
            fd_ = fd;
            rbuf_.clear();
            return true;
        }
        if (fd >= 0)
            ::close(fd);
        // Retry until the deadline: covers a daemon that is still
        // binding its port when the client starts.
        if (std::chrono::steady_clock::now() >= deadline) {
            error = strfmt("connect %s:%d: %s", host.c_str(),
                           port, std::strerror(errno));
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }
}

void
NetClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rbuf_.clear();
}

bool
NetClient::connected() const
{
    return fd_ >= 0;
}

bool
NetClient::roundTrip(const std::string &line,
                     std::string &response, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    std::string out = line;
    out += '\n';
    if (!writeAll(fd_, out)) {
        error = strfmt("send: %s", std::strerror(errno));
        close();
        return false;
    }
    size_t nl;
    while ((nl = rbuf_.find('\n')) == std::string::npos) {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            error = n == 0 ? "connection closed mid-response"
                           : strfmt("recv: %s",
                                    std::strerror(errno));
            close();
            return false;
        }
        rbuf_.append(chunk, static_cast<size_t>(n));
    }
    response = rbuf_.substr(0, nl);
    rbuf_.erase(0, nl + 1);
    if (!response.empty() && response.back() == '\r')
        response.pop_back();
    return true;
}

bool
NetClient::compile(const CompileRequest &request,
                   CompileResult &out, std::string &error)
{
    WireRequest wire;
    wire.verb = WireRequest::Verb::Compile;
    wire.request = request;
    std::string response;
    if (!roundTrip(wireRequestToLine(wire), response, error))
        return false;
    if (!wireResultFromLine(response, out, error)) {
        // A garbled response is a transport failure: the stream
        // can no longer be trusted to be in frame.
        close();
        return false;
    }
    return true;
}

bool
NetClient::fetchStats(std::string &text, std::string &error)
{
    WireRequest wire;
    wire.verb = WireRequest::Verb::Stats;
    std::string response;
    if (!roundTrip(wireRequestToLine(wire), response, error))
        return false;
    if (!wireStatsFromLine(response, text, error)) {
        close();
        return false;
    }
    return true;
}

bool
NetClient::fetchMetrics(std::string &text, std::string &error)
{
    WireRequest wire;
    wire.verb = WireRequest::Verb::Metrics;
    std::string response;
    if (!roundTrip(wireRequestToLine(wire), response, error))
        return false;
    if (!wireMetricsFromLine(response, text, error)) {
        close();
        return false;
    }
    return true;
}

bool
NetClient::fetchTrace(std::string &text, std::string &error)
{
    WireRequest wire;
    wire.verb = WireRequest::Verb::Trace;
    std::string response;
    if (!roundTrip(wireRequestToLine(wire), response, error))
        return false;
    if (!wireTraceFromLine(response, text, error)) {
        close();
        return false;
    }
    return true;
}

} // namespace dms
