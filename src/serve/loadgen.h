#ifndef DMS_SERVE_LOADGEN_H
#define DMS_SERVE_LOADGEN_H

/**
 * @file
 * Shared request-mix helpers for the service's load surfaces:
 * dmsd's --load mode and bench/serve_throughput drive the same
 * zipf-skewed mix (a hot set of kernels that repeats, cold
 * synthetic loops that churn) and the same multi-client hammer
 * loop, so they live here once.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/service.h"
#include "support/rng.h"

namespace dms {

/**
 * Zipf-weighted index picker: rank r is drawn with probability
 * proportional to 1 / (r+1)^exponent. The standard skew of a
 * serving hot set — a few keys dominate, the tail trickles.
 */
class ZipfPicker
{
  public:
    explicit ZipfPicker(size_t n, double exponent = 1.1);

    size_t pick(Rng &rng) const;
    size_t size() const { return cum_.size(); }

  private:
    std::vector<double> cum_;
    double mass_ = 0;
};

/** The standard hot set: every named kernel, serialized. */
std::vector<std::string> hotKernelTexts();

/**
 * A unique cold loop per @p index (deterministic in @p seed):
 * the churn half of the mix, never repeating, never hitting.
 */
std::string coldLoopText(std::uint64_t seed, int index);

/**
 * Client-side fault policy: bounded retry with exponential backoff
 * and deterministic jitter on retryable outcomes (Rejected and
 * Failed — transient by construction; Invalid, Quarantined and
 * Expired are not retried: the first is permanent, the second is
 * the service saying "stop", the third has no budget left).
 */
struct RetryPolicy
{
    int maxAttempts = 1;   ///< total tries; 1 disables retry
    int backoffBaseMs = 2; ///< delay before the first retry
    int backoffMaxMs = 100; ///< exponential-growth cap

    /** Per-request deadline forwarded to CompileRequest (0=none). */
    int deadlineMs = 0;

    /**
     * >= 0: submit through trySubmit() with this shed wait, so an
     * overloaded service rejects instead of blocking the client.
     * Negative keeps the blocking submit()/compile() path.
     */
    int submitWaitMs = -1;

    /** Retryable terminal statuses. */
    bool shouldRetry(CompileStatus status) const
    {
        return status == CompileStatus::Rejected ||
               status == CompileStatus::Failed;
    }

    /**
     * Backoff before retry number @p attempt (0-based):
     * min(backoffMaxMs, backoffBaseMs * 2^attempt), jittered by a
     * deterministic factor in [0.5, 1.0) drawn from @p rng.
     */
    int delayMs(int attempt, Rng &rng) const;
};

/**
 * One request through the policy loop: submit (blocking or
 * shedding per the policy), await (honoring the deadline), retry
 * retryable outcomes with backoff. @p retries, when non-null,
 * accumulates the number of extra attempts made.
 */
CompileService::ResultPtr
compileWithRetry(CompileService &service, CompileRequest request,
                 const RetryPolicy &policy, Rng &rng,
                 int *retries = nullptr);

/** What one hammer run did. */
struct HammerResult
{
    int requests = 0;
    int failures = 0; ///< any terminal status other than Ok
    int retries = 0;  ///< extra attempts made by the retry policy
    double seconds = 0;

    /** Requests whose final status was the given one. */
    int
    count(CompileStatus status) const
    {
        return byStatus[static_cast<size_t>(status)];
    }

    /** Indexed by CompileStatus; sums to requests. */
    int byStatus[7] = {0, 0, 0, 0, 0, 0, 0};

    /**
     * @name Per-request latency of *this* run (milliseconds)
     * Measured client-side around each compile(), so a phase's
     * percentiles are its own — unlike ServeStats, which spans
     * the service's whole lifetime.
     */
    /// @{
    double p50Ms = 0;
    double p90Ms = 0;
    double p99Ms = 0;
    double maxMs = 0;
    /// @}

    double
    rps() const
    {
        return seconds > 0 ? requests / seconds : 0;
    }
};

/**
 * Fire @p total requests at @p service from @p clients threads,
 * each request's loop text produced by @p makeLoop(i, rng) (i is
 * the global request number; rng is per-client, seeded from
 * @p seed). Every request uses @p machineText, @p scheduler and
 * the regalloc stage — the standard serving configuration.
 * @p policy adds the client-side fault loop; the default is the
 * pre-fault-tolerance behavior (blocking submit, no retries).
 */
HammerResult hammerService(
    CompileService &service, int total, int clients,
    const std::string &machineText, const std::string &scheduler,
    std::uint64_t seed,
    const std::function<std::string(int, Rng &)> &makeLoop,
    const RetryPolicy &policy = {});

/**
 * The same hammer loop over sockets: @p clients threads, each with
 * its own NetClient connection to @p host:@p port, firing
 * @p total requests through the wire protocol (serve/net.h).
 * Latency is measured client-side around each round trip and
 * merged exactly like hammerService. Transport failures —
 * connection refused mid-run, EOF from an injected
 * serve.net.* fault, a garbled response — are synthesized as
 * retryable Failed results and the connection is re-established,
 * so every request still resolves to exactly one terminal status.
 * @p policy's submitWaitMs is ignored (shedding is the server's
 * call in network mode); its deadline rides in each request.
 */
HammerResult hammerNetwork(
    const std::string &host, int port, int total, int clients,
    const std::string &machineText, const std::string &scheduler,
    std::uint64_t seed,
    const std::function<std::string(int, Rng &)> &makeLoop,
    const RetryPolicy &policy = {}, int connectTimeoutMs = 5000);

} // namespace dms

#endif // DMS_SERVE_LOADGEN_H
