#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "codegen/emit.h"
#include "machine/desc.h"
#include "support/diag.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "workload/text.h"

namespace dms {

namespace {

/** One accepted compilation, parsed and ready for a worker. */
struct Job
{
    std::shared_ptr<CacheEntry> entry;
    Loop loop;
    MachineModel machine;
    PipelineOptions options;

    Job(std::shared_ptr<CacheEntry> e, Loop l, MachineModel m,
        PipelineOptions o)
        : entry(std::move(e)), loop(std::move(l)),
          machine(std::move(m)), options(std::move(o))
    {
    }
};

/**
 * Bounded MPMC job queue. push() blocks while the queue is at
 * capacity (producer backpressure — the "bounded" in the design);
 * pop() blocks while it is empty and returns false once the queue
 * is stopped *and* drained, so every accepted job is executed
 * before shutdown completes.
 */
class JobQueue
{
  public:
    explicit JobQueue(int capacity)
        : capacity_(static_cast<size_t>(std::max(capacity, 1)))
    {
    }

    void
    push(std::unique_ptr<Job> job)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notFull_.wait(lock, [&] {
            return queue_.size() < capacity_ || stopped_;
        });
        DMS_ASSERT(!stopped_, "push after CompileService shutdown");
        queue_.push_back(std::move(job));
        peak_ = std::max(peak_, queue_.size());
        notEmpty_.notify_one();
    }

    bool
    pop(std::unique_ptr<Job> &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock,
                       [&] { return !queue_.empty() || stopped_; });
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        notFull_.notify_one();
        return true;
    }

    void
    stop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopped_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    int
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int>(queue_.size());
    }

    int
    peak() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int>(peak_);
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<std::unique_ptr<Job>> queue_;
    size_t capacity_;
    size_t peak_ = 0;
    bool stopped_ = false;
};

/**
 * The option fields that select a compilation outcome, serialized
 * into the cache key. The MII hint fields (known*Mii) are excluded
 * on purpose: the pipeline overwrites them from its own MII stage,
 * so they cannot change the result. perf is forced on — LoopRun
 * needs it — and is therefore not part of the key either. The
 * analyze switch is likewise excluded: the audit is observational
 * (it panics rather than producing a different result), so analyzed
 * and plain requests must share one cache entry.
 */
std::string
optionsKeyPart(const PipelineOptions &po)
{
    return strfmt(
        "sched=%s;unroll=%d;umax=%d;uops=%d;verify=%d;ra=%d;cg=%d;"
        "b.budget=%d;b.maxii=%d;d.budget=%d;d.maxii=%d;"
        "d.restarts=%d;d.chains=%d;d.rule=%d;d.s3=%d",
        po.scheduler.c_str(), po.forceUnroll, po.unrollMaxFactor,
        po.unrollMaxOps, po.verify ? 1 : 0, po.regalloc ? 1 : 0,
        po.codegen ? 1 : 0, po.config.base.budgetRatio,
        po.config.base.maxII, po.config.dms.budgetRatio,
        po.config.dms.maxII, po.config.dms.restartsPerII,
        po.config.dms.enableChains ? 1 : 0,
        static_cast<int>(po.config.dms.chainRule),
        static_cast<int>(po.config.dms.s3Policy));
}

} // namespace

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions opts;
    opts.workers = envInt("DMS_SERVE_WORKERS", opts.workers,
                          /*lo=*/0);
    opts.queueDepth =
        envInt("DMS_SERVE_QUEUE_DEPTH", opts.queueDepth);
    opts.shards = envInt("DMS_SERVE_SHARDS", opts.shards);
    opts.cacheCapacity =
        envInt("DMS_SERVE_CACHE_CAP", opts.cacheCapacity);
    return opts;
}

struct CompileService::Impl
{
    explicit Impl(const ServeOptions &opts)
        : queue(opts.queueDepth),
          cache(opts.shards, opts.cacheCapacity),
          aliases(opts.shards, opts.cacheCapacity),
          workerCount(opts.workers > 0 ? opts.workers
                                       : ThreadPool::defaultJobs())
    {
        workers.reserve(static_cast<size_t>(workerCount));
        for (int w = 0; w < workerCount; ++w)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~Impl()
    {
        queue.stop();
        for (std::thread &t : workers)
            t.join();
    }

    void
    workerLoop()
    {
        // The pooled unit: one CompilationContext per worker, its
        // arenas reused by every request this worker executes.
        CompilationContext ctx;
        std::unique_ptr<Job> job;
        while (queue.pop(job)) {
            execute(*job, ctx);
            job.reset();
        }
    }

    void
    execute(Job &job, CompilationContext &ctx)
    {
        auto result = std::make_shared<CompileResult>();
        result->parsed = true;

        Pipeline pipeline(job.options);
        result->run =
            runLoop(pipeline, job.loop, job.machine, ctx);
        result->ok = result->run.ok;
        if (result->ok && job.options.codegen) {
            result->kernelText = emitPipelinedCode(
                ctx.scheduledDdg(), job.machine, ctx.kernel,
                ctx.queuesValid ? &ctx.queues : nullptr);
        }

        // Publish: ready must be set before the promise wakes any
        // waiter, so a concurrent acquire() that saw ready==false
        // still classifies as InFlight and blocks on the future —
        // never the other way around.
        job.entry->ready.store(true, std::memory_order_release);
        job.entry->promise.set_value(std::move(result));
    }

    std::uint64_t
    bump(std::uint64_t &counter)
    {
        std::lock_guard<std::mutex> lock(statsMu);
        return ++counter;
    }

    JobQueue queue;

    /** The authoritative memo map, keyed on canonical text. */
    ResultCache cache;

    /**
     * Raw-spelling aliases into the same entries: a verbatim
     * re-send of a request (the common warm case) resolves here
     * without paying for parse + re-serialization. Both maps are
     * capacity-bounded, so the alias layer is an optimization,
     * never a second source of truth.
     */
    ResultCache aliases;

    int workerCount;
    std::vector<std::thread> workers;

    mutable std::mutex statsMu;
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalid = 0;
    /** Reservoir-capped: a long-lived service must not grow. */
    Samples latenciesMs{std::uint64_t(1) << 16};
};

CompileService::CompileService(ServeOptions opts)
    : impl_(new Impl(opts)), opts_(opts)
{
}

CompileService::~CompileService() = default;

int
CompileService::workers() const
{
    return impl_->workerCount;
}

CompileRequest
makeRequest(const Loop &loop, const MachineModel &machine,
            const PipelineOptions &options)
{
    CompileRequest req;
    req.loopText = loopToText(loop);
    req.machineText = machineToText(machine);
    req.options = options;
    if (req.options.scheduler.empty())
        req.options.scheduler =
            machine.clustered() ? "dms" : "ims";
    return req;
}

CompileService::Ticket
CompileService::submit(const CompileRequest &request)
{
    impl_->bump(impl_->requests);
    Ticket ticket;

    // Fast path: a verbatim repeat of an earlier request resolves
    // through the raw-text alias map without re-parsing anything.
    std::string raw_key = request.loopText;
    raw_key += '\x01';
    raw_key += request.machineText;
    raw_key += '\x01';
    raw_key += optionsKeyPart(request.options);
    const std::uint64_t raw_hash = fnv1a64(raw_key);
    if (std::shared_ptr<CacheEntry> alias =
            impl_->aliases.find(raw_key, raw_hash)) {
        ticket.future = alias->future;
        ticket.key = raw_hash;
        if (alias->ready.load(std::memory_order_acquire)) {
            ticket.source = Source::Hit;
            impl_->bump(impl_->hits);
        } else {
            ticket.source = Source::Coalesced;
            impl_->bump(impl_->coalesced);
        }
        return ticket;
    }

    // Reject bad request data without involving a worker: a
    // worker-side fatal() would take down the whole service, so
    // everything data-dependent — both texts and the scheduler
    // choice — is validated here and answered with an error
    // result instead.
    auto reject = [&](std::string error) -> Ticket {
        auto result = std::make_shared<CompileResult>();
        result->error = std::move(error);
        std::promise<ResultPtr> p;
        p.set_value(std::move(result));
        ticket.future = p.get_future().share();
        ticket.source = Source::Invalid;
        impl_->bump(impl_->invalid);
        return ticket;
    };

    // Canonicalize: parse both texts and re-serialize, so every
    // spelling of the same request (comments, whitespace, id gaps)
    // lands on the same cache key. The machine is parsed first:
    // flow-edge latencies in the loop format come from a latency
    // model at parse time, and the machine's (which machineToText
    // round-trips, overrides included) is the one the request
    // names — the direct pipeline sees the same edges as long as
    // the loop was built against the same model.
    std::string error;
    MachineModel machine = MachineModel::unclustered(1);
    if (!machineFromText(request.machineText, machine, error))
        return reject(std::move(error));
    Loop loop;
    if (!loopFromText(request.loopText, loop, error,
                      machine.latency()))
        return reject(std::move(error));

    PipelineOptions options = request.options;
    if (options.scheduler.empty())
        options.scheduler = machine.clustered() ? "dms" : "ims";
    std::unique_ptr<Scheduler> sched =
        SchedulerRegistry::instance().create(options.scheduler);
    if (sched == nullptr) {
        return reject(strfmt("unknown scheduler '%s'",
                             options.scheduler.c_str()));
    }
    if (!sched->supports(machine)) {
        return reject(strfmt(
            "scheduler '%s' does not support machine '%s'",
            options.scheduler.c_str(),
            machine.describe().c_str()));
    }
    // LoopRun extraction needs the perf stage; force it so a
    // caller's perf=false cannot produce an unusable cached entry.
    options.perf = true;

    std::string key = loopToText(loop);
    key += '\x01';
    key += machineToText(machine);
    key += '\x01';
    key += optionsKeyPart(options);
    ticket.key = fnv1a64(key);

    std::shared_ptr<CacheEntry> entry;
    ResultCache::Lookup found =
        impl_->cache.acquire(key, ticket.key, entry);
    ticket.future = entry->future;
    impl_->aliases.insertAlias(raw_key, raw_hash, entry);
    switch (found) {
    case ResultCache::Lookup::Hit:
        ticket.source = Source::Hit;
        impl_->bump(impl_->hits);
        return ticket;
    case ResultCache::Lookup::InFlight:
        ticket.source = Source::Coalesced;
        impl_->bump(impl_->coalesced);
        return ticket;
    case ResultCache::Lookup::Inserted:
        break;
    }
    ticket.source = Source::Miss;
    impl_->bump(impl_->misses);
    impl_->queue.push(std::unique_ptr<Job>(
        new Job(std::move(entry), std::move(loop),
                std::move(machine), std::move(options))));
    return ticket;
}

CompileService::ResultPtr
CompileService::compile(const CompileRequest &request)
{
    auto t0 = std::chrono::steady_clock::now();
    Ticket ticket = submit(request);
    ResultPtr result = ticket.future.get();
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    {
        std::lock_guard<std::mutex> lock(impl_->statsMu);
        impl_->latenciesMs.add(ms);
    }
    return result;
}

ServeStats
CompileService::stats() const
{
    ServeStats out;
    // Copy the sample store under the lock, rank outside it: the
    // percentile selects are O(reservoir) each and must not stall
    // every concurrent compile()/submit() on statsMu.
    Samples latencies;
    {
        std::lock_guard<std::mutex> lock(impl_->statsMu);
        out.requests = impl_->requests;
        out.hits = impl_->hits;
        out.coalesced = impl_->coalesced;
        out.misses = impl_->misses;
        out.invalid = impl_->invalid;
        latencies = impl_->latenciesMs;
    }
    out.latencySamples = latencies.count();
    out.p50Ms = latencies.percentile(50);
    out.p90Ms = latencies.percentile(90);
    out.p99Ms = latencies.percentile(99);
    out.maxMs = latencies.max();
    out.meanMs = latencies.mean();
    out.evictions = impl_->cache.evictions() +
                    impl_->aliases.evictions();
    out.cached = impl_->cache.size();
    out.queueDepth = impl_->queue.depth();
    out.peakQueueDepth = impl_->queue.peak();
    return out;
}

} // namespace dms
