#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "codegen/emit.h"
#include "machine/desc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/diag.h"
#include "support/faultinject.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "workload/text.h"

namespace dms {

namespace {

/** One accepted compilation, parsed and ready for a worker. */
struct Job
{
    std::shared_ptr<CacheEntry> entry;
    /** Canonical cache key + hash, for retire() and quarantine. */
    std::string key;
    std::uint64_t hash = 0;
    Loop loop;
    MachineModel machine;
    PipelineOptions options;
    /** Non-null when the request carried a deadline. */
    std::shared_ptr<CancelToken> cancel;

    /**
     * Non-null when tracing was armed at submit: the worker binds
     * it to the pipeline, closes it, and commits it to the
     * TraceLog. The queue's push/pop pair orders the handoff.
     */
    std::shared_ptr<obs::Trace> trace;

    Job(std::shared_ptr<CacheEntry> e, std::string k,
        std::uint64_t h, Loop l, MachineModel m, PipelineOptions o,
        std::shared_ptr<CancelToken> c)
        : entry(std::move(e)), key(std::move(k)), hash(h),
          loop(std::move(l)), machine(std::move(m)),
          options(std::move(o)), cancel(std::move(c))
    {
    }
};

/**
 * Bounded MPMC job queue. push() blocks while the queue is at
 * capacity (producer backpressure — the "bounded" in the design);
 * pop() blocks while it is empty and returns false once the queue
 * is stopped *and* drained, so every accepted job is executed
 * before shutdown completes.
 */
class JobQueue
{
  public:
    explicit JobQueue(int capacity)
        : capacity_(static_cast<size_t>(std::max(capacity, 1)))
    {
    }

    void
    push(std::unique_ptr<Job> job)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notFull_.wait(lock, [&] {
            return queue_.size() < capacity_ || stopped_;
        });
        DMS_ASSERT(!stopped_, "push after CompileService shutdown");
        queue_.push_back(std::move(job));
        peak_ = std::max(peak_, queue_.size());
        notEmpty_.notify_one();
    }

    /**
     * Bounded-wait push: false (job untouched beyond the wait)
     * when the queue stayed full for @p maxWaitMs — the load-shed
     * signal. @p maxWaitMs <= 0 polls once.
     */
    bool
    tryPush(std::unique_ptr<Job> &job, int maxWaitMs)
    {
        std::unique_lock<std::mutex> lock(mu_);
        const auto free = [&] {
            return queue_.size() < capacity_ || stopped_;
        };
        if (!notFull_.wait_for(
                lock,
                std::chrono::milliseconds(std::max(maxWaitMs, 0)),
                free))
            return false;
        DMS_ASSERT(!stopped_, "push after CompileService shutdown");
        queue_.push_back(std::move(job));
        peak_ = std::max(peak_, queue_.size());
        notEmpty_.notify_one();
        return true;
    }

    size_t
    capacity() const
    {
        return capacity_;
    }

    bool
    pop(std::unique_ptr<Job> &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock,
                       [&] { return !queue_.empty() || stopped_; });
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        notFull_.notify_one();
        return true;
    }

    void
    stop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopped_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    int
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int>(queue_.size());
    }

    int
    peak() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int>(peak_);
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<std::unique_ptr<Job>> queue_;
    size_t capacity_;
    size_t peak_ = 0;
    bool stopped_ = false;
};

/**
 * The option fields that select a compilation outcome, serialized
 * into the cache key. The MII hint fields (known*Mii) are excluded
 * on purpose: the pipeline overwrites them from its own MII stage,
 * so they cannot change the result. perf is forced on — LoopRun
 * needs it — and is therefore not part of the key either. The
 * analyze switch is likewise excluded: the audit is observational
 * (it panics rather than producing a different result), so analyzed
 * and plain requests must share one cache entry.
 *
 * dms.speculateII is deliberately absent: the speculative and the
 * serial II ladder produce bit-identical artifacts, so requests
 * differing only in that knob must share one entry too.
 */
std::string
optionsKeyPart(const PipelineOptions &po)
{
    return strfmt(
        "sched=%s;unroll=%d;umax=%d;uops=%d;verify=%d;ra=%d;cg=%d;"
        "b.budget=%d;b.maxii=%d;d.budget=%d;d.maxii=%d;"
        "d.restarts=%d;d.chains=%d;d.rule=%d;d.s3=%d",
        po.scheduler.c_str(), po.forceUnroll, po.unrollMaxFactor,
        po.unrollMaxOps, po.verify ? 1 : 0, po.regalloc ? 1 : 0,
        po.codegen ? 1 : 0, po.config.base.budgetRatio,
        po.config.base.maxII, po.config.dms.budgetRatio,
        po.config.dms.maxII, po.config.dms.restartsPerII,
        po.config.dms.enableChains ? 1 : 0,
        static_cast<int>(po.config.dms.chainRule),
        static_cast<int>(po.config.dms.s3Policy));
}

} // namespace

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions opts;
    opts.workers = envInt("DMS_SERVE_WORKERS", opts.workers,
                          /*lo=*/0);
    opts.queueDepth =
        envInt("DMS_SERVE_QUEUE_DEPTH", opts.queueDepth);
    opts.shards = envInt("DMS_SERVE_SHARDS", opts.shards);
    opts.cacheCapacity =
        envInt("DMS_SERVE_CACHE_CAP", opts.cacheCapacity);
    opts.quarantineAfter = envInt("DMS_SERVE_QUARANTINE_AFTER",
                                  opts.quarantineAfter);
    opts.quarantineProbe = envInt("DMS_SERVE_QUARANTINE_PROBE",
                                  opts.quarantineProbe);
    if (const char *ev = std::getenv("DMS_SERVE_EVICT")) {
        if (!evictPolicyFromName(ev, opts.eviction)) {
            warn("DMS_SERVE_EVICT='%s' is not one of "
                 "fifo/lru/cost; using %s",
                 ev, evictPolicyName(opts.eviction));
        }
    }
    return opts;
}

const char *
compileStatusName(CompileStatus status)
{
    switch (status) {
    case CompileStatus::Ok:
        return "ok";
    case CompileStatus::Unschedulable:
        return "unschedulable";
    case CompileStatus::Invalid:
        return "invalid";
    case CompileStatus::Failed:
        return "failed";
    case CompileStatus::Expired:
        return "expired";
    case CompileStatus::Rejected:
        return "rejected";
    case CompileStatus::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

struct CompileService::Impl
{
    explicit Impl(const ServeOptions &o)
        : opts(o), queue(o.queueDepth),
          cache(o.shards, o.cacheCapacity, o.eviction),
          aliases(o.shards, o.cacheCapacity, o.eviction),
          workerCount(o.workers > 0 ? o.workers
                                    : ThreadPool::defaultJobs()),
          requests(metricsReg.counter("serve.requests")),
          hits(metricsReg.counter("serve.hits")),
          coalesced(metricsReg.counter("serve.coalesced")),
          misses(metricsReg.counter("serve.misses")),
          invalid(metricsReg.counter("serve.invalid")),
          failed(metricsReg.counter("serve.failed")),
          expired(metricsReg.counter("serve.expired")),
          shed(metricsReg.counter("serve.shed")),
          quarantined(metricsReg.counter("serve.quarantined")),
          schedAttempts(
              metricsReg.counter("serve.sched_attempts")),
          latenciesMs(metricsReg.histogram("serve.latency_ms"))
    {
        // Honor DMS_FAULTS and DMS_TRACE for any binary hosting a
        // service, so the chaos and tracing surfaces (CI smoke,
        // dmsd) need no plumbing. Idempotent and a no-op when the
        // knobs are unset.
        armFaultsFromEnv();
        obs::armTraceFromEnv();
        workers.reserve(static_cast<size_t>(workerCount));
        for (int w = 0; w < workerCount; ++w)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~Impl()
    {
        queue.stop();
        for (std::thread &t : workers)
            t.join();
    }

    void
    workerLoop()
    {
        // The pooled unit: one CompilationContext per worker, its
        // arenas reused by every request this worker executes.
        CompilationContext ctx;
        std::unique_ptr<Job> job;
        while (queue.pop(job)) {
            execute(*job, ctx);
            job.reset();
        }
    }

    void
    execute(Job &job, CompilationContext &ctx)
    {
        auto result = std::make_shared<CompileResult>();
        result->parsed = true;
        std::shared_ptr<obs::Trace> trace = std::move(job.trace);
        obs::Trace *tr = trace.get();

        // A throwing compile must resolve the request as a
        // structured result, never unwind the worker thread: the
        // catch blocks below are the service's fault boundary.
        const auto t0 = std::chrono::steady_clock::now();
        try {
            // The compile span wraps the whole fault boundary so
            // an injected fault or deadline expiry unwinds through
            // it and marks it failed; CurrentTraceScope lets the
            // schedulers' II-ladder rungs find the trace without
            // plumbing it through every signature.
            obs::ScopedSpan span(tr, "compile");
            obs::CurrentTraceScope tls(tr);
            faultPoint("serve.worker.compile");
            if (job.cancel != nullptr && job.cancel->cancelled())
                throw CancelledError(
                    "deadline expired before compile start");
            Pipeline pipeline(job.options);
            ctx.cancel = job.cancel.get();
            ctx.trace = tr;
            result->run =
                runLoop(pipeline, job.loop, job.machine, ctx);
            ctx.trace = nullptr;
            ctx.cancel = nullptr;
            // ctx.result is this request's scheduler outcome only
            // on the non-throwing path (contexts are reused), so
            // the attempt counter accumulates here.
            schedAttempts.inc(static_cast<std::uint64_t>(
                std::max(ctx.result.sched.attempts, 0)));
            result->ok = result->run.ok;
            result->status = result->ok
                                 ? CompileStatus::Ok
                                 : CompileStatus::Unschedulable;
            if (result->ok && job.options.codegen) {
                result->kernelText = emitPipelinedCode(
                    ctx.scheduledDdg(), job.machine, ctx.kernel,
                    ctx.queuesValid ? &ctx.queues : nullptr);
            }
        } catch (const CancelledError &e) {
            ctx.trace = nullptr;
            ctx.cancel = nullptr;
            result->status = CompileStatus::Expired;
            result->error = e.what();
            if (tr != nullptr)
                tr->failSpan(0, "cancelled");
        } catch (const InjectedFault &e) {
            ctx.trace = nullptr;
            ctx.cancel = nullptr;
            result->status = CompileStatus::Failed;
            result->error = e.what();
            result->failSite = e.site();
            if (tr != nullptr)
                tr->failSpan(0, e.site());
        } catch (const std::exception &e) {
            ctx.trace = nullptr;
            ctx.cancel = nullptr;
            result->status = CompileStatus::Failed;
            result->error = e.what();
            if (tr != nullptr)
                tr->failSpan(0, "exception");
        }

        // Stamp the measured compile latency before the entry
        // becomes visible as ready: the Cost eviction policy ranks
        // ready entries by this value.
        const auto t1 = std::chrono::steady_clock::now();
        job.entry->costMs.store(
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count(),
            std::memory_order_relaxed);

        finishCompile(job.entry, job.key, job.hash,
                      std::move(result));

        if (trace != nullptr) {
            trace->finish();
            obs::TraceLog::instance().commit(std::move(trace));
        }
    }

    /**
     * Resolve @p entry with @p result and do the fault-tolerance
     * bookkeeping: failed/expired counters, poison tracking for
     * the quarantine, and retirement of non-cacheable outcomes so
     * the next same-key request retries instead of deadlocking on
     * a dead future. Shared by workers and the shed/fault paths
     * of submit (which also own an unresolved entry).
     */
    void
    finishCompile(const std::shared_ptr<CacheEntry> &entry,
                  const std::string &key, std::uint64_t hash,
                  std::shared_ptr<CompileResult> result)
    {
        const CompileStatus status = result->status;
        switch (status) {
        case CompileStatus::Failed:
            failed.inc();
            notePoison(key, /*compileFailed=*/true);
            break;
        case CompileStatus::Expired:
            expired.inc();
            notePoison(key, /*compileFailed=*/false);
            break;
        case CompileStatus::Ok:
        case CompileStatus::Unschedulable:
            clearPoison(key);
            break;
        default:
            break;
        }

        const bool cacheable = status == CompileStatus::Ok ||
                               status == CompileStatus::Unschedulable;
        // Publish order matters twice over: failed before ready so
        // no lookup ever classifies a dead entry as a Hit, and
        // ready before set_value so a concurrent acquire() that
        // saw ready==false still blocks on the future — never the
        // other way around.
        if (!cacheable)
            entry->failed.store(true, std::memory_order_release);
        entry->ready.store(true, std::memory_order_release);
        entry->promise.set_value(std::move(result));
        if (!cacheable)
            cache.retire(key, hash, entry);
    }

    /** Consecutive-failure tracking behind the quarantine. */
    struct PoisonState
    {
        int fails = 0;     ///< consecutive Failed compiles
        int rejects = 0;   ///< rejections since (re-)quarantine
        bool quarantined = false;
        bool probe = false; ///< a half-open probe is in flight
    };

    void
    notePoison(const std::string &key, bool compileFailed)
    {
        std::lock_guard<std::mutex> lock(poisonMu);
        PoisonState &p = poison[key];
        p.probe = false;
        if (!compileFailed)
            return; // Expired: not evidence of poison either way.
        if (++p.fails >= opts.quarantineAfter) {
            p.quarantined = true;
            p.rejects = 0;
        }
    }

    void
    clearPoison(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(poisonMu);
        poison.erase(key);
    }

    /**
     * True when @p key is quarantined and this submit should be
     * rejected. Every quarantineProbe-th rejection window instead
     * lets one half-open probe through to re-test the key.
     */
    bool
    quarantineReject(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(poisonMu);
        auto it = poison.find(key);
        if (it == poison.end() || !it->second.quarantined)
            return false;
        PoisonState &p = it->second;
        if (!p.probe && p.rejects >= opts.quarantineProbe) {
            p.probe = true;
            p.rejects = 0;
            return false; // this request is the probe
        }
        ++p.rejects;
        return true;
    }

    ServeOptions opts;
    JobQueue queue;

    /** The authoritative memo map, keyed on canonical text. */
    ResultCache cache;

    /**
     * Raw-spelling aliases into the same entries: a verbatim
     * re-send of a request (the common warm case) resolves here
     * without paying for parse + re-serialization. Both maps are
     * capacity-bounded, so the alias layer is an optimization,
     * never a second source of truth.
     */
    ResultCache aliases;

    int workerCount;
    std::vector<std::thread> workers;

    /**
     * The stats cells, all registered here. Hot paths hold the
     * direct references below — one relaxed fetch_add per count,
     * one wait-free histogram record per latency; no mutex on any
     * request path (the old statsMu + exact Samples store is gone;
     * Samples survives in support/stats.h for tests and the
     * loadgen's client-side percentiles).
     */
    obs::MetricsRegistry metricsReg;
    obs::Counter &requests;
    obs::Counter &hits;
    obs::Counter &coalesced;
    obs::Counter &misses;
    obs::Counter &invalid;
    obs::Counter &failed;
    obs::Counter &expired;
    obs::Counter &shed;
    obs::Counter &quarantined;
    /** Ladder attempts of completed compiles (ims/dms alike). */
    obs::Counter &schedAttempts;
    /** End-to-end compile() latency; fixed memory, lock-free. */
    obs::LatencyHistogram &latenciesMs;

    /**
     * Overload indicator: shed -> true; a push that observes the
     * queue back at half capacity or less -> false.
     */
    std::atomic<bool> degraded{false};

    /** Quarantine state per canonical key. Success erases its
     *  key; persistently failing keys stay resident — bounded by
     *  the number of distinct poison requests seen. */
    std::mutex poisonMu;
    std::unordered_map<std::string, PoisonState> poison;

    Ticket submitImpl(const CompileRequest &request,
                      int shedWaitMs, bool shedding);
};

CompileService::CompileService(ServeOptions opts)
    : impl_(new Impl(opts)), opts_(opts)
{
}

CompileService::~CompileService() = default;

int
CompileService::workers() const
{
    return impl_->workerCount;
}

CompileRequest
makeRequest(const Loop &loop, const MachineModel &machine,
            const PipelineOptions &options)
{
    CompileRequest req;
    req.loopText = loopToText(loop);
    req.machineText = machineToText(machine);
    req.options = options;
    if (req.options.scheduler.empty())
        req.options.scheduler =
            machine.clustered() ? "dms" : "ims";
    return req;
}

namespace {

/**
 * Submit-side validation beyond the non-fatal parsers: every
 * request-derived condition that would reach a fatal()/panic()
 * inside a worker is rejected here as a structured Invalid result
 * instead, so bad data can never take the service down. Returns
 * the rejection reason, or empty when the request is safe.
 */
std::string
validateRequest(const Loop &loop, const MachineModel &machine,
                const PipelineOptions &options)
{
    if (loop.ddg.numOps() == 0)
        return "loop has no operations";
    if (options.forceUnroll < 0 || options.forceUnroll > 1024) {
        return strfmt("forceUnroll %d out of range [0, 1024]",
                      options.forceUnroll);
    }
    if (options.unrollMaxFactor < 1 ||
        options.unrollMaxFactor > 1024) {
        return strfmt("unrollMaxFactor %d out of range [1, 1024]",
                      options.unrollMaxFactor);
    }
    if (options.unrollMaxOps < 1 ||
        options.unrollMaxOps > (1 << 20)) {
        return strfmt("unrollMaxOps %d out of range [1, %d]",
                      options.unrollMaxOps, 1 << 20);
    }
    // resMii panics when the body uses an FU class the machine
    // has zero units of.
    const std::vector<int> counts = loop.ddg.opCountByClass();
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        if (counts[static_cast<size_t>(cls)] > 0 &&
            machine.totalFus(static_cast<FuClass>(cls)) == 0) {
            return strfmt(
                "loop needs %s units but machine '%s' has none",
                fuClassName(static_cast<FuClass>(cls)),
                machine.describe().c_str());
        }
    }
    // On queue machines the single-use prepass inserts Copy ops
    // for multi-use values (and clustered scheduling inserts
    // Moves); both need the copy unit, so a copy-less queue
    // machine would hit the same resMii panic post-prepass.
    if (machine.regFileKind() == RegFileKind::Queues &&
        machine.totalFus(FuClass::Copy) == 0) {
        bool needs_copies = machine.clustered();
        for (OpId id = 0;
             !needs_copies && id < loop.ddg.numOps(); ++id) {
            int uses = 0;
            for (EdgeId e : loop.ddg.op(id).outs) {
                if (loop.ddg.edgeActive(e) &&
                    loop.ddg.edge(e).kind == DepKind::Flow)
                    ++uses;
            }
            needs_copies = uses > 1;
        }
        if (needs_copies) {
            return strfmt("machine '%s' is a queue machine with "
                          "no copy units but the loop needs "
                          "copies",
                          machine.describe().c_str());
        }
    }
    return "";
}

} // namespace

CompileService::Ticket
CompileService::Impl::submitImpl(const CompileRequest &request,
                                 int shedWaitMs, bool shedding)
{
    requests.inc();
    Ticket ticket;

    // Per-request trace, created only when armed (one relaxed
    // load on the disarmed path). The guard commits the finished
    // trace on every return and every throw out of this frame —
    // except when ownership was handed to a worker via the job.
    struct TraceCommit
    {
        std::shared_ptr<obs::Trace> trace;
        ~TraceCommit()
        {
            if (trace != nullptr) {
                trace->finish();
                obs::TraceLog::instance().commit(
                    std::move(trace));
            }
        }
    } commit;
    obs::Trace *tr = nullptr;
    if (obs::traceArmed()) {
        commit.trace = std::make_shared<obs::Trace>();
        tr = commit.trace.get();
        tr->openSpan("request");
    }

    auto immediate = [&](CompileStatus status, std::string why,
                         Source source,
                         std::string failSite = std::string()) {
        auto result = std::make_shared<CompileResult>();
        result->status = status;
        result->parsed = status != CompileStatus::Invalid;
        result->error = std::move(why);
        result->failSite = std::move(failSite);
        std::promise<ResultPtr> p;
        p.set_value(std::move(result));
        ticket.future = p.get_future().share();
        ticket.source = source;
        return ticket;
    };

    // If a submit-path fault fires after this request created the
    // cache entry, the entry must still be resolved and retired —
    // otherwise coalesced waiters hang on a future nobody owns.
    std::shared_ptr<CacheEntry> owned;
    std::string ownedKey;
    std::uint64_t ownedHash = 0;

    try {
        // Fast path: a verbatim repeat of an earlier request
        // resolves through the raw-text alias map without
        // re-parsing anything.
        std::string raw_key = request.loopText;
        raw_key += '\x01';
        raw_key += request.machineText;
        raw_key += '\x01';
        raw_key += optionsKeyPart(request.options);
        const std::uint64_t raw_hash = fnv1a64(raw_key);
        std::shared_ptr<CacheEntry> alias;
        {
            obs::ScopedSpan span(tr, "cache.lookup");
            faultPoint("serve.cache.lookup");
            alias = aliases.find(raw_key, raw_hash);
        }
        if (alias != nullptr) {
            ticket.future = alias->future;
            ticket.key = raw_hash;
            if (alias->ready.load(std::memory_order_acquire)) {
                ticket.source = Source::Hit;
                hits.inc();
            } else {
                ticket.source = Source::Coalesced;
                coalesced.inc();
            }
            return ticket;
        }

        // Reject bad request data without involving a worker: a
        // worker-side fatal() would take down the whole service,
        // so everything data-dependent — both texts, the
        // scheduler choice, and the pipeline-reachable panics
        // (validateRequest) — is answered with an error result.
        auto reject = [&](std::string why) -> Ticket {
            invalid.inc();
            return immediate(CompileStatus::Invalid,
                             std::move(why), Source::Invalid);
        };

        // Canonicalize: parse both texts and re-serialize, so
        // every spelling of the same request (comments,
        // whitespace, id gaps) lands on the same cache key. The
        // machine is parsed first: flow-edge latencies in the
        // loop format come from a latency model at parse time,
        // and the machine's (which machineToText round-trips,
        // overrides included) is the one the request names — the
        // direct pipeline sees the same edges as long as the loop
        // was built against the same model.
        std::string error;
        MachineModel machine = MachineModel::unclustered(1);
        if (!machineFromText(request.machineText, machine, error))
            return reject(std::move(error));
        Loop loop;
        if (!loopFromText(request.loopText, loop, error,
                          machine.latency()))
            return reject(std::move(error));

        PipelineOptions options = request.options;
        if (options.scheduler.empty())
            options.scheduler =
                machine.clustered() ? "dms" : "ims";
        std::unique_ptr<Scheduler> sched =
            SchedulerRegistry::instance().create(options.scheduler);
        if (sched == nullptr) {
            return reject(strfmt("unknown scheduler '%s'",
                                 options.scheduler.c_str()));
        }
        if (!sched->supports(machine)) {
            return reject(strfmt(
                "scheduler '%s' does not support machine '%s'",
                options.scheduler.c_str(),
                machine.describe().c_str()));
        }
        std::string invalid_reason =
            validateRequest(loop, machine, options);
        if (!invalid_reason.empty())
            return reject(std::move(invalid_reason));
        // LoopRun extraction needs the perf stage; force it so a
        // caller's perf=false cannot produce an unusable cached
        // entry.
        options.perf = true;

        std::string key = loopToText(loop);
        key += '\x01';
        key += machineToText(machine);
        key += '\x01';
        key += optionsKeyPart(options);
        ticket.key = fnv1a64(key);

        if (quarantineReject(key)) {
            quarantined.inc();
            return immediate(
                CompileStatus::Quarantined,
                strfmt("key quarantined after %d consecutive "
                       "failures",
                       opts.quarantineAfter),
                Source::Quarantined);
        }

        std::shared_ptr<CacheEntry> entry;
        ResultCache::Lookup found;
        {
            obs::ScopedSpan span(tr, "cache.insert");
            found = cache.acquire(key, ticket.key, entry);
            ticket.future = entry->future;
            if (found == ResultCache::Lookup::Inserted) {
                owned = entry;
                ownedKey = key;
                ownedHash = ticket.key;
            }
            faultPoint("serve.cache.insert");
            aliases.insertAlias(raw_key, raw_hash, entry);
        }
        switch (found) {
        case ResultCache::Lookup::Hit:
            ticket.source = Source::Hit;
            hits.inc();
            return ticket;
        case ResultCache::Lookup::InFlight:
            ticket.source = Source::Coalesced;
            coalesced.inc();
            return ticket;
        case ResultCache::Lookup::Inserted:
            break;
        }
        ticket.source = Source::Miss;
        misses.inc();

        std::shared_ptr<CancelToken> cancel;
        if (request.deadlineMs > 0) {
            cancel = std::make_shared<CancelToken>();
            cancel->setDeadline(
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(request.deadlineMs));
            ticket.cancel = cancel;
        }
        std::unique_ptr<Job> job(
            new Job(entry, key, ticket.key, std::move(loop),
                    std::move(machine), std::move(options),
                    std::move(cancel)));

        {
            // The span closes before the handoff below: once the
            // job is in the queue a worker may own the trace, so
            // this thread must not touch it afterwards.
            obs::ScopedSpan span(tr, "queue.push");
            faultPoint("serve.queue.push");
        }
        job->trace = std::move(commit.trace);
        bool pushed = true;
        if (shedding)
            pushed = queue.tryPush(job, shedWaitMs);
        else
            queue.push(std::move(job));
        if (!pushed) {
            // Shed. The entry this request created must resolve
            // (coalesced waiters!) and retire so the next request
            // for the key retries. The unconsumed job hands the
            // trace back for this thread to commit.
            commit.trace = std::move(job->trace);
            if (tr != nullptr)
                tr->failSpan(0, "shed");
            shed.inc();
            degraded.store(true, std::memory_order_release);
            auto result = std::make_shared<CompileResult>();
            result->status = CompileStatus::Rejected;
            result->parsed = true;
            result->error = strfmt(
                "queue full (%d deep): request shed after %d ms",
                opts.queueDepth, std::max(shedWaitMs, 0));
            finishCompile(entry, key, ticket.key,
                          std::move(result));
            ticket.source = Source::Rejected;
            return ticket;
        }
        if (degraded.load(std::memory_order_relaxed) &&
            queue.depth() * 2 <= opts.queueDepth)
            degraded.store(false, std::memory_order_release);
        return ticket;
    } catch (const InjectedFault &e) {
        if (tr != nullptr)
            tr->failSpan(0, e.site());
        if (owned != nullptr) {
            auto result = std::make_shared<CompileResult>();
            result->status = CompileStatus::Failed;
            result->parsed = true;
            result->error = e.what();
            result->failSite = e.site();
            finishCompile(owned, ownedKey, ownedHash,
                          std::move(result));
            ticket.future = owned->future;
            ticket.source = Source::Failed;
            return ticket;
        }
        failed.inc();
        return immediate(CompileStatus::Failed, e.what(),
                         Source::Failed, e.site());
    } catch (const CancelledError &e) {
        if (tr != nullptr)
            tr->failSpan(0, "cancelled");
        if (owned != nullptr) {
            auto result = std::make_shared<CompileResult>();
            result->status = CompileStatus::Expired;
            result->parsed = true;
            result->error = e.what();
            finishCompile(owned, ownedKey, ownedHash,
                          std::move(result));
            ticket.future = owned->future;
            ticket.source = Source::Expired;
            return ticket;
        }
        expired.inc();
        return immediate(CompileStatus::Expired, e.what(),
                         Source::Expired);
    }
}

CompileService::Ticket
CompileService::submit(const CompileRequest &request)
{
    return impl_->submitImpl(request, /*shedWaitMs=*/0,
                             /*shedding=*/false);
}

CompileService::Ticket
CompileService::trySubmit(const CompileRequest &request,
                          int maxWaitMs)
{
    return impl_->submitImpl(request, maxWaitMs,
                             /*shedding=*/true);
}

CompileService::ResultPtr
CompileService::compile(const CompileRequest &request)
{
    auto t0 = std::chrono::steady_clock::now();
    Ticket ticket = submit(request);
    ResultPtr result;
    if (request.deadlineMs > 0 &&
        ticket.future.wait_until(
            t0 + std::chrono::milliseconds(request.deadlineMs)) ==
            std::future_status::timeout) {
        // Client-side expiry: fire the compile's token (the
        // worker stops at the next stage boundary and retires the
        // entry) and answer this caller right now.
        if (ticket.cancel != nullptr)
            ticket.cancel->cancel();
        auto expired = std::make_shared<CompileResult>();
        expired->status = CompileStatus::Expired;
        expired->parsed = true;
        expired->error = strfmt("deadline of %d ms exceeded",
                                request.deadlineMs);
        impl_->expired.inc();
        result = std::move(expired);
    } else {
        result = ticket.future.get();
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    // Wait-free: one bucket fetch_add, no lock, no allocation.
    impl_->latenciesMs.record(ms);
    return result;
}

void
CompileService::recordLatencyMs(double ms)
{
    impl_->latenciesMs.record(ms);
}

ServeStats
CompileService::stats() const
{
    ServeStats out;
    // The whole snapshot is relaxed atomic reads — no lock is
    // taken and no sample store is copied, so concurrent
    // compile()/submit() traffic never stalls on a stats poll
    // (the stats_snapshot_ns bench row measures this). The
    // histogram is swept before the counters so its sample count
    // can never exceed the request count it is compared against.
    const obs::HistogramSnapshot latencies =
        impl_->latenciesMs.snapshot();
    out.requests = impl_->requests.value();
    out.hits = impl_->hits.value();
    out.coalesced = impl_->coalesced.value();
    out.misses = impl_->misses.value();
    out.invalid = impl_->invalid.value();
    out.failed = impl_->failed.value();
    out.expired = impl_->expired.value();
    out.shed = impl_->shed.value();
    out.quarantined = impl_->quarantined.value();
    out.rejected = out.shed + out.quarantined;
    out.latencySamples = latencies.count;
    out.p50Ms = latencies.percentile(50);
    out.p90Ms = latencies.percentile(90);
    out.p99Ms = latencies.percentile(99);
    out.maxMs = latencies.maxMs;
    out.meanMs = latencies.mean();
    out.evictions = impl_->cache.evictions() +
                    impl_->aliases.evictions();
    out.retired =
        impl_->cache.retired() + impl_->aliases.retired();
    out.cached = impl_->cache.size();
    out.degraded = impl_->degraded.load(std::memory_order_relaxed);
    out.queueDepth = impl_->queue.depth();
    out.peakQueueDepth = impl_->queue.peak();
    out.queueCapacity = opts_.queueDepth;
    return out;
}

obs::MetricsSnapshot
CompileService::metrics() const
{
    // The registry sweeps its histograms before its counters, so
    // serve.latency_ms.count <= serve.requests holds even against
    // concurrent recording — the identity obs.metrics-consistency
    // lints.
    obs::MetricsSnapshot snap = impl_->metricsReg.snapshot();
    snap.addCounter("cache.evictions",
                    impl_->cache.evictions() +
                        impl_->aliases.evictions());
    snap.addCounter("cache.retired", impl_->cache.retired() +
                                         impl_->aliases.retired());
    snap.addGauge("cache.entries",
                  static_cast<double>(impl_->cache.size()));
    snap.addGauge("serve.degraded",
                  impl_->degraded.load(std::memory_order_relaxed)
                      ? 1.0
                      : 0.0);
    snap.addGauge("serve.queue_depth",
                  static_cast<double>(impl_->queue.depth()));
    snap.addGauge("serve.queue_depth_peak",
                  static_cast<double>(impl_->queue.peak()));
    snap.addGauge("serve.queue_capacity",
                  static_cast<double>(opts_.queueDepth));
    for (const FaultSiteStats &f : faultStats()) {
        snap.addCounter("fault." + f.site + ".hits", f.hits);
        snap.addCounter("fault." + f.site + ".fired", f.fired);
    }
    snap.sortByName();
    return snap;
}

std::string
serveStatsToText(const ServeStats &stats)
{
    std::string out = "servestats v1\n";
    const auto line = [&out](const char *key, std::uint64_t v) {
        out += strfmt("%s %llu\n", key,
                      static_cast<unsigned long long>(v));
    };
    line("requests", stats.requests);
    line("hits", stats.hits);
    line("coalesced", stats.coalesced);
    line("misses", stats.misses);
    line("invalid", stats.invalid);
    line("failed", stats.failed);
    line("expired", stats.expired);
    line("shed", stats.shed);
    line("quarantined", stats.quarantined);
    line("rejected", stats.rejected);
    line("evictions", stats.evictions);
    line("retired", stats.retired);
    line("cached", stats.cached);
    line("degraded", stats.degraded ? 1 : 0);
    line("queue_depth",
         static_cast<std::uint64_t>(std::max(stats.queueDepth, 0)));
    line("peak_queue_depth",
         static_cast<std::uint64_t>(
             std::max(stats.peakQueueDepth, 0)));
    line("queue_capacity",
         static_cast<std::uint64_t>(
             std::max(stats.queueCapacity, 0)));
    line("net_connections", stats.netConnections);
    line("net_requests", stats.netRequests);
    line("net_framing_rejects", stats.netFramingRejects);
    line("net_bytes_in", stats.netBytesIn);
    line("net_bytes_out", stats.netBytesOut);
    return out;
}

bool
serveStatsFromText(const std::string &text, ServeStats &stats,
                   std::string &error)
{
    ServeStats parsed;
    const std::vector<std::string> lines = split(text, '\n');
    size_t i = 0;
    while (i < lines.size() && trim(lines[i]).empty())
        ++i;
    if (i >= lines.size() || trim(lines[i]) != "servestats v1") {
        error = "missing 'servestats v1' header";
        return false;
    }
    int lineno = static_cast<int>(i) + 1;
    for (++i; i < lines.size(); ++i) {
        ++lineno;
        const std::string line = trim(lines[i]);
        if (line.empty() || line[0] == '#')
            continue;
        const size_t sp = line.find(' ');
        if (sp == std::string::npos) {
            error = strfmt("line %d: want 'key value'", lineno);
            return false;
        }
        const std::string key = line.substr(0, sp);
        const std::string value = trim(line.substr(sp + 1));
        int v = 0;
        if (!parseInt(value, v)) {
            error = strfmt("line %d: bad value '%s' for '%s'",
                           lineno, value.c_str(), key.c_str());
            return false;
        }
        const std::uint64_t u = static_cast<std::uint64_t>(v);
        if (key == "requests") {
            parsed.requests = u;
        } else if (key == "hits") {
            parsed.hits = u;
        } else if (key == "coalesced") {
            parsed.coalesced = u;
        } else if (key == "misses") {
            parsed.misses = u;
        } else if (key == "invalid") {
            parsed.invalid = u;
        } else if (key == "failed") {
            parsed.failed = u;
        } else if (key == "expired") {
            parsed.expired = u;
        } else if (key == "shed") {
            parsed.shed = u;
        } else if (key == "quarantined") {
            parsed.quarantined = u;
        } else if (key == "rejected") {
            parsed.rejected = u;
        } else if (key == "evictions") {
            parsed.evictions = u;
        } else if (key == "retired") {
            parsed.retired = u;
        } else if (key == "cached") {
            parsed.cached = u;
        } else if (key == "degraded") {
            parsed.degraded = u != 0;
        } else if (key == "queue_depth") {
            parsed.queueDepth = static_cast<int>(v);
        } else if (key == "peak_queue_depth") {
            parsed.peakQueueDepth = static_cast<int>(v);
        } else if (key == "queue_capacity") {
            parsed.queueCapacity = static_cast<int>(v);
        } else if (key == "net_connections") {
            parsed.netConnections = u;
        } else if (key == "net_requests") {
            parsed.netRequests = u;
        } else if (key == "net_framing_rejects") {
            parsed.netFramingRejects = u;
        } else if (key == "net_bytes_in") {
            parsed.netBytesIn = u;
        } else if (key == "net_bytes_out") {
            parsed.netBytesOut = u;
        } else {
            error = strfmt("line %d: unknown key '%s'", lineno,
                           key.c_str());
            return false;
        }
    }
    stats = parsed;
    return true;
}

} // namespace dms
