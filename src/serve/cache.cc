#include "serve/cache.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ResultCache::ResultCache(int shards, int capacity)
    : shards_(static_cast<size_t>(std::max(shards, 1)))
{
    int n = static_cast<int>(shards_.size());
    perShardCap_ = std::max(1, (std::max(capacity, 1) + n - 1) / n);
}

/**
 * Over capacity: drop the oldest *ready* entry. In-flight entries
 * are pinned — evicting one would let a duplicate request start a
 * second compilation of the same key. Caller holds the shard lock.
 */
void
ResultCache::evictIfFull(Shard &shard)
{
    if (shard.entries.size() < static_cast<size_t>(perShardCap_))
        return;
    for (auto oit = shard.order.begin(); oit != shard.order.end();
         ++oit) {
        auto eit = shard.entries.find(*oit);
        DMS_ASSERT(eit != shard.entries.end(),
                   "cache order entry without map entry");
        if (eit->second->ready.load(std::memory_order_acquire)) {
            shard.entries.erase(eit);
            shard.order.erase(oit);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
}

ResultCache::Lookup
ResultCache::acquire(const std::string &key, std::uint64_t hash,
                     std::shared_ptr<CacheEntry> &entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);

    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        entry = it->second;
        return entry->ready.load(std::memory_order_acquire)
                   ? Lookup::Hit
                   : Lookup::InFlight;
    }

    evictIfFull(shard);
    entry = std::make_shared<CacheEntry>();
    shard.entries.emplace(key, entry);
    shard.order.push_back(key);
    return Lookup::Inserted;
}

std::shared_ptr<CacheEntry>
ResultCache::find(const std::string &key, std::uint64_t hash) const
{
    const Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    return it == shard.entries.end() ? nullptr : it->second;
}

void
ResultCache::insertAlias(const std::string &key, std::uint64_t hash,
                         std::shared_ptr<CacheEntry> entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.count(key))
        return;
    evictIfFull(shard);
    shard.entries.emplace(key, std::move(entry));
    shard.order.push_back(key);
}

std::uint64_t
ResultCache::size() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

} // namespace dms
