#include "serve/cache.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ResultCache::ResultCache(int shards, int capacity)
    : shards_(static_cast<size_t>(std::max(shards, 1)))
{
    int n = static_cast<int>(shards_.size());
    perShardCap_ = std::max(1, (std::max(capacity, 1) + n - 1) / n);
}

/** Erase @p key from both the map and the FIFO order deque. */
void
ResultCache::eraseLocked(Shard &shard, const std::string &key)
{
    auto eit = shard.entries.find(key);
    DMS_ASSERT(eit != shard.entries.end(),
               "cache erase of absent key");
    shard.entries.erase(eit);
    auto oit =
        std::find(shard.order.begin(), shard.order.end(), key);
    DMS_ASSERT(oit != shard.order.end(),
               "cache map entry without order entry");
    shard.order.erase(oit);
}

/**
 * Over capacity: drop the oldest droppable entry — failed entries
 * (dead aliases of retired compiles, counted under retired()) or
 * ready ones (a real capacity eviction). In-flight entries are
 * pinned — evicting one would let a duplicate request start a
 * second compilation of the same key. Caller holds the shard lock.
 */
void
ResultCache::evictIfFull(Shard &shard)
{
    if (shard.entries.size() < static_cast<size_t>(perShardCap_))
        return;
    for (auto oit = shard.order.begin(); oit != shard.order.end();
         ++oit) {
        auto eit = shard.entries.find(*oit);
        DMS_ASSERT(eit != shard.entries.end(),
                   "cache order entry without map entry");
        if (eit->second->failed.load(std::memory_order_acquire)) {
            shard.entries.erase(eit);
            shard.order.erase(oit);
            retired_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (eit->second->ready.load(std::memory_order_acquire)) {
            shard.entries.erase(eit);
            shard.order.erase(oit);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
}

ResultCache::Lookup
ResultCache::acquire(const std::string &key, std::uint64_t hash,
                     std::shared_ptr<CacheEntry> &entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);

    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        if (it->second->failed.load(std::memory_order_acquire)) {
            // Lazy reclamation: the resident entry's compile
            // failed, so this request retries with a fresh entry.
            eraseLocked(shard, key);
            retired_.fetch_add(1, std::memory_order_relaxed);
        } else {
            entry = it->second;
            return entry->ready.load(std::memory_order_acquire)
                       ? Lookup::Hit
                       : Lookup::InFlight;
        }
    }

    evictIfFull(shard);
    entry = std::make_shared<CacheEntry>();
    shard.entries.emplace(key, entry);
    shard.order.push_back(key);
    return Lookup::Inserted;
}

std::shared_ptr<CacheEntry>
ResultCache::find(const std::string &key, std::uint64_t hash) const
{
    const Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() ||
        it->second->failed.load(std::memory_order_acquire))
        return nullptr;
    return it->second;
}

void
ResultCache::retire(const std::string &key, std::uint64_t hash,
                    const std::shared_ptr<CacheEntry> &entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    // Identity compare: a retrying request may already have
    // replaced the slot with a fresh entry we must not clobber
    // (and acquire may have lazily reclaimed this one already).
    if (it == shard.entries.end() || it->second != entry)
        return;
    eraseLocked(shard, key);
    retired_.fetch_add(1, std::memory_order_relaxed);
}

void
ResultCache::insertAlias(const std::string &key, std::uint64_t hash,
                         std::shared_ptr<CacheEntry> entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.count(key))
        return;
    evictIfFull(shard);
    shard.entries.emplace(key, std::move(entry));
    shard.order.push_back(key);
}

std::uint64_t
ResultCache::size() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

} // namespace dms
