#include "serve/cache.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

const char *
evictPolicyName(EvictPolicy policy)
{
    switch (policy) {
    case EvictPolicy::Fifo:
        return "fifo";
    case EvictPolicy::Lru:
        return "lru";
    case EvictPolicy::Cost:
        return "cost";
    }
    return "fifo";
}

bool
evictPolicyFromName(std::string_view name, EvictPolicy &out)
{
    if (name == "fifo") {
        out = EvictPolicy::Fifo;
        return true;
    }
    if (name == "lru") {
        out = EvictPolicy::Lru;
        return true;
    }
    if (name == "cost") {
        out = EvictPolicy::Cost;
        return true;
    }
    return false;
}

ResultCache::ResultCache(int shards, int capacity,
                         EvictPolicy policy)
    : shards_(static_cast<size_t>(std::max(shards, 1))),
      policy_(policy)
{
    int n = static_cast<int>(shards_.size());
    perShardCap_ = std::max(1, (std::max(capacity, 1) + n - 1) / n);
}

/** Erase @p key from both the map and the order list. */
void
ResultCache::eraseLocked(Shard &shard, const std::string &key)
{
    auto eit = shard.entries.find(key);
    DMS_ASSERT(eit != shard.entries.end(),
               "cache erase of absent key");
    shard.order.erase(eit->second.pos);
    shard.entries.erase(eit);
}

/**
 * Refresh @p slot's recency. Only the Lru policy keeps the order
 * list access-ordered; Fifo and Cost leave it in insertion order
 * (Cost ranks by measured latency and uses position only as a
 * tiebreak). Caller holds the shard lock.
 */
void
ResultCache::touchLocked(Shard &shard, Slot &slot)
{
    if (policy_ != EvictPolicy::Lru)
        return;
    shard.order.splice(shard.order.end(), shard.order, slot.pos);
}

/**
 * Over capacity: drop one droppable entry. Failed entries (dead
 * aliases of retired compiles, counted under retired()) always go
 * first regardless of policy — they are garbage, not cached value.
 * Otherwise the victim among ready entries is chosen by policy:
 * Fifo/Lru take the front of the order list (insertion order vs
 * access order), Cost scans for the minimum measured compile
 * latency. In-flight entries are pinned — evicting one would let a
 * duplicate request start a second compilation of the same key.
 * Caller holds the shard lock.
 */
void
ResultCache::evictIfFull(Shard &shard)
{
    if (shard.entries.size() < static_cast<size_t>(perShardCap_))
        return;

    auto victim = shard.order.end();
    double victimCost = 0.0;
    for (auto oit = shard.order.begin(); oit != shard.order.end();
         ++oit) {
        auto eit = shard.entries.find(*oit);
        DMS_ASSERT(eit != shard.entries.end(),
                   "cache order entry without map entry");
        const CacheEntry &e = *eit->second.entry;
        if (e.failed.load(std::memory_order_acquire)) {
            shard.entries.erase(eit);
            shard.order.erase(oit);
            retired_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (!e.ready.load(std::memory_order_acquire))
            continue; // in-flight: pinned
        if (policy_ != EvictPolicy::Cost) {
            // Fifo and Lru both want the frontmost droppable
            // entry; the policies differ only in how accesses
            // reorder the list.
            victim = oit;
            break;
        }
        double cost = e.costMs.load(std::memory_order_relaxed);
        if (victim == shard.order.end() || cost < victimCost) {
            victim = oit;
            victimCost = cost;
        }
    }
    if (victim == shard.order.end())
        return; // everything in-flight; transiently over cap
    shard.entries.erase(*victim);
    shard.order.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
}

ResultCache::Lookup
ResultCache::acquire(const std::string &key, std::uint64_t hash,
                     std::shared_ptr<CacheEntry> &entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);

    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        if (it->second.entry->failed.load(
                std::memory_order_acquire)) {
            // Lazy reclamation: the resident entry's compile
            // failed, so this request retries with a fresh entry.
            eraseLocked(shard, key);
            retired_.fetch_add(1, std::memory_order_relaxed);
        } else {
            entry = it->second.entry;
            touchLocked(shard, it->second);
            return entry->ready.load(std::memory_order_acquire)
                       ? Lookup::Hit
                       : Lookup::InFlight;
        }
    }

    evictIfFull(shard);
    entry = std::make_shared<CacheEntry>();
    auto pos = shard.order.insert(shard.order.end(), key);
    shard.entries.emplace(key, Slot{entry, pos});
    return Lookup::Inserted;
}

std::shared_ptr<CacheEntry>
ResultCache::find(const std::string &key, std::uint64_t hash)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() ||
        it->second.entry->failed.load(std::memory_order_acquire))
        return nullptr;
    touchLocked(shard, it->second);
    return it->second.entry;
}

void
ResultCache::retire(const std::string &key, std::uint64_t hash,
                    const std::shared_ptr<CacheEntry> &entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    // Identity compare: a retrying request may already have
    // replaced the slot with a fresh entry we must not clobber
    // (and acquire may have lazily reclaimed this one already).
    if (it == shard.entries.end() || it->second.entry != entry)
        return;
    eraseLocked(shard, key);
    retired_.fetch_add(1, std::memory_order_relaxed);
}

void
ResultCache::insertAlias(const std::string &key, std::uint64_t hash,
                         std::shared_ptr<CacheEntry> entry)
{
    Shard &shard = shards_[hash % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.count(key))
        return;
    evictIfFull(shard);
    auto pos = shard.order.insert(shard.order.end(), key);
    shard.entries.emplace(key, Slot{std::move(entry), pos});
}

std::uint64_t
ResultCache::size() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

} // namespace dms
