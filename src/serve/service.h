#ifndef DMS_SERVE_SERVICE_H
#define DMS_SERVE_SERVICE_H

/**
 * @file
 * Compilation-as-a-service: a long-lived CompileService that turns
 * the one-shot staged pipeline into a request/response system.
 *
 *   - Requests carry the *textual* formats the repo already speaks:
 *     a loop in workload/text form and a machine in machine/desc
 *     form, plus pipeline options. That makes requests storable,
 *     diffable, and transport-agnostic.
 *   - A bounded MPMC queue feeds a pool of worker threads; each
 *     worker owns one CompilationContext, so arenas (body graph,
 *     scheduler worklists, reservation tables) are reused across
 *     requests exactly like the evaluation runner reuses them
 *     across matrix cells.
 *   - Results are memoized in a sharded cache keyed by the FNV hash
 *     of the canonical request text (loopToText/machineToText
 *     round-trips plus the option fields). Identical in-flight
 *     requests coalesce onto one compilation (single-flight);
 *     identical later requests are pure lookups returning the
 *     bit-identical cached result.
 *
 * The service is the unit the ROADMAP's "serve-style batching"
 * item asked for: the evaluation runner can route whole sweeps
 * through it (RunnerOptions::service), dmsd serves scripts or a
 * generated load against it, and bench/serve_throughput measures
 * its warm-vs-cold throughput.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "eval/runner.h"
#include "serve/cache.h"
#include "support/stats.h"

namespace dms {

/** Service shape knobs; every field has a DMS_SERVE_* env twin. */
struct ServeOptions
{
    /** Worker threads; 0 picks ThreadPool::defaultJobs(). */
    int workers = 0;

    /** Bounded request-queue capacity (submitters block when full). */
    int queueDepth = 256;

    /** Result-cache shard count. */
    int shards = 8;

    /** Result-cache capacity (ready entries across all shards). */
    int cacheCapacity = 4096;

    /**
     * Environment overrides via the strict parse path (garbage,
     * trailing junk and overflow rejected with a warning):
     * DMS_SERVE_WORKERS, DMS_SERVE_QUEUE_DEPTH, DMS_SERVE_SHARDS,
     * DMS_SERVE_CACHE_CAP.
     */
    static ServeOptions fromEnv();
};

/** One compilation request in the shared text formats. */
struct CompileRequest
{
    std::string loopText;    ///< workload/text format
    std::string machineText; ///< machine/desc format

    /**
     * Pipeline configuration. An empty scheduler name resolves to
     * "dms" on clustered machines and "ims" otherwise (the dmsc
     * default). The MII hint fields are ignored for keying — the
     * pipeline recomputes them per compile.
     */
    PipelineOptions options;
};

/** What the service returns (and caches) for one request. */
struct CompileResult
{
    /**
     * False when the request was rejected before compilation:
     * malformed loop or machine text, an unknown scheduler name,
     * or a scheduler that does not support the machine. Rejected
     * requests are never cached.
     */
    bool parsed = false;

    /** Rejection reason when !parsed ("line N: ..."). */
    std::string error;

    /** Schedule found (meaningful only when parsed). */
    bool ok = false;

    /** The sweep-cell summary, identical to the direct-path run. */
    LoopRun run;

    /**
     * Full pipelined code (emitPipelinedCode) when the request had
     * codegen enabled and scheduling succeeded; empty otherwise.
     */
    std::string kernelText;
};

/** Point-in-time service counters. */
struct ServeStats
{
    std::uint64_t requests = 0;  ///< submits, including invalid
    std::uint64_t hits = 0;      ///< served from the cache
    std::uint64_t coalesced = 0; ///< joined an in-flight compile
    std::uint64_t misses = 0;    ///< cold compilations started
    std::uint64_t invalid = 0;   ///< requests that failed to parse
    std::uint64_t evictions = 0; ///< cache entries dropped
    std::uint64_t cached = 0;    ///< entries resident right now

    int queueDepth = 0;     ///< requests waiting right now
    int peakQueueDepth = 0; ///< high-water mark

    /** @name End-to-end compile() latency (milliseconds) */
    /// @{
    std::uint64_t latencySamples = 0;
    double p50Ms = 0;
    double p90Ms = 0;
    double p99Ms = 0;
    double maxMs = 0;
    double meanMs = 0;
    /// @}

    double
    hitRate() const
    {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(hits + coalesced) /
                         static_cast<double>(requests);
    }
};

/**
 * The long-lived compile server. Thread-safe: any number of client
 * threads may submit()/compile() concurrently. Destruction drains
 * the queue (every accepted request is answered) and joins the
 * workers.
 */
class CompileService
{
  public:
    using ResultPtr = std::shared_ptr<const CompileResult>;

    /** How a submit resolved against the cache. */
    enum class Source : std::uint8_t {
        Miss,      ///< cold: this request started a compilation
        Coalesced, ///< duplicate of an in-flight compilation
        Hit,       ///< served from the cache
        Invalid,   ///< request text failed to parse (not cached)
    };

    /** Handle for an accepted request. */
    struct Ticket
    {
        std::shared_future<ResultPtr> future;
        Source source = Source::Miss;

        /**
         * FNV hash of the cache key that resolved this request —
         * the canonical key, or the raw-spelling alias key on the
         * fast path. A diagnostic for logs, not a correlation id:
         * two spellings of one request can carry different
         * hashes (0 for Invalid).
         */
        std::uint64_t key = 0;
    };

    explicit CompileService(ServeOptions opts = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Asynchronous entry point: canonicalize, consult the cache,
     * and (on a miss) enqueue the compilation. Blocks only while
     * the bounded queue is full.
     */
    Ticket submit(const CompileRequest &request);

    /**
     * Synchronous entry point: submit() then wait. Records the
     * end-to-end latency into the stats.
     */
    ResultPtr compile(const CompileRequest &request);

    /** Snapshot of the counters and latency percentiles. */
    ServeStats stats() const;

    const ServeOptions &options() const { return opts_; }

    /** Resolved worker count (>= 1). */
    int workers() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    ServeOptions opts_;
};

/**
 * Build the canonical service request for one (loop, machine,
 * options) cell — the exact texts and resolved scheduler name the
 * cache keys on. Shared by the runner routing and the tests.
 */
CompileRequest makeRequest(const Loop &loop,
                           const MachineModel &machine,
                           const PipelineOptions &options);

} // namespace dms

#endif // DMS_SERVE_SERVICE_H
