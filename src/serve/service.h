#ifndef DMS_SERVE_SERVICE_H
#define DMS_SERVE_SERVICE_H

/**
 * @file
 * Compilation-as-a-service: a long-lived CompileService that turns
 * the one-shot staged pipeline into a request/response system.
 *
 *   - Requests carry the *textual* formats the repo already speaks:
 *     a loop in workload/text form and a machine in machine/desc
 *     form, plus pipeline options. That makes requests storable,
 *     diffable, and transport-agnostic.
 *   - A bounded MPMC queue feeds a pool of worker threads; each
 *     worker owns one CompilationContext, so arenas (body graph,
 *     scheduler worklists, reservation tables) are reused across
 *     requests exactly like the evaluation runner reuses them
 *     across matrix cells.
 *   - Results are memoized in a sharded cache keyed by the FNV hash
 *     of the canonical request text (loopToText/machineToText
 *     round-trips plus the option fields). Identical in-flight
 *     requests coalesce onto one compilation (single-flight);
 *     identical later requests are pure lookups returning the
 *     bit-identical cached result.
 *
 * The service is the unit the ROADMAP's "serve-style batching"
 * item asked for: the evaluation runner can route whole sweeps
 * through it (RunnerOptions::service), dmsd serves scripts or a
 * generated load against it, and bench/serve_throughput measures
 * its warm-vs-cold throughput.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "eval/runner.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "support/stats.h"

namespace dms {

/** Service shape knobs; every field has a DMS_SERVE_* env twin. */
struct ServeOptions
{
    /** Worker threads; 0 picks ThreadPool::defaultJobs(). */
    int workers = 0;

    /** Bounded request-queue capacity (submitters block when full). */
    int queueDepth = 256;

    /** Result-cache shard count. */
    int shards = 8;

    /** Result-cache capacity (ready entries across all shards). */
    int cacheCapacity = 4096;

    /**
     * Poison quarantine: a canonical key whose compile fails this
     * many consecutive times is quarantined — further submits get
     * an immediate Quarantined rejection instead of a recompile.
     */
    int quarantineAfter = 3;

    /**
     * After this many quarantined rejections of a key, one
     * half-open probe compile is allowed through; success clears
     * the quarantine, failure re-arms the rejection window.
     */
    int quarantineProbe = 16;

    /**
     * Result-cache eviction policy (see EvictPolicy): fifo keeps
     * insertion order, lru keeps access order, cost keeps the
     * entries that were most expensive to compile (measured
     * compile latency). Applies to both the canonical cache and
     * the raw-text alias map.
     */
    EvictPolicy eviction = EvictPolicy::Fifo;

    /**
     * Environment overrides via the strict parse path (garbage,
     * trailing junk and overflow rejected with a warning):
     * DMS_SERVE_WORKERS, DMS_SERVE_QUEUE_DEPTH, DMS_SERVE_SHARDS,
     * DMS_SERVE_CACHE_CAP, DMS_SERVE_QUARANTINE_AFTER,
     * DMS_SERVE_QUARANTINE_PROBE, and
     * DMS_SERVE_EVICT={fifo,lru,cost} (unknown names warn and
     * keep the default).
     */
    static ServeOptions fromEnv();
};

/** One compilation request in the shared text formats. */
struct CompileRequest
{
    std::string loopText;    ///< workload/text format
    std::string machineText; ///< machine/desc format

    /**
     * Pipeline configuration. An empty scheduler name resolves to
     * "dms" on clustered machines and "ims" otherwise (the dmsc
     * default). The MII hint fields are ignored for keying — the
     * pipeline recomputes them per compile.
     */
    PipelineOptions options;

    /**
     * Deadline budget in milliseconds; 0 means none. The deadline
     * is a *client* property, excluded from the cache key: the
     * worker polls it at pipeline stage boundaries (an expired
     * compile resolves as Expired and is retired from the cache),
     * and compile() waits at most this long before synthesizing an
     * Expired result for this caller.
     */
    int deadlineMs = 0;
};

/** Terminal status of a request; exactly one per request. */
enum class CompileStatus : std::uint8_t {
    Ok,            ///< schedule found; run/kernelText valid
    Unschedulable, ///< pipeline ran, II search hit its cap (cached)
    Invalid,       ///< request text/options failed validation
    Failed,        ///< compile threw (fault or bug); retried later
    Expired,       ///< deadline passed before a result
    Rejected,      ///< load shed: queue stayed full past the wait
    Quarantined,   ///< poisoned key rejected without a recompile
};

/** Lowercase status name, e.g. "quarantined". */
const char *compileStatusName(CompileStatus status);

/** What the service returns (and caches) for one request. */
struct CompileResult
{
    /** The terminal status; every other field derives from it. */
    CompileStatus status = CompileStatus::Invalid;

    /**
     * False when the request was rejected before compilation:
     * malformed loop or machine text, an unknown scheduler name,
     * or a scheduler that does not support the machine. Rejected
     * requests are never cached. (Kept alongside status for the
     * pre-fault-tolerance callers: parsed == status != Invalid.)
     */
    bool parsed = false;

    /** Failure reason for every non-Ok status ("line N: ..."). */
    std::string error;

    /**
     * The fault site that killed the compile, for Failed results
     * produced by an injected fault; empty otherwise.
     */
    std::string failSite;

    /** Schedule found: ok == (status == Ok). */
    bool ok = false;

    /** The sweep-cell summary, identical to the direct-path run. */
    LoopRun run;

    /**
     * Full pipelined code (emitPipelinedCode) when the request had
     * codegen enabled and scheduling succeeded; empty otherwise.
     */
    std::string kernelText;
};

/** Point-in-time service counters. */
struct ServeStats
{
    std::uint64_t requests = 0;  ///< submits, including invalid
    std::uint64_t hits = 0;      ///< served from the cache
    std::uint64_t coalesced = 0; ///< joined an in-flight compile
    std::uint64_t misses = 0;    ///< cold compilations started
    std::uint64_t invalid = 0;   ///< requests that failed to parse
    std::uint64_t evictions = 0; ///< ready entries dropped (cap)
    std::uint64_t cached = 0;    ///< entries resident right now

    /** @name Fault-tolerance counters */
    /// @{
    std::uint64_t failed = 0;  ///< compiles resolved Failed
    std::uint64_t expired = 0; ///< deadline expiries (Expired)
    std::uint64_t shed = 0;    ///< trySubmit queue-full rejections
    std::uint64_t quarantined = 0; ///< poisoned-key rejections
    std::uint64_t rejected = 0;    ///< shed + quarantined
    std::uint64_t retired = 0; ///< failed cache entries reclaimed

    /**
     * Sticky-ish overload indicator: set when a request is shed,
     * cleared when a push observes the queue at half capacity or
     * less. Clients may use it to back off preemptively.
     */
    bool degraded = false;
    /// @}

    int queueDepth = 0;     ///< requests waiting right now
    int peakQueueDepth = 0; ///< high-water mark
    int queueCapacity = 0;  ///< configured bound (ServeOptions)

    /** @name Network front-end counters (zero without --listen) */
    /// @{
    std::uint64_t netConnections = 0; ///< TCP connections accepted
    std::uint64_t netRequests = 0;    ///< request lines received
    /**
     * Request lines that failed wire-format framing. Every framing
     * reject is also submitted to the service as an (unparseable)
     * request, so netFramingRejects <= invalid — the lint
     * identity dmslint audits.
     */
    std::uint64_t netFramingRejects = 0;
    std::uint64_t netBytesIn = 0;  ///< request bytes read
    std::uint64_t netBytesOut = 0; ///< response bytes written
    /// @}

    /** @name End-to-end compile() latency (milliseconds) */
    /// @{
    std::uint64_t latencySamples = 0;
    double p50Ms = 0;
    double p90Ms = 0;
    double p99Ms = 0;
    double maxMs = 0;
    double meanMs = 0;
    /// @}

    double
    hitRate() const
    {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(hits + coalesced) /
                         static_cast<double>(requests);
    }
};

/**
 * The long-lived compile server. Thread-safe: any number of client
 * threads may submit()/compile() concurrently. Destruction drains
 * the queue (every accepted request is answered) and joins the
 * workers.
 */
class CompileService
{
  public:
    using ResultPtr = std::shared_ptr<const CompileResult>;

    /** How a submit resolved against the cache. */
    enum class Source : std::uint8_t {
        Miss,      ///< cold: this request started a compilation
        Coalesced, ///< duplicate of an in-flight compilation
        Hit,       ///< served from the cache
        Invalid,   ///< request text failed to parse (not cached)
        Rejected,  ///< shed: queue stayed full past the wait
        Quarantined, ///< poisoned key, rejected without compiling
        Failed,    ///< submit-path fault; immediate Failed result
        Expired,   ///< submit-path cancel; immediate Expired result
    };

    /** Handle for an accepted request. */
    struct Ticket
    {
        std::shared_future<ResultPtr> future;
        Source source = Source::Miss;

        /**
         * FNV hash of the cache key that resolved this request —
         * the canonical key, or the raw-spelling alias key on the
         * fast path. A diagnostic for logs, not a correlation id:
         * two spellings of one request can carry different
         * hashes (0 for Invalid).
         */
        std::uint64_t key = 0;

        /**
         * The compile's cancellation token when this submit
         * started one (Source::Miss with a deadline); compile()
         * fires it when the client-side wait times out so the
         * worker stops burning on an abandoned request.
         */
        std::shared_ptr<CancelToken> cancel;
    };

    explicit CompileService(ServeOptions opts = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Asynchronous entry point: canonicalize, consult the cache,
     * and (on a miss) enqueue the compilation. Blocks only while
     * the bounded queue is full.
     */
    Ticket submit(const CompileRequest &request);

    /**
     * Load-shedding submit: like submit(), but waits at most
     * @p maxWaitMs for queue space and resolves the request as a
     * structured Rejected result when the queue stays full —
     * bounded latency under overload instead of unbounded
     * blocking. @p maxWaitMs <= 0 sheds immediately when full.
     */
    Ticket trySubmit(const CompileRequest &request, int maxWaitMs);

    /**
     * Synchronous entry point: submit() then wait. Records the
     * end-to-end latency into the stats.
     */
    ResultPtr compile(const CompileRequest &request);

    /**
     * Record one end-to-end request latency into the serving
     * histogram. compile() calls it for in-process requests; the
     * network front-end calls it per request line, so the stats
     * and metrics verbs report wire latencies too. Wait-free.
     */
    void recordLatencyMs(double ms);

    /** Snapshot of the counters and latency percentiles. */
    ServeStats stats() const;

    /**
     * Full metrics snapshot ("dmsmetrics v1" via metricsToText):
     * every serve.* counter, the serve.latency_ms histogram, the
     * queue/cache gauges, the scheduler-attempt counter, and one
     * fault.<site>.{hits,fired} counter pair per observed fault
     * site. Lock-free sweep of the same cells stats() reads.
     */
    obs::MetricsSnapshot metrics() const;

    const ServeOptions &options() const { return opts_; }

    /** Resolved worker count (>= 1). */
    int workers() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    ServeOptions opts_;
};

/**
 * Build the canonical service request for one (loop, machine,
 * options) cell — the exact texts and resolved scheduler name the
 * cache keys on. Shared by the runner routing and the tests.
 */
CompileRequest makeRequest(const Loop &loop,
                           const MachineModel &machine,
                           const PipelineOptions &options);

/**
 * Serialize a stats snapshot into the "servestats v1" text format
 * (one "key value" line per field) — the artifact dmslint's
 * serve.stats-consistency checker audits.
 */
std::string serveStatsToText(const ServeStats &stats);

/**
 * Parse the "servestats v1" format back. Unknown keys, bad values
 * and a missing header are errors; absent fields keep defaults.
 */
bool serveStatsFromText(const std::string &text, ServeStats &stats,
                        std::string &error);

} // namespace dms

#endif // DMS_SERVE_SERVICE_H
