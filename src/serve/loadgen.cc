#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "workload/suite.h"
#include "workload/text.h"

namespace dms {

ZipfPicker::ZipfPicker(size_t n, double exponent) : cum_(n)
{
    for (size_t i = 0; i < n; ++i) {
        mass_ += 1.0 /
                 std::pow(static_cast<double>(i) + 1.0, exponent);
        cum_[i] = mass_;
    }
}

size_t
ZipfPicker::pick(Rng &rng) const
{
    double u = rng.uniform() * mass_;
    size_t i = 0;
    while (i + 1 < cum_.size() && cum_[i] < u)
        ++i;
    return i;
}

std::vector<std::string>
hotKernelTexts()
{
    std::vector<std::string> out;
    for (const Loop &k : namedKernels())
        out.push_back(loopToText(k));
    return out;
}

std::string
coldLoopText(std::uint64_t seed, int index)
{
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL +
                    static_cast<std::uint64_t>(index) * 31337));
    SynthParams params;
    return loopToText(synthesizeLoop(rng, params, index));
}

HammerResult
hammerService(
    CompileService &service, int total, int clients,
    const std::string &machineText, const std::string &scheduler,
    std::uint64_t seed,
    const std::function<std::string(int, Rng &)> &makeLoop)
{
    std::atomic<int> dispatched{0};
    std::atomic<int> failures{0};
    std::mutex latency_mu;
    Samples latencies;
    auto t0 = std::chrono::steady_clock::now();
    auto client = [&](int tid) {
        Rng rng(seed + static_cast<std::uint64_t>(tid) * 104729);
        Samples local;
        while (true) {
            int i = dispatched.fetch_add(1);
            if (i >= total)
                break;
            CompileRequest req;
            req.loopText = makeLoop(i, rng);
            req.machineText = machineText;
            req.options.scheduler = scheduler;
            req.options.regalloc = true;
            auto r0 = std::chrono::steady_clock::now();
            CompileService::ResultPtr result =
                service.compile(req);
            local.add(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - r0)
                          .count());
            if (!result->parsed || !result->ok)
                failures.fetch_add(1);
        }
        std::lock_guard<std::mutex> lock(latency_mu);
        latencies.merge(local);
    };
    std::vector<std::thread> threads;
    int n = std::max(clients, 1);
    threads.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(client, t);
    for (std::thread &t : threads)
        t.join();

    HammerResult out;
    out.requests = total;
    out.failures = failures.load();
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.p50Ms = latencies.percentile(50);
    out.p90Ms = latencies.percentile(90);
    out.p99Ms = latencies.percentile(99);
    out.maxMs = latencies.max();
    return out;
}

} // namespace dms
