#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "serve/net.h"
#include "support/diag.h"
#include "workload/suite.h"
#include "workload/text.h"

namespace dms {

ZipfPicker::ZipfPicker(size_t n, double exponent) : cum_(n)
{
    for (size_t i = 0; i < n; ++i) {
        mass_ += 1.0 /
                 std::pow(static_cast<double>(i) + 1.0, exponent);
        cum_[i] = mass_;
    }
}

size_t
ZipfPicker::pick(Rng &rng) const
{
    double u = rng.uniform() * mass_;
    size_t i = 0;
    while (i + 1 < cum_.size() && cum_[i] < u)
        ++i;
    return i;
}

std::vector<std::string>
hotKernelTexts()
{
    std::vector<std::string> out;
    for (const Loop &k : namedKernels())
        out.push_back(loopToText(k));
    return out;
}

std::string
coldLoopText(std::uint64_t seed, int index)
{
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL +
                    static_cast<std::uint64_t>(index) * 31337));
    SynthParams params;
    return loopToText(synthesizeLoop(rng, params, index));
}

int
RetryPolicy::delayMs(int attempt, Rng &rng) const
{
    double base = static_cast<double>(std::max(backoffBaseMs, 0));
    for (int i = 0; i < attempt && base < backoffMaxMs; ++i)
        base *= 2;
    base = std::min(base, static_cast<double>(
                              std::max(backoffMaxMs, 0)));
    // Deterministic jitter in [0.5, 1.0): spreads synchronized
    // retry herds without losing reproducibility per client rng.
    return static_cast<int>(base * (0.5 + rng.uniform() * 0.5));
}

namespace {

/**
 * Wait a ticket out, honoring the deadline the same way
 * CompileService::compile does: fire the compile's cancel token
 * and synthesize Expired when the budget runs out first.
 */
CompileService::ResultPtr
awaitTicket(CompileService::Ticket &ticket, int deadlineMs,
            std::chrono::steady_clock::time_point t0)
{
    if (deadlineMs > 0 &&
        ticket.future.wait_until(
            t0 + std::chrono::milliseconds(deadlineMs)) ==
            std::future_status::timeout) {
        if (ticket.cancel != nullptr)
            ticket.cancel->cancel();
        auto expired = std::make_shared<CompileResult>();
        expired->status = CompileStatus::Expired;
        expired->parsed = true;
        expired->error =
            strfmt("deadline of %d ms exceeded", deadlineMs);
        return expired;
    }
    return ticket.future.get();
}

} // namespace

CompileService::ResultPtr
compileWithRetry(CompileService &service, CompileRequest request,
                 const RetryPolicy &policy, Rng &rng, int *retries)
{
    request.deadlineMs = policy.deadlineMs;
    CompileService::ResultPtr result;
    for (int attempt = 0;; ++attempt) {
        auto t0 = std::chrono::steady_clock::now();
        if (policy.submitWaitMs >= 0) {
            CompileService::Ticket ticket =
                service.trySubmit(request, policy.submitWaitMs);
            result = awaitTicket(ticket, policy.deadlineMs, t0);
        } else {
            result = service.compile(request);
        }
        if (attempt + 1 >= std::max(policy.maxAttempts, 1) ||
            !policy.shouldRetry(result->status))
            return result;
        if (retries != nullptr)
            ++*retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            policy.delayMs(attempt, rng)));
    }
}

HammerResult
hammerService(
    CompileService &service, int total, int clients,
    const std::string &machineText, const std::string &scheduler,
    std::uint64_t seed,
    const std::function<std::string(int, Rng &)> &makeLoop,
    const RetryPolicy &policy)
{
    std::atomic<int> dispatched{0};
    std::atomic<int> failures{0};
    std::atomic<int> retries{0};
    std::atomic<int> by_status[7] = {};
    std::mutex latency_mu;
    Samples latencies;
    auto t0 = std::chrono::steady_clock::now();
    auto client = [&](int tid) {
        Rng rng(seed + static_cast<std::uint64_t>(tid) * 104729);
        Samples local;
        int local_retries = 0;
        while (true) {
            int i = dispatched.fetch_add(1);
            if (i >= total)
                break;
            CompileRequest req;
            req.loopText = makeLoop(i, rng);
            req.machineText = machineText;
            req.options.scheduler = scheduler;
            req.options.regalloc = true;
            auto r0 = std::chrono::steady_clock::now();
            CompileService::ResultPtr result = compileWithRetry(
                service, req, policy, rng, &local_retries);
            local.add(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - r0)
                          .count());
            by_status[static_cast<size_t>(result->status)]
                .fetch_add(1);
            if (!result->parsed || !result->ok)
                failures.fetch_add(1);
        }
        retries.fetch_add(local_retries);
        std::lock_guard<std::mutex> lock(latency_mu);
        latencies.merge(local);
    };
    std::vector<std::thread> threads;
    int n = std::max(clients, 1);
    threads.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(client, t);
    for (std::thread &t : threads)
        t.join();

    HammerResult out;
    out.requests = total;
    out.failures = failures.load();
    out.retries = retries.load();
    for (size_t s = 0; s < 7; ++s)
        out.byStatus[s] = by_status[s].load();
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.p50Ms = latencies.percentile(50);
    out.p90Ms = latencies.percentile(90);
    out.p99Ms = latencies.percentile(99);
    out.maxMs = latencies.max();
    return out;
}

HammerResult
hammerNetwork(
    const std::string &host, int port, int total, int clients,
    const std::string &machineText, const std::string &scheduler,
    std::uint64_t seed,
    const std::function<std::string(int, Rng &)> &makeLoop,
    const RetryPolicy &policy, int connectTimeoutMs)
{
    std::atomic<int> dispatched{0};
    std::atomic<int> failures{0};
    std::atomic<int> retries{0};
    std::atomic<int> by_status[7] = {};
    std::mutex latency_mu;
    Samples latencies;
    auto t0 = std::chrono::steady_clock::now();
    auto client = [&](int tid) {
        Rng rng(seed + static_cast<std::uint64_t>(tid) * 104729);
        Samples local;
        int local_retries = 0;
        NetClient net;
        std::string err;
        net.connect(host, port, connectTimeoutMs, err);
        while (true) {
            int i = dispatched.fetch_add(1);
            if (i >= total)
                break;
            CompileRequest req;
            req.loopText = makeLoop(i, rng);
            req.machineText = machineText;
            req.options.scheduler = scheduler;
            req.options.regalloc = true;
            req.deadlineMs = policy.deadlineMs;
            auto r0 = std::chrono::steady_clock::now();
            CompileResult result;
            for (int attempt = 0;; ++attempt) {
                if (!net.connected())
                    net.connect(host, port, connectTimeoutMs,
                                err);
                if (!net.compile(req, result, err)) {
                    // Transport failure (refused, EOF from an
                    // injected serve.net.* fault, garbled
                    // response): a retryable Failed, with a
                    // reconnect on the next attempt.
                    result = CompileResult();
                    result.status = CompileStatus::Failed;
                    result.parsed = true;
                    result.error = "transport: " + err;
                }
                if (attempt + 1 >=
                        std::max(policy.maxAttempts, 1) ||
                    !policy.shouldRetry(result.status))
                    break;
                ++local_retries;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        policy.delayMs(attempt, rng)));
            }
            local.add(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - r0)
                          .count());
            by_status[static_cast<size_t>(result.status)]
                .fetch_add(1);
            if (!result.parsed || !result.ok)
                failures.fetch_add(1);
        }
        retries.fetch_add(local_retries);
        std::lock_guard<std::mutex> lock(latency_mu);
        latencies.merge(local);
    };
    std::vector<std::thread> threads;
    int n = std::max(clients, 1);
    threads.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(client, t);
    for (std::thread &t : threads)
        t.join();

    HammerResult out;
    out.requests = total;
    out.failures = failures.load();
    out.retries = retries.load();
    for (size_t s = 0; s < 7; ++s)
        out.byStatus[s] = by_status[s].load();
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.p50Ms = latencies.percentile(50);
    out.p90Ms = latencies.percentile(90);
    out.p99Ms = latencies.percentile(99);
    out.maxMs = latencies.max();
    return out;
}

} // namespace dms
