#include "sim/exec.h"

#include <algorithm>
#include <deque>

#include "codegen/kernel.h"
#include "sim/value.h"
#include "support/diag.h"

namespace dms {

namespace {

/** One value travelling down a queue. */
struct Token
{
    long iter = 0; ///< consumer-side iteration it belongs to
    std::uint64_t value = 0;
};

/** A result due to appear in queues at a future cycle. */
struct Delivery
{
    long cycle = 0;
    EdgeId edge = kInvalidEdge;
    Token token;
};

} // namespace

SimResult
simulateSchedule(const Ddg &ddg, const MachineModel &machine,
                 const PartialSchedule &ps, long body_iters)
{
    (void)machine;
    SimResult res;
    DMS_ASSERT(body_iters >= 1, "need at least one iteration");
    const int ii = ps.ii();
    const int f = ddg.unrollFactor();

    auto complain = [&](std::string s) {
        if (res.problems.size() < 16)
            res.problems.push_back(std::move(s));
    };

    // Queues: one per active flow edge. Pre-load live-in tokens for
    // loop-carried lifetimes (distance d: consumer iterations
    // 0..d-1 read producer instances from before the loop).
    std::vector<std::deque<Token>> queues(
        static_cast<size_t>(ddg.numEdges()));
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeActive(e) ||
            ddg.edge(e).kind != DepKind::Flow) {
            continue;
        }
        const Edge &ed = ddg.edge(e);
        const Operation &src = ddg.op(ed.src);
        for (int k = 0; k < ed.distance; ++k) {
            long src_iter = k - ed.distance; // negative
            queues[static_cast<size_t>(e)].push_back(
                {k, liveInValue(src.origId,
                                src_iter * f + src.iterOffset)});
        }
    }

    // Issue table: ops per kernel row.
    PipelinedLoop loop = buildPipelinedLoop(ddg, ps);
    const long total_cycles = loop.cyclesFor(body_iters);
    res.cycles = total_cycles;

    // Deliveries bucketed by cycle.
    std::vector<std::vector<Delivery>> pending(
        static_cast<size_t>(total_cycles + 64));

    long occupancy = 0;
    for (const auto &q : queues)
        occupancy += static_cast<long>(q.size());
    res.maxQueueOccupancy = static_cast<int>(occupancy);

    for (long t = 0; t < total_cycles; ++t) {
        // 1. Deliver results that become available this cycle
        //    (consumable the same cycle: latency exactly met).
        for (const Delivery &d :
             pending[static_cast<size_t>(t)]) {
            queues[static_cast<size_t>(d.edge)].push_back(d.token);
            ++occupancy;
        }
        res.maxQueueOccupancy = std::max(
            res.maxQueueOccupancy, static_cast<int>(occupancy));
        pending[static_cast<size_t>(t)].clear();

        // 2. Issue the ops of kernel row (t mod II) whose iteration
        //    index is in range.
        for (const KernelSlot &slot :
             loop.rows[static_cast<size_t>(t % ii)]) {
            const Operation &op = ddg.op(slot.op);
            Cycle t0 = ps.timeOf(slot.op);
            if (t < t0 || (t - t0) % ii != 0)
                continue;
            long iter = (t - t0) / ii;
            if (iter >= body_iters)
                continue;
            long orig_iter = iter * f + op.iterOffset;

            std::uint64_t in[2] = {invariantOperand(op.origId, 0),
                                   invariantOperand(op.origId, 1)};
            for (EdgeId e : ddg.flowInputs(slot.op)) {
                const Edge &ed = ddg.edge(e);
                if (ed.replaced)
                    continue;
                auto &q = queues[static_cast<size_t>(e)];
                if (q.empty()) {
                    complain(strfmt(
                        "cycle %ld: %s iter %ld: queue of edge "
                        "%d empty (value not yet available)",
                        t, ddg.opLabel(slot.op).c_str(), iter, e));
                    continue;
                }
                Token tok = q.front();
                q.pop_front();
                --occupancy;
                if (tok.iter != iter) {
                    complain(strfmt(
                        "cycle %ld: %s popped token for iter %ld "
                        "while executing iter %ld (FIFO order "
                        "broken)",
                        t, ddg.opLabel(slot.op).c_str(), tok.iter,
                        iter));
                }
                in[ed.operandIndex] = tok.value;
            }

            std::uint64_t result =
                evalOp(op, in[0], in[1], orig_iter);

            if (op.opc == Opcode::Store) {
                res.log.records.push_back(
                    {op.origId, orig_iter, result});
                continue;
            }

            // Push into every consumer queue when available.
            long avail = t + ps.machine().latencyOf(op.opc);
            for (EdgeId e : ddg.op(slot.op).outs) {
                const Edge &ed = ddg.edge(e);
                if (!ddg.edgeActive(e) ||
                    ed.kind != DepKind::Flow) {
                    continue;
                }
                long cons_iter = iter + ed.distance;
                if (cons_iter >= body_iters)
                    continue; // consumer instance never runs
                if (avail <
                    static_cast<long>(pending.size())) {
                    pending[static_cast<size_t>(avail)].push_back(
                        {avail, e, {cons_iter, result}});
                }
            }
        }
    }

    // Leftover tokens: values produced for consumer instances that
    // did run but were never popped would be a bug; tokens for
    // instances beyond body_iters were filtered above.
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeActive(e) ||
            ddg.edge(e).kind != DepKind::Flow) {
            continue;
        }
        for (const Token &tok : queues[static_cast<size_t>(e)]) {
            if (tok.iter < body_iters) {
                complain(strfmt("edge %d: unread token for iter %ld",
                                e, tok.iter));
            }
        }
    }

    res.log.sort();
    res.ok = res.problems.empty();
    return res;
}

std::vector<std::string>
simulateAndCheck(const Ddg &ddg, const MachineModel &machine,
                 const PartialSchedule &ps, long body_iters)
{
    SimResult sim = simulateSchedule(ddg, machine, ps, body_iters);
    std::vector<std::string> problems = sim.problems;
    StoreLog ref = referenceExecute(ddg, body_iters);
    for (auto &p : compareStoreLogs(ref, sim.log))
        problems.push_back(std::move(p));
    return problems;
}

} // namespace dms
