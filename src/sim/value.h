#ifndef DMS_SIM_VALUE_H
#define DMS_SIM_VALUE_H

/**
 * @file
 * Deterministic value semantics for loop operations. Loads return a
 * pure function of (memory stream, original iteration index), so
 * the sequential reference interpreter and the pipelined simulator
 * can be compared value-for-value across unrolling, the copy
 * pre-pass, and DMS chain insertion.
 */

#include <cstdint>

#include "ir/ddg.h"

namespace dms {

/** 64-bit mixing of up to three keys (SplitMix finalizer). */
std::uint64_t mix64(std::uint64_t a, std::uint64_t b = 0,
                    std::uint64_t c = 0);

/**
 * Value a Load yields: f(stream, original iteration + offset).
 */
std::uint64_t loadValue(int mem_stream, long orig_iter,
                        int mem_offset);

/**
 * Live-in value of a lifetime whose producer instance lies before
 * iteration 0 — "whatever the register held at loop entry", chosen
 * deterministically from the producer's original identity so both
 * executions agree.
 */
std::uint64_t liveInValue(OpId orig_id, long orig_iter);

/**
 * Loop-invariant operand for an input slot no flow edge feeds.
 */
std::uint64_t invariantOperand(OpId orig_id, int slot);

/**
 * Execute one operation instance. @p in0 / @p in1 are the operand
 * values (pass invariantOperand for unfed slots); @p orig_iter is
 * the original iteration index of this instance.
 */
std::uint64_t evalOp(const Operation &op, std::uint64_t in0,
                     std::uint64_t in1, long orig_iter);

} // namespace dms

#endif // DMS_SIM_VALUE_H
