#include "sim/value.h"

#include "support/diag.h"

namespace dms {

std::uint64_t
mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t z = a * 0x9e3779b97f4a7c15ULL + b;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL + c;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
loadValue(int mem_stream, long orig_iter, int mem_offset)
{
    return mix64(0x10adULL,
                 static_cast<std::uint64_t>(mem_stream) + 1,
                 static_cast<std::uint64_t>(orig_iter + mem_offset +
                                            (1L << 20)));
}

std::uint64_t
liveInValue(OpId orig_id, long orig_iter)
{
    return mix64(0x11feULL, static_cast<std::uint64_t>(orig_id) + 1,
                 static_cast<std::uint64_t>(orig_iter + (1L << 20)));
}

std::uint64_t
invariantOperand(OpId orig_id, int slot)
{
    return mix64(0x1a7aULL, static_cast<std::uint64_t>(orig_id) + 1,
                 static_cast<std::uint64_t>(slot) + 1);
}

std::uint64_t
evalOp(const Operation &op, std::uint64_t in0, std::uint64_t in1,
       long orig_iter)
{
    switch (op.opc) {
      case Opcode::Load:
        return loadValue(op.memStream, orig_iter, op.memOffset);
      case Opcode::Const:
        return static_cast<std::uint64_t>(op.literal);
      case Opcode::Add:
        return in0 + in1;
      case Opcode::Sub:
        return in0 - in1;
      case Opcode::Mul:
        return in0 * in1;
      case Opcode::Div:
        return in0 / (in1 | 1);
      case Opcode::Copy:
      case Opcode::Move:
      case Opcode::Store:
        return in0;
      default:
        break;
    }
    panic("evalOp: bad opcode %d", static_cast<int>(op.opc));
}

} // namespace dms
