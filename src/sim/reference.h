#ifndef DMS_SIM_REFERENCE_H
#define DMS_SIM_REFERENCE_H

/**
 * @file
 * Sequential reference interpreter: executes a DDG iteration by
 * iteration in dependence order and logs every stored value. The
 * log is the ground truth the pipelined simulator is checked
 * against (and transforms are checked to preserve).
 */

#include <string>
#include <vector>

#include "ir/ddg.h"

namespace dms {

/** One stored value, keyed by original identity. */
struct StoreRecord
{
    OpId origStore = kInvalidOp; ///< origId of the store op
    long origIter = 0;           ///< original iteration index
    std::uint64_t value = 0;

    bool
    operator<(const StoreRecord &o) const
    {
        if (origStore != o.origStore)
            return origStore < o.origStore;
        return origIter < o.origIter;
    }
    bool
    operator==(const StoreRecord &o) const
    {
        return origStore == o.origStore && origIter == o.origIter &&
               value == o.value;
    }
};

/** Sorted log of stored values. */
struct StoreLog
{
    std::vector<StoreRecord> records;

    void sort();

    /** Records with origIter < limit (for unroll comparisons). */
    StoreLog truncated(long limit) const;
};

/**
 * Execute @p body_iters iterations of the (possibly unrolled /
 * transformed) body. Values of producer instances before iteration
 * 0 come from liveInValue(); unfed operand slots from
 * invariantOperand(). The returned log is sorted.
 */
StoreLog referenceExecute(const Ddg &ddg, long body_iters);

/**
 * Compare two sorted logs; returns human-readable mismatches
 * (empty = identical).
 */
std::vector<std::string> compareStoreLogs(const StoreLog &expected,
                                          const StoreLog &actual);

} // namespace dms

#endif // DMS_SIM_REFERENCE_H
