#include "sim/reference.h"

#include <algorithm>

#include "ir/verify.h"
#include "sim/value.h"
#include "support/diag.h"

namespace dms {

void
StoreLog::sort()
{
    std::sort(records.begin(), records.end());
}

StoreLog
StoreLog::truncated(long limit) const
{
    StoreLog out;
    for (const StoreRecord &r : records) {
        if (r.origIter < limit)
            out.records.push_back(r);
    }
    return out;
}

StoreLog
referenceExecute(const Ddg &ddg, long body_iters)
{
    const int f = ddg.unrollFactor();
    const std::vector<OpId> topo = topoOrderZeroDistance(ddg);

    // Ring buffer of the last (max distance + 1) iterations of
    // every op's value.
    int max_dist = 0;
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (ddg.edgeActive(e))
            max_dist = std::max(max_dist, ddg.edge(e).distance);
    }
    const int window = max_dist + 1;
    std::vector<std::vector<std::uint64_t>> ring(
        static_cast<size_t>(ddg.numOps()),
        std::vector<std::uint64_t>(static_cast<size_t>(window), 0));

    StoreLog log;
    for (long i = 0; i < body_iters; ++i) {
        for (OpId id : topo) {
            const Operation &op = ddg.op(id);
            long orig_iter = i * f + op.iterOffset;

            std::uint64_t in[2] = {invariantOperand(op.origId, 0),
                                   invariantOperand(op.origId, 1)};
            for (EdgeId e : ddg.flowInputs(id)) {
                const Edge &ed = ddg.edge(e);
                if (ed.replaced)
                    continue;
                long src_iter = i - ed.distance;
                const Operation &src = ddg.op(ed.src);
                std::uint64_t v;
                if (src_iter < 0) {
                    v = liveInValue(src.origId,
                                    src_iter * f + src.iterOffset);
                } else {
                    v = ring[static_cast<size_t>(ed.src)]
                            [static_cast<size_t>(src_iter % window)];
                }
                in[ed.operandIndex] = v;
            }

            std::uint64_t result =
                evalOp(op, in[0], in[1], orig_iter);
            ring[static_cast<size_t>(id)]
                [static_cast<size_t>(i % window)] = result;

            if (op.opc == Opcode::Store) {
                log.records.push_back(
                    {op.origId, orig_iter, result});
            }
        }
    }
    log.sort();
    return log;
}

std::vector<std::string>
compareStoreLogs(const StoreLog &expected, const StoreLog &actual)
{
    std::vector<std::string> problems;
    if (expected.records.size() != actual.records.size()) {
        problems.push_back(strfmt("store count differs: %zu vs %zu",
                                  expected.records.size(),
                                  actual.records.size()));
    }
    size_t n = std::min(expected.records.size(),
                        actual.records.size());
    for (size_t i = 0; i < n; ++i) {
        const StoreRecord &a = expected.records[i];
        const StoreRecord &b = actual.records[i];
        if (!(a == b)) {
            problems.push_back(
                strfmt("record %zu: expected (store%d, iter%ld, "
                       "%016llx), got (store%d, iter%ld, %016llx)",
                       i, a.origStore, a.origIter,
                       static_cast<unsigned long long>(a.value),
                       b.origStore, b.origIter,
                       static_cast<unsigned long long>(b.value)));
            if (problems.size() > 8)
                break;
        }
    }
    return problems;
}

} // namespace dms
