#ifndef DMS_SIM_EXEC_H
#define DMS_SIM_EXEC_H

/**
 * @file
 * Cycle-accurate execution of a modulo schedule on the clustered
 * machine. Every active flow edge is one FIFO queue (LRF or CQRF
 * after queue allocation); producers push results when they become
 * available, consumers pop at issue. The simulator checks the
 * queue discipline the hardware relies on — values arrive in
 * iteration order, are available by the consumer's issue cycle,
 * and are read exactly once — and logs every stored value for
 * comparison against the sequential reference interpreter.
 */

#include <string>
#include <vector>

#include "machine/machine.h"
#include "sched/schedule.h"
#include "sim/reference.h"

namespace dms {

/** Result of simulating a pipelined loop. */
struct SimResult
{
    bool ok = false;

    /** Cycles executed: (iterations + SC - 1) * II. */
    long cycles = 0;

    /** Values stored, sorted like the reference log. */
    StoreLog log;

    /** FIFO / availability violations (empty when ok). */
    std::vector<std::string> problems;

    /** Peak entries across all edge queues (occupancy check). */
    int maxQueueOccupancy = 0;
};

/**
 * Execute @p body_iters iterations of the scheduled loop.
 * @p ps must be a complete legal schedule of @p ddg.
 */
SimResult simulateSchedule(const Ddg &ddg,
                           const MachineModel &machine,
                           const PartialSchedule &ps,
                           long body_iters);

/**
 * Convenience: simulate and compare against the reference
 * interpreter run on the same DDG. Returns all problems (empty =
 * end-to-end correct).
 */
std::vector<std::string> simulateAndCheck(const Ddg &ddg,
                                          const MachineModel &machine,
                                          const PartialSchedule &ps,
                                          long body_iters);

} // namespace dms

#endif // DMS_SIM_EXEC_H
