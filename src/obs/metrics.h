#ifndef DMS_OBS_METRICS_H
#define DMS_OBS_METRICS_H

/**
 * @file
 * The metrics registry: named counters, gauges and latency
 * histograms behind one canonical text format ("dmsmetrics v1"),
 * the same round-trip discipline as serveStatsToText.
 *
 * Cells are registered once (service construction, single-
 * threaded) and then touched lock-free: a Counter::inc is one
 * relaxed fetch_add, a Gauge::set one relaxed store, a histogram
 * record one wait-free LatencyHistogram::record. The registry
 * mutex only guards registration and snapshotting, never a hot
 * increment — hot paths hold direct references to their cells.
 *
 * Text format (strict parse, versioned header, "line N:" errors):
 *
 *     dmsmetrics v1
 *     counter serve.requests 128
 *     gauge serve.queue_depth 3
 *     histogram serve.latency_ms count=128 sum=512.25 max=9.5 \
 *         buckets=161:3,162:125
 *
 * (The histogram line is one physical line; buckets are
 * index:count pairs of the non-empty LatencyHistogram buckets.)
 * Doubles print as %.17g so metricsToText(metricsFromText(t)) is
 * byte-identical for canonical @p t. dmslint's
 * obs.metrics-consistency checker audits the conservation laws
 * (per-histogram sum(buckets) == count, latency samples never
 * exceeding serve.requests).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace dms {
namespace obs {

/** Monotone event counter; inc() is one relaxed fetch_add. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Point-in-time level; set() is one relaxed store. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Plain-data copy of every registered cell, sorted by name. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        std::uint64_t value = 0;
    };
    struct GaugeValue
    {
        std::string name;
        double value = 0.0;
    };
    struct HistogramValue
    {
        std::string name;
        HistogramSnapshot hist;
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /** Append helpers for derived values (cache, fault, net). */
    void addCounter(std::string name, std::uint64_t value);
    void addGauge(std::string name, double value);
    void addHistogram(std::string name, HistogramSnapshot hist);

    /** Sort every section by name (the canonical order). */
    void sortByName();

    /** Pointer into counters by name; null when absent. */
    const CounterValue *findCounter(const std::string &name) const;
    const HistogramValue *
    findHistogram(const std::string &name) const;
};

/**
 * Owner of the live cells. Registration returns stable references
 * (cells never move once created); re-registering a name returns
 * the existing cell.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    /** Relaxed sweep of every cell, sorted by name. */
    MetricsSnapshot snapshot() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Serialize into the canonical "dmsmetrics v1" text format. */
std::string metricsToText(const MetricsSnapshot &snapshot);

/**
 * Parse the text format back. Unknown kinds, malformed values,
 * duplicate histogram fields and a missing header are errors with
 * @p error carrying a "line N: ..." message.
 */
bool metricsFromText(const std::string &text,
                     MetricsSnapshot &snapshot, std::string &error);

} // namespace obs
} // namespace dms

#endif // DMS_OBS_METRICS_H
