#include "obs/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "support/diag.h"
#include "support/strings.h"

namespace dms {
namespace obs {

namespace detail {
std::atomic<int> g_traceArmed{0};
} // namespace detail

Trace::Trace() : t0_(std::chrono::steady_clock::now()) {}

double
Trace::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
}

int
Trace::openSpan(const char *name)
{
    TraceSpan span;
    span.name = name;
    span.parent = open_.empty() ? -1 : open_.back();
    span.startUs = nowUs();
    const int id = static_cast<int>(spans_.size());
    spans_.push_back(std::move(span));
    open_.push_back(id);
    return id;
}

void
Trace::closeSpan(int id)
{
    if (id < 0 || id >= static_cast<int>(spans_.size()))
        return;
    DMS_ASSERT(!open_.empty() && open_.back() == id,
               "trace spans must close in stack order");
    spans_[static_cast<size_t>(id)].durUs =
        nowUs() - spans_[static_cast<size_t>(id)].startUs;
    open_.pop_back();
}

void
Trace::failSpan(int id, const std::string &note)
{
    if (id < 0 || id >= static_cast<int>(spans_.size()))
        return;
    TraceSpan &span = spans_[static_cast<size_t>(id)];
    span.failed = true;
    if (!note.empty())
        span.note = note;
}

void
Trace::noteSpan(int id, std::string note)
{
    if (id < 0 || id >= static_cast<int>(spans_.size()))
        return;
    spans_[static_cast<size_t>(id)].note = std::move(note);
}

void
Trace::finish()
{
    while (!open_.empty())
        closeSpan(open_.back());
}

namespace {
thread_local Trace *tl_currentTrace = nullptr;
} // namespace

Trace *
currentTrace()
{
    return tl_currentTrace;
}

CurrentTraceScope::CurrentTraceScope(Trace *trace)
    : previous_(tl_currentTrace)
{
    tl_currentTrace = trace;
}

CurrentTraceScope::~CurrentTraceScope()
{
    tl_currentTrace = previous_;
}

struct TraceLog::State
{
    mutable std::mutex mu;
    int cap = 256;
    std::deque<std::shared_ptr<const Trace>> traces;
    std::uint64_t dropped = 0;
};

TraceLog::State &
TraceLog::state() const
{
    static State s;
    return s;
}

TraceLog &
TraceLog::instance()
{
    static TraceLog log;
    return log;
}

void
TraceLog::setCap(int cap)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.cap = std::max(cap, 1);
}

void
TraceLog::commit(std::shared_ptr<const Trace> trace)
{
    if (trace == nullptr)
        return;
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (static_cast<int>(s.traces.size()) >= s.cap) {
        ++s.dropped;
        return;
    }
    s.traces.push_back(std::move(trace));
}

std::vector<std::shared_ptr<const Trace>>
TraceLog::traces() const
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return std::vector<std::shared_ptr<const Trace>>(
        s.traces.begin(), s.traces.end());
}

std::uint64_t
TraceLog::dropped() const
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.dropped;
}

void
TraceLog::clear()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.traces.clear();
    s.dropped = 0;
}

void
armTrace(int capTraces)
{
    TraceLog::instance().setCap(capTraces);
    detail::g_traceArmed.store(1, std::memory_order_relaxed);
}

void
disarmTrace()
{
    detail::g_traceArmed.store(0, std::memory_order_relaxed);
}

bool
armTraceFromEnv()
{
    if (traceArmed())
        return true;
    if (envInt("DMS_TRACE", 0, /*lo=*/0) <= 0)
        return false;
    armTrace(envInt("DMS_TRACE_CAP", 256));
    return true;
}

namespace {

/** JSON string escape: quotes, backslashes, control bytes. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
tracesToJson(const std::vector<std::shared_ptr<const Trace>> &traces)
{
    std::string out = "[\n";
    bool firstEvent = true;
    int tid = 0;
    for (const auto &trace : traces) {
        ++tid;
        if (trace == nullptr)
            continue;
        int id = -1;
        for (const TraceSpan &span : trace->spans()) {
            ++id;
            if (!firstEvent)
                out += ",\n";
            firstEvent = false;
            out += strfmt(
                "{\"name\":\"%s\",\"cat\":\"dms\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                "\"args\":{\"id\":%d,\"parent\":%d,\"failed\":%d,"
                "\"note\":\"%s\"}}",
                jsonEscape(span.name).c_str(), span.startUs,
                span.durUs, tid, id, span.parent,
                span.failed ? 1 : 0,
                jsonEscape(span.note).c_str());
        }
    }
    out += "\n]\n";
    return out;
}

namespace {

/**
 * Minimal strict parser for one tracesToJson event line (an object
 * with string/number values and one nested "args" object). The
 * cursor-based helpers return false on any malformation.
 */
struct JsonCursor
{
    const std::string &s;
    size_t i = 0;

    void
    skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t'))
            ++i;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return false;
        ++i;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        out.clear();
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                if (i + 1 >= s.size())
                    return false;
                const char e = s[i + 1];
                i += 2;
                switch (e) {
                case '"':
                    out += '"';
                    break;
                case '\\':
                    out += '\\';
                    break;
                case '/':
                    out += '/';
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'u': {
                    if (i + 4 > s.size())
                        return false;
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = s[i + static_cast<size_t>(k)];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a') +
                                    10;
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A') +
                                    10;
                        else
                            return false;
                    }
                    i += 4;
                    if (code > 0xff)
                        return false; // only byte escapes emitted
                    out += static_cast<char>(code);
                    break;
                }
                default:
                    return false;
                }
            } else {
                out += s[i];
                ++i;
            }
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    parseNumber(double &out)
    {
        skipWs();
        const size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' ||
                s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
                s[i] == '-'))
            ++i;
        if (i == start)
            return false;
        const std::string token = s.substr(start, i - start);
        errno = 0;
        char *end = nullptr;
        out = std::strtod(token.c_str(), &end);
        return errno == 0 && end == token.c_str() + token.size();
    }
};

struct ParsedEvent
{
    std::string name;
    std::string cat;
    std::string ph;
    double ts = 0;
    double dur = 0;
    int pid = 0;
    int tid = 0;
    int id = 0;
    int parent = -1;
    int failed = 0;
    std::string note;
};

bool
parseEventLine(const std::string &line, ParsedEvent &ev,
               std::string &why)
{
    JsonCursor c{line};
    if (!c.eat('{')) {
        why = "event is not a JSON object";
        return false;
    }
    bool first = true;
    while (true) {
        if (c.eat('}'))
            break;
        if (!first && !c.eat(',')) {
            why = "missing ',' between keys";
            return false;
        }
        first = false;
        std::string key;
        if (!c.parseString(key) || !c.eat(':')) {
            why = "malformed key";
            return false;
        }
        double num = 0;
        if (key == "name" || key == "cat" || key == "ph") {
            std::string value;
            if (!c.parseString(value)) {
                why = strfmt("bad string for '%s'", key.c_str());
                return false;
            }
            if (key == "name")
                ev.name = std::move(value);
            else if (key == "cat")
                ev.cat = std::move(value);
            else
                ev.ph = std::move(value);
        } else if (key == "ts" || key == "dur" || key == "pid" ||
                   key == "tid") {
            if (!c.parseNumber(num)) {
                why = strfmt("bad number for '%s'", key.c_str());
                return false;
            }
            if (key == "ts")
                ev.ts = num;
            else if (key == "dur")
                ev.dur = num;
            else if (key == "pid")
                ev.pid = static_cast<int>(num);
            else
                ev.tid = static_cast<int>(num);
        } else if (key == "args") {
            if (!c.eat('{')) {
                why = "args is not an object";
                return false;
            }
            bool argsFirst = true;
            while (true) {
                if (c.eat('}'))
                    break;
                if (!argsFirst && !c.eat(',')) {
                    why = "missing ',' in args";
                    return false;
                }
                argsFirst = false;
                std::string akey;
                if (!c.parseString(akey) || !c.eat(':')) {
                    why = "malformed args key";
                    return false;
                }
                if (akey == "note") {
                    if (!c.parseString(ev.note)) {
                        why = "bad string for 'note'";
                        return false;
                    }
                } else if (akey == "id" || akey == "parent" ||
                           akey == "failed") {
                    if (!c.parseNumber(num)) {
                        why = strfmt("bad number for '%s'",
                                     akey.c_str());
                        return false;
                    }
                    if (akey == "id")
                        ev.id = static_cast<int>(num);
                    else if (akey == "parent")
                        ev.parent = static_cast<int>(num);
                    else
                        ev.failed = static_cast<int>(num);
                } else {
                    why = strfmt("unknown args key '%s'",
                                 akey.c_str());
                    return false;
                }
            }
        } else {
            why = strfmt("unknown key '%s'", key.c_str());
            return false;
        }
    }
    c.skipWs();
    if (c.i != line.size()) {
        why = "trailing bytes after event object";
        return false;
    }
    if (ev.ph != "X") {
        why = strfmt("unsupported phase '%s'", ev.ph.c_str());
        return false;
    }
    return true;
}

} // namespace

bool
tracesFromJson(const std::string &json,
               std::vector<std::vector<TraceSpan>> &out,
               std::string &error)
{
    out.clear();
    const std::vector<std::string> lines = split(json, '\n');
    bool sawOpen = false;
    bool sawClose = false;
    int currentTid = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        const int lineno = static_cast<int>(i) + 1;
        std::string line = trim(lines[i]);
        if (line.empty())
            continue;
        if (line == "[") {
            if (sawOpen) {
                error = strfmt("line %d: duplicate '['", lineno);
                return false;
            }
            sawOpen = true;
            continue;
        }
        if (line == "]") {
            sawClose = true;
            continue;
        }
        if (!sawOpen || sawClose) {
            error = strfmt("line %d: event outside the array",
                           lineno);
            return false;
        }
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        ParsedEvent ev;
        std::string why;
        if (!parseEventLine(line, ev, why)) {
            error = strfmt("line %d: %s", lineno, why.c_str());
            return false;
        }
        if (ev.tid <= 0) {
            error = strfmt("line %d: bad tid %d", lineno, ev.tid);
            return false;
        }
        if (ev.tid != currentTid) {
            out.emplace_back();
            currentTid = ev.tid;
        }
        TraceSpan span;
        span.name = std::move(ev.name);
        span.parent = ev.parent;
        span.startUs = ev.ts;
        span.durUs = ev.dur;
        span.failed = ev.failed != 0;
        span.note = std::move(ev.note);
        span.srcLine = lineno;
        out.back().push_back(std::move(span));
    }
    if (!sawOpen || !sawClose) {
        error = "missing '[' or ']' array delimiter";
        return false;
    }
    return true;
}

} // namespace obs
} // namespace dms
