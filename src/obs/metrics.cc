#include "obs/metrics.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "support/diag.h"
#include "support/strings.h"

namespace dms {
namespace obs {

namespace {

/** Strict full-consumption uint64 parse (no sign, no garbage). */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

/** Strict full-consumption finite double parse. */
bool
parseF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    if (!(v == v) || v - v != 0.0) // NaN / infinity
        return false;
    out = v;
    return true;
}

std::string
fmtF64(double v)
{
    return strfmt("%.17g", v);
}

} // namespace

void
MetricsSnapshot::addCounter(std::string name, std::uint64_t value)
{
    counters.push_back({std::move(name), value});
}

void
MetricsSnapshot::addGauge(std::string name, double value)
{
    gauges.push_back({std::move(name), value});
}

void
MetricsSnapshot::addHistogram(std::string name,
                              HistogramSnapshot hist)
{
    histograms.push_back({std::move(name), std::move(hist)});
}

void
MetricsSnapshot::sortByName()
{
    auto byName = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(counters.begin(), counters.end(), byName);
    std::sort(gauges.begin(), gauges.end(), byName);
    std::sort(histograms.begin(), histograms.end(), byName);
}

const MetricsSnapshot::CounterValue *
MetricsSnapshot::findCounter(const std::string &name) const
{
    for (const CounterValue &c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

const MetricsSnapshot::HistogramValue *
MetricsSnapshot::findHistogram(const std::string &name) const
{
    for (const HistogramValue &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

struct MetricsRegistry::Impl
{
    /**
     * Deques give stable cell addresses across registration;
     * the maps index them by name. The mutex covers registration
     * and snapshot iteration only — never a cell touch.
     */
    mutable std::mutex mu;
    std::deque<std::pair<std::string, Counter>> counters;
    std::deque<std::pair<std::string, Gauge>> gauges;
    std::deque<std::pair<std::string, LatencyHistogram>> histograms;
    std::unordered_map<std::string, Counter *> counterByName;
    std::unordered_map<std::string, Gauge *> gaugeByName;
    std::unordered_map<std::string, LatencyHistogram *> histByName;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry() = default;

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->counterByName.find(name);
    if (it != impl_->counterByName.end())
        return *it->second;
    impl_->counters.emplace_back(std::piecewise_construct,
                                 std::forward_as_tuple(name),
                                 std::forward_as_tuple());
    Counter *cell = &impl_->counters.back().second;
    impl_->counterByName.emplace(name, cell);
    return *cell;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->gaugeByName.find(name);
    if (it != impl_->gaugeByName.end())
        return *it->second;
    impl_->gauges.emplace_back(std::piecewise_construct,
                               std::forward_as_tuple(name),
                               std::forward_as_tuple());
    Gauge *cell = &impl_->gauges.back().second;
    impl_->gaugeByName.emplace(name, cell);
    return *cell;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->histByName.find(name);
    if (it != impl_->histByName.end())
        return *it->second;
    impl_->histograms.emplace_back(std::piecewise_construct,
                                   std::forward_as_tuple(name),
                                   std::forward_as_tuple());
    LatencyHistogram *cell = &impl_->histograms.back().second;
    impl_->histByName.emplace(name, cell);
    return *cell;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(impl_->mu);
    // Histograms before counters: a latency is recorded after its
    // request was counted, so sweeping the histogram first keeps
    // the lint identity hist.count <= serve.requests true even
    // against concurrent recording.
    for (const auto &h : impl_->histograms)
        snap.addHistogram(h.first, h.second.snapshot());
    for (const auto &c : impl_->counters)
        snap.addCounter(c.first, c.second.value());
    for (const auto &g : impl_->gauges)
        snap.addGauge(g.first, g.second.value());
    snap.sortByName();
    return snap;
}

std::string
metricsToText(const MetricsSnapshot &snapshot)
{
    MetricsSnapshot sorted = snapshot;
    sorted.sortByName();
    std::string out = "dmsmetrics v1\n";
    for (const auto &c : sorted.counters) {
        out += strfmt("counter %s %llu\n", c.name.c_str(),
                      static_cast<unsigned long long>(c.value));
    }
    for (const auto &g : sorted.gauges) {
        out += strfmt("gauge %s %s\n", g.name.c_str(),
                      fmtF64(g.value).c_str());
    }
    for (const auto &h : sorted.histograms) {
        out += strfmt("histogram %s count=%llu sum=%s max=%s "
                      "buckets=",
                      h.name.c_str(),
                      static_cast<unsigned long long>(h.hist.count),
                      fmtF64(h.hist.sumMs).c_str(),
                      fmtF64(h.hist.maxMs).c_str());
        bool first = true;
        for (const auto &bc : h.hist.buckets) {
            if (!first)
                out += ',';
            first = false;
            out += strfmt(
                "%d:%llu", bc.first,
                static_cast<unsigned long long>(bc.second));
        }
        out += '\n';
    }
    return out;
}

namespace {

bool
parseHistogramFields(const std::vector<std::string> &fields,
                     size_t from, HistogramSnapshot &hist,
                     std::string &why)
{
    bool sawCount = false;
    bool sawSum = false;
    bool sawMax = false;
    bool sawBuckets = false;
    for (size_t f = from; f < fields.size(); ++f) {
        const std::string &field = fields[f];
        const size_t eq = field.find('=');
        if (eq == std::string::npos) {
            why = strfmt("want key=value, got '%s'",
                         field.c_str());
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "count") {
            if (sawCount || !parseU64(value, hist.count)) {
                why = strfmt("bad count '%s'", value.c_str());
                return false;
            }
            sawCount = true;
        } else if (key == "sum") {
            if (sawSum || !parseF64(value, hist.sumMs)) {
                why = strfmt("bad sum '%s'", value.c_str());
                return false;
            }
            sawSum = true;
        } else if (key == "max") {
            if (sawMax || !parseF64(value, hist.maxMs)) {
                why = strfmt("bad max '%s'", value.c_str());
                return false;
            }
            sawMax = true;
        } else if (key == "buckets") {
            if (sawBuckets) {
                why = "duplicate buckets field";
                return false;
            }
            sawBuckets = true;
            if (value.empty())
                continue; // empty histogram
            for (const std::string &pair : split(value, ',')) {
                const size_t colon = pair.find(':');
                int bucket = 0;
                std::uint64_t bcount = 0;
                if (colon == std::string::npos ||
                    !parseInt(pair.substr(0, colon), bucket) ||
                    !parseU64(pair.substr(colon + 1), bcount)) {
                    why = strfmt("bad bucket pair '%s'",
                                 pair.c_str());
                    return false;
                }
                if (!hist.buckets.empty() &&
                    hist.buckets.back().first >= bucket) {
                    why = strfmt(
                        "bucket %d out of order", bucket);
                    return false;
                }
                hist.buckets.emplace_back(bucket, bcount);
            }
        } else {
            why = strfmt("unknown histogram field '%s'",
                         key.c_str());
            return false;
        }
    }
    if (!sawCount || !sawSum || !sawMax || !sawBuckets) {
        why = "missing count/sum/max/buckets field";
        return false;
    }
    return true;
}

} // namespace

bool
metricsFromText(const std::string &text, MetricsSnapshot &snapshot,
                std::string &error)
{
    MetricsSnapshot parsed;
    const std::vector<std::string> lines = split(text, '\n');
    size_t i = 0;
    while (i < lines.size() && trim(lines[i]).empty())
        ++i;
    if (i >= lines.size() || trim(lines[i]) != "dmsmetrics v1") {
        error = "missing 'dmsmetrics v1' header";
        return false;
    }
    int lineno = static_cast<int>(i) + 1;
    for (++i; i < lines.size(); ++i) {
        ++lineno;
        const std::string line = trim(lines[i]);
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::string> fields;
        for (const std::string &f : split(line, ' '))
            if (!f.empty())
                fields.push_back(f);
        if (fields.size() < 3) {
            error = strfmt("line %d: want 'kind name value...'",
                           lineno);
            return false;
        }
        const std::string &kind = fields[0];
        const std::string &name = fields[1];
        if (kind == "counter") {
            std::uint64_t v = 0;
            if (fields.size() != 3 || !parseU64(fields[2], v)) {
                error = strfmt(
                    "line %d: bad counter value for '%s'", lineno,
                    name.c_str());
                return false;
            }
            parsed.addCounter(name, v);
        } else if (kind == "gauge") {
            double v = 0;
            if (fields.size() != 3 || !parseF64(fields[2], v)) {
                error =
                    strfmt("line %d: bad gauge value for '%s'",
                           lineno, name.c_str());
                return false;
            }
            parsed.addGauge(name, v);
        } else if (kind == "histogram") {
            HistogramSnapshot hist;
            std::string why;
            if (!parseHistogramFields(fields, 2, hist, why)) {
                error = strfmt("line %d: %s", lineno,
                               why.c_str());
                return false;
            }
            parsed.addHistogram(name, std::move(hist));
        } else {
            error = strfmt("line %d: unknown kind '%s'", lineno,
                           kind.c_str());
            return false;
        }
    }
    snapshot = std::move(parsed);
    return true;
}

} // namespace obs
} // namespace dms
