#ifndef DMS_OBS_HISTOGRAM_H
#define DMS_OBS_HISTOGRAM_H

/**
 * @file
 * Lock-free log-bucketed latency histogram for the serve hot path.
 *
 * The service used to record every compile() latency into a
 * mutex-guarded exact sample store (support/stats.h Samples); at
 * socket-level request rates that mutex is a real serialization
 * point and the per-snapshot copy of the reservoir is O(samples).
 * LatencyHistogram replaces it: a fixed array of atomic counters,
 * one relaxed fetch_add per record() (wait-free, no allocation, no
 * lock), and snapshots that are a plain relaxed sweep of the array.
 *
 * ## Bucket layout and error bound
 *
 * Buckets are logarithmic with linear sub-buckets: values are
 * binned by octave (power of two above kMinMs) and each octave is
 * cut into kSub = 2^kSubBits equal-width slices — the classic
 * HDR-histogram layout, computed directly from the double's
 * exponent and top mantissa bits (no integer-tick quantization).
 * Within octave e the bucket width is 2^e * kMinMs / kSub and every
 * bucket's lower bound is at least 2^e * kMinMs, so reporting the
 * bucket midpoint is off from the true value by at most half a
 * width:
 *
 *     relative error <= 1 / (2 * kSub) = 1/32 = 3.125%
 *
 * for every value in [kMinMs, kMinMs * 2^kOctaves) — comfortably
 * inside the <= 5% bound the serve stats document. Values below
 * kMinMs (sub-microsecond latencies) land in a dedicated underflow
 * bucket represented as kMinMs / 2; values at or above the top
 * land in the last bucket (the range spans ~12 days, so only an
 * absurd latency clamps). count and max are exact for every
 * recorded value: max is maintained as a CAS-max over the double's
 * bit pattern (non-negative doubles order like their bits), and
 * count is derived from the bucket counts themselves so the
 * conservation law sum(buckets) == count holds by construction
 * even against concurrent record() calls.
 *
 * Percentiles use the nearest-rank definition over the bucket
 * counts, mirroring Samples::percentile: the k-th smallest value
 * lies in the bucket where the cumulative count first reaches k
 * (bucketFor is monotone), so the reported midpoint is within the
 * bound above of the exact nearest-rank sample — the parity test
 * in tests/test_obs.cc pins this against Samples per workload.
 */

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace dms {
namespace obs {

/**
 * Point-in-time copy of a LatencyHistogram: plain data, mergeable,
 * and the unit the metrics text format serializes. buckets holds
 * (bucket index, count) pairs for the non-empty buckets only,
 * sorted by index.
 */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sumMs = 0.0;
    double maxMs = 0.0;
    std::vector<std::pair<int, std::uint64_t>> buckets;

    /** Exact mean over every recorded value; 0 when empty. */
    double mean() const;

    /**
     * Nearest-rank percentile for @p p in [0, 100]; 0 when empty.
     * Returns the midpoint of the bucket holding the nearest-rank
     * sample (the <= 3.125% bound above).
     */
    double percentile(double p) const;

    /** Fold @p other into this snapshot (counts add, max maxes). */
    void merge(const HistogramSnapshot &other);
};

/**
 * The live accumulator. record() is wait-free and thread-safe;
 * snapshot() may run concurrently with any number of record()s.
 */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits slices per octave. */
    static constexpr int kSubBits = 4;
    static constexpr int kSub = 1 << kSubBits;
    /** Smallest resolvable latency (1 microsecond). */
    static constexpr double kMinMs = 1e-3;
    /** Octaves covered above kMinMs (~12.7 days of range). */
    static constexpr int kOctaves = 40;
    /** Bucket 0 is the underflow bucket for values < kMinMs. */
    static constexpr int kBuckets = 1 + kOctaves * kSub;

    LatencyHistogram() = default;
    LatencyHistogram(const LatencyHistogram &) = delete;
    LatencyHistogram &operator=(const LatencyHistogram &) = delete;

    /** Bucket index for @p ms; monotone in ms. */
    static int bucketFor(double ms);

    /** Inclusive-lower bound of bucket @p b in milliseconds. */
    static double bucketLoMs(int b);

    /** Exclusive-upper bound of bucket @p b in milliseconds. */
    static double bucketHiMs(int b);

    /** Reported representative (midpoint) of bucket @p b. */
    static double bucketMidMs(int b);

    /**
     * Record one latency. Wait-free: two relaxed fetch_adds and a
     * bounded CAS-max. Negative and NaN inputs clamp to 0 (the
     * underflow bucket).
     */
    void record(double ms);

    /** Relaxed sweep of the counters; safe against record(). */
    HistogramSnapshot snapshot() const;

  private:
    std::atomic<std::uint64_t> counts_[kBuckets] = {};
    /** Sum in nanoseconds (exact to 0.5 ns per sample). */
    std::atomic<std::uint64_t> sumNanos_{0};
    /** Bit pattern of the largest recorded value (exact max). */
    std::atomic<std::uint64_t> maxBits_{0};
};

} // namespace obs
} // namespace dms

#endif // DMS_OBS_HISTOGRAM_H
