#ifndef DMS_OBS_TRACE_H
#define DMS_OBS_TRACE_H

/**
 * @file
 * Per-request tracing: a Trace is a flat vector of nested spans
 * opened at the same boundaries fault injection and cancel polling
 * already instrument — the submit-side cache lookup/insert and
 * queue push, the worker's compile, every pipeline stage, and each
 * II-ladder rung inside the schedulers.
 *
 * ## Zero cost when disarmed
 *
 * Tracing follows the faultPoint() discipline exactly: the armed
 * check is one relaxed atomic load plus a never-taken branch
 * (traceArmed()), and every deeper hook is behind a null Trace
 * pointer. With DMS_TRACE unset no span is ever allocated, no
 * clock is read, and schedules stay bit-identical — the golden FNV
 * hashes and the sched_hotpath perf gate pin this.
 *
 * ## Threading
 *
 * A Trace is owned by one request and touched by one thread at a
 * time: the submitting client up to the queue push, then the
 * worker (the queue's push/pop pair orders the handoff). The
 * schedulers' rung spans reach the active trace through a
 * thread-local (currentTrace), set by the worker around runLoop —
 * pool threads of the speculative II walk see a null thread-local
 * and stay uninstrumented (their interleaving is nondeterministic;
 * the serial ladder is the traced one). Finished traces are
 * committed to the process-wide bounded TraceLog, which dmsd
 * drains into Chrome trace_event JSON (--trace-out) — one event
 * per line so dmslint's obs.trace-nesting checker can report
 * 1-based line numbers.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dms {
namespace obs {

namespace detail {
/** Non-zero iff tracing is armed; the one load on the fast path. */
extern std::atomic<int> g_traceArmed;
} // namespace detail

/**
 * True while tracing is armed. Free when disarmed: one relaxed
 * load and a never-taken branch, exactly like faultPoint().
 */
inline bool
traceArmed()
{
    return __builtin_expect(detail::g_traceArmed.load(
                                std::memory_order_relaxed) != 0,
                            0);
}

/** One span of a trace; parent indexes the owning Trace's spans. */
struct TraceSpan
{
    std::string name;
    int parent = -1; ///< span index, -1 for the root
    double startUs = 0.0; ///< relative to the trace's origin
    double durUs = 0.0;
    bool failed = false;
    std::string note; ///< fault site, "ii=N", ... (may be empty)

    /**
     * 1-based line of this span's event in the JSON it was parsed
     * from; 0 for live traces. Diagnostic locations only.
     */
    int srcLine = 0;
};

/**
 * One request's span tree, stored flat (parent indices). Spans
 * open and close in stack order; finish() closes anything left
 * open (the fault-unwind case).
 */
class Trace
{
  public:
    Trace();

    /** Open a child of the innermost open span; returns its id. */
    int openSpan(const char *name);

    /** Close span @p id (must be the innermost open span). */
    void closeSpan(int id);

    /** Mark @p id failed, appending @p note when non-empty. */
    void failSpan(int id, const std::string &note);

    /** Attach @p note to span @p id (replacing any previous). */
    void noteSpan(int id, std::string note);

    /** Close every still-open span, innermost first. */
    void finish();

    const std::vector<TraceSpan> &spans() const { return spans_; }

  private:
    double nowUs() const;

    std::chrono::steady_clock::time_point t0_;
    std::vector<TraceSpan> spans_;
    std::vector<int> open_; ///< stack of open span ids
};

/**
 * RAII span: opens on construction (no-op for a null trace),
 * closes on destruction, and marks the span failed when the scope
 * is left by an exception (std::uncaught_exceptions delta) — which
 * is how injected faults become annotated failing spans.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Trace *trace, const char *name)
        : trace_(trace),
          id_(trace ? trace->openSpan(name) : -1),
          uncaught_(trace ? std::uncaught_exceptions() : 0)
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (trace_ == nullptr)
            return;
        if (std::uncaught_exceptions() > uncaught_)
            trace_->failSpan(id_, "");
        trace_->closeSpan(id_);
    }

    /** Attach a note to the span; no-op for a null trace. */
    void
    note(std::string text)
    {
        if (trace_ != nullptr)
            trace_->noteSpan(id_, std::move(text));
    }

  private:
    Trace *trace_;
    int id_;
    int uncaught_;
};

/** The worker's active trace for this thread; null when none. */
Trace *currentTrace();

/** RAII binder for currentTrace around a worker's compile. */
class CurrentTraceScope
{
  public:
    explicit CurrentTraceScope(Trace *trace);
    ~CurrentTraceScope();

    CurrentTraceScope(const CurrentTraceScope &) = delete;
    CurrentTraceScope &operator=(const CurrentTraceScope &) =
        delete;

  private:
    Trace *previous_;
};

/**
 * Process-wide bounded collector of finished traces. commit()
 * drops (and counts) past the cap so a long-lived traced daemon
 * stays bounded. Only touched when tracing is armed.
 */
class TraceLog
{
  public:
    static TraceLog &instance();

    /** Replace the cap (>= 1); keeps already-committed traces. */
    void setCap(int cap);

    void commit(std::shared_ptr<const Trace> trace);

    std::vector<std::shared_ptr<const Trace>> traces() const;

    /** Traces dropped because the log was at capacity. */
    std::uint64_t dropped() const;

    /** Drop everything and zero the dropped counter. */
    void clear();

  private:
    TraceLog() = default;

    struct State;
    State &state() const;
};

/**
 * Arm tracing process-wide with a TraceLog cap of @p capTraces.
 * Like armFaults, not safe against in-flight compiles: arm before
 * starting a service, disarm after draining it.
 */
void armTrace(int capTraces);

/** Disarm; committed traces stay until TraceLog::clear(). */
void disarmTrace();

/**
 * Arm from DMS_TRACE=1 (cap from DMS_TRACE_CAP, default 256).
 * Returns true iff tracing is armed afterwards. Idempotent.
 */
bool armTraceFromEnv();

/**
 * Chrome trace_event JSON for @p traces: a JSON array with one
 * complete ("ph":"X") event per line, tid = 1-based trace index,
 * args carrying the span id/parent/failed/note — everything the
 * strict parser below needs to rebuild the span trees.
 */
std::string
tracesToJson(const std::vector<std::shared_ptr<const Trace>> &traces);

/**
 * Parse tracesToJson output (or any one-event-per-line trace_event
 * array) back into span trees grouped by tid. False with a
 * "line N: ..." @p error on malformed JSON, unknown keys, or a
 * non-"X" phase; each parsed span records its srcLine.
 */
bool tracesFromJson(const std::string &json,
                    std::vector<std::vector<TraceSpan>> &out,
                    std::string &error);

} // namespace obs
} // namespace dms

#endif // DMS_OBS_TRACE_H
