#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace dms {
namespace obs {

namespace {

std::uint64_t
bitsOf(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
doubleOf(std::uint64_t bits)
{
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

double
HistogramSnapshot::mean() const
{
    return count == 0 ? 0.0
                      : sumMs / static_cast<double>(count);
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    // Nearest rank: the ceil(p/100 * n)-th smallest, 1-based
    // (mirrors Samples::percentile).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (const auto &bc : buckets) {
        seen += bc.second;
        if (seen >= rank)
            return LatencyHistogram::bucketMidMs(bc.first);
    }
    return LatencyHistogram::bucketMidMs(buckets.back().first);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    sumMs += other.sumMs;
    maxMs = std::max(maxMs, other.maxMs);
    std::vector<std::pair<int, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    size_t i = 0;
    size_t j = 0;
    while (i < buckets.size() || j < other.buckets.size()) {
        if (j >= other.buckets.size() ||
            (i < buckets.size() &&
             buckets[i].first < other.buckets[j].first)) {
            merged.push_back(buckets[i++]);
        } else if (i >= buckets.size() ||
                   other.buckets[j].first < buckets[i].first) {
            merged.push_back(other.buckets[j++]);
        } else {
            merged.emplace_back(buckets[i].first,
                                buckets[i].second +
                                    other.buckets[j].second);
            ++i;
            ++j;
        }
    }
    buckets = std::move(merged);
}

int
LatencyHistogram::bucketFor(double ms)
{
    // NaN and negatives fail this comparison and join the
    // underflow bucket alongside genuine sub-kMinMs values.
    if (!(ms >= kMinMs))
        return 0;
    const double r = ms / kMinMs;
    int e = std::ilogb(r); // floor(log2(r)); r >= 1 so e >= 0
    if (e >= kOctaves)
        return kBuckets - 1;
    // Top kSubBits mantissa bits select the linear sub-bucket.
    const double frac = std::ldexp(r, -e) - 1.0; // [0, 1)
    int sub = static_cast<int>(frac * kSub);
    sub = std::min(std::max(sub, 0), kSub - 1);
    return 1 + e * kSub + sub;
}

double
LatencyHistogram::bucketLoMs(int b)
{
    if (b <= 0)
        return 0.0;
    const int e = (b - 1) / kSub;
    const int s = (b - 1) % kSub;
    return kMinMs * std::ldexp(1.0, e) *
           (1.0 + static_cast<double>(s) / kSub);
}

double
LatencyHistogram::bucketHiMs(int b)
{
    if (b <= 0)
        return kMinMs;
    const int e = (b - 1) / kSub;
    const int s = (b - 1) % kSub;
    return kMinMs * std::ldexp(1.0, e) *
           (1.0 + static_cast<double>(s + 1) / kSub);
}

double
LatencyHistogram::bucketMidMs(int b)
{
    return 0.5 * (bucketLoMs(b) + bucketHiMs(b));
}

void
LatencyHistogram::record(double ms)
{
    if (!(ms >= 0.0))
        ms = 0.0;
    counts_[bucketFor(ms)].fetch_add(1, std::memory_order_relaxed);
    sumNanos_.fetch_add(
        static_cast<std::uint64_t>(std::llround(ms * 1e6)),
        std::memory_order_relaxed);
    // CAS-max over the bit pattern: non-negative doubles order
    // exactly like their unsigned bit patterns, so max stays exact
    // without a lock.
    const std::uint64_t bits = bitsOf(ms);
    std::uint64_t cur = maxBits_.load(std::memory_order_relaxed);
    while (bits > cur &&
           !maxBits_.compare_exchange_weak(
               cur, bits, std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot snap;
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t c =
            counts_[b].load(std::memory_order_relaxed);
        if (c == 0)
            continue;
        snap.buckets.emplace_back(b, c);
        snap.count += c;
    }
    snap.sumMs = static_cast<double>(sumNanos_.load(
                     std::memory_order_relaxed)) /
                 1e6;
    snap.maxMs =
        doubleOf(maxBits_.load(std::memory_order_relaxed));
    return snap;
}

} // namespace obs
} // namespace dms
