#include "analysis/check.h"

#include <algorithm>

namespace dms {

ScheduleView
viewOf(const PartialSchedule &ps)
{
    ScheduleView view;
    view.ii = ps.ii();
    const int ops = ps.ddg().numOps();
    view.placements.resize(static_cast<size_t>(ops));
    for (OpId op = 0; op < ops; ++op) {
        if (ps.isScheduled(op))
            view.placements[static_cast<size_t>(op)] =
                ps.placement(op);
    }
    return view;
}

CheckRegistry &
CheckRegistry::instance()
{
    static CheckRegistry registry;
    return registry;
}

CheckRegistry::CheckRegistry()
{
    registerBuiltinChecks(*this);
}

bool
CheckRegistry::add(std::unique_ptr<Check> check)
{
    if (find(check->id()) != nullptr)
        return false;
    checks_.push_back(std::move(check));
    return true;
}

const Check *
CheckRegistry::find(std::string_view id) const
{
    for (const std::unique_ptr<Check> &c : checks_) {
        if (id == c->id())
            return c.get();
    }
    return nullptr;
}

std::vector<const Check *>
CheckRegistry::checks() const
{
    std::vector<const Check *> out;
    out.reserve(checks_.size());
    for (const std::unique_ptr<Check> &c : checks_)
        out.push_back(c.get());
    std::sort(out.begin(), out.end(),
              [](const Check *a, const Check *b) {
                  return std::string_view(a->id()) <
                         std::string_view(b->id());
              });
    return out;
}

int
CheckRegistry::runAll(const AnalysisInput &input,
                      DiagnosticSink &sink) const
{
    int ran = 0;
    for (const Check *c : checks()) {
        if (!c->applicable(input))
            continue;
        c->run(input, sink);
        ++ran;
    }
    return ran;
}

} // namespace dms
