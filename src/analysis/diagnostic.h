#ifndef DMS_ANALYSIS_DIAGNOSTIC_H
#define DMS_ANALYSIS_DIAGNOSTIC_H

/**
 * @file
 * The diagnostic engine of the static-analysis layer (dmslint and
 * the opt-in pipeline `analyze` stage). Deliberately independent of
 * the compilation pipeline: checkers re-derive properties from
 * first principles and report through this engine, so a shared-fate
 * bug in the compiler cannot silence the report about it.
 *
 * Every diagnostic carries a *stable check id* (e.g.
 * "sched.resource-overuse"), a severity, the artifact kind it was
 * found in, and a structured location (text line, op, edge, cycle,
 * link — whichever apply). Rendering is deterministic in both the
 * human-readable text form and the JSON form, which is what lets
 * golden tests pin dmslint output byte-for-byte.
 */

#include <string>
#include <vector>

#include "support/types.h"

namespace dms {

/** How bad a finding is; ordered for max-severity exit codes. */
enum class Severity : std::uint8_t {
    Note,     ///< stylistic / informational (canonical form, ...)
    Warning,  ///< suspicious but not provably wrong
    Error,    ///< the artifact violates a hard invariant
};

/** Lower-case severity mnemonic, e.g. "warning". */
const char *severityName(Severity s);

/** Which declarative artifact a diagnostic refers to. */
enum class ArtifactKind : std::uint8_t {
    Machine,          ///< machine/desc.h description
    MachineTemplate,  ///< `$C` sweep template
    Loop,             ///< workload/text.h loop body
    Schedule,         ///< modulo-schedule placements
    QueueAlloc,       ///< queue register allocation
    Kernel,           ///< pipelined kernel / emitted code
    ServeStats,       ///< serve/service.h counter snapshot
    Metrics,          ///< obs/metrics.h `dmsmetrics v1` snapshot
    Trace,            ///< obs/trace.h trace_event span export
};

/** Lower-case artifact mnemonic, e.g. "schedule". */
const char *artifactKindName(ArtifactKind kind);

/**
 * Structured source location. Each field is optional (sentinel =
 * absent); checkers fill whichever coordinates exist for the
 * artifact: text line for descriptions, op/edge for graphs,
 * cycle/cluster/link for schedules and allocations.
 */
struct DiagLocation
{
    int line = 0;      ///< 1-based text line, 0 = none
    OpId op = kInvalidOp;
    EdgeId edge = kInvalidEdge;
    Cycle cycle = -1;  ///< schedule cycle or kernel row, -1 = none
    ClusterId cluster = kInvalidCluster;
    int link = -1;     ///< directed inter-cluster link id

    bool any() const;

    /** Render the present coordinates, e.g. "op 7, cycle 12". */
    std::string str() const;
};

/** One finding. */
struct Diagnostic
{
    std::string checkId;  ///< stable id, e.g. "machine.parse"
    Severity severity = Severity::Error;
    ArtifactKind artifact = ArtifactKind::Machine;

    /** What was linted: a file path, "kernel:NAME", a stage label. */
    std::string subject;

    DiagLocation loc;
    std::string message;

    /**
     * One-line rendering:
     *   severity[check-id] subject:line: message (op 3, cycle 7)
     * with absent coordinates omitted.
     */
    std::string render() const;
};

/**
 * Collects diagnostics from any number of checkers and renders the
 * batch. A `subject` label (set once per linted target) is stamped
 * onto every report, so multi-target runs stay attributable.
 */
class DiagnosticSink
{
  public:
    /** Label attached to subsequent report() calls. */
    void setSubject(std::string subject)
    {
        subject_ = std::move(subject);
    }
    const std::string &subject() const { return subject_; }

    void report(const char *check_id, Severity severity,
                ArtifactKind artifact, const DiagLocation &loc,
                std::string message);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }
    bool empty() const { return diags_.empty(); }
    int count(Severity s) const;

    /** Highest severity reported; Note when empty. */
    Severity maxSeverity() const;

    /**
     * Process exit code for CLI front-ends: 0 = clean, else
     * 1 + max severity (note 1, warning 2, error 3).
     */
    int exitCode() const;

    /** One render() line per diagnostic, in report order. */
    std::string renderText() const;

    /** JSON array of diagnostic objects, stable field order. */
    std::string renderJson() const;

  private:
    std::string subject_;
    std::vector<Diagnostic> diags_;
};

} // namespace dms

#endif // DMS_ANALYSIS_DIAGNOSTIC_H
