#ifndef DMS_ANALYSIS_CHECK_H
#define DMS_ANALYSIS_CHECK_H

/**
 * @file
 * The checker interface and its name-keyed registry (same idiom as
 * the scheduler registry). Each checker is *independent* of the
 * pipeline internals it audits: it re-derives the property it
 * checks from first principles — recounting reservation rows from
 * raw placements, recomputing lifetime spans from schedule times,
 * re-walking reachability over the link graph — instead of calling
 * the code that produced the artifact. A checker therefore fails
 * loudly when the pipeline and the check disagree, whichever of
 * the two is wrong.
 *
 * An AnalysisInput bundles whatever artifacts the caller has;
 * every registered check whose inputs are present runs. Schedules
 * are audited through the flat ScheduleView (plain placements +
 * II), so tests can seed defects without fighting the invariants
 * PartialSchedule enforces by construction.
 */

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "codegen/kernel.h"
#include "machine/machine.h"
#include "regalloc/queue_alloc.h"
#include "regalloc/sharing.h"
#include "sched/schedule.h"
#include "workload/kernels.h"

namespace dms {

struct ServeStats; // serve/service.h; only audited via pointer here

namespace obs {
struct MetricsSnapshot; // obs/metrics.h
struct TraceSpan;       // obs/trace.h
} // namespace obs

/**
 * Flat, freely mutable view of a (complete or partial) modulo
 * schedule: one Placement per DDG op id. The audit checks consume
 * this instead of PartialSchedule so that (a) they cannot lean on
 * the reservation table they are supposed to recount and (b) the
 * seeded-defect corpus can construct illegal schedules, which
 * PartialSchedule's own API rules out by construction.
 */
struct ScheduleView
{
    int ii = 1;

    /** Indexed by OpId; ops beyond the vector are unscheduled. */
    std::vector<Placement> placements;

    bool
    scheduled(OpId op) const
    {
        return op >= 0 &&
               op < static_cast<OpId>(placements.size()) &&
               placements[static_cast<size_t>(op)].scheduled();
    }

    const Placement &
    at(OpId op) const
    {
        return placements[static_cast<size_t>(op)];
    }
};

/** Snapshot a PartialSchedule into the flat audit view. */
ScheduleView viewOf(const PartialSchedule &ps);

/**
 * Everything a lint/audit run may look at. All fields optional;
 * each check declares (via applicable()) which ones it needs.
 * Text fields, when present, let checkers attach line numbers.
 */
struct AnalysisInput
{
    /** @name Textual artifacts */
    /// @{
    const std::string *machineText = nullptr;
    const std::string *machineTemplate = nullptr;
    const std::string *loopText = nullptr;
    const std::string *kernelText = nullptr;
    const std::string *serveStatsText = nullptr;
    const std::string *metricsText = nullptr;
    const std::string *traceText = nullptr; ///< trace_event JSON
    /// @}

    /** @name Parsed / compiled artifacts */
    /// @{
    const MachineModel *machine = nullptr;
    const Loop *loop = nullptr;
    const Ddg *ddg = nullptr; ///< the scheduled (transformed) graph
    const ScheduleView *schedule = nullptr;
    const QueueAllocation *queues = nullptr;
    const SharedAllocation *sharing = nullptr;
    const PipelinedLoop *kernel = nullptr;
    const ServeStats *serveStats = nullptr; ///< counter snapshot
    const obs::MetricsSnapshot *metrics = nullptr;

    /** Span trees grouped by trace, in tid order. */
    const std::vector<std::vector<obs::TraceSpan>> *traceSpans =
        nullptr;
    /// @}

    /** Latency model for parsing loop text (machine's if present). */
    const LatencyModel *latency = nullptr;
};

/** One independent checker behind a stable registry id. */
class Check
{
  public:
    virtual ~Check() = default;

    /** Stable id, e.g. "sched.resource-overuse". */
    virtual const char *id() const = 0;

    /** One-line description for the README table and --list. */
    virtual const char *description() const = 0;

    /** Artifact kind this check audits. */
    virtual ArtifactKind artifact() const = 0;

    /** True when @p input carries everything this check needs. */
    virtual bool applicable(const AnalysisInput &input) const = 0;

    /** Run; report findings into @p sink. */
    virtual void run(const AnalysisInput &input,
                     DiagnosticSink &sink) const = 0;
};

/**
 * Id-keyed checker registry. Builtin checks are registered on
 * first use; add() is not thread-safe against concurrent lookups —
 * register extra checks before spawning sweeps.
 */
class CheckRegistry
{
  public:
    /** The process-wide registry, builtins included. */
    static CheckRegistry &instance();

    /** Register a check; false (and no change) if the id is
     * taken. */
    bool add(std::unique_ptr<Check> check);

    /** Look up by id, or null. */
    const Check *find(std::string_view id) const;

    /** Every registered check, ordered by id. */
    std::vector<const Check *> checks() const;

    /**
     * Run every check applicable to @p input. Returns the number
     * of checks that ran.
     */
    int runAll(const AnalysisInput &input,
               DiagnosticSink &sink) const;

  private:
    CheckRegistry();

    std::vector<std::unique_ptr<Check>> checks_;
};

/** Registers the builtin machine/loop/schedule/queue/kernel/serve
 * checks. */
void registerBuiltinChecks(CheckRegistry &registry);

} // namespace dms

#endif // DMS_ANALYSIS_CHECK_H
