#include "analysis/lint_util.h"

#include "support/strings.h"

namespace dms {
namespace lint {

int
splitErrorLine(const std::string &error, std::string &message)
{
    message = error;
    if (error.rfind("line ", 0) != 0)
        return 0;
    const size_t colon = error.find(':');
    if (colon == std::string::npos)
        return 0;
    int line = 0;
    if (!parseInt(trim(error.substr(5, colon - 5)), line))
        return 0;
    message = trim(error.substr(colon + 1));
    return line;
}

namespace {

/** First whitespace-separated token of a line ("" when none). */
std::string
firstToken(const std::string &line)
{
    const std::string t = trim(line);
    const size_t space = t.find_first_of(" \t");
    return space == std::string::npos ? t : t.substr(0, space);
}

} // namespace

int
findKeyLine(const std::string &text, std::string_view key)
{
    int line_no = 0;
    for (const std::string &line : split(text, '\n')) {
        ++line_no;
        if (firstToken(line) == key)
            return line_no;
    }
    return 0;
}

int
findEntryLine(const std::string &text, std::string_view key,
              std::string_view entry_prefix)
{
    int line_no = 0;
    for (const std::string &line : split(text, '\n')) {
        ++line_no;
        if (firstToken(line) != key)
            continue;
        for (const std::string &raw : split(trim(line), ' ')) {
            const std::string tok = trim(raw);
            if (tok.rfind(entry_prefix, 0) == 0)
                return line_no;
        }
    }
    return 0;
}

int
findNthKeyLine(const std::string &text, std::string_view key,
               int index)
{
    int line_no = 0;
    int seen = 0;
    for (const std::string &line : split(text, '\n')) {
        ++line_no;
        if (firstToken(line) != key)
            continue;
        if (seen == index)
            return line_no;
        ++seen;
    }
    return 0;
}

} // namespace lint
} // namespace dms
