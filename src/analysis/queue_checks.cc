/**
 * @file
 * Queue-register-allocation audit. Spans, depths, per-file stats
 * and the aggregate pressure numbers are all recomputed from the
 * schedule times and the lifetime list itself, and queue sharing is
 * re-judged with an operational FIFO-overtake test — none of it
 * calls the allocator or canShareQueue(), so a bug shared with the
 * allocation code cannot hide a bad allocation.
 */

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/builtin_checks.h"
#include "support/diag.h"

namespace dms {
namespace lint {

namespace {

bool
wantsQueueAudit(const AnalysisInput &input)
{
    return input.machine != nullptr && input.ddg != nullptr &&
           input.schedule != nullptr && input.queues != nullptr;
}

/** (enter phase, exit phase) of a lifetime under the schedule. */
struct Phases
{
    int enter = 0;
    int exit = 0;
    bool known = false;
};

Phases
phasesOf(const Lifetime &lt, const Ddg &ddg,
         const ScheduleView &view)
{
    Phases p;
    if (!view.scheduled(lt.def) || !view.scheduled(lt.use))
        return p;
    const Edge &edge = ddg.edge(lt.edge);
    p.enter = view.at(lt.def).time + edge.latency;
    p.exit = view.at(lt.use).time + view.ii * edge.distance;
    p.known = true;
    return p;
}

DiagLocation
lifetimeLocation(const Lifetime &lt)
{
    DiagLocation loc;
    loc.edge = lt.edge;
    loc.op = lt.def;
    loc.cluster = lt.cluster;
    loc.link = lt.link;
    return loc;
}

std::string
lifetimeLabel(const Lifetime &lt, const Ddg &ddg)
{
    return strfmt("lifetime %s -> %s",
                  ddg.opLabel(lt.def).c_str(),
                  ddg.opLabel(lt.use).c_str());
}

class SpanMismatchCheck final : public BuiltinCheck
{
  public:
    SpanMismatchCheck()
        : BuiltinCheck("queue.span-mismatch",
                       "lifetime spans and FIFO depths match a "
                       "recomputation from schedule times",
                       ArtifactKind::QueueAlloc)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsQueueAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        for (const Lifetime &lt : input.queues->lifetimes) {
            const Phases p = phasesOf(lt, ddg, view);
            if (!p.known) {
                sink.report(id(), Severity::Error, artifact(),
                            lifetimeLocation(lt),
                            lifetimeLabel(lt, ddg) +
                                " references an unscheduled op");
                continue;
            }
            const int span = p.exit - p.enter;
            if (span < 0) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    strfmt("%s has negative recomputed span %d "
                           "(value consumed before produced)",
                           lifetimeLabel(lt, ddg).c_str(), span));
                continue;
            }
            const int depth = span / view.ii + 1;
            if (span != lt.span) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    strfmt("%s records span %d but schedule times "
                           "give %d",
                           lifetimeLabel(lt, ddg).c_str(), lt.span,
                           span));
            } else if (depth != lt.depth) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    strfmt("%s records depth %d but span %d at "
                           "II=%d gives %d",
                           lifetimeLabel(lt, ddg).c_str(), lt.depth,
                           span, view.ii, depth));
            }
        }
    }
};

class LocationCheck final : public BuiltinCheck
{
  public:
    LocationCheck()
        : BuiltinCheck("queue.location",
                       "every lifetime lives in the register file "
                       "its endpoints dictate",
                       ArtifactKind::QueueAlloc)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsQueueAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        const MachineModel &machine = *input.machine;
        for (const Lifetime &lt : input.queues->lifetimes) {
            if (!view.scheduled(lt.def) || !view.scheduled(lt.use))
                continue; // queue.span-mismatch reports these
            const ClusterId def_c = view.at(lt.def).cluster;
            const ClusterId use_c = view.at(lt.use).cluster;
            if (lt.location == QueueLocation::Lrf) {
                if (def_c == use_c && lt.cluster == def_c)
                    continue;
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    strfmt("%s is allocated in the LRF of cluster "
                           "%d but runs from cluster %d to %d",
                           lifetimeLabel(lt, ddg).c_str(),
                           lt.cluster, def_c, use_c));
                continue;
            }
            const int expected = machine.linkBetween(def_c, use_c);
            if (expected < 0) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    strfmt("%s is allocated in a CQRF but clusters "
                           "%d and %d are not one-hop neighbours",
                           lifetimeLabel(lt, ddg).c_str(), def_c,
                           use_c));
            } else if (lt.link != expected || lt.cluster != def_c) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    strfmt("%s sits on link %d (writer cluster %d) "
                           "but clusters %d -> %d use link %d",
                           lifetimeLabel(lt, ddg).c_str(), lt.link,
                           lt.cluster, def_c, use_c, expected));
            }
        }
    }
};

class FileRecountCheck final : public BuiltinCheck
{
  public:
    FileRecountCheck()
        : BuiltinCheck("queue.file-recount",
                       "per-file stats and aggregate pressure "
                       "numbers match a recount of the lifetimes",
                       ArtifactKind::QueueAlloc)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsQueueAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const QueueAllocation &alloc = *input.queues;
        const MachineModel &machine = *input.machine;

        std::vector<QueueFileStats> lrf(
            static_cast<size_t>(machine.numClusters()));
        std::vector<QueueFileStats> cqrf(
            static_cast<size_t>(machine.numLinks()));
        int total_storage = 0;
        for (const Lifetime &lt : alloc.lifetimes) {
            QueueFileStats *file = nullptr;
            if (lt.location == QueueLocation::Lrf) {
                if (lt.cluster >= 0 &&
                    lt.cluster < machine.numClusters())
                    file = &lrf[static_cast<size_t>(lt.cluster)];
            } else if (lt.link >= 0 &&
                       lt.link < machine.numLinks()) {
                file = &cqrf[static_cast<size_t>(lt.link)];
            }
            if (file == nullptr) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    lifetimeLocation(lt),
                    lifetimeLabel(lt, *input.ddg) +
                        " names a register file the machine does "
                        "not have");
                continue;
            }
            file->queues += 1;
            file->maxDepth = std::max(file->maxDepth, lt.depth);
            file->totalDepth += lt.depth;
            total_storage += lt.depth;
        }

        auto reportStats = [&](const QueueFileStats &got,
                               const QueueFileStats &want,
                               const DiagLocation &loc,
                               const char *what, int index) {
            if (got.queues == want.queues &&
                got.maxDepth == want.maxDepth &&
                got.totalDepth == want.totalDepth)
                return;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("%s %d records %d queues (max depth %d, "
                       "total %d) but the lifetimes need %d (max "
                       "depth %d, total %d)",
                       what, index, got.queues, got.maxDepth,
                       got.totalDepth, want.queues, want.maxDepth,
                       want.totalDepth));
        };

        if (alloc.lrf.size() != lrf.size() ||
            alloc.cqrf.size() != cqrf.size()) {
            sink.report(
                id(), Severity::Error, artifact(), DiagLocation(),
                strfmt("allocation has %zu LRFs and %zu CQRFs but "
                       "the machine has %zu clusters and %zu "
                       "links",
                       alloc.lrf.size(), alloc.cqrf.size(),
                       lrf.size(), cqrf.size()));
            return;
        }
        int max_per_file = 0;
        int max_per_link = 0;
        int links_used = 0;
        int files_used = 0;
        for (size_t c = 0; c < lrf.size(); ++c) {
            DiagLocation loc;
            loc.cluster = static_cast<ClusterId>(c);
            reportStats(alloc.lrf[c], lrf[c], loc, "LRF of cluster",
                        static_cast<int>(c));
            max_per_file = std::max(max_per_file, lrf[c].queues);
            files_used += lrf[c].queues > 0 ? 1 : 0;
        }
        for (size_t l = 0; l < cqrf.size(); ++l) {
            DiagLocation loc;
            loc.link = static_cast<int>(l);
            reportStats(alloc.cqrf[l], cqrf[l], loc, "CQRF of link",
                        static_cast<int>(l));
            max_per_file = std::max(max_per_file, cqrf[l].queues);
            max_per_link = std::max(max_per_link, cqrf[l].queues);
            links_used += cqrf[l].queues > 0 ? 1 : 0;
            files_used += cqrf[l].queues > 0 ? 1 : 0;
            if (static_cast<size_t>(l) < alloc.links.size() &&
                !(alloc.links[l] ==
                  machine.linkAt(static_cast<int>(l)))) {
                sink.report(
                    id(), Severity::Error, artifact(), loc,
                    strfmt("allocation link %zu is c%d->c%d but "
                           "the machine's link %zu is c%d->c%d",
                           l, alloc.links[l].src,
                           alloc.links[l].dst, l,
                           machine.linkAt(static_cast<int>(l)).src,
                           machine.linkAt(static_cast<int>(l))
                               .dst));
            }
        }

        auto reportAggregate = [&](int got, int want,
                                   const char *what) {
            if (got == want)
                return;
            sink.report(id(), Severity::Error, artifact(),
                        DiagLocation(),
                        strfmt("allocation records %s=%d but the "
                               "lifetimes give %d",
                               what, got, want));
        };
        reportAggregate(alloc.totalStorage, total_storage,
                        "totalStorage");
        reportAggregate(alloc.maxQueuesPerFile, max_per_file,
                        "maxQueuesPerFile");
        reportAggregate(alloc.maxQueuesPerLink, max_per_link,
                        "maxQueuesPerLink");
        reportAggregate(alloc.linksUsed, links_used, "linksUsed");
        reportAggregate(alloc.filesUsed, files_used, "filesUsed");
    }
};

class IndexOverlapCheck final : public BuiltinCheck
{
  public:
    IndexOverlapCheck()
        : BuiltinCheck("queue.index-overlap",
                       "queue indices are unique within each "
                       "register file",
                       ArtifactKind::QueueAlloc)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsQueueAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        // (is_cqrf, cluster-or-link, queueIndex) -> first lifetime.
        std::map<std::tuple<bool, int, int>, const Lifetime *>
            taken;
        for (const Lifetime &lt : input.queues->lifetimes) {
            if (lt.queueIndex < 0) {
                sink.report(id(), Severity::Error, artifact(),
                            lifetimeLocation(lt),
                            lifetimeLabel(lt, ddg) +
                                " was never assigned a queue "
                                "index");
                continue;
            }
            const bool cqrf = lt.location == QueueLocation::Cqrf;
            const int file = cqrf ? lt.link : lt.cluster;
            const auto [it, fresh] = taken.emplace(
                std::make_tuple(cqrf, file, lt.queueIndex), &lt);
            if (fresh)
                continue;
            sink.report(
                id(), Severity::Error, artifact(),
                lifetimeLocation(lt),
                strfmt("%s and %s both occupy queue %d of the "
                       "same %s",
                       lifetimeLabel(*it->second, ddg).c_str(),
                       lifetimeLabel(lt, ddg).c_str(),
                       lt.queueIndex, cqrf ? "CQRF" : "LRF"));
        }
    }
};

class ShareOrderCheck final : public BuiltinCheck
{
  public:
    ShareOrderCheck()
        : BuiltinCheck("queue.share-order",
                       "lifetimes sharing a queue never overtake "
                       "each other's FIFO order",
                       ArtifactKind::QueueAlloc)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsQueueAudit(input) && input.sharing != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        const std::vector<Lifetime> &lts =
            input.queues->lifetimes;
        for (const SharedQueue &q : input.sharing->queues) {
            for (size_t i = 0; i < q.members.size(); ++i) {
                for (size_t j = i + 1; j < q.members.size(); ++j) {
                    const int ma = q.members[i];
                    const int mb = q.members[j];
                    if (ma < 0 ||
                        ma >= static_cast<int>(lts.size()) ||
                        mb < 0 ||
                        mb >= static_cast<int>(lts.size())) {
                        sink.report(
                            id(), Severity::Error, artifact(),
                            DiagLocation(),
                            strfmt("shared queue references "
                                   "lifetime %d outside the "
                                   "allocation's %zu lifetimes",
                                   ma < 0 || ma >= static_cast<int>(
                                                       lts.size())
                                       ? ma
                                       : mb,
                                   lts.size()));
                        continue;
                    }
                    checkPair(lts[static_cast<size_t>(ma)],
                              lts[static_cast<size_t>(mb)], ddg,
                              view, sink);
                }
            }
        }
    }

  private:
    void
    checkPair(const Lifetime &a, const Lifetime &b, const Ddg &ddg,
              const ScheduleView &view, DiagnosticSink &sink) const
    {
        if (a.location != b.location || a.cluster != b.cluster ||
            a.link != b.link) {
            sink.report(id(), Severity::Error, artifact(),
                        lifetimeLocation(a),
                        strfmt("%s and %s share a queue but live "
                               "in different register files",
                               lifetimeLabel(a, ddg).c_str(),
                               lifetimeLabel(b, ddg).c_str()));
            return;
        }
        const Phases pa = phasesOf(a, ddg, view);
        const Phases pb = phasesOf(b, ddg, view);
        if (!pa.known || !pb.known)
            return; // queue.span-mismatch reports these
        // FIFO order is consistent for all instance pairs iff no
        // multiple of II lies between (or on) the enter-phase
        // delta and the exit-phase delta: a multiple between them
        // means some pair of instances enters in one order and
        // exits in the other; a multiple on either delta means a
        // simultaneous enter or exit, impossible with one
        // write/read port.
        const int dp = pa.enter - pb.enter;
        const int dq = pa.exit - pb.exit;
        const int lo = std::min(dp, dq);
        const int hi = std::max(dp, dq);
        for (int k = lo / view.ii - 1; k <= hi / view.ii + 1;
             ++k) {
            const int mult = k * view.ii;
            if (mult < lo || mult > hi)
                continue;
            sink.report(
                id(), Severity::Error, artifact(),
                lifetimeLocation(a),
                strfmt("%s and %s share a queue but their "
                       "enter/exit phase deltas (%d, %d) straddle "
                       "%d = %d*II; instances would overtake in "
                       "the FIFO",
                       lifetimeLabel(a, ddg).c_str(),
                       lifetimeLabel(b, ddg).c_str(), dp, dq, mult,
                       k));
            return;
        }
    }
};

} // namespace

void
registerQueueChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<SpanMismatchCheck>());
    registry.add(std::make_unique<LocationCheck>());
    registry.add(std::make_unique<FileRecountCheck>());
    registry.add(std::make_unique<IndexOverlapCheck>());
    registry.add(std::make_unique<ShareOrderCheck>());
}

} // namespace lint
} // namespace dms
