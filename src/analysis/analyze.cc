#include "analysis/analyze.h"

#include "machine/desc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "workload/text.h"

namespace dms {

int
runChecks(const AnalysisInput &input, const std::string &subject,
          DiagnosticSink &sink)
{
    const int before = static_cast<int>(sink.diagnostics().size());
    sink.setSubject(subject);
    CheckRegistry::instance().runAll(input, sink);
    return static_cast<int>(sink.diagnostics().size()) - before;
}

int
lintMachineText(const std::string &text, const std::string &subject,
                DiagnosticSink &sink)
{
    AnalysisInput input;
    input.machineText = &text;
    MachineModel machine = MachineModel::unclustered(1);
    std::string error;
    if (machineFromText(text, machine, error))
        input.machine = &machine;
    return runChecks(input, subject, sink);
}

int
lintMachineTemplate(const std::string &tmpl,
                    const std::string &subject, DiagnosticSink &sink)
{
    AnalysisInput input;
    input.machineTemplate = &tmpl;
    // Semantic machine checks run on a representative expansion;
    // machine.template-expand covers the other cluster counts.
    const std::string expanded = expandMachineTemplate(tmpl, 4);
    MachineModel machine = MachineModel::unclustered(1);
    std::string error;
    if (machineFromText(expanded, machine, error)) {
        input.machineText = &expanded;
        input.machine = &machine;
    }
    return runChecks(input, subject, sink);
}

int
lintLoopText(const std::string &text, const std::string &subject,
             DiagnosticSink &sink, const MachineModel *machine)
{
    AnalysisInput input;
    input.loopText = &text;
    input.machine = machine;
    Loop loop;
    std::string error;
    const LatencyModel lat =
        machine != nullptr ? machine->latency() : LatencyModel();
    if (loopFromText(text, loop, error, lat))
        input.loop = &loop;
    return runChecks(input, subject, sink);
}

int
lintLoop(const Loop &loop, const std::string &subject,
         DiagnosticSink &sink)
{
    AnalysisInput input;
    input.loop = &loop;
    return runChecks(input, subject, sink);
}

int
lintServeStatsText(const std::string &text,
                   const std::string &subject, DiagnosticSink &sink)
{
    AnalysisInput input;
    input.serveStatsText = &text;
    ServeStats stats;
    std::string error;
    if (serveStatsFromText(text, stats, error))
        input.serveStats = &stats;
    return runChecks(input, subject, sink);
}

int
lintMetricsText(const std::string &text, const std::string &subject,
                DiagnosticSink &sink)
{
    AnalysisInput input;
    input.metricsText = &text;
    obs::MetricsSnapshot snapshot;
    std::string error;
    if (obs::metricsFromText(text, snapshot, error))
        input.metrics = &snapshot;
    return runChecks(input, subject, sink);
}

int
lintTraceText(const std::string &text, const std::string &subject,
              DiagnosticSink &sink)
{
    AnalysisInput input;
    input.traceText = &text;
    std::vector<std::vector<obs::TraceSpan>> traces;
    std::string error;
    if (obs::tracesFromJson(text, traces, error))
        input.traceSpans = &traces;
    return runChecks(input, subject, sink);
}

} // namespace dms
