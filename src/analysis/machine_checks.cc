/**
 * @file
 * Semantic lint of declarative machine descriptions. The checks
 * reparse the text themselves (machine.parse) and interrogate the
 * resulting model for configurations that are legal to construct
 * but cannot mean what the author intended: FU classes absent from
 * the whole machine, non-positive latencies for value-producing
 * opcodes, copy units on a machine whose register file never needs
 * them, and `$C` sweep templates that stop expanding for some
 * cluster counts.
 */

#include "analysis/builtin_checks.h"
#include "analysis/lint_util.h"
#include "machine/desc.h"
#include "support/diag.h"

namespace dms {
namespace lint {

namespace {

/** Key used for a FU class in the `fus` line of the text format. */
const char *
fuKeyName(FuClass cls)
{
    switch (cls) {
    case FuClass::LdSt:
        return "ldst";
    case FuClass::Add:
        return "add";
    case FuClass::Mul:
        return "mul";
    case FuClass::Copy:
        return "copy";
    case FuClass::kNumClasses:
        break;
    }
    return "?";
}

class MachineParseCheck final : public BuiltinCheck
{
  public:
    MachineParseCheck()
        : BuiltinCheck("machine.parse",
                       "machine description parses cleanly",
                       ArtifactKind::Machine)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.machineText != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        MachineModel machine = MachineModel::unclustered(1);
        std::string error;
        if (machineFromText(*input.machineText, machine, error))
            return;
        DiagLocation loc;
        std::string message;
        loc.line = splitErrorLine(error, message);
        sink.report(id(), Severity::Error, artifact(), loc, message);
    }
};

class FuDeadClassCheck final : public BuiltinCheck
{
  public:
    FuDeadClassCheck()
        : BuiltinCheck("machine.fu-dead-class",
                       "every useful FU class exists somewhere on "
                       "the machine",
                       ArtifactKind::Machine)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.machine != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        static const FuClass kUseful[] = {FuClass::LdSt,
                                          FuClass::Add,
                                          FuClass::Mul};
        DiagLocation loc;
        if (input.machineText != nullptr)
            loc.line = findKeyLine(*input.machineText, "fus");
        for (FuClass cls : kUseful) {
            if (input.machine->totalFus(cls) > 0)
                continue;
            sink.report(
                id(), Severity::Warning, artifact(), loc,
                strfmt("machine has no %s units in any cluster; "
                       "%s-class operations can never be scheduled",
                       fuKeyName(cls), fuClassName(cls)));
        }
    }
};

class LatencyNonpositiveCheck final : public BuiltinCheck
{
  public:
    LatencyNonpositiveCheck()
        : BuiltinCheck("machine.latency-nonpositive",
                       "value-producing opcodes have latency >= 1",
                       ArtifactKind::Machine)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.machine != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        for (int i = 0; i < kNumOpcodes; ++i) {
            const Opcode opc = static_cast<Opcode>(i);
            if (!producesValue(opc))
                continue;
            const int lat = input.machine->latencyOf(opc);
            if (lat >= 1)
                continue;
            DiagLocation loc;
            if (input.machineText != nullptr)
                loc.line = findEntryLine(
                    *input.machineText, "latency",
                    std::string(opcodeName(opc)) + "=");
            sink.report(
                id(), Severity::Warning, artifact(), loc,
                strfmt("latency %d for value-producing opcode %s; "
                       "results would be ready the cycle they "
                       "issue",
                       lat, opcodeName(opc)));
        }
    }
};

class CopyUnusedCheck final : public BuiltinCheck
{
  public:
    CopyUnusedCheck()
        : BuiltinCheck("machine.copy-unused",
                       "copy units only on machines whose register "
                       "file needs them",
                       ArtifactKind::Machine)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.machine != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        if (input.machine->regFileKind() != RegFileKind::Conventional)
            return;
        const int copies =
            input.machine->fusPerCluster(FuClass::Copy);
        if (copies == 0)
            return;
        DiagLocation loc;
        if (input.machineText != nullptr)
            loc.line = findKeyLine(*input.machineText, "fus");
        sink.report(
            id(), Severity::Warning, artifact(), loc,
            strfmt("%d copy unit%s per cluster on a conventional "
                   "register file; copy and move operations are "
                   "only inserted for queue files, so these units "
                   "are dead hardware",
                   copies, copies == 1 ? "" : "s"));
    }
};

class TemplateExpandCheck final : public BuiltinCheck
{
  public:
    TemplateExpandCheck()
        : BuiltinCheck("machine.template-expand",
                       "$C sweep template expands for every cluster "
                       "count",
                       ArtifactKind::MachineTemplate)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.machineTemplate != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        static const int kCounts[] = {1, 2, 4, 8};
        const int total =
            static_cast<int>(sizeof(kCounts) / sizeof(kCounts[0]));
        int failures = 0;
        int first_count = 0;
        std::string first_message;
        int first_line = 0;
        for (int clusters : kCounts) {
            const std::string text = expandMachineTemplate(
                *input.machineTemplate, clusters);
            MachineModel machine = MachineModel::unclustered(1);
            std::string error;
            if (machineFromText(text, machine, error))
                continue;
            ++failures;
            if (failures == 1) {
                first_count = clusters;
                // Expansion substitutes within lines, so the inner
                // line number maps 1:1 onto the template.
                first_line = splitErrorLine(error, first_message);
            }
        }
        if (failures == 0)
            return;
        DiagLocation loc;
        loc.line = first_line;
        sink.report(
            id(), Severity::Error, artifact(), loc,
            strfmt("template fails to expand for %d of %d cluster "
                   "counts (first at $C=%d: %s)",
                   failures, total, first_count,
                   first_message.c_str()));
    }
};

} // namespace

void
registerMachineChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<MachineParseCheck>());
    registry.add(std::make_unique<FuDeadClassCheck>());
    registry.add(std::make_unique<LatencyNonpositiveCheck>());
    registry.add(std::make_unique<CopyUnusedCheck>());
    registry.add(std::make_unique<TemplateExpandCheck>());
}

} // namespace lint
} // namespace dms
