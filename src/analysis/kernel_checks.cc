/**
 * @file
 * Emitted-kernel lint. The kernel's shape (row/stage/cluster of
 * every slot, stage count, one slot per scheduled op) is recomputed
 * from the raw schedule placements, and the queue annotations of
 * the emitted text are re-derived from the allocation's lifetimes
 * and searched for verbatim — so a kernel builder or emitter that
 * drifts from the schedule or the allocation is caught here.
 */

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/builtin_checks.h"
#include "support/diag.h"

namespace dms {
namespace lint {

namespace {

/** Mathematical mod: result in [0, m) for any sign of @p v. */
int
floorMod(int v, int m)
{
    const int r = v % m;
    return r < 0 ? r + m : r;
}

/** Mathematical floor division (toward -infinity). */
int
floorDiv(int v, int m)
{
    return (v - floorMod(v, m)) / m;
}

class KernelShapeCheck final : public BuiltinCheck
{
  public:
    KernelShapeCheck()
        : BuiltinCheck("kernel.shape",
                       "kernel rows/stages/slots match a "
                       "recomputation from the schedule",
                       ArtifactKind::Kernel)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.kernel != nullptr && input.ddg != nullptr &&
               input.schedule != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const PipelinedLoop &kernel = *input.kernel;
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        if (kernel.ii != view.ii ||
            static_cast<int>(kernel.rows.size()) != kernel.ii) {
            sink.report(
                id(), Severity::Error, artifact(), DiagLocation(),
                strfmt("kernel has II=%d and %zu rows but the "
                       "schedule's II is %d",
                       kernel.ii, kernel.rows.size(), view.ii));
            return;
        }

        int stages = 1;
        std::map<OpId, int> expected_row;
        for (OpId op : ddg.liveOps()) {
            if (!view.scheduled(op))
                continue;
            const int t = view.at(op).time;
            expected_row[op] = floorMod(t, view.ii);
            stages = std::max(stages, floorDiv(t, view.ii) + 1);
        }
        if (kernel.stageCount != stages) {
            sink.report(
                id(), Severity::Error, artifact(), DiagLocation(),
                strfmt("kernel records %d stages but the deepest "
                       "placement needs %d",
                       kernel.stageCount, stages));
        }

        std::map<OpId, int> seen;
        for (int r = 0; r < kernel.ii; ++r) {
            for (const KernelSlot &slot :
                 kernel.rows[static_cast<size_t>(r)]) {
                DiagLocation loc;
                loc.op = slot.op;
                loc.cycle = r;
                if (slot.op < 0 || slot.op >= ddg.numOps() ||
                    !ddg.opLive(slot.op) ||
                    !view.scheduled(slot.op)) {
                    sink.report(id(), Severity::Error, artifact(),
                                loc,
                                strfmt("row %d slots op %d, which "
                                       "is not a scheduled live "
                                       "operation",
                                       r, slot.op));
                    continue;
                }
                seen[slot.op] += 1;
                const Placement &p = view.at(slot.op);
                const int want_row = floorMod(p.time, view.ii);
                const int want_stage = floorDiv(p.time, view.ii);
                if (r != want_row || slot.stage != want_stage ||
                    slot.cluster != p.cluster ||
                    slot.fuClass != fuClassOf(ddg.op(slot.op).opc)) {
                    sink.report(
                        id(), Severity::Error, artifact(), loc,
                        strfmt("%s sits in row %d stage %d cluster "
                               "%d but cycle %d places it in row "
                               "%d stage %d cluster %d",
                               ddg.opLabel(slot.op).c_str(), r,
                               slot.stage, slot.cluster, p.time,
                               want_row, want_stage, p.cluster));
                }
            }
        }
        for (const auto &[op, row] : expected_row) {
            const auto it = seen.find(op);
            const int times = it == seen.end() ? 0 : it->second;
            if (times == 1)
                continue;
            DiagLocation loc;
            loc.op = op;
            loc.cycle = row;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("%s appears %d times in the kernel; every "
                       "scheduled op belongs in exactly one slot",
                       ddg.opLabel(op).c_str(), times));
        }
    }
};

class QueueAnnotationCheck final : public BuiltinCheck
{
  public:
    QueueAnnotationCheck()
        : BuiltinCheck("kernel.queue-annotation",
                       "emitted queue annotations match the "
                       "allocation's lifetimes",
                       ArtifactKind::Kernel)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.kernel != nullptr &&
               input.kernelText != nullptr &&
               input.queues != nullptr && input.ddg != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const QueueAllocation &alloc = *input.queues;

        // Expected annotation per producing op, re-derived from
        // the lifetime list (allocation order, like the emitter
        // documents).
        std::vector<std::string> notes(
            static_cast<size_t>(ddg.numOps()));
        for (const Lifetime &lt : alloc.lifetimes) {
            if (lt.def < 0 || lt.def >= ddg.numOps())
                continue; // queue.file-recount's concern
            std::string &note =
                notes[static_cast<size_t>(lt.def)];
            if (lt.location == QueueLocation::Lrf) {
                note += strfmt(">c%d.q%d", lt.cluster,
                               lt.queueIndex);
            } else if (lt.link >= 0 &&
                       static_cast<size_t>(lt.link) <
                           alloc.links.size()) {
                const InterClusterLink &link =
                    alloc.links[static_cast<size_t>(lt.link)];
                note += strfmt(">c%d-c%d.q%d", link.src, link.dst,
                               lt.queueIndex);
            }
        }

        for (const std::vector<KernelSlot> &row : input.kernel->rows) {
            for (const KernelSlot &slot : row) {
                if (slot.op < 0 || slot.op >= ddg.numOps())
                    continue; // kernel.shape's concern
                const std::string token =
                    strfmt("%s%d(s%d)%s",
                           opcodeName(ddg.op(slot.op).opc),
                           slot.op, slot.stage,
                           notes[static_cast<size_t>(slot.op)]
                               .c_str());
                if (input.kernelText->find(token) !=
                    std::string::npos)
                    continue;
                DiagLocation loc;
                loc.op = slot.op;
                loc.cluster = slot.cluster;
                sink.report(
                    id(), Severity::Error, artifact(), loc,
                    strfmt("emitted kernel lacks the token \"%s\" "
                           "expected for %s from the queue "
                           "allocation",
                           token.c_str(),
                           ddg.opLabel(slot.op).c_str()));
            }
        }
    }
};

} // namespace

void
registerKernelChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<KernelShapeCheck>());
    registry.add(std::make_unique<QueueAnnotationCheck>());
}

} // namespace lint
} // namespace dms
