#include "analysis/diagnostic.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

const char *
severityName(Severity s)
{
    switch (s) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "?";
}

const char *
artifactKindName(ArtifactKind kind)
{
    switch (kind) {
    case ArtifactKind::Machine:
        return "machine";
    case ArtifactKind::MachineTemplate:
        return "machine-template";
    case ArtifactKind::Loop:
        return "loop";
    case ArtifactKind::Schedule:
        return "schedule";
    case ArtifactKind::QueueAlloc:
        return "queue-alloc";
    case ArtifactKind::Kernel:
        return "kernel";
    case ArtifactKind::ServeStats:
        return "servestats";
    case ArtifactKind::Metrics:
        return "metrics";
    case ArtifactKind::Trace:
        return "trace";
    }
    return "?";
}

bool
DiagLocation::any() const
{
    return line > 0 || op != kInvalidOp || edge != kInvalidEdge ||
           cycle >= 0 || cluster != kInvalidCluster || link >= 0;
}

std::string
DiagLocation::str() const
{
    std::string out;
    auto append = [&](const std::string &part) {
        if (!out.empty())
            out += ", ";
        out += part;
    };
    if (op != kInvalidOp)
        append(strfmt("op %d", op));
    if (edge != kInvalidEdge)
        append(strfmt("edge %d", edge));
    if (cycle >= 0)
        append(strfmt("cycle %d", cycle));
    if (cluster != kInvalidCluster)
        append(strfmt("cluster %d", cluster));
    if (link >= 0)
        append(strfmt("link %d", link));
    return out;
}

std::string
Diagnostic::render() const
{
    std::string out = strfmt("%s[%s] ", severityName(severity),
                             checkId.c_str());
    out += subject;
    if (loc.line > 0)
        out += strfmt(":%d", loc.line);
    out += ": ";
    out += message;
    const std::string coords = loc.str();
    if (!coords.empty())
        out += strfmt(" (%s)", coords.c_str());
    return out;
}

void
DiagnosticSink::report(const char *check_id, Severity severity,
                       ArtifactKind artifact,
                       const DiagLocation &loc, std::string message)
{
    Diagnostic d;
    d.checkId = check_id;
    d.severity = severity;
    d.artifact = artifact;
    d.subject = subject_;
    d.loc = loc;
    d.message = std::move(message);
    diags_.push_back(std::move(d));
}

int
DiagnosticSink::count(Severity s) const
{
    int n = 0;
    for (const Diagnostic &d : diags_) {
        if (d.severity == s)
            ++n;
    }
    return n;
}

Severity
DiagnosticSink::maxSeverity() const
{
    Severity max = Severity::Note;
    for (const Diagnostic &d : diags_)
        max = std::max(max, d.severity);
    return max;
}

int
DiagnosticSink::exitCode() const
{
    if (diags_.empty())
        return 0;
    return 1 + static_cast<int>(maxSeverity());
}

std::string
DiagnosticSink::renderText() const
{
    std::string out;
    for (const Diagnostic &d : diags_) {
        out += d.render();
        out += "\n";
    }
    return out;
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
DiagnosticSink::renderJson() const
{
    std::string out = "[\n";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        out += strfmt("  {\"check\": \"%s\", \"severity\": \"%s\", "
                      "\"artifact\": \"%s\", \"subject\": \"%s\"",
                      jsonEscape(d.checkId).c_str(),
                      severityName(d.severity),
                      artifactKindName(d.artifact),
                      jsonEscape(d.subject).c_str());
        if (d.loc.line > 0)
            out += strfmt(", \"line\": %d", d.loc.line);
        if (d.loc.op != kInvalidOp)
            out += strfmt(", \"op\": %d", d.loc.op);
        if (d.loc.edge != kInvalidEdge)
            out += strfmt(", \"edge\": %d", d.loc.edge);
        if (d.loc.cycle >= 0)
            out += strfmt(", \"cycle\": %d", d.loc.cycle);
        if (d.loc.cluster != kInvalidCluster)
            out += strfmt(", \"cluster\": %d", d.loc.cluster);
        if (d.loc.link >= 0)
            out += strfmt(", \"link\": %d", d.loc.link);
        out += strfmt(", \"message\": \"%s\"}%s\n",
                      jsonEscape(d.message).c_str(),
                      i + 1 < diags_.size() ? "," : "");
    }
    out += "]\n";
    return out;
}

} // namespace dms
