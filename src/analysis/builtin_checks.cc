#include "analysis/builtin_checks.h"

namespace dms {

void
registerBuiltinChecks(CheckRegistry &registry)
{
    lint::registerMachineChecks(registry);
    lint::registerLoopChecks(registry);
    lint::registerScheduleChecks(registry);
    lint::registerQueueChecks(registry);
    lint::registerKernelChecks(registry);
    lint::registerServeChecks(registry);
    lint::registerObsChecks(registry);
}

} // namespace dms
