#ifndef DMS_ANALYSIS_LINT_UTIL_H
#define DMS_ANALYSIS_LINT_UTIL_H

/**
 * @file
 * Small shared helpers for the builtin checkers: locating keys in
 * the line-oriented text formats and splitting the "line N: "
 * prefix the parsers put on their errors. Internal to
 * src/analysis/.
 */

#include <string>
#include <string_view>

namespace dms {
namespace lint {

/**
 * Parse a leading "line N: " prefix out of a parser error.
 * Returns N (and strips the prefix from @p message) or 0 when the
 * error carries no line.
 */
int splitErrorLine(const std::string &error, std::string &message);

/**
 * 1-based number of the first non-comment line whose first token
 * equals @p key; 0 when absent.
 */
int findKeyLine(const std::string &text, std::string_view key);

/**
 * 1-based number of the first line whose first token equals
 * @p key and which contains a token starting with @p entry_prefix
 * (e.g. key "latency", prefix "mul="); 0 when absent.
 */
int findEntryLine(const std::string &text, std::string_view key,
                  std::string_view entry_prefix);

/**
 * 1-based line of the @p index-th (0-based) occurrence of a line
 * whose first token equals @p key; 0 when there are fewer. The
 * loop format assigns DDG op ids in file order, so the line of op
 * k is the k-th "op" line.
 */
int findNthKeyLine(const std::string &text, std::string_view key,
                   int index);

} // namespace lint
} // namespace dms

#endif // DMS_ANALYSIS_LINT_UTIL_H
