#ifndef DMS_ANALYSIS_BUILTIN_CHECKS_H
#define DMS_ANALYSIS_BUILTIN_CHECKS_H

/**
 * @file
 * Internal glue for the builtin checker families. Each family lives
 * in its own translation unit (machine_checks.cc, loop_checks.cc,
 * schedule_checks.cc, queue_checks.cc, kernel_checks.cc) and
 * registers through one of the functions below;
 * registerBuiltinChecks() in builtin_checks.cc fans out to all of
 * them.
 */

#include "analysis/check.h"

namespace dms {
namespace lint {

/** Boilerplate base: stores the id/description/artifact triple. */
class BuiltinCheck : public Check
{
  public:
    BuiltinCheck(const char *id, const char *description,
                 ArtifactKind artifact)
        : id_(id), description_(description), artifact_(artifact)
    {
    }

    const char *id() const override { return id_; }
    const char *description() const override { return description_; }
    ArtifactKind artifact() const override { return artifact_; }

  private:
    const char *id_;
    const char *description_;
    ArtifactKind artifact_;
};

void registerMachineChecks(CheckRegistry &registry);
void registerLoopChecks(CheckRegistry &registry);
void registerScheduleChecks(CheckRegistry &registry);
void registerQueueChecks(CheckRegistry &registry);
void registerKernelChecks(CheckRegistry &registry);
void registerServeChecks(CheckRegistry &registry);
void registerObsChecks(CheckRegistry &registry);

} // namespace lint
} // namespace dms

#endif // DMS_ANALYSIS_BUILTIN_CHECKS_H
