/**
 * @file
 * Modulo-schedule audit. Everything here is recomputed from the raw
 * placements in the ScheduleView — reservation rows are recounted
 * op by op, dependence slack is re-evaluated straight from the
 * formula, and the II lower bound is re-derived from live op counts
 * — so the audit cannot inherit a bug from the reservation table or
 * the scheduler that produced the placements.
 */

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/builtin_checks.h"
#include "sched/priority.h"
#include "support/diag.h"

namespace dms {
namespace lint {

namespace {

/** Mathematical mod: result in [0, m) for any sign of @p v. */
int
floorMod(int v, int m)
{
    const int r = v % m;
    return r < 0 ? r + m : r;
}

bool
wantsScheduleAudit(const AnalysisInput &input)
{
    return input.machine != nullptr && input.ddg != nullptr &&
           input.schedule != nullptr;
}

class UnscheduledOpCheck final : public BuiltinCheck
{
  public:
    UnscheduledOpCheck()
        : BuiltinCheck("sched.unscheduled-op",
                       "every live operation has a placement",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.ddg != nullptr && input.schedule != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        for (OpId op : input.ddg->liveOps()) {
            if (input.schedule->scheduled(op))
                continue;
            DiagLocation loc;
            loc.op = op;
            sink.report(id(), Severity::Error, artifact(), loc,
                        strfmt("live operation %s has no placement",
                               input.ddg->opLabel(op).c_str()));
        }
    }
};

class ResourceOveruseCheck final : public BuiltinCheck
{
  public:
    ResourceOveruseCheck()
        : BuiltinCheck("sched.resource-overuse",
                       "modulo reservation rows recounted from raw "
                       "placements fit the FU counts",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsScheduleAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        const MachineModel &machine = *input.machine;
        if (view.ii < 1) {
            sink.report(id(), Severity::Error, artifact(),
                        DiagLocation(),
                        strfmt("initiation interval %d is not "
                               "positive",
                               view.ii));
            return;
        }
        // (cluster, class, row) -> ops issued there.
        std::map<std::tuple<int, int, int>, std::vector<OpId>> rows;
        for (OpId op : ddg.liveOps()) {
            if (!view.scheduled(op))
                continue;
            const Placement &p = view.at(op);
            const FuClass cls = fuClassOf(ddg.op(op).opc);
            const int row = floorMod(p.time, view.ii);
            rows[{p.cluster, static_cast<int>(cls), row}].push_back(
                op);
            const int limit = machine.fusPerCluster(cls);
            if (p.fuInstance < 0 || p.fuInstance >= limit) {
                DiagLocation loc;
                loc.op = op;
                loc.cycle = row;
                loc.cluster = p.cluster;
                sink.report(
                    id(), Severity::Error, artifact(), loc,
                    strfmt("%s uses %s unit %d but cluster %d has "
                           "%d",
                           ddg.opLabel(op).c_str(),
                           fuClassName(cls), p.fuInstance,
                           p.cluster, limit));
            }
        }
        for (const auto &[key, ops] : rows) {
            const auto [cluster, cls_int, row] = key;
            const FuClass cls = static_cast<FuClass>(cls_int);
            const int limit = machine.fusPerCluster(cls);
            DiagLocation loc;
            loc.cycle = row;
            loc.cluster = cluster;
            if (static_cast<int>(ops.size()) > limit) {
                sink.report(
                    id(), Severity::Error, artifact(), loc,
                    strfmt("%zu %s ops share modulo row %d of "
                           "cluster %d but it has only %d unit%s",
                           ops.size(), fuClassName(cls), row,
                           cluster, limit, limit == 1 ? "" : "s"));
            }
            // Distinct ops on the same physical instance collide
            // even when the row as a whole is not oversubscribed.
            std::map<int, OpId> byInstance;
            for (OpId op : ops) {
                const int inst = view.at(op).fuInstance;
                const auto [it, fresh] =
                    byInstance.emplace(inst, op);
                if (fresh)
                    continue;
                DiagLocation dup = loc;
                dup.op = op;
                sink.report(
                    id(), Severity::Error, artifact(), dup,
                    strfmt("%s and %s both occupy %s unit %d of "
                           "cluster %d in modulo row %d",
                           ddg.opLabel(it->second).c_str(),
                           ddg.opLabel(op).c_str(),
                           fuClassName(cls), inst, cluster, row));
            }
        }
    }
};

class DepLatencyCheck final : public BuiltinCheck
{
  public:
    DepLatencyCheck()
        : BuiltinCheck("sched.dep-latency",
                       "every active dependence satisfies "
                       "t(dst) >= t(src) + lat - II*dist",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.ddg != nullptr && input.schedule != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            if (!ddg.edgeActive(e))
                continue;
            const Edge &edge = ddg.edge(e);
            if (!view.scheduled(edge.src) ||
                !view.scheduled(edge.dst))
                continue;
            const int earliest = view.at(edge.src).time +
                                 edge.latency -
                                 view.ii * edge.distance;
            const int actual = view.at(edge.dst).time;
            if (actual >= earliest)
                continue;
            DiagLocation loc;
            loc.edge = e;
            loc.op = edge.dst;
            loc.cycle = actual;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("%s dependence %s -> %s violated: dst at "
                       "cycle %d, but src at %d with latency %d "
                       "and distance %d requires >= %d",
                       depKindName(edge.kind),
                       ddg.opLabel(edge.src).c_str(),
                       ddg.opLabel(edge.dst).c_str(), actual,
                       view.at(edge.src).time, edge.latency,
                       edge.distance, earliest));
        }
    }
};

class HeightConsistencyCheck final : public BuiltinCheck
{
  public:
    HeightConsistencyCheck()
        : BuiltinCheck("sched.height-consistency",
                       "scheduling heights re-derived from first "
                       "principles converge at the schedule's II "
                       "and match the production table",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.ddg != nullptr && input.schedule != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const int ii = input.schedule->ii;
        if (ii < 1)
            return; // sched.resource-overuse reports this
        // Independent relaxation, deliberately unlike the
        // production code in sched/priority.cc: ascending-id
        // Bellman-Ford sweeps instead of a descending worklist, so
        // a bug in the delta-height ladder cannot echo here.
        std::vector<long> naive(
            static_cast<size_t>(ddg.numOps()), 0);
        long sweeps = static_cast<long>(ddg.numOps()) + 2;
        bool changed = true;
        while (changed && sweeps-- > 0) {
            changed = false;
            for (OpId v = 0; v < ddg.numOps(); ++v) {
                if (!ddg.opLive(v))
                    continue;
                long best = 0;
                for (EdgeId e : ddg.op(v).outs) {
                    if (!ddg.edgeActive(e))
                        continue;
                    const Edge &edge = ddg.edge(e);
                    const long through =
                        naive[static_cast<size_t>(edge.dst)] +
                        edge.latency -
                        static_cast<long>(ii) * edge.distance;
                    best = std::max(best, through);
                }
                if (best != naive[static_cast<size_t>(v)]) {
                    naive[static_cast<size_t>(v)] = best;
                    changed = true;
                }
            }
        }
        if (changed) {
            // Still relaxing after numOps sweeps: a positive-weight
            // cycle, i.e. the II is below the recurrence bound.
            sink.report(
                id(), Severity::Error, artifact(), DiagLocation(),
                strfmt("height relaxation does not converge at II "
                       "%d: the schedule's II is below the "
                       "recurrence-imposed minimum",
                       ii));
            return;
        }
        Heights produced;
        if (!tryComputeHeights(ddg, ii, produced)) {
            sink.report(
                id(), Severity::Error, artifact(), DiagLocation(),
                strfmt("computeHeights diverges at II %d but an "
                       "independent relaxation converges",
                       ii));
            return;
        }
        for (OpId v = 0; v < ddg.numOps(); ++v) {
            if (!ddg.opLive(v))
                continue;
            if (produced[static_cast<size_t>(v)] ==
                naive[static_cast<size_t>(v)])
                continue;
            DiagLocation loc;
            loc.op = v;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("height of %s at II %d is %lld but the "
                       "independent relaxation derives %ld",
                       ddg.opLabel(v).c_str(), ii,
                       static_cast<long long>(
                           produced[static_cast<size_t>(v)]),
                       naive[static_cast<size_t>(v)]));
        }
    }
};

class IiLowerBoundCheck final : public BuiltinCheck
{
  public:
    IiLowerBoundCheck()
        : BuiltinCheck("sched.ii-lower-bound",
                       "II is no smaller than the recomputed "
                       "resource minimum",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsScheduleAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const std::vector<int> counts =
            input.ddg->opCountByClass();
        int res_mii = 1;
        for (int c = 0; c < kNumFuClasses; ++c) {
            if (counts[static_cast<size_t>(c)] == 0)
                continue;
            const FuClass cls = static_cast<FuClass>(c);
            const int total = input.machine->totalFus(cls);
            if (total == 0) {
                sink.report(
                    id(), Severity::Error, artifact(),
                    DiagLocation(),
                    strfmt("%d %s ops but the machine has no %s "
                           "units; no II can schedule them",
                           counts[static_cast<size_t>(c)],
                           fuClassName(cls), fuClassName(cls)));
                return;
            }
            const int need =
                (counts[static_cast<size_t>(c)] + total - 1) /
                total;
            res_mii = std::max(res_mii, need);
        }
        if (input.schedule->ii >= res_mii)
            return;
        sink.report(
            id(), Severity::Error, artifact(), DiagLocation(),
            strfmt("II=%d is below the resource lower bound %d "
                   "recomputed from live op counts",
                   input.schedule->ii, res_mii));
    }
};

class CommHopCheck final : public BuiltinCheck
{
  public:
    CommHopCheck()
        : BuiltinCheck("sched.comm-hop",
                       "cross-cluster flow edges span exactly one "
                       "link of the topology",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsScheduleAudit(input) &&
               input.machine->clustered();
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            if (!ddg.edgeActive(e))
                continue;
            const Edge &edge = ddg.edge(e);
            if (edge.kind != DepKind::Flow)
                continue;
            if (!view.scheduled(edge.src) ||
                !view.scheduled(edge.dst))
                continue;
            const ClusterId a = view.at(edge.src).cluster;
            const ClusterId b = view.at(edge.dst).cluster;
            if (input.machine->directlyConnected(a, b))
                continue;
            DiagLocation loc;
            loc.edge = e;
            loc.op = edge.dst;
            loc.cluster = b;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("flow %s -> %s crosses from cluster %d to "
                       "%d, which are %d hops apart; values reach "
                       "only adjacent clusters (chains of moves "
                       "carry longer routes)",
                       ddg.opLabel(edge.src).c_str(),
                       ddg.opLabel(edge.dst).c_str(), a, b,
                       input.machine->distance(a, b)));
        }
    }
};

class MoveShapeCheck final : public BuiltinCheck
{
  public:
    MoveShapeCheck()
        : BuiltinCheck("sched.move-shape",
                       "every move forwards exactly one value one "
                       "hop",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return wantsScheduleAudit(input);
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        const ScheduleView &view = *input.schedule;
        for (OpId op : ddg.liveOps()) {
            if (ddg.op(op).origin != OpOrigin::MoveOp)
                continue;
            DiagLocation loc;
            loc.op = op;
            if (ddg.op(op).opc != Opcode::Move) {
                sink.report(
                    id(), Severity::Error, artifact(), loc,
                    strfmt("move-origin op has opcode %s",
                           opcodeName(ddg.op(op).opc)));
                continue;
            }
            const std::vector<EdgeId> ins = ddg.flowInputs(op);
            if (ins.size() != 1) {
                sink.report(
                    id(), Severity::Error, artifact(), loc,
                    strfmt("move has %zu flow inputs; a move "
                           "forwards exactly one value",
                           ins.size()));
                continue;
            }
            if (ddg.flowFanout(op) == 0) {
                sink.report(id(), Severity::Error, artifact(), loc,
                            "move forwards its value to nobody");
            }
            const OpId producer = ddg.edge(ins[0]).src;
            if (!view.scheduled(op) || !view.scheduled(producer))
                continue;
            const ClusterId from = view.at(producer).cluster;
            const ClusterId to = view.at(op).cluster;
            if (from != to &&
                input.machine->directlyConnected(from, to))
                continue;
            loc.cluster = to;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("move hop from cluster %d to %d is not one "
                       "link of the topology",
                       from, to));
        }
    }
};

class ChainBrokenCheck final : public BuiltinCheck
{
  public:
    ChainBrokenCheck()
        : BuiltinCheck("sched.chain-broken",
                       "every replaced edge is carried by a live "
                       "chain of moves",
                       ArtifactKind::Schedule)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.ddg != nullptr && input.schedule != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = *input.ddg;
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            if (!ddg.edgeLive(e) || !ddg.edge(e).replaced)
                continue;
            const Edge &edge = ddg.edge(e);
            if (reachesThroughMoves(ddg, edge.src, edge.dst))
                continue;
            DiagLocation loc;
            loc.edge = e;
            loc.op = edge.src;
            sink.report(
                id(), Severity::Error, artifact(), loc,
                strfmt("edge %s -> %s is marked replaced but no "
                       "chain of moves carries the value",
                       ddg.opLabel(edge.src).c_str(),
                       ddg.opLabel(edge.dst).c_str()));
        }
    }

  private:
    /**
     * BFS from @p src over active flow edges whose interior nodes
     * are all move operations, looking for @p dst.
     */
    static bool
    reachesThroughMoves(const Ddg &ddg, OpId src, OpId dst)
    {
        std::vector<char> seen(
            static_cast<size_t>(ddg.numOps()), 0);
        std::vector<OpId> frontier = {src};
        seen[static_cast<size_t>(src)] = 1;
        while (!frontier.empty()) {
            const OpId u = frontier.back();
            frontier.pop_back();
            for (EdgeId e : ddg.op(u).outs) {
                if (!ddg.edgeActive(e) ||
                    ddg.edge(e).kind != DepKind::Flow)
                    continue;
                const OpId v = ddg.edge(e).dst;
                if (v == dst)
                    return true;
                if (seen[static_cast<size_t>(v)] ||
                    ddg.op(v).origin != OpOrigin::MoveOp)
                    continue;
                seen[static_cast<size_t>(v)] = 1;
                frontier.push_back(v);
            }
        }
        return false;
    }
};

} // namespace

void
registerScheduleChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<UnscheduledOpCheck>());
    registry.add(std::make_unique<ResourceOveruseCheck>());
    registry.add(std::make_unique<DepLatencyCheck>());
    registry.add(std::make_unique<HeightConsistencyCheck>());
    registry.add(std::make_unique<IiLowerBoundCheck>());
    registry.add(std::make_unique<CommHopCheck>());
    registry.add(std::make_unique<MoveShapeCheck>());
    registry.add(std::make_unique<ChainBrokenCheck>());
}

} // namespace lint
} // namespace dms
