/**
 * @file
 * Lint of loop bodies (the DDG the schedulers consume). Beyond
 * reparsing the textual form, the checks look for graphs that are
 * structurally legal but almost certainly not what the author
 * meant: stores with no value to store, results nobody reads, and
 * arithmetic whose operands are all implicitly loop-invariant.
 * Locations carry the op id and, when the text is available, the
 * 1-based line of the op's `op` directive (the k-th op line defines
 * DDG op k).
 */

#include "analysis/builtin_checks.h"
#include "analysis/lint_util.h"
#include "support/diag.h"
#include "workload/text.h"

namespace dms {
namespace lint {

namespace {

/** Location of op @p op: op coordinate plus text line when known. */
DiagLocation
opLocation(const AnalysisInput &input, OpId op)
{
    DiagLocation loc;
    loc.op = op;
    if (input.loopText != nullptr)
        loc.line = findNthKeyLine(*input.loopText, "op", op);
    return loc;
}

class LoopParseCheck final : public BuiltinCheck
{
  public:
    LoopParseCheck()
        : BuiltinCheck("loop.parse",
                       "loop description parses cleanly",
                       ArtifactKind::Loop)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.loopText != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const LatencyModel lat =
            input.latency != nullptr
                ? *input.latency
                : (input.machine != nullptr
                       ? input.machine->latency()
                       : LatencyModel());
        Loop loop;
        std::string error;
        if (loopFromText(*input.loopText, loop, error, lat))
            return;
        DiagLocation loc;
        std::string message;
        loc.line = splitErrorLine(error, message);
        sink.report(id(), Severity::Error, artifact(), loc, message);
    }
};

class StoreNoValueCheck final : public BuiltinCheck
{
  public:
    StoreNoValueCheck()
        : BuiltinCheck("loop.store-no-value",
                       "every store is fed a value by a flow edge",
                       ArtifactKind::Loop)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.loop != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = input.loop->ddg;
        for (OpId op : ddg.liveOps()) {
            if (ddg.op(op).opc != Opcode::Store)
                continue;
            if (!ddg.flowInputs(op).empty())
                continue;
            sink.report(id(), Severity::Error, artifact(),
                        opLocation(input, op),
                        "store has no flow edge feeding the value "
                        "to write");
        }
    }
};

class DeadOpCheck final : public BuiltinCheck
{
  public:
    DeadOpCheck()
        : BuiltinCheck("loop.dead-op",
                       "every produced value has a consumer",
                       ArtifactKind::Loop)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.loop != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = input.loop->ddg;
        for (OpId op : ddg.liveOps()) {
            const Opcode opc = ddg.op(op).opc;
            if (!producesValue(opc))
                continue;
            if (ddg.flowFanout(op) > 0)
                continue;
            sink.report(
                id(), Severity::Warning, artifact(),
                opLocation(input, op),
                strfmt("result of %s is never used (no flow "
                       "out-edge); the op is dead work every "
                       "iteration",
                       opcodeName(opc)));
        }
    }
};

class DanglingOperandCheck final : public BuiltinCheck
{
  public:
    DanglingOperandCheck()
        : BuiltinCheck("loop.dangling-operand",
                       "operations taking operands receive at least "
                       "one flow edge",
                       ArtifactKind::Loop)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.loop != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        const Ddg &ddg = input.loop->ddg;
        for (OpId op : ddg.liveOps()) {
            const Opcode opc = ddg.op(op).opc;
            // Stores are loop.store-no-value's concern.
            if (opcodeArity(opc) < 1 || opc == Opcode::Store)
                continue;
            if (!ddg.flowInputs(op).empty())
                continue;
            sink.report(
                id(), Severity::Note, artifact(),
                opLocation(input, op),
                strfmt("%s receives no flow edge on any operand "
                       "slot; all operands are assumed "
                       "loop-invariant",
                       opcodeName(opc)));
        }
    }
};

class NoncanonicalTextCheck final : public BuiltinCheck
{
  public:
    NoncanonicalTextCheck()
        : BuiltinCheck("loop.noncanonical-text",
                       "loop text is in the canonical loopToText "
                       "form",
                       ArtifactKind::Loop)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.loopText != nullptr && input.loop != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        if (*input.loopText == loopToText(*input.loop))
            return;
        sink.report(id(), Severity::Note, artifact(), DiagLocation(),
                    "text differs from the canonical loopToText "
                    "form; the serve cache keys on canonical text, "
                    "so equivalent spellings compile separately");
    }
};

} // namespace

void
registerLoopChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<LoopParseCheck>());
    registry.add(std::make_unique<StoreNoValueCheck>());
    registry.add(std::make_unique<DeadOpCheck>());
    registry.add(std::make_unique<DanglingOperandCheck>());
    registry.add(std::make_unique<NoncanonicalTextCheck>());
}

} // namespace lint
} // namespace dms
