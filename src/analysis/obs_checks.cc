/**
 * @file
 * Lint of the observability artifacts: `dmsmetrics v1` snapshots
 * (obs/metrics.h) and trace_event span exports (obs/trace.h). Like
 * every checker family, the audits re-derive their invariants from
 * first principles — summing histogram buckets instead of trusting
 * the count field, re-walking the span tree instead of trusting
 * the writer's nesting — so a bookkeeping bug in the metrics
 * registry or the tracer cannot certify its own output. Locations
 * carry the 1-based line of the offending metric line / span event
 * when the text is available.
 */

#include <cmath>

#include "analysis/builtin_checks.h"
#include "analysis/lint_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/diag.h"
#include "support/strings.h"

namespace dms {
namespace lint {

namespace {

/**
 * 1-based line of metric @p name in the dmsmetrics text: the line
 * whose *second* token is the name (the first is the kind). 0 when
 * unknown. findNthKeyLine keys on the first token, which here is
 * just "counter"/"gauge"/"histogram" — hence the local walk.
 */
int
metricLine(const std::string *text, const std::string &name)
{
    if (text == nullptr)
        return 0;
    int line_no = 0;
    for (const std::string &line : split(*text, '\n')) {
        ++line_no;
        std::vector<std::string> tokens;
        for (const std::string &t : split(trim(line), ' ')) {
            if (!t.empty())
                tokens.push_back(t);
        }
        if (tokens.size() >= 2 && tokens[1] == name)
            return line_no;
    }
    return 0;
}

class MetricsConsistencyCheck final : public BuiltinCheck
{
  public:
    MetricsConsistencyCheck()
        : BuiltinCheck("obs.metrics-consistency",
                       "metrics snapshot satisfies the histogram "
                       "conservation laws and counter identities",
                       ArtifactKind::Metrics)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.metrics != nullptr ||
               input.metricsText != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        obs::MetricsSnapshot parsed;
        const obs::MetricsSnapshot *metrics = input.metrics;
        if (metrics == nullptr) {
            std::string error;
            if (!obs::metricsFromText(*input.metricsText, parsed,
                                      error)) {
                DiagLocation loc;
                std::string message;
                loc.line = splitErrorLine(error, message);
                sink.report(id(), Severity::Error, artifact(), loc,
                            message);
                return;
            }
            metrics = &parsed;
        }
        auto flag = [&](const std::string &name,
                        std::string message) {
            DiagLocation loc;
            loc.line = metricLine(input.metricsText, name);
            sink.report(id(), Severity::Error, artifact(), loc,
                        std::move(message));
        };

        // Conservation: a histogram's count field is the number of
        // recorded samples, and every sample lands in exactly one
        // bucket — the bucket counts must sum to it. A non-empty
        // histogram also carries a positive max.
        for (const auto &h : metrics->histograms) {
            std::uint64_t in_buckets = 0;
            for (const auto &bucket : h.hist.buckets)
                in_buckets += bucket.second;
            if (in_buckets != h.hist.count)
                flag(h.name,
                     strfmt("histogram '%s' count %llu but its "
                            "buckets hold %llu samples",
                            h.name.c_str(),
                            static_cast<unsigned long long>(
                                h.hist.count),
                            static_cast<unsigned long long>(
                                in_buckets)));
            if (h.hist.count == 0 &&
                (h.hist.sumMs != 0.0 || h.hist.maxMs != 0.0))
                flag(h.name,
                     strfmt("histogram '%s' has zero samples but "
                            "sum %.17g / max %.17g",
                            h.name.c_str(), h.hist.sumMs,
                            h.hist.maxMs));
        }

        // A latency sample exists per resolved request: the serve
        // histogram can never hold more samples than requests were
        // ever made (the snapshot reads the histogram first, so a
        // torn concurrent snapshot errs in the safe direction).
        const auto *requests =
            metrics->findCounter("serve.requests");
        const auto *latency =
            metrics->findHistogram("serve.latency_ms");
        if (requests != nullptr && latency != nullptr &&
            latency->hist.count > requests->value)
            flag("serve.latency_ms",
                 strfmt("serve.latency_ms holds %llu samples but "
                        "only %llu requests were made",
                        static_cast<unsigned long long>(
                            latency->hist.count),
                        static_cast<unsigned long long>(
                            requests->value)));

        // Fault-injection pairs: a site only fires on a hit.
        for (const auto &c : metrics->counters) {
            const std::string suffix = ".fired";
            if (c.name.size() <= suffix.size() ||
                c.name.compare(c.name.size() - suffix.size(),
                               suffix.size(), suffix) != 0)
                continue;
            const std::string hits_name =
                c.name.substr(0, c.name.size() - suffix.size()) +
                ".hits";
            const auto *hits = metrics->findCounter(hits_name);
            if (hits != nullptr && c.value > hits->value)
                flag(c.name,
                     strfmt("%s %llu exceeds %s %llu",
                            c.name.c_str(),
                            static_cast<unsigned long long>(
                                c.value),
                            hits_name.c_str(),
                            static_cast<unsigned long long>(
                                hits->value)));
        }

        // Network identity (mirrors serve.stats-consistency):
        // every framing reject was a counted request line.
        const auto *net_requests =
            metrics->findCounter("net.requests");
        const auto *net_rejects =
            metrics->findCounter("net.framing_rejects");
        if (net_requests != nullptr && net_rejects != nullptr &&
            net_rejects->value > net_requests->value)
            flag("net.framing_rejects",
                 strfmt("framing rejects %llu exceed request "
                        "lines %llu",
                        static_cast<unsigned long long>(
                            net_rejects->value),
                        static_cast<unsigned long long>(
                            net_requests->value)));
    }
};

class TraceNestingCheck final : public BuiltinCheck
{
  public:
    TraceNestingCheck()
        : BuiltinCheck("obs.trace-nesting",
                       "trace spans form properly nested trees "
                       "with children inside their parents",
                       ArtifactKind::Trace)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.traceSpans != nullptr ||
               input.traceText != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        std::vector<std::vector<obs::TraceSpan>> parsed;
        const std::vector<std::vector<obs::TraceSpan>> *traces =
            input.traceSpans;
        if (traces == nullptr) {
            std::string error;
            if (!obs::tracesFromJson(*input.traceText, parsed,
                                     error)) {
                DiagLocation loc;
                std::string message;
                loc.line = splitErrorLine(error, message);
                sink.report(id(), Severity::Error, artifact(), loc,
                            message);
                return;
            }
            traces = &parsed;
        }

        // Span intervals print with microsecond precision to three
        // decimals; two independently rounded endpoints can
        // disagree by one printed unit.
        const double eps = 0.002;

        int tid = 0;
        for (const std::vector<obs::TraceSpan> &spans : *traces) {
            ++tid;
            for (size_t i = 0; i < spans.size(); ++i) {
                const obs::TraceSpan &span = spans[i];
                auto flag = [&](std::string message) {
                    DiagLocation loc;
                    loc.line = span.srcLine;
                    sink.report(id(), Severity::Error, artifact(),
                                loc, std::move(message));
                };
                if (span.durUs < 0.0) {
                    flag(strfmt("trace %d span %zu '%s' has "
                                "negative duration %.3f us",
                                tid, i, span.name.c_str(),
                                span.durUs));
                    continue;
                }
                if (span.parent < 0)
                    continue;
                // Span ids are open order: a parent is always
                // opened — and therefore indexed — before any of
                // its children.
                if (static_cast<size_t>(span.parent) >= i) {
                    flag(strfmt("trace %d span %zu '%s' claims "
                                "parent %d, which is not an "
                                "earlier span",
                                tid, i, span.name.c_str(),
                                span.parent));
                    continue;
                }
                const obs::TraceSpan &parent =
                    spans[static_cast<size_t>(span.parent)];
                const double child_end = span.startUs + span.durUs;
                const double parent_end =
                    parent.startUs + parent.durUs;
                if (span.startUs + eps < parent.startUs ||
                    child_end > parent_end + eps)
                    flag(strfmt(
                        "trace %d span %zu '%s' [%.3f, %.3f] "
                        "escapes its parent '%s' [%.3f, %.3f]",
                        tid, i, span.name.c_str(), span.startUs,
                        child_end, parent.name.c_str(),
                        parent.startUs, parent_end));
            }
        }
    }
};

} // namespace

void
registerObsChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<MetricsConsistencyCheck>());
    registry.add(std::make_unique<TraceNestingCheck>());
}

} // namespace lint
} // namespace dms
