#ifndef DMS_ANALYSIS_ANALYZE_H
#define DMS_ANALYSIS_ANALYZE_H

/**
 * @file
 * Entry points of the static-analysis layer, shared by the dmslint
 * CLI, the opt-in pipeline `analyze` stage (PipelineOptions::analyze
 * / DMS_ANALYZE=1) and the tests. Each helper assembles an
 * AnalysisInput for one artifact, stamps the sink's subject and
 * runs every applicable registered check; the return value is the
 * number of diagnostics the run added.
 */

#include <string>

#include "analysis/check.h"

namespace dms {

/** Run all checks applicable to @p input under @p subject. */
int runChecks(const AnalysisInput &input, const std::string &subject,
              DiagnosticSink &sink);

/** Lint one machine description text. */
int lintMachineText(const std::string &text,
                    const std::string &subject,
                    DiagnosticSink &sink);

/**
 * Lint one `$C` machine sweep template: expansion across cluster
 * counts plus the semantic machine checks on a representative
 * expansion.
 */
int lintMachineTemplate(const std::string &tmpl,
                        const std::string &subject,
                        DiagnosticSink &sink);

/**
 * Lint one loop description text. Flow-edge latencies come from
 * @p machine when given, else the default table.
 */
int lintLoopText(const std::string &text, const std::string &subject,
                 DiagnosticSink &sink,
                 const MachineModel *machine = nullptr);

/** Lint an in-memory loop (built-in kernels have no text form). */
int lintLoop(const Loop &loop, const std::string &subject,
             DiagnosticSink &sink);

/**
 * Lint one `servestats v1` counter snapshot (the text form
 * serveStatsToText emits). Parse failures are reported through the
 * sink like any other finding.
 */
int lintServeStatsText(const std::string &text,
                       const std::string &subject,
                       DiagnosticSink &sink);

/**
 * Lint one `dmsmetrics v1` snapshot (the text form metricsToText
 * emits, `dmsd --metrics-out` writes and the `metrics` wire verb
 * serves). Parse failures are reported through the sink.
 */
int lintMetricsText(const std::string &text,
                    const std::string &subject,
                    DiagnosticSink &sink);

/**
 * Lint one trace export (the Chrome trace_event JSON tracesToJson
 * emits and `dmsd --trace-out` writes). Parse failures are
 * reported through the sink.
 */
int lintTraceText(const std::string &text,
                  const std::string &subject, DiagnosticSink &sink);

} // namespace dms

#endif // DMS_ANALYSIS_ANALYZE_H
