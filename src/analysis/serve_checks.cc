/**
 * @file
 * Lint of ServeStats snapshots (the `servestats v1` text form that
 * serveStatsToText emits and dmsd prints). The consistency check
 * re-derives the service's counter identities from first principles
 * — which submit outcomes exist, which worker outcomes can make up
 * the difference — so a bookkeeping bug in CompileService cannot
 * certify its own stats. Locations carry the 1-based line of the
 * offending counter's `key value` line when the text is available.
 */

#include "analysis/builtin_checks.h"
#include "analysis/lint_util.h"
#include "serve/service.h"
#include "support/diag.h"

namespace dms {
namespace lint {

namespace {

/** Line of @p key's "key value" entry in the text, 0 when unknown. */
int
keyLine(const AnalysisInput &input, const char *key)
{
    if (input.serveStatsText == nullptr)
        return 0;
    return findNthKeyLine(*input.serveStatsText, key, 0);
}

class StatsConsistencyCheck final : public BuiltinCheck
{
  public:
    StatsConsistencyCheck()
        : BuiltinCheck("serve.stats-consistency",
                       "ServeStats counters satisfy the service's "
                       "accounting identities",
                       ArtifactKind::ServeStats)
    {
    }

    bool
    applicable(const AnalysisInput &input) const override
    {
        return input.serveStats != nullptr ||
               input.serveStatsText != nullptr;
    }

    void
    run(const AnalysisInput &input, DiagnosticSink &sink) const
        override
    {
        ServeStats parsed;
        const ServeStats *stats = input.serveStats;
        if (stats == nullptr) {
            std::string error;
            if (!serveStatsFromText(*input.serveStatsText, parsed,
                                    error)) {
                DiagLocation loc;
                std::string message;
                loc.line = splitErrorLine(error, message);
                sink.report(id(), Severity::Error, artifact(), loc,
                            message);
                return;
            }
            stats = &parsed;
        }
        const ServeStats &s = *stats;
        auto flag = [&](const char *key, std::string message) {
            DiagLocation loc;
            loc.line = keyLine(input, key);
            sink.report(id(), Severity::Error, artifact(), loc,
                        std::move(message));
        };

        // Every submit reaches at most one exclusive outcome: hit,
        // coalesced, miss (queued — or shed after counting as a
        // miss), invalid or quarantined. A submit-path fault can
        // bypass them all and surface as a Failed/Expired
        // resolution instead, so the outcomes may undershoot
        // requests — but never by more than failed + expired, and
        // never overshoot.
        const std::uint64_t outcomes = s.hits + s.coalesced +
                                       s.misses + s.invalid +
                                       s.quarantined;
        if (outcomes > s.requests)
            flag("requests",
                 strfmt("submit outcomes sum to %llu but only %llu "
                        "requests were made",
                        static_cast<unsigned long long>(outcomes),
                        static_cast<unsigned long long>(
                            s.requests)));
        else if (s.requests - outcomes > s.failed + s.expired)
            flag("requests",
                 strfmt("%llu requests have no recorded outcome "
                        "(outcomes %llu + failed %llu + expired "
                        "%llu cannot cover them)",
                        static_cast<unsigned long long>(
                            s.requests - outcomes),
                        static_cast<unsigned long long>(outcomes),
                        static_cast<unsigned long long>(s.failed),
                        static_cast<unsigned long long>(
                            s.expired)));

        // Shedding happens after the miss was counted: every shed
        // request is a subset of the misses.
        if (s.shed > s.misses)
            flag("shed",
                 strfmt("shed %llu exceeds misses %llu, but a "
                        "request is only shed after counting as a "
                        "miss",
                        static_cast<unsigned long long>(s.shed),
                        static_cast<unsigned long long>(s.misses)));

        // `rejected` is a derived counter, not its own tally.
        if (s.rejected != s.shed + s.quarantined)
            flag("rejected",
                 strfmt("rejected %llu != shed %llu + quarantined "
                        "%llu",
                        static_cast<unsigned long long>(s.rejected),
                        static_cast<unsigned long long>(s.shed),
                        static_cast<unsigned long long>(
                            s.quarantined)));

        // The queue never holds more than its configured bound.
        if (s.queueCapacity > 0 &&
            s.peakQueueDepth > s.queueCapacity)
            flag("peak_queue_depth",
                 strfmt("peak queue depth %d exceeds the configured "
                        "capacity %d",
                        s.peakQueueDepth, s.queueCapacity));
        if (s.queueDepth > s.peakQueueDepth)
            flag("queue_depth",
                 strfmt("current queue depth %d exceeds the "
                        "recorded peak %d",
                        s.queueDepth, s.peakQueueDepth));

        // Latency percentiles of one sample set are monotone.
        if (s.latencySamples > 0 &&
            (s.p50Ms > s.p90Ms || s.p90Ms > s.p99Ms ||
             s.p99Ms > s.maxMs))
            flag("requests",
                 strfmt("latency percentiles are not monotone "
                        "(p50 %.3f, p90 %.3f, p99 %.3f, max %.3f)",
                        s.p50Ms, s.p90Ms, s.p99Ms, s.maxMs));

        // Network front-end identities. Every framing reject is
        // both a counted request line and routed through the
        // service as an unparseable (invalid) request.
        if (s.netFramingRejects > s.netRequests)
            flag("net_framing_rejects",
                 strfmt("framing rejects %llu exceed request "
                        "lines %llu",
                        static_cast<unsigned long long>(
                            s.netFramingRejects),
                        static_cast<unsigned long long>(
                            s.netRequests)));
        if (s.netFramingRejects > s.invalid)
            flag("net_framing_rejects",
                 strfmt("framing rejects %llu exceed invalid "
                        "requests %llu, but every framing reject "
                        "is submitted as an invalid request",
                        static_cast<unsigned long long>(
                            s.netFramingRejects),
                        static_cast<unsigned long long>(
                            s.invalid)));

        // Request lines only exist on accepted connections, and
        // every counted line was read off the wire — at least its
        // newline byte is in net_bytes_in.
        if (s.netRequests > 0 && s.netConnections == 0)
            flag("net_requests",
                 strfmt("%llu request lines arrived over zero "
                        "connections",
                        static_cast<unsigned long long>(
                            s.netRequests)));
        if (s.netBytesIn < s.netRequests)
            flag("net_bytes_in",
                 strfmt("net bytes in %llu is below the request "
                        "line count %llu (every line carries at "
                        "least its newline)",
                        static_cast<unsigned long long>(
                            s.netBytesIn),
                        static_cast<unsigned long long>(
                            s.netRequests)));
    }
};

} // namespace

void
registerServeChecks(CheckRegistry &registry)
{
    registry.add(std::make_unique<StatsConsistencyCheck>());
}

} // namespace lint
} // namespace dms
