#include "workload/synth.h"

#include <algorithm>
#include <cmath>

#include "ir/scc.h"
#include "ir/verify.h"
#include "support/diag.h"

namespace dms {

namespace {

/**
 * Pick an input producer with locality bias: recent values are
 * more likely, modelling the short def-use distances of real loop
 * bodies.
 */
OpId
pickInput(Rng &rng, const std::vector<OpId> &producers)
{
    DMS_ASSERT(!producers.empty(), "no producers to pick from");
    int n = static_cast<int>(producers.size());
    // Square the uniform draw toward 1.0 -> bias to recent ids.
    double u = rng.uniform();
    int idx = static_cast<int>((1.0 - u * u) * n);
    idx = std::clamp(idx, 0, n - 1);
    return producers[static_cast<size_t>(idx)];
}

} // namespace

Loop
synthesizeLoop(Rng &rng, const SynthParams &params, int index)
{
    LoopBuilder b;
    LatencyModel lat;

    int n_ops = rng.range(params.minOps, params.maxOps);
    double load_frac = params.loadFracLo +
        rng.uniform() * (params.loadFracHi - params.loadFracLo);
    double store_frac = params.storeFracLo +
        rng.uniform() * (params.storeFracHi - params.storeFracLo);
    int n_loads = std::max(
        1, static_cast<int>(std::lround(n_ops * load_frac)));
    int n_stores = std::max(
        1, static_cast<int>(std::lround(n_ops * store_frac)));
    int n_arith = std::max(1, n_ops - n_loads - n_stores);

    int n_streams = rng.range(1, 4);

    // Loads first (values enter the body from memory).
    std::vector<OpId> producers;
    std::vector<OpId> loads;
    for (int i = 0; i < n_loads; ++i) {
        OpId ld = b.load(rng.range(0, n_streams - 1),
                         rng.range(0, 2));
        producers.push_back(ld);
        loads.push_back(ld);
    }

    // Arithmetic as a few statement-level expression trees, the
    // shape of real loop bodies (one tree per source statement,
    // leaves mostly this statement's loads, occasional shared
    // subexpressions across statements). Tree-like structure keeps
    // most values single-use; sharing creates the multi-use
    // lifetimes the pre-pass exists for.
    int n_statements =
        std::clamp(1 + n_arith / 6, 1, 4);
    std::vector<OpId> unary_arith;
    int made = 0;
    for (int s = 0; s < n_statements; ++s) {
        int quota = s + 1 == n_statements
                        ? n_arith - made
                        : n_arith / n_statements;
        // This statement's working set starts from a few loads.
        std::vector<OpId> avail;
        int leaves = rng.range(1, 3);
        for (int l = 0; l < leaves && !loads.empty(); ++l) {
            avail.push_back(loads[static_cast<size_t>(rng.range(
                0, static_cast<int>(loads.size()) - 1))]);
        }
        if (avail.empty())
            avail.push_back(pickInput(rng, producers));

        for (int i = 0; i < quota; ++i, ++made) {
            bool is_mul = rng.chance(params.mulFrac);
            bool is_div = is_mul && rng.chance(params.divProb);
            // Tree reduction: consume values from this statement,
            // rarely import one from the whole body (shared
            // subexpression).
            auto take = [&]() {
                if (rng.chance(0.12))
                    return pickInput(rng, producers);
                size_t idx = static_cast<size_t>(rng.range(
                    0, static_cast<int>(avail.size()) - 1));
                OpId v = avail[idx];
                // Mostly single-use: remove the consumed value.
                if (rng.chance(0.8))
                    avail.erase(avail.begin() +
                                static_cast<long>(idx));
                return v;
            };
            bool binary = avail.size() >= 2 && rng.chance(0.6);
            OpId a = take();
            OpId op;
            if (binary) {
                OpId c = take();
                op = is_div   ? b.div(a, c)
                     : is_mul ? b.mul(a, c)
                     : rng.chance(0.25) ? b.sub(a, c)
                                        : b.add(a, c);
            } else {
                op = is_mul ? b.mul1(a)
                     : rng.chance(0.25) ? b.sub1(a)
                                        : b.add1(a);
                unary_arith.push_back(op);
            }
            avail.push_back(op);
            producers.push_back(op);
        }
    }

    // Recurrences: back-edges into free slot-1 operands.
    bool wants_rec = rng.chance(params.recurrenceProb);
    int cycles = wants_rec
                     ? (rng.chance(params.secondRecurrenceProb) ? 2
                                                                : 1)
                     : 0;
    for (int k = 0; k < cycles && !unary_arith.empty(); ++k) {
        size_t pick = static_cast<size_t>(
            rng.range(0, static_cast<int>(unary_arith.size()) - 1));
        OpId head = unary_arith[pick];
        unary_arith.erase(unary_arith.begin() +
                          static_cast<long>(pick));
        int dist = rng.range(1, 2);
        if (rng.chance(params.longCycleProb)) {
            // Two-op cycle: head -> tail -> head.
            OpId tail = rng.chance(0.5) ? b.mul1(head)
                                        : b.add1(head);
            b.flow(tail, head, 1, dist);
            producers.push_back(tail);
        } else {
            b.flow(head, head, 1, dist);
        }
    }

    // Stores consume sink values (prefer late producers).
    std::vector<OpId> stores;
    for (int i = 0; i < n_stores; ++i) {
        // Find an unconsumed value if one exists.
        OpId best = kInvalidOp;
        for (OpId id = b.ddg().numOps() - 1; id >= 0; --id) {
            if (producesValue(b.ddg().op(id).opc) &&
                b.ddg().flowFanout(id) == 0) {
                best = id;
                break;
            }
        }
        if (best == kInvalidOp)
            best = pickInput(rng, producers);
        stores.push_back(
            b.store(n_streams + rng.range(0, 1), best, 0));
    }

    // Consume any remaining dead values with extra stores: real
    // loop bodies do not compute unused results.
    for (OpId id = 0; id < b.ddg().numOps(); ++id) {
        if (producesValue(b.ddg().op(id).opc) &&
            b.ddg().opLive(id) && b.ddg().flowFanout(id) == 0) {
            stores.push_back(b.store(n_streams + 2, id, 0));
        }
    }

    // Occasional memory ordering edge: a store aliasing a later
    // load one iteration out.
    if (!stores.empty() && rng.chance(params.memDepProb)) {
        OpId st = stores[static_cast<size_t>(
            rng.range(0, static_cast<int>(stores.size()) - 1))];
        OpId ld = loads[static_cast<size_t>(
            rng.range(0, static_cast<int>(loads.size()) - 1))];
        b.memDep(st, ld, rng.range(1, 2), 1);
    }

    Loop loop;
    loop.name = strfmt("synth%04d", index);
    loop.ddg = b.take();
    // Log-uniform trip count.
    double lo = std::log(static_cast<double>(params.tripLo));
    double hi = std::log(static_cast<double>(params.tripHi));
    loop.tripCount = static_cast<long>(
        std::lround(std::exp(lo + rng.uniform() * (hi - lo))));
    loop.recurrence = hasRecurrence(loop.ddg);
    return loop;
}

std::vector<Loop>
synthesizeSuite(std::uint64_t seed, int count,
                const SynthParams &params)
{
    Rng rng(seed);
    std::vector<Loop> out;
    out.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        Rng loop_rng = rng.fork();
        out.push_back(synthesizeLoop(loop_rng, params, i));
    }
    return out;
}

} // namespace dms
