#ifndef DMS_WORKLOAD_UNROLL_POLICY_H
#define DMS_WORKLOAD_UNROLL_POLICY_H

/**
 * @file
 * Unrolling policy (paper section 4: "The original body of many of
 * those loops do not present enough parallelism to saturate the FUs
 * of wide-issue machines. Hence, loop unrolling was performed to
 * provide additional operations to the scheduler whenever
 * necessary" [Lavery-Hwu]).
 *
 * The policy minimizes the analytic per-original-iteration
 * initiation rate II_est(u)/u, where II_est(u) =
 * max(u * RecMII_1, max over classes ceil(u * n_c / f_c)), picking
 * the smallest factor that achieves the minimum. At equal width the
 * clustered and unclustered machines have identical useful FU
 * counts, so both schedule the same unrolled body — the paper's
 * apples-to-apples comparison.
 */

#include "ir/ddg.h"
#include "machine/machine.h"

namespace dms {

/** Choose the unroll factor (1..maxFactor) for a body. */
int chooseUnrollFactor(const Ddg &ddg, const MachineModel &machine,
                       int max_factor = 8, int max_ops = 512);

/**
 * Unroll @p ddg per policy; returns the body to schedule (a plain
 * copy when the factor is 1).
 */
Ddg applyUnrollPolicy(const Ddg &ddg, const MachineModel &machine,
                      int max_factor = 8, int max_ops = 512);

/**
 * Arena-reusing variant: writes the body into @p out. The common
 * factor-1 case recycles @p out's buffers via Ddg::resetTo, so a
 * sweep that compiles loop after loop stops churning the allocator.
 */
void applyUnrollPolicy(const Ddg &ddg, const MachineModel &machine,
                       Ddg &out, int max_factor = 8,
                       int max_ops = 512);

} // namespace dms

#endif // DMS_WORKLOAD_UNROLL_POLICY_H
