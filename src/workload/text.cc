#include "workload/text.h"

#include <map>

#include "ir/scc.h"
#include "ir/verify.h"
#include "support/diag.h"
#include "support/strings.h"

namespace dms {

namespace {

Opcode
opcodeFromName(const std::string &name, int line)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        Opcode o = static_cast<Opcode>(i);
        if (name == opcodeName(o))
            return o;
    }
    fatal("line %d: unknown opcode '%s'", line, name.c_str());
}

DepKind
depKindFromName(const std::string &name, int line)
{
    if (name == "flow")
        return DepKind::Flow;
    if (name == "anti")
        return DepKind::Anti;
    if (name == "output")
        return DepKind::Output;
    if (name == "memory")
        return DepKind::Memory;
    fatal("line %d: unknown dependence kind '%s'", line,
          name.c_str());
}

/** Parse "key=value" attributes into a map. */
std::map<std::string, std::string>
attrs(const std::vector<std::string> &fields, size_t from, int line)
{
    std::map<std::string, std::string> out;
    for (size_t i = from; i < fields.size(); ++i) {
        auto kv = split(fields[i], '=');
        if (kv.size() != 2)
            fatal("line %d: bad attribute '%s'", line,
                  fields[i].c_str());
        out[kv[0]] = kv[1];
    }
    return out;
}

int
attrInt(const std::map<std::string, std::string> &a,
        const std::string &key, int fallback, int line)
{
    auto it = a.find(key);
    if (it == a.end())
        return fallback;
    int v = 0;
    if (!parseInt(it->second, v))
        fatal("line %d: bad integer for %s", line, key.c_str());
    return v;
}

std::vector<std::string>
tokens(const std::string &line)
{
    std::vector<std::string> out;
    for (const std::string &t : split(trim(line), ' ')) {
        if (!t.empty())
            out.push_back(t);
    }
    return out;
}

} // namespace

std::string
loopToText(const Loop &loop)
{
    std::string out = strfmt("loop %s trip %ld\n",
                             loop.name.c_str(), loop.tripCount);
    for (OpId id = 0; id < loop.ddg.numOps(); ++id) {
        if (!loop.ddg.opLive(id))
            continue;
        const Operation &o = loop.ddg.op(id);
        out += strfmt("op %d %s", id, opcodeName(o.opc));
        if (o.memStream >= 0)
            out += strfmt(" stream=%d", o.memStream);
        if (o.memOffset != 0)
            out += strfmt(" offset=%d", o.memOffset);
        if (o.opc == Opcode::Const)
            out += strfmt(" lit=%lld",
                          static_cast<long long>(o.literal));
        out += "\n";
    }
    for (EdgeId e = 0; e < loop.ddg.numEdges(); ++e) {
        if (!loop.ddg.edgeLive(e))
            continue;
        const Edge &ed = loop.ddg.edge(e);
        out += strfmt("edge %d %d %s dist=%d", ed.src, ed.dst,
                      depKindName(ed.kind), ed.distance);
        if (ed.kind == DepKind::Flow)
            out += strfmt(" slot=%d", ed.operandIndex);
        else
            out += strfmt(" lat=%d", ed.latency);
        out += "\n";
    }
    return out;
}

Loop
loopFromText(const std::string &text, const LatencyModel &lat)
{
    Loop loop;
    loop.name = "unnamed";
    std::map<int, OpId> ids; // file id -> ddg id

    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        auto f = tokens(line);

        if (f[0] == "loop") {
            if (f.size() < 2)
                fatal("line %d: loop needs a name", line_no);
            loop.name = f[1];
            if (f.size() >= 4 && f[2] == "trip") {
                int trip = 0;
                if (!parseInt(f[3], trip))
                    fatal("line %d: bad trip count", line_no);
                loop.tripCount = trip;
            }
        } else if (f[0] == "op") {
            if (f.size() < 3)
                fatal("line %d: op needs id and opcode", line_no);
            int fid = 0;
            if (!parseInt(f[1], fid))
                fatal("line %d: bad op id", line_no);
            if (ids.count(fid))
                fatal("line %d: duplicate op id %d", line_no, fid);
            Opcode opc = opcodeFromName(f[2], line_no);
            auto a = attrs(f, 3, line_no);
            OpId id = loop.ddg.addOp(opc);
            loop.ddg.op(id).memStream =
                attrInt(a, "stream", -1, line_no);
            loop.ddg.op(id).memOffset =
                attrInt(a, "offset", 0, line_no);
            loop.ddg.op(id).literal =
                attrInt(a, "lit", 0, line_no);
            ids[fid] = id;
        } else if (f[0] == "edge") {
            if (f.size() < 4)
                fatal("line %d: edge needs src dst kind", line_no);
            int src = 0;
            int dst = 0;
            if (!parseInt(f[1], src) || !parseInt(f[2], dst))
                fatal("line %d: bad edge endpoints", line_no);
            if (!ids.count(src) || !ids.count(dst))
                fatal("line %d: edge references unknown op",
                      line_no);
            DepKind kind = depKindFromName(f[3], line_no);
            auto a = attrs(f, 4, line_no);
            int dist = attrInt(a, "dist", 0, line_no);
            if (kind == DepKind::Flow) {
                int slot = attrInt(a, "slot", 0, line_no);
                OpId s = ids[src];
                loop.ddg.addEdge(s, ids[dst], kind, dist,
                                 lat.of(loop.ddg.op(s).opc), slot);
            } else {
                int fallback = kind == DepKind::Anti ? 0 : 1;
                int l = attrInt(a, "lat", fallback, line_no);
                loop.ddg.addEdge(ids[src], ids[dst], kind, dist, l);
            }
        } else {
            fatal("line %d: unknown directive '%s'", line_no,
                  f[0].c_str());
        }
    }

    auto problems = verifyDdg(loop.ddg);
    if (!problems.empty())
        fatal("invalid loop '%s': %s", loop.name.c_str(),
              problems[0].c_str());
    loop.recurrence = hasRecurrence(loop.ddg);
    return loop;
}

} // namespace dms
