#include "workload/text.h"

#include <fstream>
#include <map>
#include <sstream>

#include "ir/scc.h"
#include "ir/verify.h"
#include "support/diag.h"
#include "support/strings.h"

namespace dms {

namespace {

/**
 * Error-carrying parse state. Every helper returns false after
 * setError(); the public entry points either propagate the message
 * or fatal() with it, so the strict one-exit-per-line behaviour of
 * the original parser is preserved for the CLI while the service
 * can reject a request without dying.
 */
struct ParseState
{
    std::string error;

    __attribute__((format(printf, 2, 3))) bool
    fail(const char *fmt, ...)
    {
        va_list ap;
        va_start(ap, fmt);
        error = vstrfmt(fmt, ap);
        va_end(ap);
        return false;
    }
};

bool
opcodeFromName(const std::string &name, int line, Opcode &out,
               ParseState &ps)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        Opcode o = static_cast<Opcode>(i);
        if (name == opcodeName(o)) {
            out = o;
            return true;
        }
    }
    return ps.fail("line %d: unknown opcode '%s'", line,
                   name.c_str());
}

bool
depKindFromName(const std::string &name, int line, DepKind &out,
                ParseState &ps)
{
    if (name == "flow")
        out = DepKind::Flow;
    else if (name == "anti")
        out = DepKind::Anti;
    else if (name == "output")
        out = DepKind::Output;
    else if (name == "memory")
        out = DepKind::Memory;
    else
        return ps.fail("line %d: unknown dependence kind '%s'",
                       line, name.c_str());
    return true;
}

/** Parse "key=value" attributes into a map. */
bool
attrs(const std::vector<std::string> &fields, size_t from, int line,
      std::map<std::string, std::string> &out, ParseState &ps)
{
    out.clear();
    for (size_t i = from; i < fields.size(); ++i) {
        auto kv = split(fields[i], '=');
        if (kv.size() != 2)
            return ps.fail("line %d: bad attribute '%s'", line,
                           fields[i].c_str());
        out[kv[0]] = kv[1];
    }
    return true;
}

/**
 * Integer attribute lookup. @p allow_negative selects the signed
 * parse — offsets and const literals are signed in the format,
 * everything else (ids, distances, slots, latencies) is not.
 */
bool
attrInt(const std::map<std::string, std::string> &a,
        const std::string &key, int fallback, int line, int &out,
        ParseState &ps, bool allow_negative = false)
{
    auto it = a.find(key);
    if (it == a.end()) {
        out = fallback;
        return true;
    }
    bool ok = allow_negative ? parseSignedInt(it->second, out)
                             : parseInt(it->second, out);
    if (!ok)
        return ps.fail("line %d: bad integer for %s", line,
                       key.c_str());
    return true;
}

std::vector<std::string>
tokens(const std::string &line)
{
    std::vector<std::string> out;
    for (const std::string &t : split(trim(line), ' ')) {
        if (!t.empty())
            out.push_back(t);
    }
    return out;
}

} // namespace

std::string
loopToText(const Loop &loop)
{
    std::string out = strfmt("loop %s trip %ld\n",
                             loop.name.c_str(), loop.tripCount);
    // Canonical ids: live ops renumbered densely in id order, so a
    // graph with holes (dead ops) serializes identically to its
    // re-parsed self and the text is a stable cache key.
    std::map<OpId, int> dense;
    for (OpId id = 0; id < loop.ddg.numOps(); ++id) {
        if (!loop.ddg.opLive(id))
            continue;
        int fid = static_cast<int>(dense.size());
        dense[id] = fid;
        const Operation &o = loop.ddg.op(id);
        out += strfmt("op %d %s", fid, opcodeName(o.opc));
        if (o.memStream >= 0)
            out += strfmt(" stream=%d", o.memStream);
        if (o.memOffset != 0)
            out += strfmt(" offset=%d", o.memOffset);
        if (o.opc == Opcode::Const)
            out += strfmt(" lit=%lld",
                          static_cast<long long>(o.literal));
        out += "\n";
    }
    for (EdgeId e = 0; e < loop.ddg.numEdges(); ++e) {
        if (!loop.ddg.edgeLive(e))
            continue;
        const Edge &ed = loop.ddg.edge(e);
        out += strfmt("edge %d %d %s dist=%d", dense.at(ed.src),
                      dense.at(ed.dst), depKindName(ed.kind),
                      ed.distance);
        if (ed.kind == DepKind::Flow)
            out += strfmt(" slot=%d", ed.operandIndex);
        else
            out += strfmt(" lat=%d", ed.latency);
        out += "\n";
    }
    return out;
}

bool
loopFromText(const std::string &text, Loop &out, std::string &error,
             const LatencyModel &lat)
{
    ParseState ps;
    out = Loop();
    out.name = "unnamed";
    std::map<int, OpId> ids; // file id -> ddg id
    std::map<std::string, std::string> a;

    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        auto f = tokens(line);

        if (f[0] == "loop") {
            if (f.size() < 2) {
                ps.fail("line %d: loop needs a name", line_no);
                break;
            }
            out.name = f[1];
            if (f.size() >= 4 && f[2] == "trip") {
                int trip = 0;
                if (!parseInt(f[3], trip)) {
                    ps.fail("line %d: bad trip count", line_no);
                    break;
                }
                out.tripCount = trip;
            }
        } else if (f[0] == "op") {
            if (f.size() < 3) {
                ps.fail("line %d: op needs id and opcode", line_no);
                break;
            }
            int fid = 0;
            if (!parseInt(f[1], fid)) {
                ps.fail("line %d: bad op id", line_no);
                break;
            }
            if (ids.count(fid)) {
                ps.fail("line %d: duplicate op id %d", line_no,
                        fid);
                break;
            }
            Opcode opc = Opcode::Add;
            if (!opcodeFromName(f[2], line_no, opc, ps))
                break;
            if (!attrs(f, 3, line_no, a, ps))
                break;
            int stream = -1;
            int offset = 0;
            int literal = 0;
            if (!attrInt(a, "stream", -1, line_no, stream, ps) ||
                !attrInt(a, "offset", 0, line_no, offset, ps,
                         /*allow_negative=*/true) ||
                !attrInt(a, "lit", 0, line_no, literal, ps,
                         /*allow_negative=*/true)) {
                break;
            }
            OpId id = out.ddg.addOp(opc);
            out.ddg.op(id).memStream = stream;
            out.ddg.op(id).memOffset = offset;
            out.ddg.op(id).literal = literal;
            ids[fid] = id;
        } else if (f[0] == "edge") {
            if (f.size() < 4) {
                ps.fail("line %d: edge needs src dst kind",
                        line_no);
                break;
            }
            int src = 0;
            int dst = 0;
            if (!parseInt(f[1], src) || !parseInt(f[2], dst)) {
                ps.fail("line %d: bad edge endpoints", line_no);
                break;
            }
            if (!ids.count(src) || !ids.count(dst)) {
                ps.fail("line %d: edge references unknown op",
                        line_no);
                break;
            }
            DepKind kind = DepKind::Flow;
            if (!depKindFromName(f[3], line_no, kind, ps))
                break;
            if (!attrs(f, 4, line_no, a, ps))
                break;
            int dist = 0;
            if (!attrInt(a, "dist", 0, line_no, dist, ps))
                break;
            if (kind == DepKind::Flow) {
                int slot = 0;
                if (!attrInt(a, "slot", 0, line_no, slot, ps))
                    break;
                if (slot != 0 && slot != 1) {
                    ps.fail("line %d: flow slot must be 0 or 1 "
                            "(got %d)",
                            line_no, slot);
                    break;
                }
                OpId s = ids[src];
                if (!producesValue(out.ddg.op(s).opc)) {
                    ps.fail("line %d: flow edge from op %d, "
                            "which produces no value",
                            line_no, src);
                    break;
                }
                out.ddg.addEdge(s, ids[dst], kind, dist,
                                lat.of(out.ddg.op(s).opc), slot);
            } else {
                int fallback = kind == DepKind::Anti ? 0 : 1;
                int l = 0;
                if (!attrInt(a, "lat", fallback, line_no, l, ps))
                    break;
                out.ddg.addEdge(ids[src], ids[dst], kind, dist, l);
            }
        } else {
            ps.fail("line %d: unknown directive '%s'", line_no,
                    f[0].c_str());
            break;
        }
    }

    if (!ps.error.empty()) {
        error = ps.error;
        return false;
    }
    auto problems = verifyDdg(out.ddg);
    if (!problems.empty()) {
        error = strfmt("invalid loop '%s': %s", out.name.c_str(),
                       problems[0].c_str());
        return false;
    }
    out.recurrence = hasRecurrence(out.ddg);
    return true;
}

Loop
loopFromText(const std::string &text, const LatencyModel &lat)
{
    Loop loop;
    std::string error;
    if (!loopFromText(text, loop, error, lat))
        fatal("%s", error.c_str());
    return loop;
}

bool
loadLoopSpec(const std::string &spec, Loop &out, std::string &error,
             const LatencyModel &lat)
{
    if (spec.rfind("kernel:", 0) == 0) {
        std::string name = spec.substr(7);
        for (Loop &k : namedKernels()) {
            if (k.name == name) {
                out = std::move(k);
                return true;
            }
        }
        error = strfmt("unknown kernel '%s'", name.c_str());
        return false;
    }
    std::ifstream in(spec);
    if (!in) {
        error = strfmt("cannot open '%s'", spec.c_str());
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    return loopFromText(ss.str(), out, error, lat);
}

} // namespace dms
