#ifndef DMS_WORKLOAD_SYNTH_H
#define DMS_WORKLOAD_SYNTH_H

/**
 * @file
 * Synthetic loop generator. The paper evaluates on 1258 eligible
 * innermost loops of the Perfect Club Benchmark, which we cannot
 * redistribute; this generator produces seeded random DDGs whose
 * size, operation mix, fan-out and recurrence statistics follow the
 * characterizations of software-pipelinable numeric loops (see
 * DESIGN.md for the substitution argument).
 */

#include "support/rng.h"
#include "workload/kernels.h"

namespace dms {

/** Generator tuning knobs (defaults match DESIGN.md). */
struct SynthParams
{
    int minOps = 4;
    int maxOps = 44;

    /** Probability the loop carries at least one recurrence. */
    double recurrenceProb = 0.42;

    /** Probability of a second recurrence given the first. */
    double secondRecurrenceProb = 0.3;

    /** Probability a recurrence cycle is 2 ops long (else 1). */
    double longCycleProb = 0.45;

    /** Fraction ranges for the op mix. */
    double loadFracLo = 0.15;
    double loadFracHi = 0.4;
    double storeFracLo = 0.08;
    double storeFracHi = 0.2;
    double mulFrac = 0.42;   ///< of arithmetic ops
    double divProb = 0.03;   ///< a mul becomes a div

    /** Probability of a store->load memory ordering edge. */
    double memDepProb = 0.12;

    long tripLo = 30;
    long tripHi = 600;
};

/** Generate one random loop (deterministic in @p rng state). */
Loop synthesizeLoop(Rng &rng, const SynthParams &params, int index);

/**
 * The full synthetic suite: @p count loops from @p seed. The
 * default count matches the paper's 1258 eligible loops.
 */
std::vector<Loop> synthesizeSuite(std::uint64_t seed,
                                  int count = 1258,
                                  const SynthParams &params = {});

} // namespace dms

#endif // DMS_WORKLOAD_SYNTH_H
