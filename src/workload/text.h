#ifndef DMS_WORKLOAD_TEXT_H
#define DMS_WORKLOAD_TEXT_H

/**
 * @file
 * Human-readable DDG serialization, so loop bodies can be stored
 * in files, diffed, and fed to the command-line driver. Format:
 *
 *   # comment
 *   loop dot_product trip 500
 *   op 0 load stream=0
 *   op 1 load stream=1
 *   op 2 mul
 *   op 3 add
 *   op 4 store stream=2
 *   edge 0 2 flow dist=0 slot=0
 *   edge 1 2 flow dist=0 slot=1
 *   edge 2 3 flow dist=0 slot=0
 *   edge 3 3 flow dist=1 slot=1
 *   edge 3 4 flow dist=0 slot=0
 *
 * Flow-edge latencies come from the latency model at parse time;
 * non-flow edges take an explicit lat=N attribute (default 1 for
 * memory, 0 for anti, 1 for output).
 */

#include <string>

#include "workload/kernels.h"

namespace dms {

/** Serialize a loop (ops, edges, trip count). */
std::string loopToText(const Loop &loop);

/**
 * Parse the textual format. Latencies of flow edges are taken
 * from @p lat. fatal()s with a line number on malformed input.
 */
Loop loopFromText(const std::string &text,
                  const LatencyModel &lat = LatencyModel());

} // namespace dms

#endif // DMS_WORKLOAD_TEXT_H
