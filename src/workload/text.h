#ifndef DMS_WORKLOAD_TEXT_H
#define DMS_WORKLOAD_TEXT_H

/**
 * @file
 * Human-readable DDG serialization, so loop bodies can be stored
 * in files, diffed, and fed to the command-line driver and the
 * compile service. Format:
 *
 *   # comment
 *   loop dot_product trip 500
 *   op 0 load stream=0
 *   op 1 load stream=1
 *   op 2 mul
 *   op 3 add
 *   op 4 store stream=2
 *   edge 0 2 flow dist=0 slot=0
 *   edge 1 2 flow dist=0 slot=1
 *   edge 2 3 flow dist=0 slot=0
 *   edge 3 3 flow dist=1 slot=1
 *   edge 3 4 flow dist=0 slot=0
 *
 * Flow-edge latencies come from the latency model at parse time;
 * non-flow edges take an explicit lat=N attribute (default 1 for
 * memory, 0 for anti, 1 for output).
 *
 * loopToText emits the *canonical* form: live operations renumbered
 * densely from 0 in id order, edges in edge-id order, attributes in
 * a fixed order. Canonicalization is idempotent —
 * loopToText(loopFromText(t)) is a fixed point after one round trip
 * — which is what lets the serve cache key on the canonical text.
 */

#include <string>

#include "workload/kernels.h"

namespace dms {

/** Serialize a loop (ops, edges, trip count) in canonical form. */
std::string loopToText(const Loop &loop);

/**
 * Parse the textual format into @p out. Returns false and fills
 * @p error (prefixed "line N: " where applicable) on malformed
 * input; @p out is unspecified then. Flow-edge latencies are taken
 * from @p lat.
 */
bool loopFromText(const std::string &text, Loop &out,
                  std::string &error,
                  const LatencyModel &lat = LatencyModel());

/** Parsing front-end that fatal()s on malformed input. */
Loop loopFromText(const std::string &text,
                  const LatencyModel &lat = LatencyModel());

/**
 * Resolve a loop spec the way the CLI and the service both do:
 * "kernel:NAME" names a built-in kernel, anything else is a path
 * to a file in the textual format above. Returns false and fills
 * @p error on an unknown kernel, unreadable file, or parse error.
 */
bool loadLoopSpec(const std::string &spec, Loop &out,
                  std::string &error,
                  const LatencyModel &lat = LatencyModel());

} // namespace dms

#endif // DMS_WORKLOAD_TEXT_H
