#ifndef DMS_WORKLOAD_SUITE_H
#define DMS_WORKLOAD_SUITE_H

/**
 * @file
 * Benchmark suites mirroring the paper's evaluation setup: "all
 * eligible innermost loops" (set 1) and "only loops without
 * recurrences" (set 2), which are "highly vectorizable, having
 * characteristics similar to the ones usually found in DSP
 * applications".
 */

#include <vector>

#include "workload/kernels.h"
#include "workload/synth.h"

namespace dms {

/** Which loops of a suite an experiment uses. */
enum class LoopSet : std::uint8_t {
    Set1, ///< all loops
    Set2, ///< loops without recurrences only
};

/** The default seed used by every bench binary. */
inline constexpr std::uint64_t kSuiteSeed = 0x4d4d463939ULL;

/**
 * The standard experiment suite: 1258 synthetic loops (the paper's
 * loop count) plus the named kernels appended for grounding,
 * deterministic in the seed.
 */
std::vector<Loop> standardSuite(std::uint64_t seed = kSuiteSeed,
                                int synth_count = 1258);

/** Indices of the loops belonging to @p set. */
std::vector<size_t> selectSet(const std::vector<Loop> &suite,
                              LoopSet set);

} // namespace dms

#endif // DMS_WORKLOAD_SUITE_H
