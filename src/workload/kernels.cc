#include "workload/kernels.h"

#include "ir/scc.h"
#include "ir/verify.h"
#include "support/diag.h"

namespace dms {

LoopBuilder::LoopBuilder(LatencyModel lat) : lat_(lat) {}

OpId
LoopBuilder::load(int stream, int offset)
{
    OpId id = ddg_.addOp(Opcode::Load);
    ddg_.op(id).memStream = stream;
    ddg_.op(id).memOffset = offset;
    return id;
}

OpId
LoopBuilder::constant(std::int64_t v)
{
    OpId id = ddg_.addOp(Opcode::Const);
    ddg_.op(id).literal = v;
    return id;
}

OpId
LoopBuilder::binary(Opcode opc, OpId a, OpId b)
{
    OpId id = ddg_.addOp(opc);
    flow(a, id, 0, 0);
    flow(b, id, 1, 0);
    return id;
}

OpId
LoopBuilder::unary(Opcode opc, OpId a)
{
    OpId id = ddg_.addOp(opc);
    flow(a, id, 0, 0);
    return id;
}

OpId LoopBuilder::add(OpId a, OpId b) { return binary(Opcode::Add, a, b); }
OpId LoopBuilder::sub(OpId a, OpId b) { return binary(Opcode::Sub, a, b); }
OpId LoopBuilder::mul(OpId a, OpId b) { return binary(Opcode::Mul, a, b); }
OpId LoopBuilder::div(OpId a, OpId b) { return binary(Opcode::Div, a, b); }

OpId LoopBuilder::add1(OpId a) { return unary(Opcode::Add, a); }
OpId LoopBuilder::sub1(OpId a) { return unary(Opcode::Sub, a); }
OpId LoopBuilder::mul1(OpId a) { return unary(Opcode::Mul, a); }

OpId
LoopBuilder::store(int stream, OpId value, int offset)
{
    OpId id = ddg_.addOp(Opcode::Store);
    ddg_.op(id).memStream = stream;
    ddg_.op(id).memOffset = offset;
    flow(value, id, 0, 0);
    return id;
}

EdgeId
LoopBuilder::flow(OpId src, OpId dst, int slot, int distance)
{
    return ddg_.addEdge(src, dst, DepKind::Flow, distance,
                        lat_.of(ddg_.op(src).opc), slot);
}

EdgeId
LoopBuilder::memDep(OpId src, OpId dst, int distance, int latency)
{
    return ddg_.addEdge(src, dst, DepKind::Memory, distance, latency);
}

EdgeId
LoopBuilder::antiDep(OpId src, OpId dst, int distance)
{
    return ddg_.addEdge(src, dst, DepKind::Anti, distance, 0);
}

Ddg
LoopBuilder::take()
{
    checkDdg(ddg_);
    return std::move(ddg_);
}

namespace {

Loop
finish(const char *name, LoopBuilder &b, long trip)
{
    Loop loop;
    loop.name = name;
    loop.ddg = b.take();
    loop.tripCount = trip;
    loop.recurrence = hasRecurrence(loop.ddg);
    return loop;
}

} // namespace

// y[i] = a * x[i] + y[i]
Loop
kernelDaxpy()
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId y = b.load(1);
    OpId ax = b.mul1(x);       // a is loop-invariant
    OpId s = b.add(ax, y);
    b.store(1, s);
    return finish("daxpy", b, 400);
}

// acc += x[i] * y[i]
Loop
kernelDotProduct()
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId y = b.load(1);
    OpId p = b.mul(x, y);
    OpId acc = b.add1(p);
    b.flow(acc, acc, 1, 1);    // accumulator recurrence
    b.store(2, acc);
    return finish("dot_product", b, 500);
}

// y[i] = sum_k c[k] * x[i+k], 8 taps, coefficients invariant
Loop
kernelFir8()
{
    LoopBuilder b;
    std::vector<OpId> prods;
    for (int k = 0; k < 8; ++k) {
        OpId x = b.load(0, k);
        prods.push_back(b.mul1(x));
    }
    // Adder tree.
    while (prods.size() > 1) {
        std::vector<OpId> next;
        for (size_t i = 0; i + 1 < prods.size(); i += 2)
            next.push_back(b.add(prods[i], prods[i + 1]));
        if (prods.size() % 2)
            next.push_back(prods.back());
        prods = std::move(next);
    }
    b.store(1, prods[0]);
    return finish("fir8", b, 300);
}

// y[i] = b0*x[i] + a1*y[i-1] + a2*y[i-2]. The feedback taps are
// muls whose slot-1 operand is the loop-carried y value.
Loop
kernelIir2()
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId t0 = b.mul1(x);       // b0 * x[i]
    OpId f1 = b.mul1(t0);      // a1 * y[i-1] (slot1 = back-edge)
    OpId f2 = b.mul1(t0);      // a2 * y[i-2]
    OpId s1 = b.add(t0, f1);
    OpId y = b.add(s1, f2);
    b.flow(y, f1, 1, 1);
    b.flow(y, f2, 1, 2);
    b.store(1, y);
    return finish("iir2", b, 350);
}

// y[i] = c * (x[i-1] + x[i] + x[i+1]) with one rotating load:
// a single load feeds uses at distances 0, 1 and 2 (fan-out 3,
// exercising the single-use pre-pass across distances).
Loop
kernelStencil3()
{
    LoopBuilder b;
    OpId x = b.load(0, 1);      // x[i+1]
    OpId s01 = b.add1(x);       // x[i+1] + ...
    b.flow(x, s01, 1, 1);       // ... x[i] (previous load)
    OpId s012 = b.add1(s01);
    b.flow(x, s012, 1, 2);      // ... x[i-1]
    OpId y = b.mul1(s012);      // * c
    b.store(1, y);
    return finish("stencil3", b, 400);
}

// acc += a[row][i] * v[i] (same shape as dot, different mix)
Loop
kernelMatVecInner()
{
    LoopBuilder b;
    OpId a = b.load(0);
    OpId v = b.load(1);
    OpId a2 = b.load(2);
    OpId v2 = b.load(3);
    OpId p1 = b.mul(a, v);
    OpId p2 = b.mul(a2, v2);
    OpId s = b.add(p1, p2);
    OpId acc = b.add1(s);
    b.flow(acc, acc, 1, 1);
    b.store(4, acc);
    return finish("matvec_inner", b, 250);
}

// acc = acc * c[i] + c[i] — Horner-style multiply-accumulate
// recurrence: the mul's slot 1 is the previous accumulator.
Loop
kernelHorner()
{
    LoopBuilder b;
    OpId c = b.load(0);
    OpId m = b.mul1(c);        // c[i] * acc[i-1]
    OpId acc = b.add(m, c);
    b.flow(acc, m, 1, 1);
    b.store(1, acc);
    return finish("horner", b, 300);
}

// (ar + i*ai) * (br + i*bi): 4 loads, 4 muls, add+sub, 2 stores
Loop
kernelComplexMultiply()
{
    LoopBuilder b;
    OpId ar = b.load(0);
    OpId ai = b.load(1);
    OpId br = b.load(2);
    OpId bi = b.load(3);
    OpId rr = b.mul(ar, br);
    OpId ii = b.mul(ai, bi);
    OpId ri = b.mul(ar, bi);
    OpId ir = b.mul(ai, br);
    OpId re = b.sub(rr, ii);
    OpId im = b.add(ri, ir);
    b.store(4, re);
    b.store(5, im);
    return finish("complex_multiply", b, 256);
}

// Livermore loop 1 (hydro): x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
Loop
kernelLivermoreHydro()
{
    LoopBuilder b;
    OpId y = b.load(0);
    OpId z10 = b.load(1, 10);
    OpId z11 = b.load(1, 11);
    OpId rz = b.mul1(z10);
    OpId tz = b.mul1(z11);
    OpId s = b.add(rz, tz);
    OpId ys = b.mul(y, s);
    OpId x = b.add1(ys);       // + q
    b.store(2, x);
    return finish("livermore_hydro", b, 400);
}

// Livermore loop 5 (tri-diagonal): x[i] = z[i] * (y[i] - x[i-1])
Loop
kernelTridiagSolve()
{
    LoopBuilder b;
    OpId z = b.load(0);
    OpId y = b.load(1);
    OpId d = b.sub1(y);        // y[i] - x[i-1] (slot1 = back-edge)
    OpId x = b.mul(z, d);
    b.flow(x, d, 1, 1);
    b.store(2, x);
    return finish("tridiag_solve", b, 200);
}

// s[i] = s[i-1] + a[i]
Loop
kernelPrefixSum()
{
    LoopBuilder b;
    OpId a = b.load(0);
    OpId s = b.add1(a);
    b.flow(s, s, 1, 1);
    b.store(1, s);
    // The stored prefix also aliases the next load in real codes;
    // model the memory ordering.
    return finish("prefix_sum", b, 500);
}

// acc += x[i] * x[i]: one load with fan-out 2 into both mul slots
Loop
kernelVectorNorm()
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId sq = b.mul1(x);
    b.flow(x, sq, 1, 0);
    OpId acc = b.add1(sq);
    b.flow(acc, acc, 1, 1);
    b.store(1, acc);
    return finish("vector_norm", b, 450);
}

// 3x3 color-space conversion: 3 loads, 9 muls, 6 adds, 3 stores
Loop
kernelColorConvert()
{
    LoopBuilder b;
    OpId r = b.load(0);
    OpId g = b.load(1);
    OpId bl = b.load(2);
    for (int row = 0; row < 3; ++row) {
        OpId mr = b.mul1(r);
        OpId mg = b.mul1(g);
        OpId mb = b.mul1(bl);
        OpId s1 = b.add(mr, mg);
        OpId s2 = b.add(s1, mb);
        b.store(3 + row, s2);
    }
    return finish("color_convert", b, 640);
}

// Two accumulators over shifted products (autocorrelation lags)
Loop
kernelAutocorrelation()
{
    LoopBuilder b;
    OpId x0 = b.load(0, 0);
    OpId x1 = b.load(0, 1);
    OpId x2 = b.load(0, 2);
    OpId p0 = b.mul(x0, x1);
    OpId p1 = b.mul(x0, x2);
    OpId acc0 = b.add1(p0);
    b.flow(acc0, acc0, 1, 1);
    OpId acc1 = b.add1(p1);
    b.flow(acc1, acc1, 1, 1);
    b.store(1, acc0);
    b.store(2, acc1);
    return finish("autocorrelation", b, 380);
}

// Radix-2 FFT butterfly with invariant twiddle factors
Loop
kernelFftButterfly()
{
    LoopBuilder b;
    OpId ar = b.load(0);
    OpId ai = b.load(1);
    OpId br = b.load(2);
    OpId bi = b.load(3);
    OpId tr = b.sub(b.mul1(br), b.mul1(bi)); // w * b (real)
    OpId ti = b.add(b.mul1(br), b.mul1(bi)); // w * b (imag)
    b.store(4, b.add(ar, tr));
    b.store(5, b.add(ai, ti));
    b.store(6, b.sub(ar, tr));
    b.store(7, b.sub(ai, ti));
    return finish("fft_butterfly", b, 256);
}

// Division in a recurrence: long-latency cycle (RecMII stressor)
Loop
kernelMixedLongLatency()
{
    LoopBuilder b;
    OpId a = b.load(0);
    OpId d = b.sub1(a);        // a[i] - v[i-2] (slot1 = back-edge)
    OpId v = b.div(a, d);
    b.flow(v, d, 1, 2);
    b.store(1, v);
    return finish("mixed_long_latency", b, 150);
}

std::vector<Loop>
namedKernels()
{
    std::vector<Loop> out;
    out.push_back(kernelDaxpy());
    out.push_back(kernelDotProduct());
    out.push_back(kernelFir8());
    out.push_back(kernelIir2());
    out.push_back(kernelStencil3());
    out.push_back(kernelMatVecInner());
    out.push_back(kernelHorner());
    out.push_back(kernelComplexMultiply());
    out.push_back(kernelLivermoreHydro());
    out.push_back(kernelTridiagSolve());
    out.push_back(kernelPrefixSum());
    out.push_back(kernelVectorNorm());
    out.push_back(kernelColorConvert());
    out.push_back(kernelAutocorrelation());
    out.push_back(kernelFftButterfly());
    out.push_back(kernelMixedLongLatency());
    return out;
}

} // namespace dms
