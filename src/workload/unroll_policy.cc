#include "workload/unroll_policy.h"

#include <algorithm>

#include "ir/scc.h"
#include "ir/unroll.h"
#include "sched/mii.h"
#include "support/diag.h"

namespace dms {

int
chooseUnrollFactor(const Ddg &ddg, const MachineModel &machine,
                   int max_factor, int max_ops)
{
    // recMii() floors at 1 even for acyclic bodies; only a real
    // recurrence scales with the unroll factor.
    const int rec = hasRecurrence(ddg) ? recMii(ddg) : 0;
    const std::vector<int> counts = ddg.opCountByClass();

    double best_rate = 0.0;
    int best_u = 1;
    for (int u = 1; u <= max_factor; ++u) {
        if (u > 1 && u * ddg.liveOpCount() > max_ops)
            break;
        // Estimated II of the unrolled body, per original
        // iteration. Recurrence bounds scale linearly with u (u
        // consecutive original iterations chain through the cycle).
        int ii_est = std::max(1, u * rec);
        for (int cls = 0; cls < kNumFuClasses; ++cls) {
            int n = counts[static_cast<size_t>(cls)];
            if (n == 0)
                continue;
            int f = machine.totalFus(static_cast<FuClass>(cls));
            if (f == 0)
                continue; // copy ops appear only post-prepass
            ii_est = std::max(ii_est, (u * n + f - 1) / f);
        }
        double rate = static_cast<double>(ii_est) / u;
        if (u == 1 || rate < best_rate - 1e-9) {
            best_rate = rate;
            best_u = u;
        }
    }
    return best_u;
}

Ddg
applyUnrollPolicy(const Ddg &ddg, const MachineModel &machine,
                  int max_factor, int max_ops)
{
    int u = chooseUnrollFactor(ddg, machine, max_factor, max_ops);
    if (u == 1)
        return ddg;
    return unrollDdg(ddg, u);
}

void
applyUnrollPolicy(const Ddg &ddg, const MachineModel &machine,
                  Ddg &out, int max_factor, int max_ops)
{
    int u = chooseUnrollFactor(ddg, machine, max_factor, max_ops);
    if (u == 1)
        out.resetTo(ddg);
    else
        out = unrollDdg(ddg, u);
}

} // namespace dms
