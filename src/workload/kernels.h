#ifndef DMS_WORKLOAD_KERNELS_H
#define DMS_WORKLOAD_KERNELS_H

/**
 * @file
 * Hand-built DDGs of classic innermost loops from DSP and numeric
 * codes — the domains the paper targets. They serve as readable
 * examples, unit-test fixtures, and a sanity cross-check for the
 * synthetic suite.
 */

#include <string>
#include <vector>

#include "ir/ddg.h"

namespace dms {

/** A schedulable innermost loop. */
struct Loop
{
    std::string name;
    Ddg ddg;             ///< original body (unroll factor 1)
    long tripCount = 100;
    bool recurrence = false; ///< cached hasRecurrence(ddg)
};

/**
 * Small fluent helper for building loop bodies. Operand slots are
 * managed explicitly: binary helpers feed both slots; unary
 * variants leave slot 1 free (loop-invariant operand) so a
 * recurrence back-edge can claim it later.
 */
class LoopBuilder
{
  public:
    explicit LoopBuilder(LatencyModel lat = LatencyModel());

    OpId load(int stream, int offset = 0);
    OpId constant(std::int64_t v);

    OpId add(OpId a, OpId b);
    OpId sub(OpId a, OpId b);
    OpId mul(OpId a, OpId b);
    OpId div(OpId a, OpId b);

    /** Binary op with slot 1 loop-invariant (free for back-edges). */
    OpId add1(OpId a);
    OpId sub1(OpId a);
    OpId mul1(OpId a);

    OpId store(int stream, OpId value, int offset = 0);

    /** Raw flow edge (latency from the source opcode). */
    EdgeId flow(OpId src, OpId dst, int slot, int distance);

    /** Memory-ordering edge. */
    EdgeId memDep(OpId src, OpId dst, int distance, int latency = 1);

    /** Anti-dependence edge. */
    EdgeId antiDep(OpId src, OpId dst, int distance);

    const Ddg &ddg() const { return ddg_; }

    /** Finish: verifies and returns the body. */
    Ddg take();

  private:
    OpId binary(Opcode opc, OpId a, OpId b);
    OpId unary(Opcode opc, OpId a);

    Ddg ddg_;
    LatencyModel lat_;
};

/** @name The kernel collection */
/// @{
Loop kernelDaxpy();
Loop kernelDotProduct();
Loop kernelFir8();
Loop kernelIir2();
Loop kernelStencil3();
Loop kernelMatVecInner();
Loop kernelHorner();
Loop kernelComplexMultiply();
Loop kernelLivermoreHydro();
Loop kernelTridiagSolve();
Loop kernelPrefixSum();
Loop kernelVectorNorm();
Loop kernelColorConvert();
Loop kernelAutocorrelation();
Loop kernelFftButterfly();
Loop kernelMixedLongLatency();
/// @}

/** Every named kernel. */
std::vector<Loop> namedKernels();

} // namespace dms

#endif // DMS_WORKLOAD_KERNELS_H
