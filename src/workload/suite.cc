#include "workload/suite.h"

namespace dms {

std::vector<Loop>
standardSuite(std::uint64_t seed, int synth_count)
{
    std::vector<Loop> suite = synthesizeSuite(seed, synth_count);
    for (Loop &k : namedKernels())
        suite.push_back(std::move(k));
    return suite;
}

std::vector<size_t>
selectSet(const std::vector<Loop> &suite, LoopSet set)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < suite.size(); ++i) {
        if (set == LoopSet::Set1 || !suite[i].recurrence)
            idx.push_back(i);
    }
    return idx;
}

} // namespace dms
