#ifndef DMS_EVAL_RUNNER_H
#define DMS_EVAL_RUNNER_H

/**
 * @file
 * Experiment runner shared by all bench binaries: schedules every
 * loop of a suite on the clustered machine (DMS) and the
 * equal-width unclustered machine (IMS), after the same unrolling,
 * exactly like the paper's figures 4-6 setup.
 */

#include <vector>

#include "core/dms.h"
#include "workload/suite.h"

namespace dms {

/** One loop scheduled on one configuration. */
struct LoopRun
{
    bool ok = false;
    int ii = 0;
    int mii = 0;
    int stageCount = 0;
    int unrollFactor = 1;
    int movesInserted = 0;
    int copiesInserted = 0;

    /** Body iterations executed (tripCount / unrollFactor, >=1). */
    long iterations = 0;

    /** Total cycles via the modulo-schedule cycle model. */
    long cycles = 0;

    /** Useful instructions issued over the whole run. */
    long usefulIssues = 0;
};

/** Field-wise equality; used by determinism checks (jobs=1 vs N). */
inline bool
operator==(const LoopRun &a, const LoopRun &b)
{
    return a.ok == b.ok && a.ii == b.ii && a.mii == b.mii &&
           a.stageCount == b.stageCount &&
           a.unrollFactor == b.unrollFactor &&
           a.movesInserted == b.movesInserted &&
           a.copiesInserted == b.copiesInserted &&
           a.iterations == b.iterations && a.cycles == b.cycles &&
           a.usefulIssues == b.usefulIssues;
}

inline bool
operator!=(const LoopRun &a, const LoopRun &b)
{
    return !(a == b);
}

/** Suite results for one cluster count. */
struct ConfigRun
{
    int clusters = 0;
    std::vector<LoopRun> unclustered; ///< IMS, equal width
    std::vector<LoopRun> clustered;   ///< DMS
};

inline bool
operator==(const ConfigRun &a, const ConfigRun &b)
{
    return a.clusters == b.clusters &&
           a.unclustered == b.unclustered &&
           a.clustered == b.clustered;
}

inline bool
operator!=(const ConfigRun &a, const ConfigRun &b)
{
    return !(a == b);
}

/** Runner switches. */
struct RunnerOptions
{
    int maxClusters = 10;
    DmsParams dms;
    SchedParams ims;

    /** Verify every schedule (panic on an illegal one). */
    bool verify = true;

    /** Progress lines on stderr. */
    bool progress = true;

    /**
     * Worker threads for the matrix: each (loop, cluster-count,
     * machine) cell is an independent scheduling problem, so the
     * matrix parallelizes cell-wise with results written to
     * pre-sized slots — output is deterministic and identical to
     * the serial order regardless of jobs. 0 means "DMS_JOBS env
     * var, else hardware concurrency"; 1 forces the serial path.
     */
    int jobs = 0;
};

/** Schedule one loop with IMS on the unclustered width-C machine. */
LoopRun runLoopUnclustered(const Loop &loop, int width_clusters,
                           const SchedParams &params, bool verify);

/** Schedule one loop with DMS on the C-cluster ring. */
LoopRun runLoopClustered(const Loop &loop, int clusters,
                         const DmsParams &params, bool verify,
                         int copy_fus = 1);

/**
 * The full matrix: for every cluster count in [1, maxClusters],
 * every loop on both machines. This is the data behind figures
 * 4, 5 and 6.
 */
std::vector<ConfigRun> runMatrix(const std::vector<Loop> &suite,
                                 const RunnerOptions &opts = {});

/**
 * Suite size override for quick runs: reads the DMS_SUITE_COUNT
 * environment variable (defaults to @p fallback). Values that are
 * not a positive integer — garbage, trailing junk like "12x", or
 * numbers that overflow int — are rejected with a warning.
 */
int suiteCountFromEnv(int fallback = 1258);

} // namespace dms

#endif // DMS_EVAL_RUNNER_H
