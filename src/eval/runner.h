#ifndef DMS_EVAL_RUNNER_H
#define DMS_EVAL_RUNNER_H

/**
 * @file
 * Experiment runner shared by all bench binaries: schedules every
 * loop of a suite on a clustered machine and an equal-width
 * unclustered machine, after the same unrolling, exactly like the
 * paper's figures 4-6 setup.
 *
 * The sweep is configuration, not code: each column names a
 * scheduler from the registry ("dms", "ims", "twophase", ...) and a
 * declarative machine template (machine/desc.h) whose `$C`
 * placeholder is expanded per cluster count. The defaults reproduce
 * the paper's setup (DMS on a queue-file ring vs IMS on the
 * equal-width conventional machine); every cell runs the staged
 * pipeline of core/pipeline.h.
 */

#include <string>
#include <vector>

#include "core/dms.h"
#include "core/pipeline.h"
#include "workload/suite.h"

namespace dms {

class CompileService;

/** One loop scheduled on one configuration. */
struct LoopRun
{
    bool ok = false;
    int ii = 0;
    int mii = 0;
    int stageCount = 0;
    int unrollFactor = 1;
    int movesInserted = 0;
    int copiesInserted = 0;

    /** Body iterations executed (tripCount / unrollFactor, >=1). */
    long iterations = 0;

    /** Total cycles via the modulo-schedule cycle model. */
    long cycles = 0;

    /** Useful instructions issued over the whole run. */
    long usefulIssues = 0;

    /**
     * @name Queue register pressure (regalloc stage)
     * All zero on conventional-register-file machines or when the
     * runner's regalloc switch is off.
     */
    /// @{
    int queueFiles = 0;    ///< LRF+CQRF files holding >= 1 queue
    int queuesRequired = 0; ///< total queues (one per lifetime)
    int queueStorage = 0;  ///< total storage positions
    int maxLinkQueues = 0; ///< peak queues on any one link's CQRF
    /// @}
};

/** Field-wise equality; used by determinism checks (jobs=1 vs N). */
inline bool
operator==(const LoopRun &a, const LoopRun &b)
{
    return a.ok == b.ok && a.ii == b.ii && a.mii == b.mii &&
           a.stageCount == b.stageCount &&
           a.unrollFactor == b.unrollFactor &&
           a.movesInserted == b.movesInserted &&
           a.copiesInserted == b.copiesInserted &&
           a.iterations == b.iterations && a.cycles == b.cycles &&
           a.usefulIssues == b.usefulIssues &&
           a.queueFiles == b.queueFiles &&
           a.queuesRequired == b.queuesRequired &&
           a.queueStorage == b.queueStorage &&
           a.maxLinkQueues == b.maxLinkQueues;
}

inline bool
operator!=(const LoopRun &a, const LoopRun &b)
{
    return !(a == b);
}

/** Suite results for one cluster count. */
struct ConfigRun
{
    int clusters = 0;
    std::vector<LoopRun> unclustered; ///< IMS, equal width
    std::vector<LoopRun> clustered;   ///< DMS
};

inline bool
operator==(const ConfigRun &a, const ConfigRun &b)
{
    return a.clusters == b.clusters &&
           a.unclustered == b.unclustered &&
           a.clustered == b.clustered;
}

inline bool
operator!=(const ConfigRun &a, const ConfigRun &b)
{
    return !(a == b);
}

/**
 * The paper's clustered machine as a sweep template: a `$C`-cluster
 * queue-file ring with 1 L/S + 1 ADD + 1 MUL + 1 copy unit per
 * cluster (identical to MachineModel::clusteredRing($C)).
 */
inline constexpr char kClusteredMachineTemplate[] =
    "clusters $C\n"
    "topology ring\n"
    "regfile queues\n"
    "fus ldst=1 add=1 mul=1 copy=1\n";

/**
 * The equal-width unclustered reference as a sweep template
 * (identical to MachineModel::unclustered($C)).
 */
inline constexpr char kUnclusteredMachineTemplate[] =
    "clusters 1\n"
    "topology ring\n"
    "regfile conventional\n"
    "fus ldst=$C add=$C mul=$C copy=0\n";

/** Runner switches. */
struct RunnerOptions
{
    int maxClusters = 10;
    DmsParams dms;
    SchedParams ims;

    /**
     * Registry scheduler and machine template of the "clustered"
     * column. The template is a machine/desc.h description whose
     * `$C` expands to the config's cluster count.
     */
    std::string clusteredScheduler = "dms";
    std::string clusteredMachine = kClusteredMachineTemplate;

    /** Same for the "unclustered" reference column. */
    std::string unclusteredScheduler = "ims";
    std::string unclusteredMachine = kUnclusteredMachineTemplate;

    /** Verify every schedule (panic on an illegal one). */
    bool verify = true;

    /**
     * Run queue register allocation on queue-file machines (any
     * topology) and record the pressure stats in each LoopRun, so
     * sweeps report full-pipeline numbers rather than
     * schedule-only ones.
     */
    bool regalloc = true;

    /**
     * Audit every cell's artifacts with the static-analysis layer
     * (PipelineOptions::analyze); panics on any diagnostic. The
     * audit is observational, so analyzed sweeps stay bit-identical
     * to plain ones. Also switched on by DMS_ANALYZE=1.
     */
    bool analyze = false;

    /** Progress lines on stderr. */
    bool progress = true;

    /**
     * Worker threads for the matrix: each (loop, cluster-count,
     * machine) cell is an independent scheduling problem, so the
     * matrix parallelizes cell-wise with results written to
     * pre-sized slots — output is deterministic and identical to
     * the serial order regardless of jobs. 0 means "DMS_JOBS env
     * var, else hardware concurrency"; 1 forces the serial path.
     */
    int jobs = 0;

    /**
     * Route every cell through a long-lived compile service
     * (serve/service.h) instead of compiling inline. The service's
     * worker pool replaces the runner's thread pool for the sweep,
     * its memo cache dedups repeated (loop, machine, options)
     * cells across runs, and results are bit-identical to the
     * direct path provided the suite's flow-edge latencies come
     * from the machine's latency model: the text round-trip drops
     * flow latencies and the service re-derives them from the
     * machine description (overrides included), while the direct
     * path schedules the Loop's baked-in edges. Every built-in
     * suite and machine template uses the default LatencyModel, so
     * the paths coincide; a `latency`-overridden template with
     * default-latency loops would diverge. Not owned; may be
     * shared between sweeps.
     */
    CompileService *service = nullptr;
};

/**
 * Run the staged pipeline for one loop and summarize the context
 * into a LoopRun — the cell primitive every sweep builds on.
 */
LoopRun runLoop(const Pipeline &pipeline, const Loop &loop,
                const MachineModel &machine,
                CompilationContext &ctx);

/** Schedule one loop with IMS on the unclustered width-C machine. */
LoopRun runLoopUnclustered(const Loop &loop, int width_clusters,
                           const SchedParams &params, bool verify);

/** Schedule one loop with DMS on the C-cluster ring. */
LoopRun runLoopClustered(const Loop &loop, int clusters,
                         const DmsParams &params, bool verify,
                         int copy_fus = 1);

/**
 * The full matrix: for every cluster count in [1, maxClusters],
 * every loop on both machines. This is the data behind figures
 * 4, 5 and 6.
 */
std::vector<ConfigRun> runMatrix(const std::vector<Loop> &suite,
                                 const RunnerOptions &opts = {});

/**
 * Suite size override for quick runs: reads the DMS_SUITE_COUNT
 * environment variable (defaults to @p fallback). Values that are
 * not a positive integer — garbage, trailing junk like "12x", or
 * numbers that overflow int — are rejected with a warning.
 */
int suiteCountFromEnv(int fallback = 1258);

} // namespace dms

#endif // DMS_EVAL_RUNNER_H
