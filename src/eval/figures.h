#ifndef DMS_EVAL_FIGURES_H
#define DMS_EVAL_FIGURES_H

/**
 * @file
 * Figure/table generation for the paper's three evaluation figures.
 * Each function turns matrix results into the same rows/series the
 * paper plots.
 */

#include "eval/runner.h"
#include "support/table.h"

namespace dms {

/**
 * Figure 4: fraction of loops whose II increases due to
 * partitioning (DMS on C clusters vs IMS on the equal-width
 * unclustered machine), per cluster count.
 */
Table figure4(const std::vector<Loop> &suite,
              const std::vector<ConfigRun> &matrix);

/**
 * Figure 5: total execution cycles (relative, 3-FU unclustered =
 * 100 within each set) for set 1 and set 2 on both machines, per
 * FU count.
 */
Table figure5(const std::vector<Loop> &suite,
              const std::vector<ConfigRun> &matrix);

/**
 * Figure 6: useful IPC (dynamic, prologue/epilogue included via
 * the iteration count) for set 1 and set 2 on both machines.
 */
Table figure6(const std::vector<Loop> &suite,
              const std::vector<ConfigRun> &matrix);

/** Aggregate cycles over one loop set. */
double totalCycles(const std::vector<LoopRun> &runs,
                   const std::vector<size_t> &set);

/** Aggregate useful IPC over one loop set. */
double aggregateIpc(const std::vector<LoopRun> &runs,
                    const std::vector<size_t> &set);

} // namespace dms

#endif // DMS_EVAL_FIGURES_H
