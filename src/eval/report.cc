#include "eval/report.h"

#include <chrono>
#include <cstdio>

#include "eval/figures.h"
#include "support/diag.h"
#include "support/thread_pool.h"

namespace dms {

namespace {

/** Minimal JSON string escaping (quotes, backslash, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
appendMachine(std::string &out, const char *key,
              const std::vector<LoopRun> &runs,
              const std::vector<size_t> &set1,
              const std::vector<size_t> &set2)
{
    out += strfmt("\"%s\":{", key);
    out += strfmt("\"set1_cycles\":%.0f,",
                  totalCycles(runs, set1));
    out += strfmt("\"set1_ipc\":%.4f,", aggregateIpc(runs, set1));
    out += strfmt("\"set2_cycles\":%.0f,",
                  totalCycles(runs, set2));
    out += strfmt("\"set2_ipc\":%.4f}", aggregateIpc(runs, set2));
}

} // namespace

std::string
matrixReportJson(const MatrixReport &meta,
                 const std::vector<Loop> &suite,
                 const std::vector<ConfigRun> &matrix)
{
    auto set1 = selectSet(suite, LoopSet::Set1);
    auto set2 = selectSet(suite, LoopSet::Set2);

    std::string out = "{";
    out += strfmt("\"bench\":\"%s\",",
                  jsonEscape(meta.bench).c_str());
    out += strfmt("\"suite_size\":%zu,", meta.suiteSize);
    out += strfmt("\"set2_size\":%zu,", set2.size());
    out += strfmt("\"jobs\":%d,", meta.jobs);
    out += strfmt("\"wall_seconds\":%.6f,", meta.wallSeconds);
    out += "\"configs\":[";
    for (size_t i = 0; i < matrix.size(); ++i) {
        const ConfigRun &cfg = matrix[i];
        if (i)
            out += ",";
        out += strfmt("{\"clusters\":%d,\"fus\":%d,", cfg.clusters,
                      cfg.clusters * 3);
        appendMachine(out, "ims", cfg.unclustered, set1, set2);
        out += ",";
        appendMachine(out, "dms", cfg.clustered, set1, set2);
        out += "}";
    }
    out += "]";
    if (!meta.extra.empty()) {
        out += ",";
        out += meta.extra;
    }
    out += "}";
    return out;
}

bool
writeMatrixReport(const std::string &path, const MatrixReport &meta,
                  const std::vector<Loop> &suite,
                  const std::vector<ConfigRun> &matrix)
{
    std::string json = matrixReportJson(meta, suite, matrix);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write %s", path.c_str());
        return false;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("wrote %s", path.c_str());
    return true;
}

std::vector<ConfigRun>
runMatrixReported(const std::string &bench,
                  const std::vector<Loop> &suite,
                  const RunnerOptions &opts)
{
    // Resolve the job count once so the DMS_JOBS env var is parsed
    // (and any warning printed) a single time.
    RunnerOptions resolved = opts;
    if (resolved.jobs <= 0)
        resolved.jobs = ThreadPool::defaultJobs();

    auto t0 = std::chrono::steady_clock::now();
    std::vector<ConfigRun> matrix = runMatrix(suite, resolved);
    auto t1 = std::chrono::steady_clock::now();

    MatrixReport meta;
    meta.bench = bench;
    meta.suiteSize = suite.size();
    meta.jobs = resolved.jobs;
    meta.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    writeMatrixReport("BENCH_" + bench + ".json", meta, suite,
                      matrix);
    return matrix;
}

} // namespace dms
