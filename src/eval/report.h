#ifndef DMS_EVAL_REPORT_H
#define DMS_EVAL_REPORT_H

/**
 * @file
 * Machine-readable results for the bench binaries: one JSON
 * document per bench (suite size, wall time, per-configuration
 * aggregate cycles and IPC for both machines and both loop sets),
 * in the HPCC-FPGA spirit of emitting data a harness can track
 * across runs instead of only human-readable tables.
 */

#include <string>
#include <vector>

#include "eval/runner.h"

namespace dms {

/** Everything one bench run wants to persist. */
struct MatrixReport
{
    std::string bench;      ///< e.g. "fig5_cycles"
    size_t suiteSize = 0;   ///< loops in the suite
    int jobs = 1;           ///< worker threads used
    double wallSeconds = 0; ///< runMatrix wall-clock

    /**
     * Optional extra JSON members (without surrounding braces or a
     * leading comma, e.g. "\"speedup\":3.1"), appended to the
     * top-level object.
     */
    std::string extra;
};

/**
 * Serialize @p matrix (plus run metadata) as a JSON object with one
 * entry per cluster count: aggregate cycles and useful IPC for
 * IMS/DMS on set 1 (all loops) and set 2 (no recurrences).
 */
std::string matrixReportJson(const MatrixReport &meta,
                             const std::vector<Loop> &suite,
                             const std::vector<ConfigRun> &matrix);

/**
 * Write matrixReportJson() to @p path (e.g. "BENCH_fig5.json").
 * Returns false (with a warning) when the file cannot be written.
 */
bool writeMatrixReport(const std::string &path,
                       const MatrixReport &meta,
                       const std::vector<Loop> &suite,
                       const std::vector<ConfigRun> &matrix);

/**
 * Convenience wrapper for the figure benches: runMatrix() under a
 * wall-clock timer, then writeMatrixReport() to
 * "BENCH_<bench>.json". Returns the matrix.
 */
std::vector<ConfigRun> runMatrixReported(
    const std::string &bench, const std::vector<Loop> &suite,
    const RunnerOptions &opts = {});

} // namespace dms

#endif // DMS_EVAL_REPORT_H
