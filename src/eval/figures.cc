#include "eval/figures.h"

#include "support/diag.h"

namespace dms {

double
totalCycles(const std::vector<LoopRun> &runs,
            const std::vector<size_t> &set)
{
    double total = 0.0;
    for (size_t i : set) {
        const LoopRun &r = runs[i];
        DMS_ASSERT(r.ok, "unscheduled loop in aggregate");
        // Normalize to original iterations so different unroll
        // factors stay comparable: cycles per original iteration *
        // a fixed iteration budget.
        total += static_cast<double>(r.cycles);
    }
    return total;
}

double
aggregateIpc(const std::vector<LoopRun> &runs,
             const std::vector<size_t> &set)
{
    double issues = 0.0;
    double cycles = 0.0;
    for (size_t i : set) {
        const LoopRun &r = runs[i];
        DMS_ASSERT(r.ok, "unscheduled loop in aggregate");
        issues += static_cast<double>(r.usefulIssues);
        cycles += static_cast<double>(r.cycles);
    }
    return cycles > 0.0 ? issues / cycles : 0.0;
}

Table
figure4(const std::vector<Loop> &suite,
        const std::vector<ConfigRun> &matrix)
{
    auto set1 = selectSet(suite, LoopSet::Set1);
    Table t("Figure 4: loops with II increase due to partitioning");
    t.header({"clusters", "FUs", "loops", "II_increased",
              "fraction", "avg_II_overhead"});
    for (const ConfigRun &cfg : matrix) {
        int increased = 0;
        double overhead_sum = 0.0;
        for (size_t i : set1) {
            const LoopRun &u = cfg.unclustered[i];
            const LoopRun &d = cfg.clustered[i];
            DMS_ASSERT(u.ok && d.ok, "failed loop %zu at %d "
                       "clusters", i, cfg.clusters);
            if (d.ii > u.ii) {
                ++increased;
                overhead_sum +=
                    static_cast<double>(d.ii - u.ii) / u.ii;
            }
        }
        double frac =
            static_cast<double>(increased) /
            static_cast<double>(set1.size());
        double avg_over =
            increased > 0 ? overhead_sum / increased : 0.0;
        t.row({Table::num(cfg.clusters),
               Table::num(cfg.clusters * 3),
               Table::num(static_cast<int>(set1.size())),
               Table::num(increased), Table::pct(frac),
               Table::pct(avg_over)});
    }
    return t;
}

Table
figure5(const std::vector<Loop> &suite,
        const std::vector<ConfigRun> &matrix)
{
    auto set1 = selectSet(suite, LoopSet::Set1);
    auto set2 = selectSet(suite, LoopSet::Set2);
    DMS_ASSERT(!matrix.empty(), "empty matrix");

    double base1 = totalCycles(matrix[0].unclustered, set1);
    double base2 = totalCycles(matrix[0].unclustered, set2);

    Table t("Figure 5: execution cycles (relative, 3-FU unclustered "
            "= 100)");
    t.header({"FUs", "set1_unclustered", "set1_clustered",
              "set2_unclustered", "set2_clustered"});
    for (const ConfigRun &cfg : matrix) {
        t.row({Table::num(cfg.clusters * 3),
               Table::num(100.0 *
                          totalCycles(cfg.unclustered, set1) / base1),
               Table::num(100.0 *
                          totalCycles(cfg.clustered, set1) / base1),
               Table::num(100.0 *
                          totalCycles(cfg.unclustered, set2) / base2),
               Table::num(100.0 *
                          totalCycles(cfg.clustered, set2) / base2)});
    }
    return t;
}

Table
figure6(const std::vector<Loop> &suite,
        const std::vector<ConfigRun> &matrix)
{
    auto set1 = selectSet(suite, LoopSet::Set1);
    auto set2 = selectSet(suite, LoopSet::Set2);

    Table t("Figure 6: IPC (useful instructions per cycle)");
    t.header({"FUs", "set1_unclustered", "set1_clustered",
              "set2_unclustered", "set2_clustered"});
    for (const ConfigRun &cfg : matrix) {
        t.row({Table::num(cfg.clusters * 3),
               Table::num(aggregateIpc(cfg.unclustered, set1)),
               Table::num(aggregateIpc(cfg.clustered, set1)),
               Table::num(aggregateIpc(cfg.unclustered, set2)),
               Table::num(aggregateIpc(cfg.clustered, set2))});
    }
    return t;
}

} // namespace dms
