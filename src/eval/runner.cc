#include "eval/runner.h"

#include <cstdlib>

#include "ir/prepass.h"
#include "sched/verifier.h"
#include "support/diag.h"
#include "workload/unroll_policy.h"

namespace dms {

namespace {

long
iterationsFor(const Loop &loop, int unroll_factor)
{
    long iters = (loop.tripCount + unroll_factor - 1) /
                 unroll_factor;
    return std::max<long>(iters, 1);
}

void
fillPerf(LoopRun &run, const Ddg &ddg, const PartialSchedule &ps)
{
    run.stageCount = ps.maxTime() / ps.ii() + 1;
    run.cycles = (run.iterations + run.stageCount - 1) *
                 static_cast<long>(ps.ii());
    run.usefulIssues =
        static_cast<long>(ddg.usefulOpCount()) * run.iterations;
}

} // namespace

LoopRun
runLoopUnclustered(const Loop &loop, int width_clusters,
                   const SchedParams &params, bool verify)
{
    MachineModel machine = MachineModel::unclustered(width_clusters);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);

    LoopRun run;
    run.unrollFactor = body.unrollFactor();
    run.iterations = iterationsFor(loop, run.unrollFactor);

    SchedOutcome out = scheduleIms(body, machine, params);
    run.ok = out.ok;
    run.mii = out.mii;
    if (!out.ok)
        return run;
    run.ii = out.ii;
    if (verify)
        checkSchedule(body, machine, *out.schedule);
    fillPerf(run, body, *out.schedule);
    return run;
}

LoopRun
runLoopClustered(const Loop &loop, int clusters,
                 const DmsParams &params, bool verify, int copy_fus)
{
    MachineModel machine =
        MachineModel::clusteredRing(clusters, copy_fus);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);
    PrepassStats pp = singleUsePrepass(
        body, machine.latencyOf(Opcode::Copy));

    LoopRun run;
    run.unrollFactor = body.unrollFactor();
    run.copiesInserted = pp.copiesInserted;
    run.iterations = iterationsFor(loop, run.unrollFactor);

    DmsOutcome out = scheduleDms(body, machine, params);
    run.ok = out.sched.ok;
    run.mii = out.sched.mii;
    if (!out.sched.ok)
        return run;
    run.ii = out.sched.ii;
    run.movesInserted = out.sched.movesInserted;
    if (verify)
        checkSchedule(*out.ddg, machine, *out.sched.schedule);
    fillPerf(run, *out.ddg, *out.sched.schedule);
    return run;
}

std::vector<ConfigRun>
runMatrix(const std::vector<Loop> &suite, const RunnerOptions &opts)
{
    std::vector<ConfigRun> matrix;
    for (int c = 1; c <= opts.maxClusters; ++c) {
        ConfigRun cfg;
        cfg.clusters = c;
        cfg.unclustered.reserve(suite.size());
        cfg.clustered.reserve(suite.size());
        for (const Loop &loop : suite) {
            cfg.unclustered.push_back(runLoopUnclustered(
                loop, c, opts.ims, opts.verify));
            cfg.clustered.push_back(runLoopClustered(
                loop, c, opts.dms, opts.verify));
        }
        if (opts.progress) {
            inform("runMatrix: %d cluster(s) done (%zu loops)", c,
                   suite.size());
        }
        matrix.push_back(std::move(cfg));
    }
    return matrix;
}

int
suiteCountFromEnv(int fallback)
{
    const char *s = std::getenv("DMS_SUITE_COUNT");
    if (s == nullptr)
        return fallback;
    int v = std::atoi(s);
    return v > 0 ? v : fallback;
}

} // namespace dms
