#include "eval/runner.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "ir/prepass.h"
#include "sched/verifier.h"
#include "support/diag.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "workload/unroll_policy.h"

namespace dms {

namespace {

long
iterationsFor(const Loop &loop, int unroll_factor)
{
    long iters = (loop.tripCount + unroll_factor - 1) /
                 unroll_factor;
    return std::max<long>(iters, 1);
}

void
fillPerf(LoopRun &run, const Ddg &ddg, const PartialSchedule &ps)
{
    run.stageCount = ps.maxTime() / ps.ii() + 1;
    run.cycles = (run.iterations + run.stageCount - 1) *
                 static_cast<long>(ps.ii());
    run.usefulIssues =
        static_cast<long>(ddg.usefulOpCount()) * run.iterations;
}

} // namespace

LoopRun
runLoopUnclustered(const Loop &loop, int width_clusters,
                   const SchedParams &params, bool verify)
{
    MachineModel machine = MachineModel::unclustered(width_clusters);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);

    LoopRun run;
    run.unrollFactor = body.unrollFactor();
    run.iterations = iterationsFor(loop, run.unrollFactor);

    SchedOutcome out = scheduleIms(body, machine, params);
    run.ok = out.ok;
    run.mii = out.mii;
    if (!out.ok)
        return run;
    run.ii = out.ii;
    if (verify)
        checkSchedule(body, machine, *out.schedule);
    fillPerf(run, body, *out.schedule);
    return run;
}

LoopRun
runLoopClustered(const Loop &loop, int clusters,
                 const DmsParams &params, bool verify, int copy_fus)
{
    MachineModel machine =
        MachineModel::clusteredRing(clusters, copy_fus);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);
    PrepassStats pp = singleUsePrepass(
        body, machine.latencyOf(Opcode::Copy));

    LoopRun run;
    run.unrollFactor = body.unrollFactor();
    run.copiesInserted = pp.copiesInserted;
    run.iterations = iterationsFor(loop, run.unrollFactor);

    DmsOutcome out = scheduleDms(body, machine, params);
    run.ok = out.sched.ok;
    run.mii = out.sched.mii;
    if (!out.sched.ok)
        return run;
    run.ii = out.sched.ii;
    run.movesInserted = out.sched.movesInserted;
    if (verify)
        checkSchedule(*out.ddg, machine, *out.sched.schedule);
    fillPerf(run, *out.ddg, *out.sched.schedule);
    return run;
}

std::vector<ConfigRun>
runMatrix(const std::vector<Loop> &suite, const RunnerOptions &opts)
{
    const size_t loops = suite.size();
    const size_t configs =
        static_cast<size_t>(std::max(opts.maxClusters, 0));

    // Pre-size every slot so each cell owns its destination and the
    // result is ordered identically no matter how cells interleave.
    std::vector<ConfigRun> matrix(configs);
    for (size_t ci = 0; ci < configs; ++ci) {
        matrix[ci].clusters = static_cast<int>(ci) + 1;
        matrix[ci].unclustered.resize(loops);
        matrix[ci].clustered.resize(loops);
    }
    if (configs == 0 || loops == 0)
        return matrix;

    // Per-config countdown for thread-safe progress: a config line
    // prints exactly when its last cell (of 2 * loops) retires.
    std::unique_ptr<std::atomic<size_t>[]> remaining;
    if (opts.progress) {
        remaining.reset(new std::atomic<size_t>[configs]);
        for (size_t ci = 0; ci < configs; ++ci)
            remaining[ci].store(2 * loops);
    }

    // Cell index space: (config, loop, machine), machine-major last
    // so the two runs of one loop land near each other in time.
    const size_t cells = configs * loops * 2;
    ThreadPool pool(opts.jobs);
    pool.parallelFor(cells, [&](size_t cell) {
        const size_t ci = cell / (loops * 2);
        const size_t rest = cell % (loops * 2);
        const size_t li = rest / 2;
        const bool clustered = (rest % 2) != 0;
        const int c = static_cast<int>(ci) + 1;
        if (clustered) {
            matrix[ci].clustered[li] = runLoopClustered(
                suite[li], c, opts.dms, opts.verify);
        } else {
            matrix[ci].unclustered[li] = runLoopUnclustered(
                suite[li], c, opts.ims, opts.verify);
        }
        if (opts.progress &&
            remaining[ci].fetch_sub(1) == 1) {
            inform("runMatrix: %d cluster(s) done (%zu loops, "
                   "%d jobs)", c, loops, pool.jobs());
        }
    });
    return matrix;
}

int
suiteCountFromEnv(int fallback)
{
    const char *s = std::getenv("DMS_SUITE_COUNT");
    if (s == nullptr)
        return fallback;
    int v = 0;
    if (!parseInt(s, v) || v <= 0) {
        warn("DMS_SUITE_COUNT='%s' is not a positive integer; "
             "using %d", s, fallback);
        return fallback;
    }
    return v;
}

} // namespace dms
