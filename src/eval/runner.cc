#include "eval/runner.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

#include "machine/desc.h"
#include "serve/service.h"
#include "support/diag.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "workload/text.h"

namespace dms {

namespace {

/** Pipeline options for one sweep column. */
PipelineOptions
columnOptions(const std::string &scheduler,
              const RunnerOptions &opts)
{
    PipelineOptions po;
    po.scheduler = scheduler;
    po.config.base = opts.ims;
    po.config.dms = opts.dms;
    po.verify = opts.verify;
    po.regalloc = opts.regalloc;
    po.perf = true;
    po.analyze = opts.analyze;
    return po;
}

/** Instantiate a column's machine for one cluster count. */
MachineModel
columnMachine(const std::string &tmpl, int clusters)
{
    MachineModel m = MachineModel::unclustered(1);
    std::string error;
    if (!machineFromText(expandMachineTemplate(tmpl, clusters), m,
                         error)) {
        fatal("bad machine template (clusters=%d): %s", clusters,
              error.c_str());
    }
    return m;
}

/** Config-error check before a sweep spends any scheduling time. */
void
checkColumn(const std::string &scheduler, const MachineModel &m)
{
    std::unique_ptr<Scheduler> s =
        SchedulerRegistry::instance().create(scheduler);
    if (s == nullptr) {
        fatal("unknown scheduler '%s'", scheduler.c_str());
    }
    if (!s->supports(m)) {
        fatal("scheduler '%s' does not support machine '%s'",
              scheduler.c_str(), m.describe().c_str());
    }
}

} // namespace

LoopRun
runLoop(const Pipeline &pipeline, const Loop &loop,
        const MachineModel &machine, CompilationContext &ctx)
{
    bool ok = pipeline.run(loop, machine, ctx);

    LoopRun run;
    run.unrollFactor = ctx.body.unrollFactor();
    run.copiesInserted = ctx.prepass.copiesInserted;
    run.iterations = ctx.iterations;
    run.ok = ok;
    run.mii = ctx.result.sched.mii;
    if (!ok)
        return run;
    run.ii = ctx.result.sched.ii;
    run.movesInserted = ctx.result.sched.movesInserted;
    // Contexts are reused across cells: stale perf numbers from a
    // perf-less pipeline must not leak into this run's LoopRun.
    DMS_ASSERT(ctx.perfValid,
               "runLoop needs a pipeline with the perf stage");
    run.stageCount = ctx.perf.stageCount;
    run.cycles = ctx.perf.cycles;
    run.usefulIssues = static_cast<long>(ctx.perf.usefulOps) *
                       ctx.iterations;
    // Queue pressure flows regalloc -> perf -> LoopRun; zero when
    // the machine has no queue files or the stage is off.
    run.queueFiles = ctx.perf.queueFiles;
    run.queuesRequired = ctx.perf.queues;
    run.queueStorage = ctx.perf.queueStorage;
    run.maxLinkQueues = ctx.perf.maxLinkQueues;
    return run;
}

LoopRun
runLoopUnclustered(const Loop &loop, int width_clusters,
                   const SchedParams &params, bool verify)
{
    RunnerOptions opts;
    opts.ims = params;
    opts.verify = verify;
    Pipeline pipeline(columnOptions("ims", opts));
    CompilationContext ctx;
    return runLoop(pipeline, loop,
                   MachineModel::unclustered(width_clusters), ctx);
}

LoopRun
runLoopClustered(const Loop &loop, int clusters,
                 const DmsParams &params, bool verify, int copy_fus)
{
    RunnerOptions opts;
    opts.dms = params;
    opts.verify = verify;
    // Single-compile entry point: when the caller left the knob at
    // its -1 default, flip the speculative ladder on (multi-core
    // hosts only; DMS_SPECULATE_II still overrides). Matrix sweeps
    // keep the serial default — their cells are the parallelism.
    if (opts.dms.speculateII < 0)
        opts.dms.speculateII =
            envInt("DMS_SPECULATE_II",
                   std::thread::hardware_concurrency() >= 2 ? 1 : 0,
                   0) > 0
                ? 1
                : 0;
    Pipeline pipeline(columnOptions("dms", opts));
    CompilationContext ctx;
    return runLoop(pipeline, loop,
                   MachineModel::clusteredRing(clusters, copy_fus),
                   ctx);
}

std::vector<ConfigRun>
runMatrix(const std::vector<Loop> &suite, const RunnerOptions &opts)
{
    const size_t loops = suite.size();
    const size_t configs =
        static_cast<size_t>(std::max(opts.maxClusters, 0));

    // Pre-size every slot so each cell owns its destination and the
    // result is ordered identically no matter how cells interleave.
    std::vector<ConfigRun> matrix(configs);
    for (size_t ci = 0; ci < configs; ++ci) {
        matrix[ci].clusters = static_cast<int>(ci) + 1;
        matrix[ci].unclustered.resize(loops);
        matrix[ci].clustered.resize(loops);
    }
    if (configs == 0 || loops == 0)
        return matrix;

    // Instantiate every machine of the sweep up front (config
    // errors surface before any scheduling happens) and pre-check
    // scheduler/machine compatibility.
    std::vector<MachineModel> unclustered_machines;
    std::vector<MachineModel> clustered_machines;
    unclustered_machines.reserve(configs);
    clustered_machines.reserve(configs);
    for (size_t ci = 0; ci < configs; ++ci) {
        const int c = static_cast<int>(ci) + 1;
        unclustered_machines.push_back(
            columnMachine(opts.unclusteredMachine, c));
        clustered_machines.push_back(
            columnMachine(opts.clusteredMachine, c));
    }
    for (size_t ci = 0; ci < configs; ++ci) {
        checkColumn(opts.unclusteredScheduler,
                    unclustered_machines[ci]);
        checkColumn(opts.clusteredScheduler, clustered_machines[ci]);
    }

    // Service routing: submit every cell to the long-lived compile
    // server and collect the futures in cell order. The service's
    // workers (with their pooled contexts) replace the runner's
    // pool, and its memo cache turns repeated sweeps into lookups.
    if (opts.service != nullptr) {
        const PipelineOptions unclustered_po =
            columnOptions(opts.unclusteredScheduler, opts);
        const PipelineOptions clustered_po =
            columnOptions(opts.clusteredScheduler, opts);
        std::vector<std::string> loop_texts(loops);
        for (size_t li = 0; li < loops; ++li)
            loop_texts[li] = loopToText(suite[li]);
        std::vector<std::string> unclustered_texts(configs);
        std::vector<std::string> clustered_texts(configs);
        for (size_t ci = 0; ci < configs; ++ci) {
            unclustered_texts[ci] =
                machineToText(unclustered_machines[ci]);
            clustered_texts[ci] =
                machineToText(clustered_machines[ci]);
        }

        const size_t cells = configs * loops * 2;
        std::vector<CompileService::Ticket> tickets(cells);
        for (size_t cell = 0; cell < cells; ++cell) {
            const size_t ci = cell / (loops * 2);
            const size_t rest = cell % (loops * 2);
            const size_t li = rest / 2;
            const bool clustered = (rest % 2) != 0;
            CompileRequest req;
            req.loopText = loop_texts[li];
            req.machineText = clustered
                                  ? clustered_texts[ci]
                                  : unclustered_texts[ci];
            req.options =
                clustered ? clustered_po : unclustered_po;
            tickets[cell] = opts.service->submit(req);
        }
        for (size_t cell = 0; cell < cells; ++cell) {
            const size_t ci = cell / (loops * 2);
            const size_t rest = cell % (loops * 2);
            const size_t li = rest / 2;
            const bool clustered = (rest % 2) != 0;
            CompileService::ResultPtr result =
                tickets[cell].future.get();
            if (!result->parsed) {
                fatal("service rejected cell (clusters=%d, loop "
                      "'%s'): %s", static_cast<int>(ci) + 1,
                      suite[li].name.c_str(),
                      result->error.c_str());
            }
            if (clustered)
                matrix[ci].clustered[li] = result->run;
            else
                matrix[ci].unclustered[li] = result->run;
        }
        if (opts.progress) {
            inform("runMatrix: %zu cells via compile service "
                   "(%d workers)", cells, opts.service->workers());
        }
        return matrix;
    }

    const Pipeline unclustered_pipe(
        columnOptions(opts.unclusteredScheduler, opts));
    const Pipeline clustered_pipe(
        columnOptions(opts.clusteredScheduler, opts));

    // Per-config countdown for thread-safe progress: a config line
    // prints exactly when its last cell (of 2 * loops) retires.
    std::unique_ptr<std::atomic<size_t>[]> remaining;
    if (opts.progress) {
        remaining.reset(new std::atomic<size_t>[configs]);
        for (size_t ci = 0; ci < configs; ++ci)
            remaining[ci].store(2 * loops);
    }

    // Cell index space: (config, loop, machine), machine-major last
    // so the two runs of one loop land near each other in time.
    const size_t cells = configs * loops * 2;
    ThreadPool pool(opts.jobs);

    // One compilation context per worker slot: each context's body
    // graph and scheduler arenas are reused across all the cells
    // that worker executes, with no locking.
    std::vector<CompilationContext> contexts(
        static_cast<size_t>(pool.jobs()));

    pool.parallelForWorker(cells, [&](size_t cell, int worker) {
        const size_t ci = cell / (loops * 2);
        const size_t rest = cell % (loops * 2);
        const size_t li = rest / 2;
        const bool clustered = (rest % 2) != 0;
        const int c = static_cast<int>(ci) + 1;
        CompilationContext &ctx =
            contexts[static_cast<size_t>(worker)];
        if (clustered) {
            matrix[ci].clustered[li] =
                runLoop(clustered_pipe, suite[li],
                        clustered_machines[ci], ctx);
        } else {
            matrix[ci].unclustered[li] =
                runLoop(unclustered_pipe, suite[li],
                        unclustered_machines[ci], ctx);
        }
        if (opts.progress &&
            remaining[ci].fetch_sub(1) == 1) {
            inform("runMatrix: %d cluster(s) done (%zu loops, "
                   "%d jobs)", c, loops, pool.jobs());
        }
    });
    return matrix;
}

int
suiteCountFromEnv(int fallback)
{
    const char *s = std::getenv("DMS_SUITE_COUNT");
    if (s == nullptr)
        return fallback;
    int v = 0;
    if (!parseInt(s, v) || v <= 0) {
        warn("DMS_SUITE_COUNT='%s' is not a positive integer; "
             "using %d", s, fallback);
        return fallback;
    }
    return v;
}

} // namespace dms
