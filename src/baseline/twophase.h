#ifndef DMS_BASELINE_TWOPHASE_H
#define DMS_BASELINE_TWOPHASE_H

/**
 * @file
 * Two-phase partition-then-schedule baseline, in the spirit of the
 * approaches the paper compares against (its refs [6] and [12]:
 * partition the DDG across clusters up front, insert the
 * communication code, then modulo-schedule with the assignment
 * fixed). DMS's claim is that integrating both tasks in a single
 * phase beats this separation; ablation A4 measures it.
 */

#include <memory>
#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/ims.h"

namespace dms {

/** Result of the two-phase flow. */
struct TwoPhaseOutcome
{
    /** Scheduling result; schedule references *ddg below. */
    SchedOutcome sched;

    /** Body with pre-inserted move operations. */
    std::unique_ptr<Ddg> ddg;

    /** Final per-op cluster assignment (indexed by op id). */
    std::vector<ClusterId> assignment;
};

/**
 * Greedy topology-aware k-way partition followed by
 * fixed-assignment IMS. Operations are visited in dependence
 * order; each goes to the cluster minimizing a cost of ring
 * distance to already-assigned flow neighbours plus load imbalance.
 * Every flow edge left spanning >= 2 hops gets a chain of move
 * operations on the shortest ring path before scheduling.
 *
 * @param ddg pre-passed body (fan-out <= 2), as for scheduleDms.
 */
TwoPhaseOutcome scheduleTwoPhase(const Ddg &ddg,
                                 const MachineModel &machine,
                                 const SchedParams &params = {});

} // namespace dms

#endif // DMS_BASELINE_TWOPHASE_H
