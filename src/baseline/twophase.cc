#include "baseline/twophase.h"

#include <algorithm>

#include "core/chain.h"
#include "ir/verify.h"
#include "support/diag.h"

namespace dms {

namespace {

/** Greedy cluster choice for one op. */
ClusterId
bestCluster(const Ddg &ddg, const MachineModel &machine, OpId op,
            const std::vector<ClusterId> &assign,
            const std::vector<std::vector<int>> &load)
{
    const int nc = machine.numClusters();
    FuClass cls = fuClassOf(ddg.op(op).opc);

    ClusterId best = 0;
    long best_cost = -1;
    for (ClusterId c = 0; c < nc; ++c) {
        long cost = 0;
        auto neighbor_cost = [&](OpId nb) {
            if (nb == op)
                return;
            ClusterId cn = assign[static_cast<size_t>(nb)];
            if (cn == kInvalidCluster)
                return;
            int d = machine.ringDistance(c, cn);
            cost += d <= 1 ? d * 4L : 8L * d + 16;
        };
        for (EdgeId e : ddg.op(op).ins) {
            if (ddg.edgeActive(e) &&
                ddg.edge(e).kind == DepKind::Flow) {
                neighbor_cost(ddg.edge(e).src);
            }
        }
        for (EdgeId e : ddg.op(op).outs) {
            if (ddg.edgeActive(e) &&
                ddg.edge(e).kind == DepKind::Flow) {
                neighbor_cost(ddg.edge(e).dst);
            }
        }
        // Load balance: ops of the same class stacked in one
        // cluster raise its local ResMII directly.
        cost += 3L * load[static_cast<size_t>(c)]
                       [static_cast<int>(cls)];
        if (best_cost < 0 || cost < best_cost) {
            best_cost = cost;
            best = c;
        }
    }
    return best;
}

} // namespace

TwoPhaseOutcome
scheduleTwoPhase(const Ddg &ddg, const MachineModel &machine,
                 const SchedParams &params)
{
    DMS_ASSERT(machine.clustered(), "two-phase targets clustered "
                                    "machines");
    TwoPhaseOutcome out;
    out.ddg = std::make_unique<Ddg>(ddg);
    Ddg &work = *out.ddg;

    // Phase 1a: greedy partition in dependence order.
    out.assignment.assign(static_cast<size_t>(work.numOps()),
                          kInvalidCluster);
    std::vector<std::vector<int>> load(
        static_cast<size_t>(machine.numClusters()),
        std::vector<int>(kNumFuClasses, 0));
    for (OpId op : topoOrderZeroDistance(work)) {
        ClusterId c =
            bestCluster(work, machine, op, out.assignment, load);
        out.assignment[static_cast<size_t>(op)] = c;
        ++load[static_cast<size_t>(c)]
              [static_cast<int>(fuClassOf(work.op(op).opc))];
    }

    // Phase 1b: bridge every far edge with moves on the shortest
    // route (ring: ties toward direction +1).
    ChainRegistry chains;
    const int move_lat = machine.latencyOf(Opcode::Move);
    const int n_edges = work.numEdges(); // chains append edges
    std::vector<ClusterId> path;
    for (EdgeId e = 0; e < n_edges; ++e) {
        if (!work.edgeActive(e) ||
            work.edge(e).kind != DepKind::Flow) {
            continue;
        }
        ClusterId cs =
            out.assignment[static_cast<size_t>(work.edge(e).src)];
        ClusterId cd =
            out.assignment[static_cast<size_t>(work.edge(e).dst)];
        if (machine.directlyConnected(cs, cd))
            continue;
        int route = machine.routeLength(cs, cd, 0) <=
                            machine.routeLength(cs, cd, 1)
                        ? 0
                        : 1;
        machine.routeBetween(cs, cd, route, path);
        int cid = chains.create(work, e, path, move_lat);
        const Chain &ch = chains.chain(cid);
        out.assignment.resize(static_cast<size_t>(work.numOps()),
                              kInvalidCluster);
        for (size_t i = 0; i < ch.moves.size(); ++i) {
            out.assignment[static_cast<size_t>(ch.moves[i])] =
                ch.clusters[i];
        }
    }

    // Phase 2: modulo scheduling with the assignment pinned.
    out.sched = scheduleImsFixed(work, machine, out.assignment,
                                 params);
    return out;
}

} // namespace dms
