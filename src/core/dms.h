#ifndef DMS_CORE_DMS_H
#define DMS_CORE_DMS_H

/**
 * @file
 * Distributed Modulo Scheduling (the paper's contribution):
 * modulo scheduling and cluster partitioning integrated in a single
 * phase, built on the IMS substrate.
 *
 * For every operation OP, DMS tries three strategies in order
 * (paper figure 2):
 *
 *  1. find a (cluster, slot) where no communication conflict arises
 *     with OP's scheduled flow predecessors and successors;
 *  2. pick a cluster compatible with the scheduled successors and
 *     bridge every too-distant predecessor with a chain of move
 *     operations, choosing per chain between the two ring
 *     directions (figure 3) the option that maximizes the free
 *     copy-unit slots left in any cluster, ties broken by fewest
 *     moves;
 *  3. schedule OP the IMS way in an arbitrarily chosen cluster and
 *     backtrack: eject resource conflicts, dependence-violated
 *     successors, and communication-conflicting peers.
 *
 * Backtracking is chain-aware. Ejecting the original producer or
 * consumer of a chained edge dissolves the chain; ejecting a move
 * dissolves its chain and re-ejects the consumer so the pair is
 * re-scheduled without a dangling conflict.
 */

#include <memory>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/ims.h"

namespace dms {

/** How strategy 2 chooses between the two ring directions. */
enum class ChainSelectRule : std::uint8_t {
    /** Paper rule: max remaining free copy slots, then fewest moves. */
    MaxFreeSlots,
    /** Naive: fewest moves only (ablation A3). */
    ShortestPath,
};

/** How strategy 3 picks its "arbitrarily chosen" cluster. */
enum class S3ClusterPolicy : std::uint8_t {
    /** Prefer a conflict-free cluster when one exists. */
    PreferCommOk,
    /** Rotate through clusters on every retry. */
    RoundRobin,
};

/** DMS knobs. Defaults reproduce the paper's configuration. */
struct DmsParams
{
    /** Backtracking budget = budgetRatio * live ops. */
    int budgetRatio = 6;

    /** Hard II cap; 0 means automatic (6 * MII + 64). */
    int maxII = 0;

    /**
     * Scheduling attempts per II value. Each restart rotates the
     * cluster tie-break so a different embedding of the body in
     * the ring is explored before giving up on the II; 1 is the
     * pure single-pass scheme.
     */
    int restartsPerII = 3;

    /**
     * Enable strategy 2. Disabling it degrades DMS to the authors'
     * earlier IPPS'98 single-phase scheme, which "cannot consider
     * communication between indirectly-connected clusters"
     * (ablation A1).
     */
    bool enableChains = true;

    ChainSelectRule chainRule = ChainSelectRule::MaxFreeSlots;
    S3ClusterPolicy s3Policy = S3ClusterPolicy::PreferCommOk;

    /**
     * Precomputed MII bounds (see SchedParams): -1 computes
     * internally, >= 0 must equal resMii()/recMii() on the same
     * body and machine.
     */
    int knownResMii = -1;
    int knownRecMii = -1;

    /**
     * Speculative II ladder: run attempts ahead of the serial
     * (II, restart) order concurrently on a two-lane attempt pool
     * and commit the earliest success — the lowest II, lowest
     * restart — so the schedule, the FNV golden hashes, attempts
     * and budgetUsed are bit-identical to the serial ladder.
     *
     *  1  force on, 0 force serial, -1 (default) resolve the
     * DMS_SPECULATE_II environment knob, off when unset. Single
     * compile drivers (dmsc, runLoopClustered) flip the unset
     * default to on: they have no other parallelism axis. The
     * compile service and matrix sweeps leave it off — their
     * workers already are the parallelism.
     */
    int speculateII = -1;
};

/** DMS result: the schedule plus the transformed (spliced) DDG. */
struct DmsOutcome
{
    /** Scheduling result; schedule references *ddg below. */
    SchedOutcome sched;

    /**
     * The scheduled graph: the input body plus the move operations
     * of surviving chains. Owned here because downstream passes
     * (codegen, register allocation, simulation) operate on it.
     */
    std::unique_ptr<Ddg> ddg;
};

/**
 * Schedule a loop body on a clustered machine with DMS.
 *
 * @param ddg the loop body. On queue-file machines run
 *        singleUsePrepass() first; DMS asserts the fan-out bound.
 * @param machine a clustered machine model.
 */
DmsOutcome scheduleDms(const Ddg &ddg, const MachineModel &machine,
                       const DmsParams &params = {});

} // namespace dms

#endif // DMS_CORE_DMS_H
