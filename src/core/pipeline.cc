#include "core/pipeline.h"

#include <algorithm>

#include "analysis/analyze.h"
#include "codegen/emit.h"
#include "ir/unroll.h"
#include "regalloc/sharing.h"
#include "sched/mii.h"
#include "sched/verifier.h"
#include "support/diag.h"
#include "support/strings.h"
#include "workload/unroll_policy.h"

namespace dms {

Scheduler &
CompilationContext::scheduler(const std::string &name)
{
    auto it = schedulers_.find(name);
    if (it == schedulers_.end()) {
        std::unique_ptr<Scheduler> s =
            SchedulerRegistry::instance().create(name);
        if (s == nullptr)
            fatal("unknown scheduler '%s' (registered: %s)",
                  name.c_str(),
                  [] {
                      std::string all;
                      for (const std::string &n :
                           SchedulerRegistry::instance().names()) {
                          if (!all.empty())
                              all += ", ";
                          all += n;
                      }
                      return all;
                  }()
                      .c_str());
        it = schedulers_.emplace(name, std::move(s)).first;
    }
    return *it->second;
}

namespace {

long
iterationsFor(const Loop &loop, int unroll_factor)
{
    long iters =
        (loop.tripCount + unroll_factor - 1) / unroll_factor;
    return std::max<long>(iters, 1);
}

bool
stageUnroll(const PipelineOptions &opts, const Loop &loop,
            const MachineModel &machine, CompilationContext &ctx)
{
    if (opts.forceUnroll >= 1) {
        if (opts.forceUnroll == 1)
            ctx.body.resetTo(loop.ddg);
        else
            ctx.body = unrollDdg(loop.ddg, opts.forceUnroll);
    } else {
        applyUnrollPolicy(loop.ddg, machine, ctx.body,
                          opts.unrollMaxFactor, opts.unrollMaxOps);
    }
    ctx.iterations = iterationsFor(loop, ctx.body.unrollFactor());
    return true;
}

bool
stagePrepass(const PipelineOptions &, const Loop &,
             const MachineModel &machine, CompilationContext &ctx)
{
    ctx.prepass = PrepassStats{};
    if (machine.regFileKind() == RegFileKind::Queues) {
        ctx.prepass = singleUsePrepass(
            ctx.body, machine.latencyOf(Opcode::Copy));
    }
    return true;
}

bool
stageMii(const PipelineOptions &, const Loop &,
         const MachineModel &machine, CompilationContext &ctx)
{
    ctx.resMii = resMii(ctx.body, machine);
    ctx.recMii = recMii(ctx.body);
    ctx.mii = std::max(ctx.resMii, ctx.recMii);
    return true;
}

bool
stageSchedule(const PipelineOptions &opts, const Loop &,
              const MachineModel &machine, CompilationContext &ctx)
{
    Scheduler &sched = ctx.scheduler(opts.scheduler);
    if (!sched.supports(machine)) {
        fatal("scheduler '%s' does not support machine '%s'",
              sched.name(), machine.describe().c_str());
    }
    // Hand the MII stage's bounds down so the scheduler does not
    // re-derive them; the values are from the same resMii/recMii
    // calls it would make itself.
    SchedulerConfig config = opts.config;
    config.base.knownResMii = ctx.resMii;
    config.base.knownRecMii = ctx.recMii;
    config.dms.knownResMii = ctx.resMii;
    config.dms.knownRecMii = ctx.recMii;
    ctx.result = sched.schedule(ctx.body, machine, config);
    return ctx.result.sched.ok;
}

bool
stageRegalloc(const PipelineOptions &, const Loop &,
              const MachineModel &machine, CompilationContext &ctx)
{
    ctx.queuesValid = false;
    // Queue allocation models LRF/CQRF files, which exist on
    // queue-file machines; the CQRFs are per directed link, so any
    // topology (ring, mesh, crossbar) allocates.
    if (machine.regFileKind() == RegFileKind::Queues) {
        ctx.queues = allocateQueues(ctx.scheduledDdg(), machine,
                                    *ctx.result.sched.schedule);
        ctx.queuesValid = true;
    }
    return true;
}

bool
stageCodegen(const PipelineOptions &, const Loop &,
             const MachineModel &, CompilationContext &ctx)
{
    ctx.kernel = buildPipelinedLoop(ctx.scheduledDdg(),
                                    *ctx.result.sched.schedule);
    ctx.kernelValid = true;
    return true;
}

bool
stageVerify(const PipelineOptions &, const Loop &,
            const MachineModel &machine, CompilationContext &ctx)
{
    checkSchedule(ctx.scheduledDdg(), machine,
                  *ctx.result.sched.schedule);
    return true;
}

bool
stagePerf(const PipelineOptions &, const Loop &,
          const MachineModel &, CompilationContext &ctx)
{
    ctx.perf = evaluateSchedulePerf(ctx.scheduledDdg(),
                                    *ctx.result.sched.schedule,
                                    ctx.iterations);
    // Fold the regalloc stage's per-link pressure into the perf
    // record so sweeps report full-pipeline numbers.
    if (ctx.queuesValid)
        attachQueueStats(ctx.perf, ctx.queues);
    ctx.perfValid = true;
    return true;
}

bool
stageAnalyze(const PipelineOptions &, const Loop &loop,
             const MachineModel &machine, CompilationContext &ctx)
{
    const Ddg &ddg = ctx.scheduledDdg();
    const ScheduleView view = viewOf(*ctx.result.sched.schedule);

    AnalysisInput input;
    input.machine = &machine;
    input.ddg = &ddg;
    input.schedule = &view;
    // The audit is observational: sharing and the emitted text are
    // derived into locals here, never written back into the
    // context, so analyzed runs stay bit-identical to plain ones.
    SharedAllocation sharing;
    std::string kernel_text;
    if (ctx.queuesValid) {
        input.queues = &ctx.queues;
        sharing = shareQueues(ctx.queues, ddg,
                              *ctx.result.sched.schedule);
        input.sharing = &sharing;
    }
    if (ctx.kernelValid) {
        input.kernel = &ctx.kernel;
        kernel_text = emitKernel(ddg, machine, ctx.kernel,
                                 ctx.queuesValid ? &ctx.queues
                                                 : nullptr);
        input.kernelText = &kernel_text;
    }

    DiagnosticSink sink;
    runChecks(input, "analyze:" + loop.name, sink);
    if (sink.empty())
        return true;
    // Like verify: a pipeline that produced a flagged artifact has
    // a compiler bug, never a data condition.
    panic("analyze stage found %zu diagnostic(s) for '%s':\n%s",
          sink.diagnostics().size(), loop.name.c_str(),
          sink.renderText().c_str());
}

} // namespace

Pipeline::Pipeline(PipelineOptions options)
    : opts_(std::move(options))
{
    const auto add = [this](const char *name, auto fn) {
        stages_.push_back(
            {name, std::string("pipeline.") + name, fn});
    };
    add("unroll", stageUnroll);
    add("prepass", stagePrepass);
    add("mii", stageMii);
    add("schedule", stageSchedule);
    if (opts_.regalloc)
        add("regalloc", stageRegalloc);
    if (opts_.codegen)
        add("codegen", stageCodegen);
    if (opts_.verify)
        add("verify", stageVerify);
    if (opts_.perf)
        add("perf", stagePerf);
    if (opts_.analyze || envInt("DMS_ANALYZE", 0, 0) > 0)
        add("analyze", stageAnalyze);
}

std::vector<std::string>
Pipeline::stageNames() const
{
    std::vector<std::string> out;
    out.reserve(stages_.size());
    for (const Stage &s : stages_)
        out.emplace_back(s.name);
    return out;
}

bool
Pipeline::run(const Loop &loop, const MachineModel &machine,
              CompilationContext &ctx) const
{
    ctx.queuesValid = false;
    ctx.kernelValid = false;
    ctx.perfValid = false;
    for (const Stage &stage : stages_) {
        // Stage boundary: honor the request's cancellation token
        // (deadline expiry stops burning the worker here) and give
        // an armed fault plan its shot at this stage.
        if (ctx.cancel != nullptr && ctx.cancel->cancelled())
            throw CancelledError(
                strfmt("compilation of '%s' cancelled before "
                       "stage '%s'",
                       loop.name.c_str(), stage.name));
        faultPoint(stage.faultSite.c_str());
        // One span per stage; a throwing stage (injected fault,
        // mid-stage cancel) unwinds through it and marks it failed.
        obs::ScopedSpan span(ctx.trace, stage.name);
        if (!stage.fn(opts_, loop, machine, ctx))
            return false;
    }
    return true;
}

} // namespace dms
