#ifndef DMS_CORE_COMM_H
#define DMS_CORE_COMM_H

/**
 * @file
 * Communication-conflict queries (paper section 3: "a communication
 * conflict occurs when two operations with a true data dependence
 * are scheduled in indirectly-connected clusters"). Only active
 * flow edges participate: anti/output/memory dependences order the
 * schedule but move no value between register files, and replaced
 * edges are covered by their chains.
 */

#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/**
 * True if placing @p op in @p cluster creates no communication
 * conflict: every scheduled producer and consumer reachable over an
 * active flow edge sits in the same or an adjacent cluster.
 */
bool commOkAt(const Ddg &ddg, const PartialSchedule &ps,
              const MachineModel &machine, OpId op, ClusterId cluster);

/**
 * True if every *scheduled consumer* of @p op over active flow
 * edges is directly connected to @p cluster. Strategy 2 builds
 * chains toward predecessors only, so a candidate cluster must
 * already be compatible with the scheduled successors.
 */
bool succsOkAt(const Ddg &ddg, const PartialSchedule &ps,
               const MachineModel &machine, OpId op,
               ClusterId cluster);

/**
 * Active flow in-edges of @p op whose scheduled producer is
 * indirectly connected to @p cluster — the edges strategy 2 must
 * bridge with chains of moves. Appended to @p out (cleared first).
 */
void farPredecessorEdges(const Ddg &ddg, const PartialSchedule &ps,
                         const MachineModel &machine, OpId op,
                         ClusterId cluster, std::vector<EdgeId> &out);

/** Allocating convenience overload of the above. */
std::vector<EdgeId> farPredecessorEdges(const Ddg &ddg,
                                        const PartialSchedule &ps,
                                        const MachineModel &machine,
                                        OpId op, ClusterId cluster);

/**
 * Scheduled flow neighbours (producers and consumers over active
 * flow edges) of @p op that are indirectly connected to @p op's own
 * cluster — the operations strategy 3 ejects. Appended to @p out
 * (cleared first).
 */
void commConflictPeers(const Ddg &ddg, const PartialSchedule &ps,
                       const MachineModel &machine, OpId op,
                       std::vector<OpId> &out);

/** Allocating convenience overload of the above. */
std::vector<OpId> commConflictPeers(const Ddg &ddg,
                                    const PartialSchedule &ps,
                                    const MachineModel &machine,
                                    OpId op);

/** Reusable buffers for the allocation-free affinity query. */
struct AffinityScratch
{
    std::vector<long> cost;
};

/**
 * Clusters ordered by how close they are to @p op's scheduled flow
 * neighbours (sum of ring distances, ties by index): the scan order
 * for strategies 1 and 2. Written into @p out (cleared first);
 * @p scratch holds the per-cluster cost table between calls.
 */
void clustersByAffinity(const Ddg &ddg, const PartialSchedule &ps,
                        const MachineModel &machine, OpId op,
                        int rotate, AffinityScratch &scratch,
                        std::vector<ClusterId> &out);

/** Allocating convenience overload of the above. */
std::vector<ClusterId> clustersByAffinity(const Ddg &ddg,
                                          const PartialSchedule &ps,
                                          const MachineModel &machine,
                                          OpId op, int rotate = 0);

} // namespace dms

#endif // DMS_CORE_COMM_H
