#ifndef DMS_CORE_CHAIN_H
#define DMS_CORE_CHAIN_H

/**
 * @file
 * Chains of move operations (paper section 3, figure 3). A chain
 * replaces a flow edge whose producer and consumer would otherwise
 * sit in indirectly-connected clusters: one move per intermediate
 * cluster forwards the value one ring hop at a time, each move
 * executing on that cluster's copy unit (reading one CQRF and
 * writing the next).
 *
 * The registry owns the bookkeeping needed by DMS backtracking:
 * which moves belong to which chain, and which original edge a
 * chain stands in for, so that unscheduling "the original producer,
 * a move operation, or the original consumer" can dissolve chains
 * exactly as the paper prescribes.
 */

#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/** One chain: the spliced DDG material standing in for an edge. */
struct Chain
{
    EdgeId originalEdge = kInvalidEdge;

    /**
     * Endpoints of the original edge, cached at create() time so
     * the eviction hot path (chainsTouching) never re-derives them
     * through the graph.
     */
    OpId src = kInvalidOp;
    OpId dst = kInvalidOp;

    /** Move ops, producer side first. */
    std::vector<OpId> moves;

    /** Spliced edges: src->m1, m1->m2, ..., mk->dst. */
    std::vector<EdgeId> edges;

    /** Clusters hosting the moves, aligned with @c moves. */
    std::vector<ClusterId> clusters;

    bool dissolved = false;
};

/** Registry of the live chains of one scheduling attempt. */
class ChainRegistry
{
  public:
    /** Forget every chain (arena reuse between attempts). */
    void
    reset()
    {
        chains_.clear();
        chain_of_move_.clear();
        live_ids_.clear();
    }

    /**
     * Splice a chain into @p ddg for @p edge, one move per cluster
     * of @p path (the intermediate clusters from the producer to
     * the consumer in one ring direction). The original edge is
     * marked replaced; its iteration distance travels on the first
     * sub-edge. Moves are created *unscheduled* — the caller
     * schedules them in order (paper: "move operations are
     * sequentially scheduled, starting from the first one after the
     * original producer").
     *
     * @param move_latency latency of a move (CQRF-to-CQRF forward).
     * @return chain id.
     */
    int create(Ddg &ddg, EdgeId edge,
               const std::vector<ClusterId> &path, int move_latency);

    /**
     * Span form of create() for callers that keep paths in a flat
     * plan arena (DMS strategy 2) instead of one vector per chain.
     */
    int create(Ddg &ddg, EdgeId edge, const ClusterId *path,
               int path_len, int move_latency);

    /**
     * Dissolve a chain: unschedule any still-scheduled move, remove
     * the moves and spliced edges from the DDG and restore the
     * original edge. Does not touch the producer or consumer.
     */
    void dissolve(int chain_id, Ddg &ddg, PartialSchedule &ps);

    /** Chain owning this move op, or -1. */
    int chainOfMove(OpId op) const;

    /**
     * Live chain ids whose original producer or consumer is op,
     * appended to @p out (cleared first) — the allocation-free form
     * the eviction path uses.
     */
    void chainsTouching(const Ddg &ddg, OpId op,
                        std::vector<int> &out) const;

    /** Allocating convenience overload of the above. */
    std::vector<int> chainsTouching(const Ddg &ddg, OpId op) const;

    const Chain &chain(int id) const;

    /** Number of chains ever created (dissolved ones included). */
    int numChains() const { return static_cast<int>(chains_.size()); }

    /** Count of live (not dissolved) chains. */
    int liveChainCount() const;

  private:
    std::vector<Chain> chains_;
    /** op -> owning chain id (grown on demand; -1 = none). */
    std::vector<int> chain_of_move_;
    /**
     * Ids of live chains, ascending. create() appends (ids are
     * monotone) and dissolve() erases, so the eviction hot path
     * scans only live chains instead of every tombstone the
     * attempt ever created — chainsTouching dominated the DMS
     * profile before this.
     */
    std::vector<int> live_ids_;
};

} // namespace dms

#endif // DMS_CORE_CHAIN_H
