#ifndef DMS_CORE_AFFINITY_H
#define DMS_CORE_AFFINITY_H

/**
 * @file
 * Incremental cluster-affinity bookkeeping for DMS. The per-op
 * affinity cost (sum over scheduled flow neighbours of 3 x network
 * distance, see clustersByAffinity in core/comm.h) used to be
 * recomputed from the graph on every placement; this tracker
 * maintains, for every operation, the per-cluster neighbour term
 * under place/unschedule and chain splice/dissolve events, so one
 * affinity query is O(clusters log clusters) regardless of the
 * op's degree.
 *
 * Invariant (for every op x and cluster c):
 *
 *   row(x)[c] = sum over active flow edges (x, y), y != x,
 *               y scheduled, of 3 * distance(c, cluster(y))
 *
 * maintained under four event types: op placed, op unscheduled
 * (PlacementListener via PartialSchedule), edge activated, edge
 * deactivated (DdgListener via Ddg — addEdge, removeEdge,
 * markReplaced, unmarkReplaced all report). order() adds the same
 * load term and applies the same rotated tie-break sort as
 * clustersByAffinity, so the two produce bit-identical rankings —
 * tests/test_affinity.cc fuzzes that equivalence.
 */

#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/** Incremental replacement for per-placement clustersByAffinity. */
class AffinityTracker final : public DdgListener,
                              public PlacementListener
{
  public:
    /**
     * Bind to one (graph, schedule, machine) attempt and register
     * as listener on @p ddg and @p ps. Every op must be unscheduled
     * (the fresh-attempt state after Ddg::resetTo and
     * PartialSchedule::reset); rows start at zero. Reuses the
     * arenas of previous attachments.
     */
    void attach(Ddg &ddg, PartialSchedule &ps,
                const MachineModel &machine);

    /** Unregister from the graph and schedule. */
    void detach();

    /** @name Event sinks (fired by Ddg / PartialSchedule) */
    /// @{
    void onPlace(OpId op, ClusterId cluster) override;
    void onUnplace(OpId op, ClusterId cluster) override;
    void onEdgeActivated(EdgeId e) override;
    void onEdgeDeactivated(EdgeId e) override;
    /// @}

    /**
     * Clusters ordered exactly like clustersByAffinity(ddg, ps,
     * machine, op, rotate): maintained neighbour cost plus the
     * occupancy load term, stable-sorted with the rotated
     * tie-break. Written into @p out (cleared first).
     */
    void order(OpId op, int rotate,
               std::vector<ClusterId> &out) const;

  private:
    /** row(x) base pointer, growing the arena on demand. */
    long *row(OpId op);
    const long *rowOf(OpId op) const;

    /** Add @p sign * 3 * distance(*, at) into row(of). */
    void applyNeighbor(OpId of, ClusterId at, int sign);

    Ddg *ddg_ = nullptr;
    PartialSchedule *ps_ = nullptr;
    const MachineModel *machine_ = nullptr;
    int nc_ = 0;

    /** 3 * distance(a, b), indexed a * nc_ + b. */
    std::vector<long> dist3_;

    /** Per-op neighbour cost rows, op-major, nc_ wide. */
    mutable std::vector<long> rows_;

    /** Scratch for order(): cost with the load term added. */
    mutable std::vector<long> cost_;
};

} // namespace dms

#endif // DMS_CORE_AFFINITY_H
