#include "core/comm.h"

#include <algorithm>
#include <numeric>

namespace dms {

namespace {

/** Visit scheduled flow neighbours of op over active flow edges. */
template <typename Fn>
void
forEachScheduledFlowNeighbor(const Ddg &ddg, const PartialSchedule &ps,
                             OpId op, Fn &&fn)
{
    for (EdgeId e : ddg.op(op).ins) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId src = ddg.edge(e).src;
        if (src != op && ps.isScheduled(src))
            fn(src);
    }
    for (EdgeId e : ddg.op(op).outs) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId dst = ddg.edge(e).dst;
        if (dst != op && ps.isScheduled(dst))
            fn(dst);
    }
}

} // namespace

bool
commOkAt(const Ddg &ddg, const PartialSchedule &ps,
         const MachineModel &machine, OpId op, ClusterId cluster)
{
    bool ok = true;
    forEachScheduledFlowNeighbor(ddg, ps, op, [&](OpId nb) {
        if (!machine.directlyConnected(cluster, ps.clusterOf(nb)))
            ok = false;
    });
    return ok;
}

bool
succsOkAt(const Ddg &ddg, const PartialSchedule &ps,
          const MachineModel &machine, OpId op, ClusterId cluster)
{
    for (EdgeId e : ddg.op(op).outs) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId dst = ddg.edge(e).dst;
        if (dst == op || !ps.isScheduled(dst))
            continue;
        if (!machine.directlyConnected(cluster, ps.clusterOf(dst)))
            return false;
    }
    return true;
}

void
farPredecessorEdges(const Ddg &ddg, const PartialSchedule &ps,
                    const MachineModel &machine, OpId op,
                    ClusterId cluster, std::vector<EdgeId> &out)
{
    out.clear();
    for (EdgeId e : ddg.op(op).ins) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId src = ddg.edge(e).src;
        if (src == op || !ps.isScheduled(src))
            continue;
        if (!machine.directlyConnected(cluster, ps.clusterOf(src)))
            out.push_back(e);
    }
}

std::vector<EdgeId>
farPredecessorEdges(const Ddg &ddg, const PartialSchedule &ps,
                    const MachineModel &machine, OpId op,
                    ClusterId cluster)
{
    std::vector<EdgeId> out;
    farPredecessorEdges(ddg, ps, machine, op, cluster, out);
    return out;
}

void
commConflictPeers(const Ddg &ddg, const PartialSchedule &ps,
                  const MachineModel &machine, OpId op,
                  std::vector<OpId> &out)
{
    ClusterId mine = ps.clusterOf(op);
    out.clear();
    forEachScheduledFlowNeighbor(ddg, ps, op, [&](OpId nb) {
        if (!machine.directlyConnected(mine, ps.clusterOf(nb)) &&
            std::find(out.begin(), out.end(), nb) == out.end()) {
            out.push_back(nb);
        }
    });
}

std::vector<OpId>
commConflictPeers(const Ddg &ddg, const PartialSchedule &ps,
                  const MachineModel &machine, OpId op)
{
    std::vector<OpId> out;
    commConflictPeers(ddg, ps, machine, op, out);
    return out;
}

void
clustersByAffinity(const Ddg &ddg, const PartialSchedule &ps,
                   const MachineModel &machine, OpId op, int rotate,
                   AffinityScratch &scratch,
                   std::vector<ClusterId> &out)
{
    const int n = machine.numClusters();
    // Communication affinity: ring distance to scheduled flow
    // neighbours. Load term: occupied slots of the op's own FU
    // class, so ops without placed neighbours (typically loads)
    // spread across the ring instead of clumping in cluster 0 and
    // balanced clusters keep the II at ResMII.
    FuClass cls = fuClassOf(ddg.op(op).opc);
    std::vector<long> &cost = scratch.cost;
    cost.assign(static_cast<size_t>(n), 0);

    forEachScheduledFlowNeighbor(ddg, ps, op, [&](OpId nb) {
        ClusterId cn = ps.clusterOf(nb);
        for (ClusterId c = 0; c < n; ++c) {
            cost[static_cast<size_t>(c)] +=
                3L * machine.ringDistance(c, cn);
        }
    });

    const int rows = ps.ii() * std::max(1,
        machine.fusPerCluster(cls));
    for (ClusterId c = 0; c < n; ++c) {
        int occupied = machine.fusPerCluster(cls) > 0
            ? rows - ps.reservations().freeSlotCount(c, cls)
            : 0;
        cost[static_cast<size_t>(c)] += occupied;
    }
    out.resize(static_cast<size_t>(n));
    std::iota(out.begin(), out.end(), 0);
    // Restart variants rotate the tie-break so a failed II attempt
    // can explore a different embedding of the body in the ring.
    // Stable insertion sort: rings are tiny (<= maxClusters) and
    // std::stable_sort's temporary buffer would be the last
    // allocation left in the placement loop.
    auto less = [&](ClusterId a, ClusterId b) {
        long ca = cost[static_cast<size_t>(a)];
        long cb = cost[static_cast<size_t>(b)];
        if (ca != cb)
            return ca < cb;
        return (a + rotate) % n < (b + rotate) % n;
    };
    for (int i = 1; i < n; ++i) {
        ClusterId key = out[static_cast<size_t>(i)];
        int j = i - 1;
        while (j >= 0 && less(key, out[static_cast<size_t>(j)])) {
            out[static_cast<size_t>(j + 1)] =
                out[static_cast<size_t>(j)];
            --j;
        }
        out[static_cast<size_t>(j + 1)] = key;
    }
}

std::vector<ClusterId>
clustersByAffinity(const Ddg &ddg, const PartialSchedule &ps,
                   const MachineModel &machine, OpId op, int rotate)
{
    AffinityScratch scratch;
    std::vector<ClusterId> out;
    clustersByAffinity(ddg, ps, machine, op, rotate, scratch, out);
    return out;
}

} // namespace dms
