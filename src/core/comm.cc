#include "core/comm.h"

#include <algorithm>
#include <numeric>

namespace dms {

namespace {

/** Visit scheduled flow neighbours of op over active flow edges. */
template <typename Fn>
void
forEachScheduledFlowNeighbor(const Ddg &ddg, const PartialSchedule &ps,
                             OpId op, Fn &&fn)
{
    for (EdgeId e : ddg.op(op).ins) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId src = ddg.edge(e).src;
        if (src != op && ps.isScheduled(src))
            fn(src);
    }
    for (EdgeId e : ddg.op(op).outs) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId dst = ddg.edge(e).dst;
        if (dst != op && ps.isScheduled(dst))
            fn(dst);
    }
}

} // namespace

bool
commOkAt(const Ddg &ddg, const PartialSchedule &ps,
         const MachineModel &machine, OpId op, ClusterId cluster)
{
    bool ok = true;
    forEachScheduledFlowNeighbor(ddg, ps, op, [&](OpId nb) {
        if (!machine.directlyConnected(cluster, ps.clusterOf(nb)))
            ok = false;
    });
    return ok;
}

bool
succsOkAt(const Ddg &ddg, const PartialSchedule &ps,
          const MachineModel &machine, OpId op, ClusterId cluster)
{
    for (EdgeId e : ddg.op(op).outs) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId dst = ddg.edge(e).dst;
        if (dst == op || !ps.isScheduled(dst))
            continue;
        if (!machine.directlyConnected(cluster, ps.clusterOf(dst)))
            return false;
    }
    return true;
}

std::vector<EdgeId>
farPredecessorEdges(const Ddg &ddg, const PartialSchedule &ps,
                    const MachineModel &machine, OpId op,
                    ClusterId cluster)
{
    std::vector<EdgeId> out;
    for (EdgeId e : ddg.op(op).ins) {
        if (!ddg.edgeActive(e) || ddg.edge(e).kind != DepKind::Flow)
            continue;
        OpId src = ddg.edge(e).src;
        if (src == op || !ps.isScheduled(src))
            continue;
        if (!machine.directlyConnected(cluster, ps.clusterOf(src)))
            out.push_back(e);
    }
    return out;
}

std::vector<OpId>
commConflictPeers(const Ddg &ddg, const PartialSchedule &ps,
                  const MachineModel &machine, OpId op)
{
    ClusterId mine = ps.clusterOf(op);
    std::vector<OpId> out;
    forEachScheduledFlowNeighbor(ddg, ps, op, [&](OpId nb) {
        if (!machine.directlyConnected(mine, ps.clusterOf(nb)) &&
            std::find(out.begin(), out.end(), nb) == out.end()) {
            out.push_back(nb);
        }
    });
    return out;
}

std::vector<ClusterId>
clustersByAffinity(const Ddg &ddg, const PartialSchedule &ps,
                   const MachineModel &machine, OpId op, int rotate)
{
    const int n = machine.numClusters();
    // Communication affinity: ring distance to scheduled flow
    // neighbours. Load term: occupied slots of the op's own FU
    // class, so ops without placed neighbours (typically loads)
    // spread across the ring instead of clumping in cluster 0 and
    // balanced clusters keep the II at ResMII.
    FuClass cls = fuClassOf(ddg.op(op).opc);
    std::vector<long> cost(static_cast<size_t>(n), 0);

    forEachScheduledFlowNeighbor(ddg, ps, op, [&](OpId nb) {
        ClusterId cn = ps.clusterOf(nb);
        for (ClusterId c = 0; c < n; ++c) {
            cost[static_cast<size_t>(c)] +=
                3L * machine.ringDistance(c, cn);
        }
    });

    const int rows = ps.ii() * std::max(1,
        machine.fusPerCluster(cls));
    for (ClusterId c = 0; c < n; ++c) {
        int occupied = machine.fusPerCluster(cls) > 0
            ? rows - ps.reservations().freeSlotCount(c, cls)
            : 0;
        cost[static_cast<size_t>(c)] += occupied;
    }
    std::vector<ClusterId> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    // Restart variants rotate the tie-break so a failed II attempt
    // can explore a different embedding of the body in the ring.
    std::stable_sort(order.begin(), order.end(),
                     [&](ClusterId a, ClusterId b) {
                         long ca = cost[static_cast<size_t>(a)];
                         long cb = cost[static_cast<size_t>(b)];
                         if (ca != cb)
                             return ca < cb;
                         return (a + rotate) % n < (b + rotate) % n;
                     });
    return order;
}

} // namespace dms
