#include "core/chain.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

int
ChainRegistry::create(Ddg &ddg, EdgeId edge,
                      const std::vector<ClusterId> &path,
                      int move_latency)
{
    DMS_ASSERT(!path.empty(), "chain needs at least one move");
    return create(ddg, edge, path.data(),
                  static_cast<int>(path.size()), move_latency);
}

int
ChainRegistry::create(Ddg &ddg, EdgeId edge, const ClusterId *path,
                      int path_len, int move_latency)
{
    DMS_ASSERT(path_len >= 1, "chain needs at least one move");
    const Edge orig = ddg.edge(edge);
    DMS_ASSERT(orig.kind == DepKind::Flow && !orig.replaced,
               "chaining a non-flow or already chained edge");

    Chain c;
    c.originalEdge = edge;
    c.src = orig.src;
    c.dst = orig.dst;
    c.clusters.assign(path, path + path_len);

    ddg.markReplaced(edge);

    OpId prev = orig.src;
    for (size_t i = 0; i < static_cast<size_t>(path_len); ++i) {
        OpId mv = ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
        // Moves forward the producer's value; keep the ultimate
        // origin so simulator live-in values line up.
        ddg.op(mv).origId = ddg.op(orig.src).origId;
        ddg.op(mv).iterOffset = ddg.op(orig.src).iterOffset;
        int dist = i == 0 ? orig.distance : 0;
        int lat = i == 0 ? orig.latency : move_latency;
        EdgeId e = ddg.addEdge(prev, mv, DepKind::Flow, dist, lat, 0);
        c.moves.push_back(mv);
        c.edges.push_back(e);
        prev = mv;

        size_t need = static_cast<size_t>(mv) + 1;
        if (chain_of_move_.size() < need)
            chain_of_move_.resize(need, -1);
        chain_of_move_[static_cast<size_t>(mv)] =
            static_cast<int>(chains_.size());
    }
    EdgeId last = ddg.addEdge(prev, orig.dst, DepKind::Flow, 0,
                              move_latency, orig.operandIndex);
    c.edges.push_back(last);

    chains_.push_back(std::move(c));
    live_ids_.push_back(static_cast<int>(chains_.size()) - 1);
    return static_cast<int>(chains_.size()) - 1;
}

void
ChainRegistry::dissolve(int chain_id, Ddg &ddg, PartialSchedule &ps)
{
    Chain &c = chains_.at(static_cast<size_t>(chain_id));
    DMS_ASSERT(!c.dissolved, "double dissolve of chain %d", chain_id);

    for (OpId mv : c.moves) {
        if (ps.isScheduled(mv))
            ps.unschedule(mv);
    }
    for (EdgeId e : c.edges)
        ddg.removeEdge(e);
    for (OpId mv : c.moves) {
        ddg.removeOp(mv);
        chain_of_move_[static_cast<size_t>(mv)] = -1;
    }
    ddg.unmarkReplaced(c.originalEdge);
    c.dissolved = true;
    live_ids_.erase(std::lower_bound(live_ids_.begin(),
                                     live_ids_.end(), chain_id));
}

int
ChainRegistry::chainOfMove(OpId op) const
{
    if (op < 0 || static_cast<size_t>(op) >= chain_of_move_.size())
        return -1;
    return chain_of_move_[static_cast<size_t>(op)];
}

void
ChainRegistry::chainsTouching(const Ddg &, OpId op,
                              std::vector<int> &out) const
{
    out.clear();
    for (int id : live_ids_) {
        const Chain &c = chains_[static_cast<size_t>(id)];
        if (c.src == op || c.dst == op)
            out.push_back(id);
    }
}

std::vector<int>
ChainRegistry::chainsTouching(const Ddg &ddg, OpId op) const
{
    std::vector<int> out;
    chainsTouching(ddg, op, out);
    return out;
}

const Chain &
ChainRegistry::chain(int id) const
{
    return chains_.at(static_cast<size_t>(id));
}

int
ChainRegistry::liveChainCount() const
{
    int n = 0;
    for (const Chain &c : chains_) {
        if (!c.dissolved)
            ++n;
    }
    return n;
}

} // namespace dms
