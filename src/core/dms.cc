#include "core/dms.h"

#include <algorithm>

#include "core/chain.h"
#include "core/comm.h"
#include "sched/mii.h"
#include "sched/priority.h"
#include "support/diag.h"

namespace dms {

namespace {

/** One II attempt's worth of DMS state. */
class DmsAttempt
{
  public:
    DmsAttempt(const Ddg &original, const MachineModel &machine,
               const DmsParams &params, int ii, int variant)
        : machine_(machine), params_(params), ii_(ii),
          variant_(variant), ddg_(std::make_unique<Ddg>(original)),
          ps_(std::make_unique<PartialSchedule>(*ddg_, machine, ii)),
          heights_(computeHeights(*ddg_, ii))
    {}

    /** Run the pass; true if everything got scheduled in budget. */
    bool
    run(long budget, long &used)
    {
        while (ps_->scheduledCount() < ddg_->liveOpCount()) {
            if (budget-- <= 0)
                return false;
            ++used;
            OpId op = pickNext();
            DMS_ASSERT(op != kInvalidOp, "no unscheduled op");
            scheduleOp(op);
        }
        return true;
    }

    std::unique_ptr<Ddg> takeDdg() { return std::move(ddg_); }
    std::unique_ptr<PartialSchedule> takeSchedule()
    {
        return std::move(ps_);
    }

    int
    liveMoves() const
    {
        int n = 0;
        for (OpId id = 0; id < ddg_->numOps(); ++id) {
            if (ddg_->opLive(id) &&
                ddg_->op(id).origin == OpOrigin::MoveOp) {
                ++n;
            }
        }
        return n;
    }

  private:
    /** Highest-height unscheduled op. Moves never appear: they are
     * scheduled at chain creation and removed on dissolution. */
    OpId
    pickNext() const
    {
        OpId best = kInvalidOp;
        for (OpId id = 0; id < ddg_->numOps(); ++id) {
            if (!ddg_->opLive(id) || ps_->isScheduled(id))
                continue;
            DMS_ASSERT(ddg_->op(id).origin != OpOrigin::MoveOp,
                       "unscheduled move op %d in worklist", id);
            if (best == kInvalidOp ||
                heights_[static_cast<size_t>(id)] >
                    heights_[static_cast<size_t>(best)]) {
                best = id;
            }
        }
        return best;
    }

    void
    scheduleOp(OpId op)
    {
        if (strategy1(op))
            return;
        if (params_.enableChains && strategy2(op))
            return;
        strategy3(op);
    }

    /**
     * Strategy 1: a communication-conflict-free cluster with a
     * resource-free slot inside the II window. Dependence-violated
     * successors are ejected; no resource eviction happens here.
     */
    bool
    strategy1(OpId op)
    {
        Cycle early = ps_->earlyStart(op);
        for (ClusterId c :
             clustersByAffinity(*ddg_, *ps_, machine_, op, variant_)) {
            if (!commOkAt(*ddg_, *ps_, machine_, op, c))
                continue;
            Cycle slot = ps_->findFreeSlot(op, c, early);
            if (slot == kUnscheduled)
                continue;
            bool ok = ps_->tryPlace(op, slot, c);
            DMS_ASSERT(ok, "free slot vanished");
            ejectViolatedSuccessors(op);
            return true;
        }
        return false;
    }

    /** A direction option for bridging one far predecessor. */
    struct ChainOption
    {
        EdgeId edge = kInvalidEdge;
        std::vector<ClusterId> path;
    };

    /**
     * Strategy 2: chains of moves toward every far predecessor
     * (paper figure 3). Returns false if no candidate cluster can
     * host all required chains.
     */
    bool
    strategy2(OpId op)
    {
        const auto &rt = ps_->reservations();

        // Free copy-unit slots per cluster, the quantity the
        // paper's selection rule preserves.
        const int nc = machine_.numClusters();
        std::vector<int> base_free(static_cast<size_t>(nc));
        for (ClusterId c = 0; c < nc; ++c) {
            base_free[static_cast<size_t>(c)] =
                rt.freeSlotCount(c, FuClass::Copy);
        }

        struct Candidate
        {
            ClusterId cluster = kInvalidCluster;
            std::vector<ChainOption> chains;
            int minFreeAfter = -1;
            int totalMoves = 0;
        };
        Candidate best;

        for (ClusterId c :
             clustersByAffinity(*ddg_, *ps_, machine_, op, variant_)) {
            if (!succsOkAt(*ddg_, *ps_, machine_, op, c))
                continue;
            auto far_edges =
                farPredecessorEdges(*ddg_, *ps_, machine_, op, c);
            if (far_edges.empty())
                continue; // strategy 1 territory; resources failed

            std::vector<int> claimed(static_cast<size_t>(nc), 0);
            std::vector<ChainOption> plan;
            bool feasible = true;
            for (EdgeId e : far_edges) {
                ChainOption opt =
                    planOneChain(e, c, base_free, claimed);
                if (opt.path.empty()) {
                    feasible = false;
                    break;
                }
                for (ClusterId x : opt.path)
                    ++claimed[static_cast<size_t>(x)];
                plan.push_back(std::move(opt));
            }
            if (!feasible)
                continue;

            int min_free = INT32_MAX;
            int moves = 0;
            for (ClusterId x = 0; x < nc; ++x) {
                min_free = std::min(min_free,
                                    base_free[static_cast<size_t>(x)] -
                                        claimed[static_cast<size_t>(x)]);
            }
            for (const ChainOption &o : plan)
                moves += static_cast<int>(o.path.size());

            bool better = best.cluster == kInvalidCluster ||
                          min_free > best.minFreeAfter ||
                          (min_free == best.minFreeAfter &&
                           moves < best.totalMoves);
            if (better) {
                best.cluster = c;
                best.chains = std::move(plan);
                best.minFreeAfter = min_free;
                best.totalMoves = moves;
            }
        }

        if (best.cluster == kInvalidCluster)
            return false;
        return commitStrategy2(op, best.cluster, best.chains);
    }

    /**
     * Pick a direction for one chain, honouring slots already
     * claimed by sibling chains of the same candidate. Empty path
     * in the result means neither direction fits.
     */
    ChainOption
    planOneChain(EdgeId e, ClusterId target,
                 const std::vector<int> &base_free,
                 const std::vector<int> &claimed) const
    {
        ClusterId from = ps_->clusterOf(ddg_->edge(e).src);
        ChainOption best;
        best.edge = e;
        int best_min_free = -1;

        for (int dir : {+1, -1}) {
            std::vector<ClusterId> path =
                machine_.pathBetween(from, target, dir);
            if (path.empty())
                continue; // would be adjacent; not a far edge
            bool fits = true;
            int min_free = INT32_MAX;
            for (ClusterId x : path) {
                int free_here = base_free[static_cast<size_t>(x)] -
                                claimed[static_cast<size_t>(x)] - 1;
                if (free_here < 0) {
                    fits = false;
                    break;
                }
                min_free = std::min(min_free, free_here);
            }
            if (!fits)
                continue;

            bool better;
            if (best.path.empty()) {
                better = true;
            } else if (params_.chainRule ==
                       ChainSelectRule::MaxFreeSlots) {
                better = min_free > best_min_free ||
                         (min_free == best_min_free &&
                          path.size() < best.path.size());
            } else {
                better = path.size() < best.path.size();
            }
            if (better) {
                best.path = std::move(path);
                best_min_free = min_free;
            }
        }
        return best;
    }

    /** Splice and schedule the chosen chains, then place OP. */
    bool
    commitStrategy2(OpId op, ClusterId cluster,
                    const std::vector<ChainOption> &plan)
    {
        const int move_lat = machine_.latencyOf(Opcode::Move);
        std::vector<int> created;

        for (const ChainOption &opt : plan) {
            int cid =
                chains_.create(*ddg_, opt.edge, opt.path, move_lat);
            created.push_back(cid);
            const Chain &ch = chains_.chain(cid);

            // Grow the height table for the new moves. A move
            // inherits its producer's height so eviction heuristics
            // treat it as critical as the value it forwards.
            heights_.resize(static_cast<size_t>(ddg_->numOps()), 0);
            std::int64_t h = heights_[static_cast<size_t>(
                ddg_->edge(opt.edge).src)];
            for (OpId mv : ch.moves)
                heights_[static_cast<size_t>(mv)] = h;

            // Paper: "move operations are sequentially scheduled,
            // starting from the first one after the original
            // producer". Feasibility was verified above, so a free
            // slot exists in every intermediate cluster.
            for (size_t i = 0; i < ch.moves.size(); ++i) {
                OpId mv = ch.moves[i];
                Cycle early = std::max<Cycle>(0, ps_->earlyStart(mv));
                Cycle slot =
                    ps_->findFreeSlot(mv, ch.clusters[i], early);
                DMS_ASSERT(slot != kUnscheduled,
                           "chain feasibility miscounted");
                bool ok = ps_->tryPlace(mv, slot, ch.clusters[i]);
                DMS_ASSERT(ok, "chain slot vanished");
            }
        }

        // Place OP itself. Copy-class ops share the copy units with
        // the moves just placed; forcing an eviction there could
        // knock out our own chain, so require a free slot and
        // otherwise roll back to strategy 3.
        Cycle early = ps_->earlyStart(op);
        Cycle slot = ps_->findFreeSlot(op, cluster, early);
        if (slot == kUnscheduled) {
            if (fuClassOf(ddg_->op(op).opc) == FuClass::Copy) {
                for (int cid : created)
                    chains_.dissolve(cid, *ddg_, *ps_);
                return false;
            }
            slot = ps_->forcedSlot(op, early);
        }

        std::vector<OpId> evicted;
        ps_->placeEvicting(op, slot, cluster, heights_, evicted);
        for (OpId v : evicted)
            handleEvicted(v);
        ejectViolatedSuccessors(op);
        return true;
    }

    /**
     * Strategy 3: IMS-style forced scheduling in an arbitrarily
     * chosen cluster, ejecting for resource, dependence *and*
     * communication conflicts.
     */
    void
    strategy3(OpId op)
    {
        ClusterId cluster = kInvalidCluster;
        if (params_.s3Policy == S3ClusterPolicy::PreferCommOk) {
            for (ClusterId c :
                 clustersByAffinity(*ddg_, *ps_, machine_, op, variant_)) {
                if (commOkAt(*ddg_, *ps_, machine_, op, c)) {
                    cluster = c;
                    break;
                }
            }
        }
        if (cluster == kInvalidCluster) {
            cluster = static_cast<ClusterId>(
                (op + ps_->placementCount(op) + variant_) %
                machine_.numClusters());
        }

        Cycle early = ps_->earlyStart(op);
        Cycle slot = ps_->findFreeSlot(op, cluster, early);
        if (slot == kUnscheduled)
            slot = ps_->forcedSlot(op, early);

        std::vector<OpId> evicted;
        ps_->placeEvicting(op, slot, cluster, heights_, evicted);
        for (OpId v : evicted)
            handleEvicted(v);

        ejectViolatedSuccessors(op);

        // Communication conflicts: eject the far peers.
        for (OpId peer :
             commConflictPeers(*ddg_, *ps_, machine_, op)) {
            if (ps_->isScheduled(peer))
                backtrackUnschedule(peer);
        }
    }

    /** Eject scheduled successors whose dependences now fail. */
    void
    ejectViolatedSuccessors(OpId op)
    {
        // Re-query after every ejection: dissolving a chain edits
        // the edge set.
        while (true) {
            auto viol = ps_->violatedSuccessors(op);
            bool any = false;
            for (OpId v : viol) {
                if (ps_->isScheduled(v)) {
                    backtrackUnschedule(v);
                    any = true;
                    break;
                }
            }
            if (!any)
                return;
        }
    }

    /**
     * Post-process an operation that placeEvicting() already pulled
     * out of the schedule (chain bookkeeping only).
     */
    void
    handleEvicted(OpId victim)
    {
        if (ddg_->op(victim).origin == OpOrigin::MoveOp)
            dissolveMoveChain(victim);
        else
            dissolveTouchingChains(victim);
    }

    /** Chain-aware unschedule of a currently scheduled op. */
    void
    backtrackUnschedule(OpId victim)
    {
        if (ddg_->op(victim).origin == OpOrigin::MoveOp) {
            dissolveMoveChain(victim);
            return;
        }
        ps_->unschedule(victim);
        dissolveTouchingChains(victim);
    }

    /**
     * The paper's three dissolution cases. An ejected *move*
     * dissolves its chain and re-ejects the original consumer:
     * leaving producer and consumer scheduled in far clusters with
     * the restored edge would silently break the communication
     * invariant.
     */
    void
    dissolveMoveChain(OpId mv)
    {
        int cid = chains_.chainOfMove(mv);
        DMS_ASSERT(cid >= 0, "move %d without chain", mv);
        OpId consumer =
            ddg_->edge(chains_.chain(cid).originalEdge).dst;
        chains_.dissolve(cid, *ddg_, *ps_);
        if (ps_->isScheduled(consumer))
            backtrackUnschedule(consumer);
    }

    /**
     * Ejected producer or consumer: dissolve the chains hanging off
     * it. The surviving endpoint keeps its slot; the edge endpoints
     * are no longer both scheduled, so no conflict remains.
     */
    void
    dissolveTouchingChains(OpId endpoint)
    {
        for (int cid : chains_.chainsTouching(*ddg_, endpoint))
            chains_.dissolve(cid, *ddg_, *ps_);
    }

    const MachineModel &machine_;
    const DmsParams &params_;
    const int ii_;
    const int variant_;
    std::unique_ptr<Ddg> ddg_;
    std::unique_ptr<PartialSchedule> ps_;
    ChainRegistry chains_;
    Heights heights_;
};

} // namespace

DmsOutcome
scheduleDms(const Ddg &ddg, const MachineModel &machine,
            const DmsParams &params)
{
    DMS_ASSERT(machine.clustered(),
               "DMS targets clustered machines; use scheduleIms for "
               "the unclustered model");

    DmsOutcome out;
    out.sched.resMii = resMii(ddg, machine);
    out.sched.recMii = recMii(ddg);
    out.sched.mii = std::max(out.sched.resMii, out.sched.recMii);
    int max_ii = params.maxII > 0 ? params.maxII
                                  : defaultMaxII(out.sched.mii);

    long budget =
        static_cast<long>(params.budgetRatio) * ddg.liveOpCount();
    budget = std::max<long>(budget, 1);

    const int restarts = std::max(1, params.restartsPerII);
    for (int ii = out.sched.mii; ii <= max_ii; ++ii) {
        for (int v = 0; v < restarts; ++v) {
            ++out.sched.attempts;
            DmsAttempt attempt(ddg, machine, params, ii, v);
            if (attempt.run(budget, out.sched.budgetUsed)) {
                out.sched.ok = true;
                out.sched.ii = ii;
                out.sched.movesInserted = attempt.liveMoves();
                out.ddg = attempt.takeDdg();
                out.sched.schedule = attempt.takeSchedule();
                return out;
            }
        }
    }
    return out;
}

} // namespace dms
