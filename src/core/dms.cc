#include "core/dms.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <mutex>
#include <thread>

#include "core/affinity.h"
#include "core/chain.h"
#include "core/comm.h"
#include "obs/trace.h"
#include "sched/mii.h"
#include "sched/priority.h"
#include "sched/worklist.h"
#include "support/diag.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace dms {

namespace {

/**
 * Strategy-2 chain plan held in one flat arena: chain i bridges
 * edge[i] with the intermediate clusters
 * clusters[offsets[i] .. offsets[i+1]). Two instances (candidate
 * and best-so-far) are swapped instead of copied, so planning
 * allocates nothing in steady state.
 */
struct ChainPlan
{
    std::vector<EdgeId> edges;
    std::vector<int> offsets;
    std::vector<ClusterId> clusters;

    void
    clear()
    {
        edges.clear();
        offsets.assign(1, 0);
        clusters.clear();
    }

    int chainCount() const { return static_cast<int>(edges.size()); }

    int
    pathLen(int i) const
    {
        return offsets[static_cast<size_t>(i) + 1] -
               offsets[static_cast<size_t>(i)];
    }

    const ClusterId *
    path(int i) const
    {
        return clusters.data() + offsets[static_cast<size_t>(i)];
    }

    int totalMoves() const
    {
        return static_cast<int>(clusters.size());
    }
};

/**
 * DMS state reused across every (II, restart) attempt of one
 * scheduling run: the scratch graph, the partial schedule, the
 * chain registry, the height table, the priority worklist, the
 * incremental affinity rows and the per-placement scratch vectors
 * all live in one arena that beginAttempt() re-shapes without
 * reallocating.
 */
class DmsAttempt
{
  public:
    DmsAttempt(const Ddg &original, const MachineModel &machine,
               const DmsParams &params)
        : original_(original), machine_(machine), params_(params),
          ddg_(std::make_unique<Ddg>(original)),
          ps_(std::make_unique<PartialSchedule>(
              *ddg_, machine, /*ii=*/1))
    {}

    /**
     * Re-arm the arena for one (II, restart) attempt. False when
     * the height relaxation diverged — the II is below the true
     * RecMII (a hostile hint); the caller records a failed attempt
     * and climbs the ladder instead of panicking.
     */
    bool
    beginAttempt(int ii, int variant)
    {
        ii_ = ii;
        variant_ = variant;
        ddg_->resetTo(original_);
        ps_->reset(ii);
        chains_.reset();
        affinity_tracker_.attach(*ddg_, *ps_, machine_);
        // The graph is back to its original shape, so the ladder
        // reuses heights verbatim across restarts and delta-steps
        // across II increments.
        if (!ladder_.ensure(*ddg_, ii))
            return false;
        heights_.assign(ladder_.heights().begin(),
                        ladder_.heights().end());
        worklist_.build(*ddg_, heights_);
        return true;
    }

    /**
     * Run the pass; true if everything got scheduled in budget.
     * When @p winner is set (speculative ladder), the attempt
     * aborts — returning false like a budget exhaustion — once an
     * attempt earlier in the serial (II, restart) order has won;
     * aborted attempts sit after the final winner, so their partial
     * accounting is never merged.
     */
    bool
    run(long budget, long &used,
        const std::atomic<int> *winner = nullptr, int my_index = 0)
    {
        long steps = 0;
        while (ps_->scheduledCount() < ddg_->liveOpCount()) {
            if (budget-- <= 0)
                return false;
            ++used;
            if (winner != nullptr && (steps++ & 31) == 0 &&
                winner->load(std::memory_order_relaxed) < my_index)
                return false;
            OpId op = worklist_.pop();
            DMS_ASSERT(op != kInvalidOp, "no unscheduled op");
            DMS_ASSERT(ddg_->op(op).origin != OpOrigin::MoveOp,
                       "unscheduled move op %d in worklist", op);
            scheduleOp(op);
        }
        return true;
    }

    std::unique_ptr<Ddg>
    takeDdg()
    {
        ddg_->setListener(nullptr); // tracker dies with the attempt
        return std::move(ddg_);
    }

    std::unique_ptr<PartialSchedule>
    takeSchedule()
    {
        ps_->setListener(nullptr);
        return std::move(ps_);
    }

    int
    liveMoves() const
    {
        int n = 0;
        for (OpId id = 0; id < ddg_->numOps(); ++id) {
            if (ddg_->opLive(id) &&
                ddg_->op(id).origin == OpOrigin::MoveOp) {
                ++n;
            }
        }
        return n;
    }

  private:
    void
    scheduleOp(OpId op)
    {
        // One affinity ranking serves all three strategies: a
        // failed strategy 1 mutates nothing, and a failed
        // strategy 2 dissolves every chain it placed, so the
        // schedule state the ranking depends on is identical at
        // each strategy entry. The ranking itself comes from the
        // incrementally maintained tracker rows.
        affinity_tracker_.order(op, variant_, affinity_);
        if (strategy1(op))
            return;
        if (params_.enableChains && strategy2(op))
            return;
        strategy3(op);
    }

    /**
     * Strategy 1: a communication-conflict-free cluster with a
     * resource-free slot inside the II window. Dependence-violated
     * successors are ejected; no resource eviction happens here.
     */
    bool
    strategy1(OpId op)
    {
        Cycle early = ps_->earlyStart(op);
        for (ClusterId c : affinity_) {
            if (!commOkAt(*ddg_, *ps_, machine_, op, c))
                continue;
            Cycle slot = ps_->findFreeSlot(op, c, early);
            if (slot == kUnscheduled)
                continue;
            bool ok = ps_->tryPlace(op, slot, c);
            DMS_ASSERT(ok, "free slot vanished");
            ejectViolatedSuccessors(op);
            return true;
        }
        return false;
    }

    /**
     * Strategy 2: chains of moves toward every far predecessor
     * (paper figure 3). Returns false if no candidate cluster can
     * host all required chains.
     */
    bool
    strategy2(OpId op)
    {
        const auto &rt = ps_->reservations();

        // Free copy-unit slots per cluster, the quantity the
        // paper's selection rule preserves.
        const int nc = machine_.numClusters();
        base_free_.assign(static_cast<size_t>(nc), 0);
        for (ClusterId c = 0; c < nc; ++c) {
            base_free_[static_cast<size_t>(c)] =
                rt.freeSlotCount(c, FuClass::Copy);
        }

        ClusterId best_cluster = kInvalidCluster;
        int best_min_free = -1;
        int best_moves = 0;

        for (ClusterId c : affinity_) {
            if (!succsOkAt(*ddg_, *ps_, machine_, op, c))
                continue;
            farPredecessorEdges(*ddg_, *ps_, machine_, op, c,
                                far_edges_);
            if (far_edges_.empty())
                continue; // strategy 1 territory; resources failed

            claimed_.assign(static_cast<size_t>(nc), 0);
            plan_.clear();
            bool feasible = true;
            for (EdgeId e : far_edges_) {
                if (!planOneChain(e, c)) {
                    feasible = false;
                    break;
                }
                const int i = plan_.chainCount() - 1;
                const ClusterId *path = plan_.path(i);
                for (int k = 0; k < plan_.pathLen(i); ++k)
                    ++claimed_[static_cast<size_t>(path[k])];
            }
            if (!feasible)
                continue;

            int min_free = INT32_MAX;
            for (ClusterId x = 0; x < nc; ++x) {
                min_free = std::min(
                    min_free,
                    base_free_[static_cast<size_t>(x)] -
                        claimed_[static_cast<size_t>(x)]);
            }
            const int moves = plan_.totalMoves();

            bool better = best_cluster == kInvalidCluster ||
                          min_free > best_min_free ||
                          (min_free == best_min_free &&
                           moves < best_moves);
            if (better) {
                best_cluster = c;
                std::swap(best_plan_, plan_);
                best_min_free = min_free;
                best_moves = moves;
            }
        }

        if (best_cluster == kInvalidCluster)
            return false;
        return commitStrategy2(op, best_cluster, best_plan_);
    }

    /**
     * Pick a route for one chain, honouring slots already claimed
     * (in claimed_) by sibling chains of the same candidate, and
     * append it to plan_. Returns false when no route fits. Route
     * alternatives and scratch paths come from the machine's
     * topology (ring: the two directions of paper figure 3).
     */
    bool
    planOneChain(EdgeId e, ClusterId target)
    {
        ClusterId from = ps_->clusterOf(ddg_->edge(e).src);
        const std::vector<ClusterId> *best_path = nullptr;
        int best_min_free = -1;

        for (int r = 0; r < MachineModel::kNumRoutes; ++r) {
            std::vector<ClusterId> &path = route_scratch_[r];
            machine_.routeBetween(from, target, r, path);
            if (path.empty())
                continue; // would be adjacent; not a far edge
            bool fits = true;
            int min_free = INT32_MAX;
            for (ClusterId x : path) {
                int free_here = base_free_[static_cast<size_t>(x)] -
                                claimed_[static_cast<size_t>(x)] - 1;
                if (free_here < 0) {
                    fits = false;
                    break;
                }
                min_free = std::min(min_free, free_here);
            }
            if (!fits)
                continue;

            bool better;
            if (best_path == nullptr) {
                better = true;
            } else if (params_.chainRule ==
                       ChainSelectRule::MaxFreeSlots) {
                better = min_free > best_min_free ||
                         (min_free == best_min_free &&
                          path.size() < best_path->size());
            } else {
                better = path.size() < best_path->size();
            }
            if (better) {
                best_path = &path;
                best_min_free = min_free;
            }
        }
        if (best_path == nullptr)
            return false;

        plan_.edges.push_back(e);
        plan_.clusters.insert(plan_.clusters.end(),
                              best_path->begin(), best_path->end());
        plan_.offsets.push_back(
            static_cast<int>(plan_.clusters.size()));
        return true;
    }

    /** Splice and schedule the chosen chains, then place OP. */
    bool
    commitStrategy2(OpId op, ClusterId cluster,
                    const ChainPlan &plan)
    {
        const int move_lat = machine_.latencyOf(Opcode::Move);
        created_.clear();

        for (int i = 0; i < plan.chainCount(); ++i) {
            EdgeId bridged = plan.edges[static_cast<size_t>(i)];
            int cid = chains_.create(*ddg_, bridged, plan.path(i),
                                     plan.pathLen(i), move_lat);
            created_.push_back(cid);
            const Chain &ch = chains_.chain(cid);

            // Grow the height table for the new moves. A move
            // inherits its producer's height so eviction heuristics
            // treat it as critical as the value it forwards.
            heights_.resize(static_cast<size_t>(ddg_->numOps()), 0);
            std::int64_t h = heights_[static_cast<size_t>(
                ddg_->edge(bridged).src)];
            for (OpId mv : ch.moves)
                heights_[static_cast<size_t>(mv)] = h;

            // Paper: "move operations are sequentially scheduled,
            // starting from the first one after the original
            // producer". Feasibility was verified above, so a free
            // slot exists in every intermediate cluster.
            for (size_t k = 0; k < ch.moves.size(); ++k) {
                OpId mv = ch.moves[k];
                Cycle early = std::max<Cycle>(0, ps_->earlyStart(mv));
                Cycle slot =
                    ps_->findFreeSlot(mv, ch.clusters[k], early);
                DMS_ASSERT(slot != kUnscheduled,
                           "chain feasibility miscounted");
                bool ok = ps_->tryPlace(mv, slot, ch.clusters[k]);
                DMS_ASSERT(ok, "chain slot vanished");
            }
        }

        // Place OP itself. Copy-class ops share the copy units with
        // the moves just placed; forcing an eviction there could
        // knock out our own chain, so require a free slot and
        // otherwise roll back to strategy 3.
        Cycle early = ps_->earlyStart(op);
        Cycle slot = ps_->findFreeSlot(op, cluster, early);
        if (slot == kUnscheduled) {
            if (fuClassOf(ddg_->op(op).opc) == FuClass::Copy) {
                for (int cid : created_)
                    chains_.dissolve(cid, *ddg_, *ps_);
                return false;
            }
            slot = ps_->forcedSlot(op, early);
        }

        evicted_.clear();
        ps_->placeEvicting(op, slot, cluster, heights_, evicted_);
        for (OpId v : evicted_)
            handleEvicted(v);
        ejectViolatedSuccessors(op);
        return true;
    }

    /**
     * Strategy 3: IMS-style forced scheduling in an arbitrarily
     * chosen cluster, ejecting for resource, dependence *and*
     * communication conflicts.
     */
    void
    strategy3(OpId op)
    {
        ClusterId cluster = kInvalidCluster;
        if (params_.s3Policy == S3ClusterPolicy::PreferCommOk) {
            for (ClusterId c : affinity_) {
                if (commOkAt(*ddg_, *ps_, machine_, op, c)) {
                    cluster = c;
                    break;
                }
            }
        }
        if (cluster == kInvalidCluster) {
            cluster = static_cast<ClusterId>(
                (op + ps_->placementCount(op) + variant_) %
                machine_.numClusters());
        }

        Cycle early = ps_->earlyStart(op);
        Cycle slot = ps_->findFreeSlot(op, cluster, early);
        if (slot == kUnscheduled)
            slot = ps_->forcedSlot(op, early);

        evicted_.clear();
        ps_->placeEvicting(op, slot, cluster, heights_, evicted_);
        for (OpId v : evicted_)
            handleEvicted(v);

        ejectViolatedSuccessors(op);

        // Communication conflicts: eject the far peers.
        commConflictPeers(*ddg_, *ps_, machine_, op, peers_);
        for (OpId peer : peers_) {
            if (ps_->isScheduled(peer))
                backtrackUnschedule(peer);
        }
    }

    /** Eject scheduled successors whose dependences now fail. */
    void
    ejectViolatedSuccessors(OpId op)
    {
        // Re-query after every ejection: dissolving a chain edits
        // the edge set.
        while (true) {
            ps_->violatedSuccessors(op, viol_);
            bool any = false;
            for (OpId v : viol_) {
                if (ps_->isScheduled(v)) {
                    backtrackUnschedule(v);
                    any = true;
                    break;
                }
            }
            if (!any)
                return;
        }
    }

    /**
     * Post-process an operation that placeEvicting() already pulled
     * out of the schedule (chain bookkeeping plus worklist
     * re-insertion).
     */
    void
    handleEvicted(OpId victim)
    {
        if (ddg_->op(victim).origin == OpOrigin::MoveOp) {
            dissolveMoveChain(victim);
        } else {
            worklist_.push(victim);
            dissolveTouchingChains(victim);
        }
    }

    /** Chain-aware unschedule of a currently scheduled op. */
    void
    backtrackUnschedule(OpId victim)
    {
        if (ddg_->op(victim).origin == OpOrigin::MoveOp) {
            dissolveMoveChain(victim);
            return;
        }
        ps_->unschedule(victim);
        worklist_.push(victim);
        dissolveTouchingChains(victim);
    }

    /**
     * The paper's three dissolution cases. An ejected *move*
     * dissolves its chain and re-ejects the original consumer:
     * leaving producer and consumer scheduled in far clusters with
     * the restored edge would silently break the communication
     * invariant.
     */
    void
    dissolveMoveChain(OpId mv)
    {
        int cid = chains_.chainOfMove(mv);
        DMS_ASSERT(cid >= 0, "move %d without chain", mv);
        OpId consumer =
            ddg_->edge(chains_.chain(cid).originalEdge).dst;
        chains_.dissolve(cid, *ddg_, *ps_);
        if (ps_->isScheduled(consumer))
            backtrackUnschedule(consumer);
    }

    /**
     * Ejected producer or consumer: dissolve the chains hanging off
     * it. The surviving endpoint keeps its slot; the edge endpoints
     * are no longer both scheduled, so no conflict remains.
     */
    void
    dissolveTouchingChains(OpId endpoint)
    {
        chains_.chainsTouching(*ddg_, endpoint, touching_);
        for (int cid : touching_)
            chains_.dissolve(cid, *ddg_, *ps_);
    }

    const Ddg &original_;
    const MachineModel &machine_;
    const DmsParams &params_;
    int ii_ = 0;
    int variant_ = 0;
    std::unique_ptr<Ddg> ddg_;
    std::unique_ptr<PartialSchedule> ps_;
    ChainRegistry chains_;
    HeightLadder ladder_;
    Heights heights_;
    Worklist worklist_;
    AffinityTracker affinity_tracker_;

    /** Per-placement scratch, reused to stay allocation-free. */
    std::vector<OpId> evicted_;
    std::vector<OpId> viol_;
    std::vector<OpId> peers_;
    std::vector<EdgeId> far_edges_;
    std::vector<ClusterId> affinity_;
    std::vector<int> base_free_;
    std::vector<int> claimed_;
    std::vector<int> created_;
    std::vector<int> touching_;
    ChainPlan plan_;
    ChainPlan best_plan_;
    std::vector<ClusterId> route_scratch_[MachineModel::kNumRoutes];
};

/**
 * Per-attempt ledger for the speculative ladder. Slot k describes
 * serial attempt k = (II - MII) * restarts + restart; each slot is
 * written by exactly one lane before the join, so the vector needs
 * no locking.
 */
struct AttemptRecord
{
    int attempts = 0; ///< 0 or 1: was this attempt started?
    long used = 0;    ///< scheduling steps it consumed
    bool success = false;
};

/**
 * One speculative lane: runs the serial attempt sequence restricted
 * to indices congruent to @p first (mod 2), in increasing order,
 * against its own attempt arena. CAS-min publishes the first
 * success; a lane stops once the published winner precedes its
 * next index (that attempt's outcome can no longer matter) and
 * aborts mid-attempt through run()'s winner check.
 */
void
runSpeculativeLane(DmsAttempt &attempt, int first, int base,
                   int total, int mii, int restarts, long budget,
                   std::vector<AttemptRecord> &records,
                   std::atomic<int> &winner)
{
    for (int k = first; k < total; k += 2) {
        if (winner.load(std::memory_order_acquire) < k)
            return;
        const int ii = mii + k / restarts;
        const int v = k % restarts;
        AttemptRecord &rec =
            records[static_cast<size_t>(k - base)];
        rec.attempts = 1;
        if (!attempt.beginAttempt(ii, v))
            continue;
        if (attempt.run(budget, rec.used, &winner, k)) {
            rec.success = true;
            int cur = winner.load(std::memory_order_relaxed);
            while (k < cur &&
                   !winner.compare_exchange_weak(
                       cur, k, std::memory_order_acq_rel)) {
            }
            // Later indices in this lane cannot precede this one;
            // the arena now holds this success for the join.
            return;
        }
    }
}

/**
 * The two-lane attempt pool behind every speculative ladder in the
 * process, mirroring the pooled-context pattern of the compile
 * service: lane 1 borrows a pool worker while lane 0 runs on the
 * caller. The mutex keeps one ladder at a time in the pool — a
 * concurrent caller (a sweep worker with the knob forced on) falls
 * back to the serial ladder rather than queue behind it, which
 * changes nothing observable: both ladders produce bit-identical
 * results.
 */
std::mutex &
speculationMutex()
{
    static std::mutex mu;
    return mu;
}

ThreadPool &
speculationPool()
{
    static ThreadPool pool(2);
    return pool;
}

/** Fold records [base, upto] into the outcome's accounting. */
void
mergeRecords(const std::vector<AttemptRecord> &records, int base,
             int upto, SchedOutcome &sched)
{
    for (int k = base; k <= upto; ++k) {
        const AttemptRecord &rec =
            records[static_cast<size_t>(k - base)];
        sched.attempts += rec.attempts;
        sched.budgetUsed += rec.used;
    }
}

/**
 * Speculative remainder of the ladder, entered after the serial
 * loop's first failed attempt (index @p k0 - 1): both lanes walk
 * disjoint halves of the remaining serial attempt order, and the
 * committed result is the attempt with the lowest serial index
 * that succeeded. Every attempt is a deterministic function of
 * (body, machine, params, II, restart) computed in a private
 * arena, and all attempts preceding the winner run to completion
 * (the skip and abort conditions only fire strictly after the
 * published winner), so the merged schedule, attempts count and
 * budgetUsed reproduce the serial ladder exactly. Engaging only
 * after a failure keeps the common first-attempt success free of
 * pool handoffs and second-arena setup.
 *
 * Returns false (leaving @p out untouched) when the pool is busy;
 * the caller then just continues its serial loop.
 */
bool
scheduleDmsSpeculative(const Ddg &ddg, const MachineModel &machine,
                       const DmsParams &params, DmsAttempt &lane0,
                       int k0, int total, long budget,
                       int restarts, DmsOutcome &out)
{
    std::unique_lock<std::mutex> guard(speculationMutex(),
                                       std::try_to_lock);
    if (!guard.owns_lock())
        return false; // pool busy: caller runs the serial ladder

    const int mii = out.sched.mii;
    std::vector<AttemptRecord> records(
        static_cast<size_t>(total - k0));
    std::atomic<int> winner{INT_MAX};

    DmsAttempt lane1(ddg, machine, params);
    ThreadPool &pool = speculationPool();
    pool.submit([&] {
        runSpeculativeLane(lane1, k0 + 1, k0, total, mii, restarts,
                           budget, records, winner);
    });
    try {
        runSpeculativeLane(lane0, k0, k0, total, mii, restarts,
                           budget, records, winner);
    } catch (...) {
        // Lane 1 still references our stack frame: poison the
        // winner so it aborts at its next check, join, rethrow.
        winner.store(INT_MIN, std::memory_order_release);
        pool.wait();
        throw;
    }
    pool.wait();

    const int win = winner.load(std::memory_order_acquire);
    if (win == INT_MAX) {
        mergeRecords(records, k0, total - 1, out.sched);
        return true; // exhausted ladder, like serial
    }
    mergeRecords(records, k0, win, out.sched);
    DmsAttempt &winning = (win - k0) % 2 == 0 ? lane0 : lane1;
    out.sched.ok = true;
    out.sched.ii = mii + win / restarts;
    out.sched.movesInserted = winning.liveMoves();
    out.ddg = winning.takeDdg();
    out.sched.schedule = winning.takeSchedule();
    return true;
}

} // namespace

DmsOutcome
scheduleDms(const Ddg &ddg, const MachineModel &machine,
            const DmsParams &params)
{
    DMS_ASSERT(machine.clustered(),
               "DMS targets clustered machines; use scheduleIms for "
               "the unclustered model");

    DmsOutcome out;
    out.sched.resMii = params.knownResMii >= 0 ? params.knownResMii
                                               : resMii(ddg, machine);
    out.sched.recMii = params.knownRecMii >= 0 ? params.knownRecMii
                                               : recMii(ddg);
    out.sched.mii = std::max(out.sched.resMii, out.sched.recMii);
    int max_ii = params.maxII > 0 ? params.maxII
                                  : defaultMaxII(out.sched.mii);

    long budget =
        static_cast<long>(params.budgetRatio) * ddg.liveOpCount();
    budget = std::max<long>(budget, 1);

    const int restarts = std::max(1, params.restartsPerII);
    const int total =
        std::max(0, (max_ii - out.sched.mii + 1) * restarts);

    // Explicit 0/1 wins; -1 resolves the environment knob, and the
    // resolved-on path still backs off on single-core hosts where a
    // second lane can only add scheduling overhead. Forcing
    // speculateII = 1 bypasses the core check so tests exercise the
    // concurrent path everywhere.
    const bool speculate =
        params.speculateII >= 0
            ? params.speculateII != 0
            : envInt("DMS_SPECULATE_II", 0, 0) > 0 &&
                  std::thread::hardware_concurrency() >= 2;

    DmsAttempt attempt(ddg, machine, params);
    // Rung spans for the serial ladder only: the speculative walk
    // runs attempts on pool threads whose interleaving is
    // nondeterministic, so those stay uninstrumented (their
    // thread-local trace is null anyway).
    obs::Trace *tr =
        obs::traceArmed() ? obs::currentTrace() : nullptr;
    for (int k = 0; k < total; ++k) {
        const int ii = out.sched.mii + k / restarts;
        const int v = k % restarts;
        ++out.sched.attempts;
        obs::ScopedSpan rung(tr, "sched.attempt");
        if (tr != nullptr)
            rung.note(strfmt("ii=%d restart=%d", ii, v));
        // A beginAttempt failure is a recoverable "II below RecMII"
        // miss (hostile hint): record a failed attempt and climb.
        if (attempt.beginAttempt(ii, v) &&
            attempt.run(budget, out.sched.budgetUsed)) {
            out.sched.ok = true;
            out.sched.ii = ii;
            out.sched.movesInserted = attempt.liveMoves();
            out.ddg = attempt.takeDdg();
            out.sched.schedule = attempt.takeSchedule();
            return out;
        }
        // First failure: the rest of the ladder is the expensive
        // case — hand it to the two-lane speculative walk, which
        // finishes the search (success or exhaustion) exactly as
        // the serial loop would.
        if (speculate && k + 1 < total &&
            scheduleDmsSpeculative(ddg, machine, params, attempt,
                                   k + 1, total, budget, restarts,
                                   out)) {
            return out;
        }
    }
    return out;
}

} // namespace dms
