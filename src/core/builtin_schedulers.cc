/**
 * @file
 * Registry adapters for the built-in schedulers. This file lives in
 * core/ because it must see every implementation (IMS in sched/,
 * DMS in core/, the two-phase baseline in baseline/); the interface
 * itself (sched/scheduler.h) depends on none of them.
 */

#include "baseline/twophase.h"
#include "core/dms.h"
#include "sched/ims.h"
#include "sched/scheduler.h"

namespace dms {

namespace {

/** Rau's IMS on the unclustered reference machine. */
class ImsScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "ims"; }

    bool
    supports(const MachineModel &machine) const override
    {
        // IMS places everything in cluster 0 and ignores
        // communication; it only models the unclustered reference.
        return !machine.clustered();
    }

    SchedulerResult
    schedule(const Ddg &body, const MachineModel &machine,
             const SchedulerConfig &config) override
    {
        SchedulerResult result;
        result.sched = scheduleIms(body, machine, config.base);
        return result;
    }
};

/** The paper's single-phase distributed modulo scheduler. */
class DmsScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "dms"; }

    bool
    supports(const MachineModel &machine) const override
    {
        return machine.clustered();
    }

    SchedulerResult
    schedule(const Ddg &body, const MachineModel &machine,
             const SchedulerConfig &config) override
    {
        DmsOutcome out = scheduleDms(body, machine, config.dms);
        SchedulerResult result;
        result.sched = std::move(out.sched);
        result.ddg = std::move(out.ddg);
        return result;
    }
};

/** Partition-then-schedule baseline (paper refs [6]/[12]). */
class TwoPhaseScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "twophase"; }

    bool
    supports(const MachineModel &machine) const override
    {
        return machine.clustered();
    }

    SchedulerResult
    schedule(const Ddg &body, const MachineModel &machine,
             const SchedulerConfig &config) override
    {
        // Phase 2 modulo-schedules the *move-augmented* graph, whose
        // RecMII can exceed the input body's (chains lengthen
        // recurrence paths). Pipeline MII hints describe the body,
        // so trusting them here would start the II ladder below the
        // true RecMII and blow up the height relaxation — phase 2
        // must recompute its own bounds.
        SchedParams params = config.base;
        params.knownResMii = -1;
        params.knownRecMii = -1;
        TwoPhaseOutcome out = scheduleTwoPhase(body, machine, params);
        SchedulerResult result;
        result.sched = std::move(out.sched);
        result.ddg = std::move(out.ddg);
        return result;
    }
};

} // namespace

void
registerBuiltinSchedulers(SchedulerRegistry &registry)
{
    registry.add("ims", [] {
        return std::unique_ptr<Scheduler>(new ImsScheduler);
    });
    registry.add("dms", [] {
        return std::unique_ptr<Scheduler>(new DmsScheduler);
    });
    registry.add("twophase", [] {
        return std::unique_ptr<Scheduler>(new TwoPhaseScheduler);
    });
}

} // namespace dms
