#include "core/affinity.h"

#include <numeric>

#include "support/diag.h"

namespace dms {

void
AffinityTracker::attach(Ddg &ddg, PartialSchedule &ps,
                        const MachineModel &machine)
{
    DMS_ASSERT(ps.scheduledCount() == 0,
               "affinity tracker attached mid-schedule");
    ddg_ = &ddg;
    ps_ = &ps;
    machine_ = &machine;
    nc_ = machine.numClusters();

    dist3_.assign(static_cast<size_t>(nc_) * nc_, 0);
    for (ClusterId a = 0; a < nc_; ++a) {
        for (ClusterId b = 0; b < nc_; ++b) {
            dist3_[static_cast<size_t>(a) * nc_ + b] =
                3L * machine.distance(a, b);
        }
    }
    rows_.assign(static_cast<size_t>(ddg.numOps()) * nc_, 0);

    ddg.setListener(this);
    ps.setListener(this);
}

void
AffinityTracker::detach()
{
    if (ddg_ != nullptr && ddg_->listener() == this)
        ddg_->setListener(nullptr);
    if (ps_ != nullptr && ps_->listener() == this)
        ps_->setListener(nullptr);
    ddg_ = nullptr;
    ps_ = nullptr;
}

long *
AffinityTracker::row(OpId op)
{
    size_t need = (static_cast<size_t>(op) + 1) * nc_;
    if (rows_.size() < need)
        rows_.resize(need, 0); // moves appended since attach
    return rows_.data() + static_cast<size_t>(op) * nc_;
}

const long *
AffinityTracker::rowOf(OpId op) const
{
    return const_cast<AffinityTracker *>(this)->row(op);
}

void
AffinityTracker::applyNeighbor(OpId of, ClusterId at, int sign)
{
    long *r = row(of);
    const long *d = dist3_.data() + static_cast<size_t>(at) * nc_;
    if (sign > 0) {
        for (int c = 0; c < nc_; ++c)
            r[c] += d[c];
    } else {
        for (int c = 0; c < nc_; ++c)
            r[c] -= d[c];
    }
}

void
AffinityTracker::onPlace(OpId op, ClusterId cluster)
{
    const Operation &o = ddg_->op(op);
    for (EdgeId e : o.ins) {
        if (!ddg_->edgeActive(e) ||
            ddg_->edge(e).kind != DepKind::Flow)
            continue;
        OpId src = ddg_->edge(e).src;
        if (src != op)
            applyNeighbor(src, cluster, +1);
    }
    for (EdgeId e : o.outs) {
        if (!ddg_->edgeActive(e) ||
            ddg_->edge(e).kind != DepKind::Flow)
            continue;
        OpId dst = ddg_->edge(e).dst;
        if (dst != op)
            applyNeighbor(dst, cluster, +1);
    }
}

void
AffinityTracker::onUnplace(OpId op, ClusterId cluster)
{
    const Operation &o = ddg_->op(op);
    for (EdgeId e : o.ins) {
        if (!ddg_->edgeActive(e) ||
            ddg_->edge(e).kind != DepKind::Flow)
            continue;
        OpId src = ddg_->edge(e).src;
        if (src != op)
            applyNeighbor(src, cluster, -1);
    }
    for (EdgeId e : o.outs) {
        if (!ddg_->edgeActive(e) ||
            ddg_->edge(e).kind != DepKind::Flow)
            continue;
        OpId dst = ddg_->edge(e).dst;
        if (dst != op)
            applyNeighbor(dst, cluster, -1);
    }
}

void
AffinityTracker::onEdgeActivated(EdgeId e)
{
    const Edge &ed = ddg_->edge(e);
    if (ed.kind != DepKind::Flow || ed.src == ed.dst)
        return;
    if (ps_->isScheduled(ed.src))
        applyNeighbor(ed.dst, ps_->clusterOf(ed.src), +1);
    if (ps_->isScheduled(ed.dst))
        applyNeighbor(ed.src, ps_->clusterOf(ed.dst), +1);
}

void
AffinityTracker::onEdgeDeactivated(EdgeId e)
{
    const Edge &ed = ddg_->edge(e);
    if (ed.kind != DepKind::Flow || ed.src == ed.dst)
        return;
    if (ps_->isScheduled(ed.src))
        applyNeighbor(ed.dst, ps_->clusterOf(ed.src), -1);
    if (ps_->isScheduled(ed.dst))
        applyNeighbor(ed.src, ps_->clusterOf(ed.dst), -1);
}

void
AffinityTracker::order(OpId op, int rotate,
                       std::vector<ClusterId> &out) const
{
    const int n = nc_;
    const long *r = rowOf(op);
    cost_.assign(static_cast<size_t>(n), 0);
    for (int c = 0; c < n; ++c)
        cost_[static_cast<size_t>(c)] = r[c];

    // Load term, identical to clustersByAffinity: occupied slots of
    // the op's own FU class.
    FuClass cls = fuClassOf(ddg_->op(op).opc);
    const int rows = ps_->ii() *
                     std::max(1, machine_->fusPerCluster(cls));
    for (ClusterId c = 0; c < n; ++c) {
        int occupied =
            machine_->fusPerCluster(cls) > 0
                ? rows - ps_->reservations().freeSlotCount(c, cls)
                : 0;
        cost_[static_cast<size_t>(c)] += occupied;
    }

    out.resize(static_cast<size_t>(n));
    std::iota(out.begin(), out.end(), 0);
    auto less = [&](ClusterId a, ClusterId b) {
        long ca = cost_[static_cast<size_t>(a)];
        long cb = cost_[static_cast<size_t>(b)];
        if (ca != cb)
            return ca < cb;
        return (a + rotate) % n < (b + rotate) % n;
    };
    for (int i = 1; i < n; ++i) {
        ClusterId key = out[static_cast<size_t>(i)];
        int j = i - 1;
        while (j >= 0 && less(key, out[static_cast<size_t>(j)])) {
            out[static_cast<size_t>(j + 1)] =
                out[static_cast<size_t>(j)];
            --j;
        }
        out[static_cast<size_t>(j + 1)] = key;
    }
}

} // namespace dms
