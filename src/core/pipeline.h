#ifndef DMS_CORE_PIPELINE_H
#define DMS_CORE_PIPELINE_H

/**
 * @file
 * The staged compilation pipeline: one explicit flow
 *
 *   unroll -> prepass -> mii -> schedule -> regalloc -> codegen
 *          -> verify -> perf
 *
 * replacing the ad-hoc call chains the bench binaries and the
 * evaluation runner used to hardwire. A Pipeline is configured once
 * (scheduler name from the registry, optional stages switched on or
 * off) and then run per loop against a CompilationContext, which
 * owns every cross-stage artifact and the reusable arenas — one
 * context per worker thread keeps a sweep allocation-friendly and
 * lock-free.
 *
 * Stage contract: each stage reads the context its predecessors
 * filled and returns false to stop the flow (only `schedule` can
 * fail in normal operation — an II search that hit its cap). The
 * verify stage panics on an illegal schedule: that is a scheduler
 * bug, never a data condition.
 */

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/kernel.h"
#include "codegen/perf.h"
#include "ir/prepass.h"
#include "obs/trace.h"
#include "regalloc/queue_alloc.h"
#include "sched/scheduler.h"
#include "support/faultinject.h"
#include "workload/kernels.h"

namespace dms {

/** Pipeline configuration; defaults mirror the figure benches. */
struct PipelineOptions
{
    /** Registry name of the scheduler stage ("ims", "dms", ...). */
    std::string scheduler = "dms";

    /** Knobs forwarded to the scheduler. */
    SchedulerConfig config;

    /** Unroll factor: 0 applies the analytic policy, >= 1 forces. */
    int forceUnroll = 0;
    int unrollMaxFactor = 8;
    int unrollMaxOps = 512;

    /** Panic on an illegal schedule (the figure-bench default). */
    bool verify = true;

    /** Queue register allocation (queue-file machines, any
     *  topology). */
    bool regalloc = false;

    /** Kernel construction (prologue/kernel/epilogue shape). */
    bool codegen = false;

    /** Static performance model (cycles, useful IPC). */
    bool perf = true;

    /**
     * Independent static-analysis audit of every artifact the run
     * produced (schedule, queue allocation, kernel) through the
     * analysis/ check registry; panics on any diagnostic, like
     * verify. Also switched on by the environment knob
     * DMS_ANALYZE=1. Purely observational: an analyzed run's
     * artifacts are bit-identical to an unanalyzed one.
     */
    bool analyze = false;
};

/**
 * Owns the artifacts flowing between stages and the per-context
 * scheduler instances. Reusable: compile after compile, the body
 * graph and scheduler arenas recycle their allocations.
 */
class CompilationContext
{
  public:
    /** @name Stage artifacts (in pipeline order) */
    /// @{
    Ddg body;               ///< unrolled (+ pre-passed) body
    PrepassStats prepass{}; ///< copy pre-pass statistics
    int resMii = 0;
    int recMii = 0;
    int mii = 0;
    SchedulerResult result; ///< schedule + transformed graph
    QueueAllocation queues; ///< valid iff queuesValid
    bool queuesValid = false;
    PipelinedLoop kernel; ///< valid iff kernelValid
    bool kernelValid = false;
    LoopPerf perf{}; ///< valid iff perfValid
    bool perfValid = false;
    long iterations = 0; ///< body iterations (trip / unroll)
    /// @}

    /**
     * Optional cooperative cancellation, polled between stages: a
     * run whose token reports cancelled (deadline expiry or an
     * explicit cancel) throws CancelledError instead of entering
     * the next stage, so an expired request stops burning a worker.
     * Null (the default) is the zero-cost common case.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Optional request trace: when non-null, Pipeline::run opens
     * one span per stage (the same boundaries cancel polling and
     * fault injection instrument) and the schedulers add II-ladder
     * rung spans. Null (the default) is the zero-cost common case
     * — tracing must never perturb a schedule.
     */
    obs::Trace *trace = nullptr;

    /**
     * The graph the schedule refers to: the scheduler's transformed
     * graph when it produced one, the pre-passed body otherwise.
     */
    const Ddg &
    scheduledDdg() const
    {
        return result.ddg ? *result.ddg : body;
    }

    /**
     * The per-context scheduler instance for @p name, created from
     * the registry on first use and cached. fatal()s on unknown
     * names (a configuration error).
     */
    Scheduler &scheduler(const std::string &name);

  private:
    std::map<std::string, std::unique_ptr<Scheduler>> schedulers_;
};

/** The staged flow, built once per configuration. */
class Pipeline
{
  public:
    explicit Pipeline(PipelineOptions options = {});

    const PipelineOptions &options() const { return opts_; }

    /** Stage names in execution order (disabled stages omitted). */
    std::vector<std::string> stageNames() const;

    /**
     * Run every stage for @p loop on @p machine. Returns false when
     * a stage stopped the flow (schedule failure); @p ctx then holds
     * the artifacts of the stages that did run.
     */
    bool run(const Loop &loop, const MachineModel &machine,
             CompilationContext &ctx) const;

  private:
    struct Stage
    {
        const char *name;
        std::string faultSite; ///< "pipeline.<name>"
        std::function<bool(const PipelineOptions &, const Loop &,
                           const MachineModel &,
                           CompilationContext &)>
            fn;
    };

    PipelineOptions opts_;
    std::vector<Stage> stages_;
};

} // namespace dms

#endif // DMS_CORE_PIPELINE_H
