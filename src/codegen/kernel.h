#ifndef DMS_CODEGEN_KERNEL_H
#define DMS_CODEGEN_KERNEL_H

/**
 * @file
 * Pipelined-loop construction from a modulo schedule: the II-cycle
 * kernel with per-op stage numbers, plus the derived prologue and
 * epilogue shapes. With queue register files no modulo variable
 * expansion is needed (the queues rotate values by construction),
 * so the kernel is exactly II VLIW words.
 */

#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/** One op slotted into the kernel. */
struct KernelSlot
{
    OpId op = kInvalidOp;

    /** Pipeline stage: scheduled time / II. */
    int stage = 0;

    ClusterId cluster = kInvalidCluster;
    FuClass fuClass = FuClass::Add;
    int fuInstance = 0;
};

/** The software-pipelined loop. */
struct PipelinedLoop
{
    int ii = 1;

    /** Stage count SC = floor(max scheduled time / II) + 1. */
    int stageCount = 1;

    /** Kernel rows [0, II): the ops issued at cycle t mod II. */
    std::vector<std::vector<KernelSlot>> rows;

    /** Prologue/epilogue lengths in cycles: (SC - 1) * II. */
    int rampCycles() const { return (stageCount - 1) * ii; }

    /**
     * Total execution cycles for n iterations: (n + SC - 1) * II
     * (prologue fills SC-1 stages, then one iteration completes
     * every II cycles). Matches the paper's dynamic cycle counts.
     */
    long
    cyclesFor(long n) const
    {
        if (n <= 0)
            return 0;
        return (n + stageCount - 1) * static_cast<long>(ii);
    }
};

/** Build the pipelined loop for a complete schedule. */
PipelinedLoop buildPipelinedLoop(const Ddg &ddg,
                                 const PartialSchedule &ps);

} // namespace dms

#endif // DMS_CODEGEN_KERNEL_H
