#include "codegen/kernel.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

PipelinedLoop
buildPipelinedLoop(const Ddg &ddg, const PartialSchedule &ps)
{
    PipelinedLoop loop;
    loop.ii = ps.ii();
    loop.rows.assign(static_cast<size_t>(loop.ii), {});

    Cycle max_t = 0;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        DMS_ASSERT(ps.isScheduled(id),
                   "building kernel from incomplete schedule (%s)",
                   ddg.opLabel(id).c_str());
        const Placement &p = ps.placement(id);
        max_t = std::max(max_t, p.time);

        KernelSlot slot;
        slot.op = id;
        slot.stage = p.time / loop.ii;
        slot.cluster = p.cluster;
        slot.fuClass = fuClassOf(ddg.op(id).opc);
        slot.fuInstance = p.fuInstance;
        loop.rows[static_cast<size_t>(p.time % loop.ii)]
            .push_back(slot);
    }
    loop.stageCount = max_t / loop.ii + 1;

    // Deterministic row order: cluster, class, instance.
    for (auto &row : loop.rows) {
        std::sort(row.begin(), row.end(),
                  [](const KernelSlot &a, const KernelSlot &b) {
                      if (a.cluster != b.cluster)
                          return a.cluster < b.cluster;
                      if (a.fuClass != b.fuClass)
                          return a.fuClass < b.fuClass;
                      return a.fuInstance < b.fuInstance;
                  });
    }
    return loop;
}

} // namespace dms
