#include "codegen/emit.h"

#include "regalloc/queue_alloc.h"
#include "support/diag.h"

namespace dms {

namespace {

/**
 * Per-op queue annotations: for every lifetime the op produces,
 * the file (LRF cluster or CQRF link endpoints) and queue index
 * assigned by the allocator.
 */
std::vector<std::string>
queueNotes(const Ddg &ddg, const QueueAllocation *queues)
{
    std::vector<std::string> notes(
        static_cast<size_t>(ddg.numOps()));
    if (queues == nullptr)
        return notes;
    for (const Lifetime &lt : queues->lifetimes) {
        std::string &n = notes[static_cast<size_t>(lt.def)];
        if (lt.location == QueueLocation::Lrf) {
            n += strfmt(">c%d.q%d", lt.cluster, lt.queueIndex);
        } else {
            const InterClusterLink &link =
                queues->links[static_cast<size_t>(lt.link)];
            n += strfmt(">c%d-c%d.q%d", link.src, link.dst,
                        lt.queueIndex);
        }
    }
    return notes;
}

std::string
slotText(const Ddg &ddg, const KernelSlot &s, int iteration,
         const std::vector<std::string> &notes)
{
    std::string txt = strfmt("%s", opcodeName(ddg.op(s.op).opc));
    txt += strfmt("%d", s.op);
    if (iteration >= 0)
        txt += strfmt("[i%d]", iteration);
    else
        txt += strfmt("(s%d)", s.stage);
    txt += notes[static_cast<size_t>(s.op)];
    return txt;
}

std::string
rowText(const Ddg &ddg, const MachineModel &machine,
        const std::vector<KernelSlot> &row, int stage_of_iter0,
        const std::vector<std::string> &notes)
{
    std::string line;
    for (ClusterId c = 0; c < machine.numClusters(); ++c) {
        if (machine.clustered())
            line += strfmt(" | c%d:", c);
        bool any = false;
        for (const KernelSlot &s : row) {
            if (s.cluster != c)
                continue;
            int iter = stage_of_iter0 >= 0
                           ? stage_of_iter0 - s.stage
                           : -1;
            if (stage_of_iter0 >= 0 && iter < 0)
                continue; // not live yet in prologue
            line += " " + slotText(ddg, s, iter, notes);
            any = true;
        }
        if (!any)
            line += " nop";
    }
    return line;
}

} // namespace

std::string
emitKernel(const Ddg &ddg, const MachineModel &machine,
           const PipelinedLoop &loop, const QueueAllocation *queues)
{
    const std::vector<std::string> notes = queueNotes(ddg, queues);
    std::string out =
        strfmt("kernel: II=%d, SC=%d\n", loop.ii, loop.stageCount);
    for (int r = 0; r < loop.ii; ++r) {
        out += strfmt("  [%2d]", r);
        out += rowText(ddg, machine,
                       loop.rows[static_cast<size_t>(r)], -1, notes);
        out += "\n";
    }
    return out;
}

std::string
emitPipelinedCode(const Ddg &ddg, const MachineModel &machine,
                  const PipelinedLoop &loop,
                  const QueueAllocation *queues)
{
    const std::vector<std::string> notes = queueNotes(ddg, queues);
    std::string out;
    const int sc = loop.stageCount;
    const int ii = loop.ii;

    out += strfmt("; pipelined loop: II=%d SC=%d prologue=%d cycles\n",
                  ii, sc, loop.rampCycles());

    // Prologue: cycles 0 .. (SC-1)*II - 1. At global cycle t, the
    // op copies live are those of stages 0..t/II; an op of stage s
    // executes iteration (t/II - s).
    out += "prologue:\n";
    for (int t = 0; t < (sc - 1) * ii; ++t) {
        std::string line;
        for (const KernelSlot &s :
             loop.rows[static_cast<size_t>(t % ii)]) {
            int iter = t / ii - s.stage;
            if (iter < 0)
                continue;
            line += " " + slotText(ddg, s, iter, notes);
        }
        out += strfmt("  [%3d]%s\n", t,
                      line.empty() ? " nop" : line.c_str());
    }

    out += "kernel (repeat):\n";
    for (int r = 0; r < ii; ++r) {
        out += strfmt("  [%3d]", r);
        out += rowText(ddg, machine,
                       loop.rows[static_cast<size_t>(r)], -1, notes);
        out += "\n";
    }

    // Epilogue: the last SC-1 stages drain. With N iterations, at
    // epilogue cycle t an op of stage s runs iteration
    // N - 1 - (stages remaining); emit with symbolic subscripts.
    out += "epilogue:\n";
    for (int t = 0; t < (sc - 1) * ii; ++t) {
        std::string line;
        for (const KernelSlot &s :
             loop.rows[static_cast<size_t>(t % ii)]) {
            // Stages s > t/II are still draining.
            if (s.stage > t / ii) {
                line += strfmt(" %s%d[N-%d]",
                               opcodeName(ddg.op(s.op).opc), s.op,
                               s.stage - t / ii);
            }
        }
        out += strfmt("  [%3d]%s\n", t,
                      line.empty() ? " nop" : line.c_str());
    }
    return out;
}

} // namespace dms
