#include "codegen/perf.h"

#include "support/diag.h"

namespace dms {

LoopPerf
evaluatePerf(const Ddg &ddg, const PartialSchedule &ps,
             long iterations)
{
    DMS_ASSERT(iterations >= 1, "need at least one iteration");
    PipelinedLoop loop = buildPipelinedLoop(ddg, ps);

    LoopPerf perf;
    perf.ii = loop.ii;
    perf.stageCount = loop.stageCount;
    perf.usefulOps = ddg.usefulOpCount();
    perf.iterations = iterations;
    perf.cycles = loop.cyclesFor(iterations);
    perf.ipc = static_cast<double>(perf.usefulOps) *
               static_cast<double>(iterations) /
               static_cast<double>(perf.cycles);
    return perf;
}

} // namespace dms
