#include "codegen/perf.h"

#include "regalloc/queue_alloc.h"
#include "support/diag.h"

namespace dms {

LoopPerf
evaluateSchedulePerf(const Ddg &ddg, const PartialSchedule &ps,
                     long iterations)
{
    DMS_ASSERT(iterations >= 1, "need at least one iteration");
    LoopPerf perf;
    perf.ii = ps.ii();
    perf.stageCount = ps.maxTime() / ps.ii() + 1;
    perf.usefulOps = ddg.usefulOpCount();
    perf.iterations = iterations;
    perf.cycles = (iterations + perf.stageCount - 1) *
                  static_cast<long>(perf.ii);
    perf.ipc = static_cast<double>(perf.usefulOps) *
               static_cast<double>(iterations) /
               static_cast<double>(perf.cycles);
    return perf;
}

void
attachQueueStats(LoopPerf &perf, const QueueAllocation &alloc)
{
    perf.queueFiles = alloc.filesUsed;
    perf.queues = static_cast<int>(alloc.lifetimes.size());
    perf.queueStorage = alloc.totalStorage;
    perf.maxLinkQueues = alloc.maxQueuesPerLink;
}

LoopPerf
evaluatePerf(const Ddg &ddg, const PartialSchedule &ps,
             long iterations)
{
    LoopPerf perf = evaluateSchedulePerf(ddg, ps, iterations);
    // Cross-check the shape-derived numbers against the built
    // kernel: the two models must never drift apart.
    PipelinedLoop loop = buildPipelinedLoop(ddg, ps);
    DMS_ASSERT(loop.ii == perf.ii && loop.stageCount ==
                   perf.stageCount &&
                   loop.cyclesFor(iterations) == perf.cycles,
               "kernel and schedule perf models diverged");
    return perf;
}

} // namespace dms
