#ifndef DMS_CODEGEN_EMIT_H
#define DMS_CODEGEN_EMIT_H

/**
 * @file
 * Textual "assembly" emission of a pipelined loop: the kernel as
 * VLIW words (one column per FU), stage annotations, and the
 * prologue/epilogue expansion. Meant for humans — examples and
 * golden tests — not for an actual assembler.
 *
 * When a QueueAllocation is supplied, every producing op is
 * annotated with the queue its result enters: `>c2.q1` for queue 1
 * of cluster 2's LRF, `>c2-c3.q0` for queue 0 of the CQRF on the
 * link from cluster 2 to cluster 3.
 */

#include <string>

#include "codegen/kernel.h"

namespace dms {

struct QueueAllocation;

/**
 * Render the kernel (II rows of VLIW words). With @p queues,
 * results are annotated with their assigned queue ids.
 */
std::string emitKernel(const Ddg &ddg, const MachineModel &machine,
                       const PipelinedLoop &loop,
                       const QueueAllocation *queues = nullptr);

/**
 * Render the full pipelined code: prologue words (cycle-by-cycle
 * ramp-up), the kernel, and epilogue words (ramp-down). Iteration
 * subscripts show which in-flight iteration each op belongs to.
 * With @p queues, prologue and kernel ops carry queue-id
 * annotations.
 */
std::string emitPipelinedCode(const Ddg &ddg,
                              const MachineModel &machine,
                              const PipelinedLoop &loop,
                              const QueueAllocation *queues =
                                  nullptr);

} // namespace dms

#endif // DMS_CODEGEN_EMIT_H
