#ifndef DMS_CODEGEN_EMIT_H
#define DMS_CODEGEN_EMIT_H

/**
 * @file
 * Textual "assembly" emission of a pipelined loop: the kernel as
 * VLIW words (one column per FU), stage annotations, and the
 * prologue/epilogue expansion. Meant for humans — examples and
 * golden tests — not for an actual assembler.
 */

#include <string>

#include "codegen/kernel.h"

namespace dms {

/** Render the kernel (II rows of VLIW words). */
std::string emitKernel(const Ddg &ddg, const MachineModel &machine,
                       const PipelinedLoop &loop);

/**
 * Render the full pipelined code: prologue words (cycle-by-cycle
 * ramp-up), the kernel, and epilogue words (ramp-down). Iteration
 * subscripts show which in-flight iteration each op belongs to.
 */
std::string emitPipelinedCode(const Ddg &ddg,
                              const MachineModel &machine,
                              const PipelinedLoop &loop);

} // namespace dms

#endif // DMS_CODEGEN_EMIT_H
