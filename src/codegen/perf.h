#ifndef DMS_CODEGEN_PERF_H
#define DMS_CODEGEN_PERF_H

/**
 * @file
 * Static performance model used for the paper's figures 5 and 6:
 * execution cycles from the modulo-schedule shape and IPC counting
 * only useful operations ("these functional units and operations
 * [copy/move] are not considered to estimate performance figures")
 * while including prologue/kernel/epilogue issue slots via the
 * iteration count.
 */

#include "codegen/kernel.h"

namespace dms {

/** Performance of one loop on one machine configuration. */
struct LoopPerf
{
    int ii = 0;
    int stageCount = 0;

    /** Useful ops per body iteration (copy/move excluded). */
    int usefulOps = 0;

    /** Body iterations executed (after unrolling, if any). */
    long iterations = 0;

    /** Total cycles for the run. */
    long cycles = 0;

    /** Useful instructions per cycle. */
    double ipc = 0.0;

    /**
     * @name Queue-register pressure
     * Filled from the regalloc stage by attachQueueStats; all zero
     * when regalloc did not run (conventional register file, or
     * the stage disabled).
     */
    /// @{
    int queueFiles = 0;   ///< LRF+CQRF files holding >= 1 queue
    int queues = 0;       ///< total queues across all files
    int queueStorage = 0; ///< total storage positions
    int maxLinkQueues = 0; ///< peak queues on any one link's CQRF
    /// @}
};

/**
 * Evaluate a complete schedule for @p iterations body iterations.
 */
LoopPerf evaluatePerf(const Ddg &ddg, const PartialSchedule &ps,
                      long iterations);

/**
 * Same numbers straight from the schedule shape, without building
 * the kernel — the pipeline's perf stage, where codegen is
 * optional. evaluatePerf delegates here so the ramp-up arithmetic
 * lives once.
 */
LoopPerf evaluateSchedulePerf(const Ddg &ddg,
                              const PartialSchedule &ps,
                              long iterations);

struct QueueAllocation;

/**
 * Fold a queue allocation's pressure numbers into @p perf (the
 * pipeline perf stage calls this after regalloc ran).
 */
void attachQueueStats(LoopPerf &perf, const QueueAllocation &alloc);

} // namespace dms

#endif // DMS_CODEGEN_PERF_H
