#ifndef DMS_SCHED_PRIORITY_H
#define DMS_SCHED_PRIORITY_H

/**
 * @file
 * Height-based scheduling priority (Rau's HeightR). The height of an
 * operation is the length of the longest latency-weighted path it
 * starts, under the modulo-scheduling edge weight
 * w(e) = latency - II * distance. Operations with larger height are
 * more critical and are scheduled first.
 */

#include <cstdint>
#include <vector>

#include "ir/ddg.h"

namespace dms {

/** Per-op heights, indexed by OpId. Dead ops get 0. */
using Heights = std::vector<std::int64_t>;

/**
 * Compute heights for the given II by longest-path relaxation. At
 * II >= RecMII every cycle has non-positive weight, so a fixpoint
 * exists; the function panics if relaxation fails to converge
 * (i.e. it was called with II < RecMII).
 */
Heights computeHeights(const Ddg &ddg, int ii);

/**
 * Allocation-free variant: compute into @p out (resized and
 * overwritten), reusing its capacity across attempts.
 */
void computeHeights(const Ddg &ddg, int ii, Heights &out);

} // namespace dms

#endif // DMS_SCHED_PRIORITY_H
