#ifndef DMS_SCHED_PRIORITY_H
#define DMS_SCHED_PRIORITY_H

/**
 * @file
 * Height-based scheduling priority (Rau's HeightR). The height of an
 * operation is the length of the longest latency-weighted path it
 * starts, under the modulo-scheduling edge weight
 * w(e) = latency - II * distance. Operations with larger height are
 * more critical and are scheduled first.
 *
 * Two entry points:
 *
 *  - computeHeights(): one full relaxation for one II.
 *  - HeightLadder: incremental heights across a whole II ladder.
 *    Stepping II -> II+1 only re-relaxes the *affected set* — the
 *    ops that can reach a loop-carried edge in the DDG (equivalently
 *    the reverse-DDG closure of the sources of distance > 0 edges).
 *    Every other op's height contains no -II*distance term and is
 *    II-independent, so the restricted relaxation computes exactly
 *    the heights a full recompute would (the fuzz oracle in
 *    tests/test_priority.cc pins the equality). Restarts at the
 *    same II reuse the table verbatim.
 */

#include <cstdint>
#include <vector>

#include "ir/ddg.h"

namespace dms {

/** Per-op heights, indexed by OpId. Dead ops get 0. */
using Heights = std::vector<std::int64_t>;

/**
 * Compute heights for the given II by longest-path relaxation. At
 * II >= RecMII every cycle has non-positive weight, so a fixpoint
 * exists; the function panics if relaxation fails to converge
 * (i.e. it was called with II < RecMII).
 */
Heights computeHeights(const Ddg &ddg, int ii);

/**
 * Allocation-free variant: compute into @p out (resized and
 * overwritten), reusing its capacity across attempts.
 */
void computeHeights(const Ddg &ddg, int ii, Heights &out);

/**
 * Non-panicking core: false when relaxation diverged, which means
 * the II is below the true RecMII (a hostile knownRecMii hint or a
 * corrupt graph). @p out is valid only on true. Schedulers treat a
 * false as a failed attempt and climb the II ladder instead of
 * taking the process down.
 */
bool tryComputeHeights(const Ddg &ddg, int ii, Heights &out);

/**
 * Height table maintained incrementally across an II ladder.
 *
 * Usage: call ensure(ddg, ii) before every attempt. The first call
 * (or a call with a different graph) runs a full relaxation and
 * records the affected set; a repeat at the same II is free; a step
 * to a higher II zeroes only the affected ops and re-relaxes them
 * against the fixed II-independent boundary. The table after any
 * successful ensure() is bit-identical to computeHeights(ddg, ii).
 *
 * The bound graph must be structurally identical (same ops, same
 * active edges) at every ensure() call; the DMS attempt arena
 * guarantees this by resetting its scratch graph to the original
 * before recomputing heights.
 *
 * Divergence (ensure() == false) marks the table invalid; the next
 * ensure() falls back to a full relaxation, so a ladder that starts
 * below the true RecMII recovers as soon as it climbs past it.
 */
class HeightLadder
{
  public:
    /**
     * Make heights() valid for @p ii. Returns false when relaxation
     * diverged (II below RecMII); heights() is unusable until a
     * later ensure() converges.
     */
    bool ensure(const Ddg &ddg, int ii);

    /** The table for the last successful ensure(). */
    const Heights &heights() const { return h_; }

    /** @name Ladder statistics (bench/sched_hotpath reporting) */
    /// @{
    long fullRelaxations() const { return full_; }
    long deltaRelaxations() const { return delta_; }
    long verbatimReuses() const { return reuses_; }
    /** Ops whose height depends on II (the re-relaxed set). */
    int affectedOps() const
    {
        return static_cast<int>(affected_.size());
    }
    /// @}

  private:
    void bind(const Ddg &ddg);
    bool relaxAffected(const Ddg &ddg, int ii);

    const Ddg *ddg_ = nullptr;
    int boundOps_ = -1;
    int ii_ = -1;
    bool valid_ = false;
    Heights h_;

    /** Affected set, descending OpId (the full-sweep direction). */
    std::vector<OpId> affected_;
    std::vector<std::uint8_t> inAffected_;

    long full_ = 0;
    long delta_ = 0;
    long reuses_ = 0;
};

} // namespace dms

#endif // DMS_SCHED_PRIORITY_H
