#include "sched/mii.h"

#include <algorithm>

#include "ir/scc.h"
#include "support/diag.h"

namespace dms {

int
resMii(const Ddg &ddg, const MachineModel &machine)
{
    std::vector<int> counts = ddg.opCountByClass();
    int mii = 1;
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        if (counts[static_cast<size_t>(cls)] == 0)
            continue;
        int fus = machine.totalFus(static_cast<FuClass>(cls));
        if (fus == 0) {
            panic("DDG needs %s units but machine '%s' has none",
                  fuClassName(static_cast<FuClass>(cls)),
                  machine.describe().c_str());
        }
        int need = (counts[static_cast<size_t>(cls)] + fus - 1) / fus;
        mii = std::max(mii, need);
    }
    return mii;
}

namespace {

/**
 * True if, at the given II, the SCC contains a cycle of positive
 * weight under w(e) = latency - II * distance (i.e. II is too
 * small). Bellman-Ford longest-path relaxation limited to the SCC.
 * @p dense maps op -> index within the SCC (-1 outside); @p dist
 * is caller-owned scratch so the binary search over II does not
 * reallocate per probe.
 */
bool
hasPositiveCycle(const Ddg &ddg, const Scc &scc, int ii,
                 const std::vector<int> &dense,
                 std::vector<std::int64_t> &dist)
{
    dist.assign(scc.size(), 0);
    for (size_t pass = 0; pass <= scc.size(); ++pass) {
        bool changed = false;
        for (OpId u : scc) {
            for (EdgeId e : ddg.op(u).outs) {
                if (!ddg.edgeActive(e))
                    continue;
                const Edge &ed = ddg.edge(e);
                int vi = dense[static_cast<size_t>(ed.dst)];
                if (vi < 0)
                    continue;
                int ui = dense[static_cast<size_t>(u)];
                std::int64_t w = ed.latency -
                    static_cast<std::int64_t>(ii) * ed.distance;
                if (dist[static_cast<size_t>(ui)] + w >
                    dist[static_cast<size_t>(vi)]) {
                    dist[static_cast<size_t>(vi)] =
                        dist[static_cast<size_t>(ui)] + w;
                    changed = true;
                }
            }
        }
        if (!changed)
            return false;
    }
    return true;
}

} // namespace

int
recMii(const Ddg &ddg)
{
    int best = 1;
    std::vector<int> dense;
    std::vector<std::int64_t> dist;
    Scc scc;
    forEachScc(ddg, [&](const OpId *members, size_t n) {
        // Trivial SCCs constrain only via self-loops.
        bool cyclic = n > 1;
        std::int64_t lat_sum = 0;
        if (!cyclic) {
            for (EdgeId e : ddg.op(members[0]).outs) {
                if (ddg.edgeActive(e) &&
                    ddg.edge(e).dst == members[0]) {
                    cyclic = true;
                }
            }
        }
        if (!cyclic)
            return;
        scc.assign(members, members + n);

        for (OpId u : scc) {
            for (EdgeId e : ddg.op(u).outs) {
                if (ddg.edgeActive(e))
                    lat_sum += ddg.edge(e).latency;
            }
        }

        // Dense op -> SCC index map, shared by every probe of the
        // binary search and undone per SCC (SCCs are disjoint).
        if (dense.empty())
            dense.assign(static_cast<size_t>(ddg.numOps()), -1);
        for (size_t i = 0; i < scc.size(); ++i)
            dense[static_cast<size_t>(scc[i])] = static_cast<int>(i);

        // Binary search the smallest feasible II for this SCC.
        int lo = best;
        int hi = std::max<int>(lo,
            static_cast<int>(std::min<std::int64_t>(lat_sum, 1 << 20)));
        while (hasPositiveCycle(ddg, scc, hi, dense, dist))
            hi *= 2;
        while (lo < hi) {
            int mid = lo + (hi - lo) / 2;
            if (hasPositiveCycle(ddg, scc, mid, dense, dist))
                lo = mid + 1;
            else
                hi = mid;
        }
        best = std::max(best, lo);

        for (OpId u : scc)
            dense[static_cast<size_t>(u)] = -1;
    });
    return best;
}

int
minII(const Ddg &ddg, const MachineModel &machine)
{
    return std::max(resMii(ddg, machine), recMii(ddg));
}

} // namespace dms
