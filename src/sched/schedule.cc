#include "sched/schedule.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

PartialSchedule::PartialSchedule(const Ddg &ddg,
                                 const MachineModel &machine, int ii)
    : ddg_(&ddg), machine_(machine), ii_(ii), rt_(machine, ii)
{
    ensureSize(ddg.numOps() - 1);
}

void
PartialSchedule::reset(int ii)
{
    ii_ = ii;
    rt_.reset(ii);
    const size_t n = static_cast<size_t>(ddg_->numOps());
    placements_.assign(n, Placement{});
    last_time_.assign(n, kUnscheduled);
    times_placed_.assign(n, 0);
    seen_epoch_.assign(n, 0);
    epoch_ = 0;
    scheduled_count_ = 0;
    max_time_ = -1;
    max_time_dirty_ = false;
}

Cycle
PartialSchedule::earlyStart(OpId op) const
{
    Cycle early = 0;
    for (EdgeId e : ddg_->op(op).ins) {
        if (!ddg_->edgeActive(e))
            continue;
        const Edge &ed = ddg_->edge(e);
        if (!isScheduled(ed.src))
            continue;
        Cycle bound = timeOf(ed.src) + ed.latency -
                      ii_ * ed.distance;
        early = std::max(early, bound);
    }
    return early;
}

Cycle
PartialSchedule::findFreeSlot(OpId op, ClusterId cluster,
                              Cycle early) const
{
    FuClass cls = fuClassOf(ddg_->op(op).opc);
    return rt_.firstFreeCycle(cluster, cls, early);
}

Cycle
PartialSchedule::forcedSlot(OpId op, Cycle early) const
{
    ensureSize(op);
    Cycle prev = last_time_[static_cast<size_t>(op)];
    if (prev == kUnscheduled || prev + 1 < early)
        return early;
    return prev + 1;
}

void
PartialSchedule::placeAt(OpId op, Cycle cycle, ClusterId cluster,
                         FuClass cls, int instance)
{
    rt_.place(op, cluster, cls, instance, cycle % ii_);
    Placement &p = placements_[static_cast<size_t>(op)];
    p.time = cycle;
    p.cluster = cluster;
    p.fuInstance = instance;
    last_time_[static_cast<size_t>(op)] = cycle;
    ++times_placed_[static_cast<size_t>(op)];
    ++scheduled_count_;
    if (!max_time_dirty_)
        max_time_ = std::max(max_time_, cycle);
    if (listener_ != nullptr)
        listener_->onPlace(op, cluster);
}

bool
PartialSchedule::tryPlace(OpId op, Cycle cycle, ClusterId cluster)
{
    ensureSize(op);
    DMS_ASSERT(!isScheduled(op), "placing scheduled %s",
               ddg_->opLabel(op).c_str());
    DMS_ASSERT(cycle >= 0, "negative cycle %d for %s", cycle,
               ddg_->opLabel(op).c_str());
    FuClass cls = fuClassOf(ddg_->op(op).opc);
    int inst = rt_.freeInstance(cluster, cls, cycle % ii_);
    if (inst < 0)
        return false;
    placeAt(op, cycle, cluster, cls, inst);
    return true;
}

void
PartialSchedule::placeEvicting(OpId op, Cycle cycle, ClusterId cluster,
                               const Heights &heights,
                               std::vector<OpId> &evicted)
{
    if (tryPlace(op, cycle, cluster))
        return;

    // Every instance busy: evict the lowest-height occupant and
    // re-place straight into its instance (the only free one).
    FuClass cls = fuClassOf(ddg_->op(op).opc);
    int row = cycle % ii_;
    int per = machine_.fusPerCluster(cls);
    DMS_ASSERT(per > 0, "no %s units in cluster %d",
               fuClassName(cls), cluster);
    int victim_inst = 0;
    OpId victim = rt_.at(cluster, cls, 0, row);
    for (int i = 1; i < per; ++i) {
        OpId occ = rt_.at(cluster, cls, i, row);
        auto h = [&](OpId o) {
            return o < static_cast<OpId>(heights.size())
                       ? heights[static_cast<size_t>(o)]
                       : 0;
        };
        if (h(occ) < h(victim)) {
            victim = occ;
            victim_inst = i;
        }
    }
    DMS_ASSERT(victim != kInvalidOp, "full row with no occupant");
    unschedule(victim);
    evicted.push_back(victim);
    placeAt(op, cycle, cluster, cls, victim_inst);
}

void
PartialSchedule::unschedule(OpId op)
{
    ensureSize(op);
    Placement &p = placements_[static_cast<size_t>(op)];
    DMS_ASSERT(p.scheduled(), "unscheduling unscheduled %s",
               ddg_->opLabel(op).c_str());
    FuClass cls = fuClassOf(ddg_->op(op).opc);
    rt_.clear(op, p.cluster, cls, p.fuInstance, p.time % ii_);
    if (!max_time_dirty_ && p.time == max_time_)
        max_time_dirty_ = true;
    ClusterId cluster = p.cluster;
    p = Placement{};
    --scheduled_count_;
    if (listener_ != nullptr)
        listener_->onUnplace(op, cluster);
}

void
PartialSchedule::violatedSuccessors(OpId op,
                                    std::vector<OpId> &out) const
{
    out.clear();
    DMS_ASSERT(isScheduled(op), "violatedSuccessors of unscheduled op");
    if (++epoch_ == 0) {
        // Epoch wrapped: stale stamps could alias, so restamp.
        std::fill(seen_epoch_.begin(), seen_epoch_.end(), 0);
        epoch_ = 1;
    }
    Cycle t = timeOf(op);
    for (EdgeId e : ddg_->op(op).outs) {
        if (!ddg_->edgeActive(e))
            continue;
        const Edge &ed = ddg_->edge(e);
        if (ed.dst == op)
            continue; // self-loop: t >= t + lat - II*d checked below
        if (!isScheduled(ed.dst))
            continue;
        if (timeOf(ed.dst) < t + ed.latency - ii_ * ed.distance) {
            if (seen_epoch_[static_cast<size_t>(ed.dst)] != epoch_) {
                seen_epoch_[static_cast<size_t>(ed.dst)] = epoch_;
                out.push_back(ed.dst);
            }
        }
    }
}

int
PartialSchedule::placementCount(OpId op) const
{
    ensureSize(op);
    return times_placed_[static_cast<size_t>(op)];
}

Cycle
PartialSchedule::maxTime() const
{
    if (max_time_dirty_) {
        Cycle m = -1;
        for (OpId id = 0; id < ddg_->numOps(); ++id) {
            if (ddg_->opLive(id) && isScheduled(id))
                m = std::max(m, timeOf(id));
        }
        max_time_ = m;
        max_time_dirty_ = false;
    }
    return max_time_;
}

} // namespace dms
