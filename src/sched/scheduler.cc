#include "sched/scheduler.h"

#include <algorithm>

namespace dms {

SchedulerRegistry::SchedulerRegistry()
{
    registerBuiltinSchedulers(*this);
}

SchedulerRegistry &
SchedulerRegistry::instance()
{
    // Magic static: the constructor (and builtin registration) runs
    // exactly once, even when sweep workers race the first lookup.
    static SchedulerRegistry registry;
    return registry;
}

bool
SchedulerRegistry::add(const std::string &name,
                       SchedulerFactory factory)
{
    if (contains(name))
        return false;
    entries_.emplace_back(name, factory);
    return true;
}

std::unique_ptr<Scheduler>
SchedulerRegistry::create(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.first == name)
            return e.second();
    }
    return nullptr;
}

bool
SchedulerRegistry::contains(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.first == name)
            return true;
    }
    return false;
}

std::vector<std::string>
SchedulerRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.first);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace dms
