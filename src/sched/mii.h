#ifndef DMS_SCHED_MII_H
#define DMS_SCHED_MII_H

/**
 * @file
 * Minimum initiation interval bounds (Rau, "Iterative Modulo
 * Scheduling"). MII = max(ResMII, RecMII); the II search of every
 * scheduler starts there.
 */

#include "ir/ddg.h"
#include "machine/machine.h"

namespace dms {

/**
 * Resource-constrained MII: for each FU class,
 * ceil(ops of class / total FUs of class), maximized over classes.
 * On clustered machines the copy-unit class participates, so copy
 * operations inserted by the pre-pass can raise the bound — the
 * paper's explanation for the 2-3 cluster overheads.
 *
 * Panics if the DDG uses a class the machine has zero units of.
 */
int resMii(const Ddg &ddg, const MachineModel &machine);

/**
 * Recurrence-constrained MII: the smallest II such that no
 * dependence cycle has positive slack requirement, i.e. for every
 * elementary cycle, sum(latency) <= II * sum(distance). Computed
 * per SCC by binary search over II with positive-cycle detection
 * (Bellman-Ford). Returns 1 for acyclic DDGs.
 */
int recMii(const Ddg &ddg);

/** max(resMii, recMii). */
int minII(const Ddg &ddg, const MachineModel &machine);

} // namespace dms

#endif // DMS_SCHED_MII_H
