#include "sched/verifier.h"

#include <map>
#include <tuple>

#include "support/diag.h"

namespace dms {

namespace {

/**
 * True if a path of live Move ops leads from @p src to @p dst along
 * active flow edges (src and dst themselves need not be moves).
 */
bool
movePathExists(const Ddg &ddg, OpId src, OpId dst)
{
    std::vector<OpId> stack{src};
    std::vector<bool> seen(static_cast<size_t>(ddg.numOps()), false);
    seen[static_cast<size_t>(src)] = true;
    while (!stack.empty()) {
        OpId u = stack.back();
        stack.pop_back();
        for (EdgeId e : ddg.op(u).outs) {
            if (!ddg.edgeActive(e) ||
                ddg.edge(e).kind != DepKind::Flow) {
                continue;
            }
            OpId v = ddg.edge(e).dst;
            if (v == dst)
                return true;
            if (!seen[static_cast<size_t>(v)] &&
                ddg.op(v).origin == OpOrigin::MoveOp) {
                seen[static_cast<size_t>(v)] = true;
                stack.push_back(v);
            }
        }
    }
    return false;
}

} // namespace

std::vector<std::string>
verifySchedule(const Ddg &ddg, const MachineModel &machine,
               const PartialSchedule &ps, const VerifyOptions &opts)
{
    std::vector<std::string> problems;
    auto complain = [&](std::string s) {
        problems.push_back(std::move(s));
    };
    const int ii = ps.ii();
    const bool comm = opts.checkCommunication && machine.clustered();

    // Placements and reservation consistency.
    std::map<std::tuple<ClusterId, int, int, int>, OpId> slots;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        if (!ps.isScheduled(id)) {
            if (opts.requireComplete)
                complain(strfmt("%s not scheduled",
                                ddg.opLabel(id).c_str()));
            continue;
        }
        const Placement &p = ps.placement(id);
        if (p.time < 0)
            complain(strfmt("%s at negative time %d",
                            ddg.opLabel(id).c_str(), p.time));
        if (p.cluster < 0 || p.cluster >= machine.numClusters()) {
            complain(strfmt("%s in bad cluster %d",
                            ddg.opLabel(id).c_str(), p.cluster));
            continue;
        }
        FuClass cls = fuClassOf(ddg.op(id).opc);
        if (p.fuInstance < 0 ||
            p.fuInstance >= machine.fusPerCluster(cls)) {
            complain(strfmt("%s on bad FU instance %d",
                            ddg.opLabel(id).c_str(), p.fuInstance));
            continue;
        }
        auto key = std::make_tuple(p.cluster,
                                   static_cast<int>(cls),
                                   p.fuInstance, p.time % ii);
        auto [it, inserted] = slots.emplace(key, id);
        if (!inserted) {
            complain(strfmt("%s and %s share slot (c%d,%s,%d,row%d)",
                            ddg.opLabel(id).c_str(),
                            ddg.opLabel(it->second).c_str(), p.cluster,
                            fuClassName(cls), p.fuInstance,
                            p.time % ii));
        }
        OpId rt_occ = ps.reservations().at(p.cluster, cls,
                                           p.fuInstance, p.time % ii);
        if (rt_occ != id) {
            complain(strfmt("reservation table holds op%d where %s "
                            "is placed", rt_occ,
                            ddg.opLabel(id).c_str()));
        }
    }

    // Dependences.
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeActive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        if (!ps.isScheduled(ed.src) || !ps.isScheduled(ed.dst))
            continue;
        Cycle lhs = ps.timeOf(ed.dst);
        Cycle rhs = ps.timeOf(ed.src) + ed.latency -
                    ii * ed.distance;
        if (lhs < rhs) {
            complain(strfmt("edge %s->%s (%s,d=%d,l=%d) violated: "
                            "%d < %d",
                            ddg.opLabel(ed.src).c_str(),
                            ddg.opLabel(ed.dst).c_str(),
                            depKindName(ed.kind), ed.distance,
                            ed.latency, lhs, rhs));
        }
    }

    if (!comm)
        return problems;

    // Communication legality on queue-file machines.
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeLive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        if (ed.kind != DepKind::Flow)
            continue;
        if (!ps.isScheduled(ed.src) || !ps.isScheduled(ed.dst))
            continue;
        ClusterId cs = ps.clusterOf(ed.src);
        ClusterId cd = ps.clusterOf(ed.dst);
        if (ed.replaced) {
            if (!movePathExists(ddg, ed.src, ed.dst)) {
                complain(strfmt("replaced edge %s->%s has no live "
                                "move chain",
                                ddg.opLabel(ed.src).c_str(),
                                ddg.opLabel(ed.dst).c_str()));
            }
            continue;
        }
        if (!machine.directlyConnected(cs, cd)) {
            complain(strfmt("flow edge %s(c%d)->%s(c%d) spans "
                            "distance %d",
                            ddg.opLabel(ed.src).c_str(), cs,
                            ddg.opLabel(ed.dst).c_str(), cd,
                            machine.ringDistance(cs, cd)));
        }
    }

    // Move discipline: one producer, one consumer, strict one-hop.
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id) ||
            ddg.op(id).origin != OpOrigin::MoveOp) {
            continue;
        }
        int flow_in = 0;
        int flow_out = 0;
        for (EdgeId e : ddg.op(id).ins) {
            if (ddg.edgeActive(e) &&
                ddg.edge(e).kind == DepKind::Flow) {
                ++flow_in;
                if (ps.isScheduled(id) &&
                    ps.isScheduled(ddg.edge(e).src) &&
                    machine.ringDistance(
                        ps.clusterOf(ddg.edge(e).src),
                        ps.clusterOf(id)) != 1) {
                    complain(strfmt("%s not one hop from its "
                                    "producer",
                                    ddg.opLabel(id).c_str()));
                }
            }
        }
        for (EdgeId e : ddg.op(id).outs) {
            if (ddg.edgeActive(e) &&
                ddg.edge(e).kind == DepKind::Flow) {
                ++flow_out;
                if (ps.isScheduled(id) &&
                    ps.isScheduled(ddg.edge(e).dst) &&
                    machine.ringDistance(
                        ps.clusterOf(id),
                        ps.clusterOf(ddg.edge(e).dst)) != 1) {
                    complain(strfmt("%s not one hop from its "
                                    "consumer",
                                    ddg.opLabel(id).c_str()));
                }
            }
        }
        if (flow_in != 1 || flow_out != 1) {
            complain(strfmt("%s has %d flow ins / %d flow outs",
                            ddg.opLabel(id).c_str(), flow_in,
                            flow_out));
        }
    }

    return problems;
}

void
checkSchedule(const Ddg &ddg, const MachineModel &machine,
              const PartialSchedule &ps, const VerifyOptions &opts)
{
    auto problems = verifySchedule(ddg, machine, ps, opts);
    if (!problems.empty()) {
        panic("illegal schedule (%zu problems): %s", problems.size(),
              problems.front().c_str());
    }
}

} // namespace dms
