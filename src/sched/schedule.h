#ifndef DMS_SCHED_SCHEDULE_H
#define DMS_SCHED_SCHEDULE_H

/**
 * @file
 * Partial modulo schedule: per-operation placements plus the modulo
 * reservation table, with the eviction machinery both IMS and DMS
 * backtracking rely on. Designed for reuse across the II ladder:
 * reset() re-shapes the arenas for a new attempt without
 * reallocating, and the hot queries (findFreeSlot, maxTime,
 * violatedSuccessors) are incremental rather than rescans.
 */

#include <memory>
#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "support/diag.h"
#include "machine/reservation.h"
#include "sched/priority.h"
#include "support/types.h"

namespace dms {

/**
 * Observer of placement changes. Every mutation funnels through
 * placeAt()/unschedule(), so an attached listener sees each add and
 * remove exactly once — the hook the incremental affinity tracker
 * uses. reset() clears wholesale and fires nothing; an attached
 * listener must rebuild afterwards.
 */
class PlacementListener
{
  public:
    /** @p op was just placed in @p cluster. */
    virtual void onPlace(OpId op, ClusterId cluster) = 0;

    /** @p op was just removed from @p cluster. */
    virtual void onUnplace(OpId op, ClusterId cluster) = 0;

  protected:
    ~PlacementListener() = default;
};

/** Where and when one operation is placed. */
struct Placement
{
    Cycle time = kUnscheduled;
    ClusterId cluster = kInvalidCluster;
    int fuInstance = -1;

    bool scheduled() const { return time != kUnscheduled; }
};

/**
 * A (possibly partial) modulo schedule at a fixed II. Grows with the
 * DDG: operations appended to the graph (moves) get placements on
 * demand.
 */
class PartialSchedule
{
  public:
    PartialSchedule(const Ddg &ddg, const MachineModel &machine,
                    int ii);

    /**
     * Reset to an empty schedule at a (possibly different) II,
     * reusing every allocation. The referenced DDG must already be
     * in its fresh-attempt state (e.g. after Ddg::resetTo()).
     */
    void reset(int ii);

    int ii() const { return ii_; }
    const MachineModel &machine() const { return machine_; }
    const Ddg &ddg() const { return *ddg_; }

    /**
     * Placement accessors are defined inline (below the class):
     * they sit in every scheduler inner loop and the call overhead
     * showed in the hot-path profile when they lived in
     * schedule.cc. The scheduled() asserts survive NDEBUG.
     */
    bool isScheduled(OpId op) const;
    Cycle timeOf(OpId op) const;
    ClusterId clusterOf(OpId op) const;
    const Placement &placement(OpId op) const;

    /**
     * Earliest start of @p op given its scheduled predecessors:
     * max(0, max over active in-edges from scheduled sources of
     * time(src) + latency - II * distance).
     */
    Cycle earlyStart(OpId op) const;

    /**
     * Rau's time-slot search: the first cycle in
     * [early, early + II - 1] with a free FU instance in
     * @p cluster, or kUnscheduled if every row is occupied.
     * O(II/64) via the reservation table's row bitmask.
     */
    Cycle findFreeSlot(OpId op, ClusterId cluster, Cycle early) const;

    /**
     * Forced slot when no free one exists: max(early, 1 + the time
     * of the previous placement of @p op), which guarantees
     * progress across repeated evictions (Rau).
     */
    Cycle forcedSlot(OpId op, Cycle early) const;

    /**
     * Place @p op at (cycle, cluster) using a free FU instance.
     * @return false (and no change) if the row is full.
     */
    bool tryPlace(OpId op, Cycle cycle, ClusterId cluster);

    /**
     * Place @p op at (cycle, cluster), evicting the lowest-height
     * occupant if every instance is busy. Evicted ops are appended
     * to @p evicted and already unscheduled on return.
     */
    void placeEvicting(OpId op, Cycle cycle, ClusterId cluster,
                       const Heights &heights,
                       std::vector<OpId> &evicted);

    /** Remove @p op from the schedule. */
    void unschedule(OpId op);

    /**
     * Scheduled successors of @p op whose dependence constraint
     * time(dst) >= time(op) + lat - II*dist is now violated,
     * deduplicated in first-encounter order, appended to @p out
     * (which is cleared first).
     */
    void violatedSuccessors(OpId op, std::vector<OpId> &out) const;

    /** Allocating convenience overload of the above. */
    std::vector<OpId>
    violatedSuccessors(OpId op) const
    {
        std::vector<OpId> out;
        violatedSuccessors(op, out);
        return out;
    }

    /** Number of live ops currently scheduled. */
    int scheduledCount() const { return scheduled_count_; }

    /** Times this op has ever been placed (for forced slots). */
    int placementCount(OpId op) const;

    /**
     * Largest scheduled time, or -1 for an empty schedule.
     * Memoized: O(1) unless an eviction removed the maximum since
     * the last query.
     */
    Cycle maxTime() const;

    const ReservationTable &reservations() const { return rt_; }

    /**
     * Attach (or clear, with nullptr) the placement observer. Not
     * owned; the caller keeps it alive while attached.
     */
    void setListener(PlacementListener *listener)
    {
        listener_ = listener;
    }
    PlacementListener *listener() const { return listener_; }

  private:
    void ensureSize(OpId op) const;

    /** Record a placement into a known-free instance. */
    void placeAt(OpId op, Cycle cycle, ClusterId cluster,
                 FuClass cls, int instance);

    const Ddg *ddg_;
    const MachineModel &machine_;
    int ii_;
    ReservationTable rt_;
    mutable std::vector<Placement> placements_;
    /** Last time each op was placed at (kUnscheduled if never). */
    mutable std::vector<Cycle> last_time_;
    mutable std::vector<int> times_placed_;
    int scheduled_count_ = 0;

    /** Epoch-stamped seen set for violatedSuccessors dedup. */
    mutable std::vector<std::uint32_t> seen_epoch_;
    mutable std::uint32_t epoch_ = 0;

    /** Memoized maxTime; recomputed lazily after a demoting
     * unschedule. */
    mutable Cycle max_time_ = -1;
    mutable bool max_time_dirty_ = false;

    PlacementListener *listener_ = nullptr;
};

inline void
PartialSchedule::ensureSize(OpId op) const
{
    size_t need = static_cast<size_t>(op) + 1;
    if (placements_.size() < need) {
        placements_.resize(need);
        last_time_.resize(need, kUnscheduled);
        times_placed_.resize(need, 0);
        seen_epoch_.resize(need, 0);
    }
}

inline bool
PartialSchedule::isScheduled(OpId op) const
{
    ensureSize(op);
    return placements_[static_cast<size_t>(op)].scheduled();
}

inline Cycle
PartialSchedule::timeOf(OpId op) const
{
    ensureSize(op);
    const Placement &p = placements_[static_cast<size_t>(op)];
    DMS_ASSERT(p.scheduled(), "timeOf unscheduled %s",
               ddg_->opLabel(op).c_str());
    return p.time;
}

inline ClusterId
PartialSchedule::clusterOf(OpId op) const
{
    ensureSize(op);
    const Placement &p = placements_[static_cast<size_t>(op)];
    DMS_ASSERT(p.scheduled(), "clusterOf unscheduled %s",
               ddg_->opLabel(op).c_str());
    return p.cluster;
}

inline const Placement &
PartialSchedule::placement(OpId op) const
{
    ensureSize(op);
    return placements_[static_cast<size_t>(op)];
}

} // namespace dms

#endif // DMS_SCHED_SCHEDULE_H
