#ifndef DMS_SCHED_IMS_H
#define DMS_SCHED_IMS_H

/**
 * @file
 * Iterative Modulo Scheduling (Rau [14]), the base algorithm DMS
 * extends and the scheduler used for the unclustered reference
 * machine in every figure of the paper.
 *
 * IMS schedules operations highest-height-first. For each operation
 * it computes the earliest start compatible with its scheduled
 * predecessors, searches the II-wide window for a resource-free
 * slot, and otherwise *forces* placement, evicting the conflicting
 * occupant and any successors whose dependence constraints broke.
 * A budget proportional to the number of operations bounds the
 * backtracking; on exhaustion the II is increased and the pass
 * restarts.
 */

#include <memory>
#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/** Knobs shared by IMS and DMS. */
struct SchedParams
{
    /** Backtracking budget = budgetRatio * live ops (Rau's ratio). */
    int budgetRatio = 6;

    /** Hard II cap; 0 means automatic (6 * MII + 64). */
    int maxII = 0;

    /**
     * Precomputed MII bounds for this exact body/machine pair, or
     * -1 to compute internally. The pipeline's MII stage fills
     * these so the scheduler does not re-derive what the driver
     * already knows; values must come from resMii()/recMii() on the
     * same inputs.
     */
    int knownResMii = -1;
    int knownRecMii = -1;
};

/** Result of a scheduling run. */
struct SchedOutcome
{
    bool ok = false;
    int ii = 0;
    int mii = 0;
    int resMii = 0;
    int recMii = 0;

    /** Number of II values attempted. */
    int attempts = 0;

    /** Scheduling steps consumed across all attempts. */
    long budgetUsed = 0;

    /** Moves inserted by DMS chains (0 for IMS). */
    int movesInserted = 0;

    /**
     * The schedule (valid iff ok). References the DDG and machine
     * passed to the scheduler; keep both alive while using it.
     */
    std::unique_ptr<PartialSchedule> schedule;
};

/**
 * Schedule @p ddg on @p machine with IMS. All operations go to
 * cluster 0; use the unclustered machine model (this is the paper's
 * reference configuration).
 */
SchedOutcome scheduleIms(const Ddg &ddg, const MachineModel &machine,
                         const SchedParams &params = {});

/**
 * IMS with a fixed operation-to-cluster assignment (the second
 * phase of partition-then-schedule baselines). @p assignment maps
 * every live op to its cluster; communication legality is the
 * partitioner's responsibility and is not re-checked here.
 */
SchedOutcome scheduleImsFixed(const Ddg &ddg,
                              const MachineModel &machine,
                              const std::vector<ClusterId> &assignment,
                              const SchedParams &params = {});

/** Automatic II cap used when SchedParams::maxII is 0. */
int defaultMaxII(int mii);

} // namespace dms

#endif // DMS_SCHED_IMS_H
