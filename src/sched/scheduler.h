#ifndef DMS_SCHED_SCHEDULER_H
#define DMS_SCHED_SCHEDULER_H

/**
 * @file
 * The common scheduler interface and its name-keyed registry. Every
 * modulo scheduler in the repository (IMS on the unclustered
 * reference, DMS on clustered machines, the two-phase
 * partition-then-schedule baseline) sits behind this interface so
 * drivers — the staged pipeline, eval/runner sweeps, dmsc — select
 * schedulers by configuration string instead of compiled-in
 * branches.
 *
 * Scheduler instances may be stateful (reusable arenas), so the
 * registry stores *factories*; each CompilationContext creates and
 * caches its own instances, which keeps parallel sweep workers
 * isolated without locking.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dms.h"
#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/ims.h"

namespace dms {

/**
 * Knobs handed to any scheduler. Each implementation reads the set
 * it understands: IMS and the two-phase baseline use @c base, DMS
 * uses @c dms (whose budget/maxII/hints mirror base's fields).
 */
struct SchedulerConfig
{
    SchedParams base;
    DmsParams dms;
};

/** What a scheduler returns to the pipeline. */
struct SchedulerResult
{
    /** Scheduling result; schedule references the scheduled graph. */
    SchedOutcome sched;

    /**
     * The scheduled graph when the scheduler transformed the body
     * (DMS chains, two-phase pre-inserted moves); null when the
     * input body was scheduled as-is (IMS).
     */
    std::unique_ptr<Ddg> ddg;
};

/** One modulo-scheduling algorithm behind a registry name. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Registry key, e.g. "dms". */
    virtual const char *name() const = 0;

    /** True if this scheduler can target @p machine. */
    virtual bool supports(const MachineModel &machine) const = 0;

    /**
     * Schedule @p body (already unrolled and, on queue-file
     * machines, pre-passed) on @p machine.
     */
    virtual SchedulerResult schedule(const Ddg &body,
                                     const MachineModel &machine,
                                     const SchedulerConfig &config) = 0;
};

/** Factory: a fresh scheduler instance per compilation context. */
using SchedulerFactory = std::unique_ptr<Scheduler> (*)();

/**
 * Name-keyed scheduler registry. The builtin schedulers ("ims",
 * "dms", "twophase") are registered on first use; additional
 * schedulers may be added at startup (add() is not thread-safe
 * against concurrent lookups — register before spawning sweeps).
 */
class SchedulerRegistry
{
  public:
    /** The process-wide registry, builtins included. */
    static SchedulerRegistry &instance();

    /** Register a factory; false (and no change) if the name is
     * taken. */
    bool add(const std::string &name, SchedulerFactory factory);

    /** Instantiate by name, or null for unknown names. */
    std::unique_ptr<Scheduler> create(const std::string &name) const;

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    SchedulerRegistry();

    std::vector<std::pair<std::string, SchedulerFactory>> entries_;
};

/**
 * Registers "ims", "dms" and "twophase" (defined in
 * core/builtin_schedulers.cc, which can see every implementation).
 */
void registerBuiltinSchedulers(SchedulerRegistry &registry);

} // namespace dms

#endif // DMS_SCHED_SCHEDULER_H
