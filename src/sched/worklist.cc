#include "sched/worklist.h"

#include <algorithm>
#include <functional>

#include "support/diag.h"

namespace dms {

void
Worklist::build(const Ddg &ddg, const Heights &heights)
{
    const size_t n = static_cast<size_t>(ddg.numOps());
    DMS_ASSERT(heights.size() >= n, "height table smaller than DDG");

    std::int64_t min_h = 0;
    std::int64_t max_h = 0;
    bool first = true;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        std::int64_t h = heights[static_cast<size_t>(id)];
        if (first || h < min_h)
            min_h = h;
        if (first || h > max_h)
            max_h = h;
        first = false;
    }
    const std::int64_t range = first ? 1 : max_h - min_h + 1;
    DMS_ASSERT(range <= (1 << 24), "height range %lld too wide",
               static_cast<long long>(range));

    for (auto &b : buckets_)
        b.clear();
    buckets_.resize(static_cast<size_t>(range));
    bucket_of_.assign(n, -1);
    waiting_.assign(n, 0);
    top_ = -1;
    size_ = 0;

    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        bucket_of_[static_cast<size_t>(id)] = static_cast<std::int32_t>(
            heights[static_cast<size_t>(id)] - min_h);
        push(id);
    }
}

void
Worklist::push(OpId op)
{
    DMS_ASSERT(op >= 0 &&
                   static_cast<size_t>(op) < bucket_of_.size() &&
                   bucket_of_[static_cast<size_t>(op)] >= 0,
               "push of op %d unknown to the worklist", op);
    if (waiting_[static_cast<size_t>(op)])
        return;
    waiting_[static_cast<size_t>(op)] = 1;
    const int bi = bucket_of_[static_cast<size_t>(op)];
    auto &b = buckets_[static_cast<size_t>(bi)];
    b.push_back(op);
    std::push_heap(b.begin(), b.end(), std::greater<OpId>());
    top_ = std::max(top_, bi);
    ++size_;
}

OpId
Worklist::pop()
{
    while (top_ >= 0 && buckets_[static_cast<size_t>(top_)].empty())
        --top_;
    if (top_ < 0)
        return kInvalidOp;
    auto &b = buckets_[static_cast<size_t>(top_)];
    std::pop_heap(b.begin(), b.end(), std::greater<OpId>());
    OpId op = b.back();
    b.pop_back();
    waiting_[static_cast<size_t>(op)] = 0;
    --size_;
    return op;
}

} // namespace dms
