#include "sched/worklist.h"

#include <algorithm>
#include <functional>

#include "support/diag.h"

namespace dms {

void
Worklist::build(const Ddg &ddg, const Heights &heights)
{
    const size_t n = static_cast<size_t>(ddg.numOps());
    DMS_ASSERT(heights.size() >= n, "height table smaller than DDG");

    std::int64_t min_h = 0;
    std::int64_t max_h = 0;
    bool first = true;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        std::int64_t h = heights[static_cast<size_t>(id)];
        if (first || h < min_h)
            min_h = h;
        if (first || h > max_h)
            max_h = h;
        first = false;
    }

    // The bucket array is bounded by the live-op count, not the
    // height range: dense (one bucket per height offset) while the
    // range is already that tight — the common case, and O(n) to
    // fill — with a sorted-unique rank compression for sparse or
    // wide ranges (huge latencies, deep chains), which would
    // otherwise blow the array up arbitrarily.
    const std::int64_t range = first ? 1 : max_h - min_h + 1;
    const std::int64_t live = ddg.liveOpCount();
    const bool dense = range <= std::max<std::int64_t>(2 * live, 64);

    size_t bucket_count;
    if (dense) {
        bucket_count = static_cast<size_t>(range);
    } else {
        ranks_.clear();
        for (OpId id = 0; id < ddg.numOps(); ++id) {
            if (ddg.opLive(id))
                ranks_.push_back(heights[static_cast<size_t>(id)]);
        }
        std::sort(ranks_.begin(), ranks_.end());
        ranks_.erase(std::unique(ranks_.begin(), ranks_.end()),
                     ranks_.end());
        bucket_count = ranks_.size();
    }

    for (auto &b : buckets_)
        b.clear();
    if (buckets_.size() < bucket_count)
        buckets_.resize(bucket_count); // grow only: arena reuse
    bucket_of_.assign(n, -1);
    waiting_.assign(n, 0);
    top_ = -1;
    size_ = 0;

    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        std::int64_t h = heights[static_cast<size_t>(id)];
        std::int32_t bucket;
        if (dense) {
            bucket = static_cast<std::int32_t>(h - min_h);
        } else {
            auto it = std::lower_bound(ranks_.begin(), ranks_.end(),
                                       h);
            bucket = static_cast<std::int32_t>(it - ranks_.begin());
        }
        bucket_of_[static_cast<size_t>(id)] = bucket;
        push(id);
    }
}

void
Worklist::push(OpId op)
{
    DMS_ASSERT(op >= 0 &&
                   static_cast<size_t>(op) < bucket_of_.size() &&
                   bucket_of_[static_cast<size_t>(op)] >= 0,
               "push of op %d unknown to the worklist", op);
    if (waiting_[static_cast<size_t>(op)])
        return;
    waiting_[static_cast<size_t>(op)] = 1;
    const int bi = bucket_of_[static_cast<size_t>(op)];
    auto &b = buckets_[static_cast<size_t>(bi)];
    b.push_back(op);
    std::push_heap(b.begin(), b.end(), std::greater<OpId>());
    top_ = std::max(top_, bi);
    ++size_;
}

OpId
Worklist::pop()
{
    while (top_ >= 0 && buckets_[static_cast<size_t>(top_)].empty())
        --top_;
    if (top_ < 0)
        return kInvalidOp;
    auto &b = buckets_[static_cast<size_t>(top_)];
    std::pop_heap(b.begin(), b.end(), std::greater<OpId>());
    OpId op = b.back();
    b.pop_back();
    waiting_[static_cast<size_t>(op)] = 0;
    --size_;
    return op;
}

} // namespace dms
