#include "sched/ims.h"

#include <algorithm>

#include "obs/trace.h"
#include "sched/mii.h"
#include "sched/priority.h"
#include "sched/worklist.h"
#include "support/diag.h"

namespace dms {

int
defaultMaxII(int mii)
{
    return 6 * mii + 64;
}

namespace {

/** Scratch arenas reused across the whole II ladder of one run. */
struct ImsArena
{
    HeightLadder ladder;
    Worklist worklist;
    std::vector<OpId> evicted;
    std::vector<OpId> violated;
};

bool
imsPass(const Ddg &ddg, int ii, long budget,
        const std::vector<ClusterId> *assignment,
        PartialSchedule &ps, ImsArena &arena, long &used)
{
    // Delta-step the height table from the previous II instead of
    // re-relaxing the whole graph; divergence means this II is
    // below the true RecMII (a hostile knownRecMii hint), which is
    // a failed attempt — the ladder recovers at a legal II.
    if (!arena.ladder.ensure(ddg, ii))
        return false;
    const Heights &heights = arena.ladder.heights();
    arena.worklist.build(ddg, heights);

    while (ps.scheduledCount() < ddg.liveOpCount()) {
        if (budget-- <= 0)
            return false;
        ++used;

        OpId op = arena.worklist.pop();
        DMS_ASSERT(op != kInvalidOp, "no unscheduled op found");

        ClusterId cluster = 0;
        if (assignment) {
            cluster = (*assignment)[static_cast<size_t>(op)];
            DMS_ASSERT(cluster != kInvalidCluster,
                       "op %s has no cluster assignment",
                       ddg.opLabel(op).c_str());
        }

        Cycle early = ps.earlyStart(op);
        Cycle slot = ps.findFreeSlot(op, cluster, early);
        if (slot == kUnscheduled)
            slot = ps.forcedSlot(op, early);

        arena.evicted.clear();
        ps.placeEvicting(op, slot, cluster, heights,
                         arena.evicted);
        for (OpId v : arena.evicted)
            arena.worklist.push(v);
        ps.violatedSuccessors(op, arena.violated);
        for (OpId v : arena.violated) {
            ps.unschedule(v);
            arena.worklist.push(v);
        }
    }
    return true;
}

SchedOutcome
runIms(const Ddg &ddg, const MachineModel &machine,
       const std::vector<ClusterId> *assignment,
       const SchedParams &params)
{
    SchedOutcome out;
    out.resMii = params.knownResMii >= 0 ? params.knownResMii
                                         : resMii(ddg, machine);
    out.recMii = params.knownRecMii >= 0 ? params.knownRecMii
                                         : recMii(ddg);
    out.mii = std::max(out.resMii, out.recMii);
    int max_ii = params.maxII > 0 ? params.maxII
                                  : defaultMaxII(out.mii);

    long budget =
        static_cast<long>(params.budgetRatio) * ddg.liveOpCount();
    budget = std::max<long>(budget, 1);

    // One schedule and one arena serve the whole II ladder;
    // reset() re-shapes them per attempt without reallocating.
    auto ps = std::make_unique<PartialSchedule>(ddg, machine,
                                                std::max(out.mii, 1));
    ImsArena arena;
    // Rung spans ride the worker's thread-local trace; the armed
    // check is hoisted so the disarmed ladder pays one relaxed
    // load for the whole search.
    obs::Trace *tr =
        obs::traceArmed() ? obs::currentTrace() : nullptr;
    for (int ii = out.mii; ii <= max_ii; ++ii) {
        ++out.attempts;
        obs::ScopedSpan rung(tr, "sched.attempt");
        if (tr != nullptr)
            rung.note(strfmt("ii=%d", ii));
        ps->reset(ii);
        if (imsPass(ddg, ii, budget, assignment, *ps, arena,
                    out.budgetUsed)) {
            out.ok = true;
            out.ii = ii;
            out.schedule = std::move(ps);
            return out;
        }
    }
    return out;
}

} // namespace

SchedOutcome
scheduleIms(const Ddg &ddg, const MachineModel &machine,
            const SchedParams &params)
{
    return runIms(ddg, machine, nullptr, params);
}

SchedOutcome
scheduleImsFixed(const Ddg &ddg, const MachineModel &machine,
                 const std::vector<ClusterId> &assignment,
                 const SchedParams &params)
{
    DMS_ASSERT(static_cast<int>(assignment.size()) >= ddg.numOps(),
               "assignment smaller than DDG");
    return runIms(ddg, machine, &assignment, params);
}

} // namespace dms
