#include "sched/ims.h"

#include <algorithm>

#include "sched/mii.h"
#include "sched/priority.h"
#include "support/diag.h"

namespace dms {

int
defaultMaxII(int mii)
{
    return 6 * mii + 64;
}

namespace {

/**
 * Highest-height unscheduled live op, ties broken by lower id.
 * Linear scan: bodies are at most a few hundred ops and the scan is
 * cheaper than maintaining a heap under eviction churn.
 */
OpId
pickNext(const Ddg &ddg, const PartialSchedule &ps, const Heights &h)
{
    OpId best = kInvalidOp;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id) || ps.isScheduled(id))
            continue;
        if (best == kInvalidOp ||
            h[static_cast<size_t>(id)] > h[static_cast<size_t>(best)]) {
            best = id;
        }
    }
    return best;
}

bool
imsPass(const Ddg &ddg, const MachineModel &machine, int ii,
        long budget, const std::vector<ClusterId> *assignment,
        PartialSchedule &ps, long &used)
{
    Heights heights = computeHeights(ddg, ii);
    (void)machine;

    while (ps.scheduledCount() < ddg.liveOpCount()) {
        if (budget-- <= 0)
            return false;
        ++used;

        OpId op = pickNext(ddg, ps, heights);
        DMS_ASSERT(op != kInvalidOp, "no unscheduled op found");

        ClusterId cluster = 0;
        if (assignment) {
            cluster = (*assignment)[static_cast<size_t>(op)];
            DMS_ASSERT(cluster != kInvalidCluster,
                       "op %s has no cluster assignment",
                       ddg.opLabel(op).c_str());
        }

        Cycle early = ps.earlyStart(op);
        Cycle slot = ps.findFreeSlot(op, cluster, early);
        if (slot == kUnscheduled)
            slot = ps.forcedSlot(op, early);

        std::vector<OpId> evicted;
        ps.placeEvicting(op, slot, cluster, heights, evicted);
        for (OpId v : ps.violatedSuccessors(op))
            ps.unschedule(v);
    }
    return true;
}

SchedOutcome
runIms(const Ddg &ddg, const MachineModel &machine,
       const std::vector<ClusterId> *assignment,
       const SchedParams &params)
{
    SchedOutcome out;
    out.resMii = resMii(ddg, machine);
    out.recMii = recMii(ddg);
    out.mii = std::max(out.resMii, out.recMii);
    int max_ii = params.maxII > 0 ? params.maxII
                                  : defaultMaxII(out.mii);

    long budget =
        static_cast<long>(params.budgetRatio) * ddg.liveOpCount();
    budget = std::max<long>(budget, 1);

    for (int ii = out.mii; ii <= max_ii; ++ii) {
        ++out.attempts;
        auto ps =
            std::make_unique<PartialSchedule>(ddg, machine, ii);
        if (imsPass(ddg, machine, ii, budget, assignment, *ps,
                    out.budgetUsed)) {
            out.ok = true;
            out.ii = ii;
            out.schedule = std::move(ps);
            return out;
        }
    }
    return out;
}

} // namespace

SchedOutcome
scheduleIms(const Ddg &ddg, const MachineModel &machine,
            const SchedParams &params)
{
    return runIms(ddg, machine, nullptr, params);
}

SchedOutcome
scheduleImsFixed(const Ddg &ddg, const MachineModel &machine,
                 const std::vector<ClusterId> &assignment,
                 const SchedParams &params)
{
    DMS_ASSERT(static_cast<int>(assignment.size()) >= ddg.numOps(),
               "assignment smaller than DDG");
    return runIms(ddg, machine, &assignment, params);
}

} // namespace dms
