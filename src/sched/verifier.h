#ifndef DMS_SCHED_VERIFIER_H
#define DMS_SCHED_VERIFIER_H

/**
 * @file
 * Full legality verification of a modulo schedule. Every scheduler
 * result in tests and the evaluation harness goes through this; a
 * schedule that passes is dependence-correct, resource-correct and
 * (for clustered machines) communication-correct.
 */

#include <string>
#include <vector>

#include "ir/ddg.h"
#include "machine/machine.h"
#include "sched/schedule.h"

namespace dms {

/** Verifier switches. */
struct VerifyOptions
{
    /** Require every live op to be scheduled. */
    bool requireComplete = true;

    /**
     * Check cluster-communication legality (active flow edges
     * between directly-connected clusters only, strict one-hop
     * moves, live chain paths behind replaced edges). Enabled
     * automatically for queue-file machines.
     */
    bool checkCommunication = true;
};

/**
 * Verify the schedule; returns human-readable problems (empty =
 * legal). Checks:
 *  - completeness and non-negative times;
 *  - reservation-table consistency with placements (one op per
 *    cluster/class/instance/row slot);
 *  - every active dependence edge:
 *    time(dst) >= time(src) + latency - II * distance;
 *  - on clustered machines: every active flow edge connects
 *    directly-connected clusters; moves have exactly one flow
 *    producer and one flow consumer, each exactly one ring hop
 *    away; every replaced edge is backed by a live move path from
 *    its producer to its consumer.
 */
std::vector<std::string> verifySchedule(const Ddg &ddg,
                                        const MachineModel &machine,
                                        const PartialSchedule &ps,
                                        const VerifyOptions &opts = {});

/** Panic with the first problem if the schedule is not legal. */
void checkSchedule(const Ddg &ddg, const MachineModel &machine,
                   const PartialSchedule &ps,
                   const VerifyOptions &opts = {});

} // namespace dms

#endif // DMS_SCHED_VERIFIER_H
