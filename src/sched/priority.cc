#include "sched/priority.h"

#include "support/diag.h"

namespace dms {

Heights
computeHeights(const Ddg &ddg, int ii)
{
    Heights h;
    computeHeights(ddg, ii, h);
    return h;
}

void
computeHeights(const Ddg &ddg, int ii, Heights &out)
{
    Heights &h = out;
    h.assign(static_cast<size_t>(ddg.numOps()), 0);

    // Longest-path to any sink: h(v) = max(0, max over v->s of
    // h(s) + lat - II*dist). Queue-based relaxation; bounded by
    // V * E updates at a legal II (non-positive cycles only).
    std::int64_t budget =
        static_cast<std::int64_t>(ddg.numOps() + 1) *
        static_cast<std::int64_t>(ddg.numEdges() + 1) + 16;

    bool changed = true;
    while (changed) {
        changed = false;
        for (OpId v = ddg.numOps() - 1; v >= 0; --v) {
            if (!ddg.opLive(v))
                continue;
            std::int64_t best = 0;
            for (EdgeId e : ddg.op(v).outs) {
                if (!ddg.edgeActive(e))
                    continue;
                const Edge &ed = ddg.edge(e);
                std::int64_t cand =
                    h[static_cast<size_t>(ed.dst)] + ed.latency -
                    static_cast<std::int64_t>(ii) * ed.distance;
                if (cand > best)
                    best = cand;
            }
            if (best > h[static_cast<size_t>(v)]) {
                h[static_cast<size_t>(v)] = best;
                changed = true;
            }
            if (--budget < 0) {
                panic("height relaxation diverged: II %d below "
                      "RecMII?", ii);
            }
        }
    }
}

} // namespace dms
