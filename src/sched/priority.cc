#include "sched/priority.h"

#include <algorithm>
#include <functional>

#include "support/diag.h"

namespace dms {

namespace {

/**
 * Relaxation step budget. At a legal II the sweep converges within
 * V passes over E edges; exhausting this bound proves a positive
 * cycle, i.e. an II below the true RecMII.
 */
std::int64_t
relaxBudget(const Ddg &ddg)
{
    return static_cast<std::int64_t>(ddg.numOps() + 1) *
               static_cast<std::int64_t>(ddg.numEdges() + 1) +
           16;
}

/** Longest active out-path start for one op at one II. */
std::int64_t
bestOut(const Ddg &ddg, const Heights &h, OpId v, int ii)
{
    std::int64_t best = 0;
    for (EdgeId e : ddg.op(v).outs) {
        if (!ddg.edgeActive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        std::int64_t cand = h[static_cast<size_t>(ed.dst)] +
                            ed.latency -
                            static_cast<std::int64_t>(ii) *
                                ed.distance;
        if (cand > best)
            best = cand;
    }
    return best;
}

} // namespace

Heights
computeHeights(const Ddg &ddg, int ii)
{
    Heights h;
    computeHeights(ddg, ii, h);
    return h;
}

void
computeHeights(const Ddg &ddg, int ii, Heights &out)
{
    if (!tryComputeHeights(ddg, ii, out)) {
        panic("height relaxation diverged: II %d below RecMII?",
              ii);
    }
}

bool
tryComputeHeights(const Ddg &ddg, int ii, Heights &out)
{
    Heights &h = out;
    h.assign(static_cast<size_t>(ddg.numOps()), 0);

    // Longest-path to any sink: h(v) = max(0, max over v->s of
    // h(s) + lat - II*dist). Queue-based relaxation; bounded by
    // V * E updates at a legal II (non-positive cycles only).
    std::int64_t budget = relaxBudget(ddg);

    bool changed = true;
    while (changed) {
        changed = false;
        for (OpId v = ddg.numOps() - 1; v >= 0; --v) {
            if (!ddg.opLive(v))
                continue;
            std::int64_t best = bestOut(ddg, h, v, ii);
            if (best > h[static_cast<size_t>(v)]) {
                h[static_cast<size_t>(v)] = best;
                changed = true;
            }
            if (--budget < 0)
                return false;
        }
    }
    return true;
}

void
HeightLadder::bind(const Ddg &ddg)
{
    ddg_ = &ddg;
    boundOps_ = ddg.numOps();
    ii_ = -1;
    valid_ = false;

    // Affected set: ops whose height carries a -II*distance term.
    // Seeds are the sources of active loop-carried edges; the
    // closure adds every predecessor of an affected op (reverse-DDG
    // reachability). An op outside the set has only distance-0
    // active out-edges into other outside ops — if any out-edge led
    // into the set its source would have been absorbed — so its
    // height is II-independent and survives II steps untouched.
    inAffected_.assign(static_cast<size_t>(boundOps_), 0);
    affected_.clear();
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeActive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        if (ed.distance <= 0)
            continue;
        OpId s = ed.src;
        if (ddg.opLive(s) && !inAffected_[static_cast<size_t>(s)]) {
            inAffected_[static_cast<size_t>(s)] = 1;
            affected_.push_back(s);
        }
    }
    for (size_t i = 0; i < affected_.size(); ++i) {
        OpId v = affected_[i];
        for (EdgeId e : ddg.op(v).ins) {
            if (!ddg.edgeActive(e))
                continue;
            OpId p = ddg.edge(e).src;
            if (ddg.opLive(p) &&
                !inAffected_[static_cast<size_t>(p)]) {
                inAffected_[static_cast<size_t>(p)] = 1;
                affected_.push_back(p);
            }
        }
    }
    // Sweep in the same descending-OpId direction as the full
    // relaxation: bodies are built in program order, so this is
    // near-topological and converges in few passes.
    std::sort(affected_.begin(), affected_.end(),
              std::greater<OpId>());
}

bool
HeightLadder::relaxAffected(const Ddg &ddg, int ii)
{
    // Zero the affected ops and rebuild their least fixpoint from
    // below against the fixed II-independent boundary — the same
    // monotone iteration computeHeights() runs over the whole
    // graph, restricted to the only ops whose values can differ.
    for (OpId v : affected_)
        h_[static_cast<size_t>(v)] = 0;

    std::int64_t budget = relaxBudget(ddg);
    bool changed = true;
    while (changed) {
        changed = false;
        for (OpId v : affected_) {
            std::int64_t best = bestOut(ddg, h_, v, ii);
            if (best > h_[static_cast<size_t>(v)]) {
                h_[static_cast<size_t>(v)] = best;
                changed = true;
            }
            if (--budget < 0)
                return false;
        }
    }
    return true;
}

bool
HeightLadder::ensure(const Ddg &ddg, int ii)
{
    if (ddg_ != &ddg || boundOps_ != ddg.numOps())
        bind(ddg);
    DMS_ASSERT(boundOps_ == ddg.numOps(),
               "height ladder bound to a resized graph");

    if (valid_ && ii == ii_) {
        ++reuses_;
        return true;
    }
    if (valid_ && ii > ii_) {
        ++delta_;
        ii_ = ii;
        // A converged table at a lower II cannot diverge at a
        // higher one (cycle weights only shrink), but a bounded
        // sweep keeps hostile graphs recoverable regardless.
        valid_ = relaxAffected(ddg, ii);
        return valid_;
    }

    ++full_;
    ii_ = ii;
    valid_ = tryComputeHeights(ddg, ii, h_);
    return valid_;
}

} // namespace dms
