#ifndef DMS_SCHED_WORKLIST_H
#define DMS_SCHED_WORKLIST_H

/**
 * @file
 * Height-bucketed priority worklist shared by IMS and DMS. Both
 * schedulers repeatedly pick the highest-height unscheduled
 * operation (ties broken by lowest id); the linear rescans this
 * replaces were O(ops) per placement. Heights are fixed for the
 * lifetime of one (II, restart) attempt, so operations bucket by
 * height once and pushes/pops touch only the affected bucket:
 * push is O(log bucket) and pop amortizes to O(1) plus the bucket
 * heap operation. Eviction churn re-pushes operations; a membership
 * flag deduplicates re-pushes of an operation already waiting.
 *
 * Buckets are *rank-compressed*: one bucket per distinct height in
 * the attempt (sorted-unique at build time), so the bucket array is
 * bounded by the op count rather than the height range and sparse
 * height tables (huge latencies, long chains) cost nothing.
 *
 * Invariant while a scheduler runs: the worklist holds exactly the
 * live, unscheduled, non-move operations. Move operations never
 * enter — they are scheduled at chain creation and removed from the
 * graph on dissolution.
 */

#include <cstdint>
#include <vector>

#include "ir/ddg.h"
#include "sched/priority.h"

namespace dms {

/** Priority worklist over one attempt's fixed height table. */
class Worklist
{
  public:
    /**
     * Rebuild for a fresh attempt: bucket every live op of @p ddg
     * by @p heights and mark all of them waiting. Reuses the
     * arenas of previous builds.
     */
    void build(const Ddg &ddg, const Heights &heights);

    /**
     * Re-insert an evicted op. No-op if already waiting. Only ops
     * that existed at build() time may be pushed.
     */
    void push(OpId op);

    /**
     * Remove and return the highest-height waiting op, ties broken
     * by lowest id (the exact order of the linear-scan pickNext
     * this replaces), or kInvalidOp when empty.
     */
    OpId pop();

    bool empty() const { return size_ == 0; }
    int size() const { return size_; }

  private:
    /** One vector per distinct height (rank order), kept as a
     * min-heap on op id. */
    std::vector<std::vector<OpId>> buckets_;
    /** op -> bucket index (fixed at build). */
    std::vector<std::int32_t> bucket_of_;
    /** Sorted distinct heights of the current attempt (scratch). */
    std::vector<std::int64_t> ranks_;
    /** op -> currently waiting? */
    std::vector<std::uint8_t> waiting_;
    /** Highest possibly-non-empty bucket (lazily decreased). */
    int top_ = -1;
    int size_ = 0;
};

} // namespace dms

#endif // DMS_SCHED_WORKLIST_H
