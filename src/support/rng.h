#ifndef DMS_SUPPORT_RNG_H
#define DMS_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generator used by the workload
 * generators and property tests. SplitMix64 core: tiny, fast, and
 * reproducible across platforms (unlike std::mt19937 distributions).
 */

#include <cstdint>
#include <vector>

#include "support/diag.h"

namespace dms {

/** Small deterministic RNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    int
    range(int lo, int hi)
    {
        DMS_ASSERT(lo <= hi, "bad range [%d, %d]", lo, hi);
        std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<int>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Pick an index in [0, weights.size()) with probability
     * proportional to weights[i].
     */
    int pickWeighted(const std::vector<double> &weights);

    /** Fork an independent stream (for per-loop reproducibility). */
    Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

  private:
    std::uint64_t state_;
};

} // namespace dms

#endif // DMS_SUPPORT_RNG_H
