#ifndef DMS_SUPPORT_THREAD_POOL_H
#define DMS_SUPPORT_THREAD_POOL_H

/**
 * @file
 * A small fixed-size thread pool with a chunked parallel-for, used
 * by the evaluation runner to schedule independent matrix cells
 * concurrently. Tasks are self-scheduled: parallelFor workers pull
 * indices from a shared atomic counter, so heavyweight cells (a
 * full modulo-scheduling run each) balance automatically without a
 * static partition.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dms {

class ThreadPool
{
  public:
    /**
     * @param jobs Worker count; 0 picks defaultJobs(). A pool with
     *             jobs <= 1 spawns no threads and runs everything
     *             inline, so serial semantics are exact.
     */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count this pool executes with (>= 1). */
    int jobs() const { return jobs_; }

    /** Enqueue a task; runs inline when jobs() == 1. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. Rethrows the
     * first exception a task raised, if any.
     */
    void wait();

    /**
     * Run body(0..n-1), each index exactly once, distributed over
     * the pool's workers with dynamic (chunk-of-1) self-scheduling.
     * Blocks until all indices are done; rethrows the first
     * exception a body raised. Safe to call repeatedly; must not be
     * called from inside a pool task.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /**
     * parallelFor variant whose body also receives a dense worker
     * slot in [0, jobs()): every index executed by the same task
     * sees the same slot, so callers can hand each worker its own
     * reusable state (arena, compilation context) without locking.
     * Slot assignment is an implementation detail — only the
     * "exclusive while running" property is guaranteed.
     */
    void parallelForWorker(
        size_t n, const std::function<void(size_t, int)> &body);

    /**
     * The pool size used when none is given: DMS_JOBS if set to a
     * positive integer (garbage or overflow is rejected with a
     * warning), else std::thread::hardware_concurrency(), else 1.
     */
    static int defaultJobs();

    /**
     * Checked DMS_JOBS lookup: @p fallback when unset; rejects
     * non-numeric values, trailing garbage and overflow (with a
     * warning) instead of silently misparsing them.
     */
    static int jobsFromEnv(int fallback);

  private:
    void workerLoop();

    int jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cvTask_; ///< signals queued work
    std::condition_variable cvIdle_; ///< signals drain for wait()
    size_t active_ = 0;              ///< tasks currently executing
    bool stop_ = false;
    std::exception_ptr firstError_;
};

} // namespace dms

#endif // DMS_SUPPORT_THREAD_POOL_H
