#include "support/rng.h"

namespace dms {

int
Rng::pickWeighted(const std::vector<double> &weights)
{
    DMS_ASSERT(!weights.empty(), "empty weight vector");
    double total = 0.0;
    for (double w : weights)
        total += w;
    DMS_ASSERT(total > 0.0, "non-positive weight total");
    double x = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x <= 0.0)
            return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
}

} // namespace dms
