#include "support/faultinject.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "support/diag.h"
#include "support/strings.h"

namespace dms {

InjectedFault::InjectedFault(const std::string &site)
    : std::runtime_error("injected fault at " + site), site_(site)
{
}

namespace {

/** SplitMix64 finalizer: the per-hit firing hash. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
fnvName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
matches(const std::string &pattern, const char *site)
{
    if (!pattern.empty() && pattern.back() == '*')
        return std::string_view(site).substr(
                   0, pattern.size() - 1) ==
               std::string_view(pattern).substr(0,
                                                pattern.size() - 1);
    return pattern == site;
}

/**
 * Counters + matched spec for one concrete site name. The hit
 * counter is the determinism anchor: hit i of a site fires iff
 * mix64(seed ^ fnv(site) ^ i) < rate * 2^64, independent of which
 * thread observes the hit.
 */
struct SiteState
{
    const FaultSpec *spec = nullptr; ///< null: site never fires
    std::uint64_t threshold = 0;     ///< rate scaled to 64 bits
    std::uint64_t nameHash = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fired{0};
};

struct ArmedPlan
{
    FaultPlan plan;
    std::mutex mu; ///< guards sites (lazily populated)
    std::map<std::string, std::unique_ptr<SiteState>> sites;
};

/** The armed plan; owned here, published through g_faultPlan. */
std::unique_ptr<ArmedPlan> g_armed;

std::uint64_t
rateThreshold(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return ~std::uint64_t(0);
    return static_cast<std::uint64_t>(
        rate * 18446744073709551616.0 /* 2^64 */);
}

bool
parseRate(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && out >= 0.0 &&
           out <= 1.0;
}

bool
parseSeed(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

} // namespace

bool
FaultPlan::parse(const std::string &text, std::string &error)
{
    std::vector<FaultSpec> parsed;
    for (const std::string &raw : split(text, ',')) {
        const std::string entry = trim(raw);
        if (entry.empty())
            continue;
        const std::vector<std::string> f = split(entry, ':');
        if (f.size() < 3 || f.size() > 4) {
            error = strfmt("bad fault spec '%s': want "
                           "site:rate:seed[:kind]",
                           entry.c_str());
            return false;
        }
        FaultSpec spec;
        spec.site = f[0];
        if (spec.site.empty()) {
            error = strfmt("bad fault spec '%s': empty site",
                           entry.c_str());
            return false;
        }
        if (!parseRate(f[1], spec.rate)) {
            error = strfmt("bad fault rate '%s' (want [0,1])",
                           f[1].c_str());
            return false;
        }
        if (!parseSeed(f[2], spec.seed)) {
            error = strfmt("bad fault seed '%s'", f[2].c_str());
            return false;
        }
        if (f.size() == 4) {
            const std::string &kind = f[3];
            if (kind == "error") {
                spec.kind = FaultKind::Error;
            } else if (kind == "cancel") {
                spec.kind = FaultKind::Cancel;
            } else if (kind.rfind("delay=", 0) == 0) {
                int us = 0;
                if (!parseInt(kind.substr(6), us)) {
                    error = strfmt("bad fault delay '%s'",
                                   kind.c_str());
                    return false;
                }
                spec.kind = FaultKind::Delay;
                spec.delayMicros = us;
            } else {
                error = strfmt("bad fault kind '%s' (want error, "
                               "cancel, or delay=<micros>)",
                               kind.c_str());
                return false;
            }
        }
        parsed.push_back(std::move(spec));
    }
    for (FaultSpec &s : parsed)
        specs_.push_back(std::move(s));
    return true;
}

namespace detail {

std::atomic<const void *> g_faultPlan{nullptr};

void
faultPointSlow(const char *site)
{
    // The plan pointer was published before any service thread
    // started (armFaults requires quiescence), so g_armed is
    // stable for the lifetime of this call.
    ArmedPlan *armed = g_armed.get();
    if (armed == nullptr)
        return;

    SiteState *state = nullptr;
    {
        std::lock_guard<std::mutex> lock(armed->mu);
        std::unique_ptr<SiteState> &slot = armed->sites[site];
        if (slot == nullptr) {
            slot.reset(new SiteState());
            slot->nameHash = fnvName(site);
            // First matching spec wins, so explicit sites should
            // precede wildcards in the plan.
            for (const FaultSpec &spec : armed->plan.specs()) {
                if (matches(spec.site, site)) {
                    slot->spec = &spec;
                    slot->threshold = rateThreshold(spec.rate);
                    break;
                }
            }
        }
        state = slot.get();
    }

    const std::uint64_t hit =
        state->hits.fetch_add(1, std::memory_order_relaxed);
    if (state->spec == nullptr)
        return;
    const std::uint64_t draw =
        mix64(state->spec->seed ^ state->nameHash ^ hit);
    if (draw >= state->threshold)
        return;
    state->fired.fetch_add(1, std::memory_order_relaxed);
    switch (state->spec->kind) {
    case FaultKind::Error:
        throw InjectedFault(site);
    case FaultKind::Cancel:
        throw CancelledError(
            strfmt("injected cancel at %s", site));
    case FaultKind::Delay:
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::max(state->spec->delayMicros, 0)));
        return;
    }
}

} // namespace detail

void
armFaults(FaultPlan plan)
{
    detail::g_faultPlan.store(nullptr, std::memory_order_release);
    g_armed.reset(new ArmedPlan());
    g_armed->plan = std::move(plan);
    detail::g_faultPlan.store(g_armed.get(),
                              std::memory_order_release);
}

void
disarmFaults()
{
    detail::g_faultPlan.store(nullptr, std::memory_order_release);
    g_armed.reset();
}

bool
faultsArmed()
{
    return detail::g_faultPlan.load(std::memory_order_acquire) !=
           nullptr;
}

bool
armFaultsFromEnv()
{
    if (faultsArmed())
        return true;
    const char *env = std::getenv("DMS_FAULTS");
    if (env == nullptr || *env == '\0')
        return false;
    FaultPlan plan;
    std::string error;
    if (!plan.parse(env, error)) {
        warn("ignoring DMS_FAULTS: %s", error.c_str());
        return false;
    }
    if (plan.empty())
        return false;
    armFaults(std::move(plan));
    return true;
}

std::vector<FaultSiteStats>
faultStats()
{
    std::vector<FaultSiteStats> out;
    ArmedPlan *armed = g_armed.get();
    if (armed == nullptr || !faultsArmed())
        return out;
    std::lock_guard<std::mutex> lock(armed->mu);
    out.reserve(armed->sites.size());
    for (const auto &kv : armed->sites) {
        FaultSiteStats s;
        s.site = kv.first;
        s.hits = kv.second->hits.load(std::memory_order_relaxed);
        s.fired = kv.second->fired.load(std::memory_order_relaxed);
        out.push_back(std::move(s));
    }
    return out;
}

std::uint64_t
faultsInjected()
{
    std::uint64_t total = 0;
    for (const FaultSiteStats &s : faultStats())
        total += s.fired;
    return total;
}

} // namespace dms
