#ifndef DMS_SUPPORT_DIAG_H
#define DMS_SUPPORT_DIAG_H

/**
 * @file
 * Diagnostic helpers in the gem5 spirit: panic() for internal bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#include <cstdarg>
#include <string>

namespace dms {

/**
 * Abort with a message. Call when an internal invariant is broken —
 * i.e. a bug in DMS itself, never a user mistake.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit(1) with a message. Call when the simulation cannot continue
 * because of user input (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assertion macro that survives NDEBUG builds. Use for invariants
 * whose violation would silently corrupt a schedule.
 */
#define DMS_ASSERT(cond, ...)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::dms::panic("assertion '%s' failed at %s:%d: %s",         \
                         #cond, __FILE__, __LINE__,                    \
                         ::dms::strfmt(__VA_ARGS__).c_str());          \
        }                                                              \
    } while (0)

} // namespace dms

#endif // DMS_SUPPORT_DIAG_H
