#include "support/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "support/diag.h"
#include "support/strings.h"

namespace dms {

ThreadPool::ThreadPool(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
    if (jobs_ <= 1)
        return;
    workers_.reserve(static_cast<size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvTask_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                cvIdle_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (jobs_ <= 1) {
        try {
            task();
        } catch (...) {
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cvTask_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvIdle_.wait(lock, [this] {
            return queue_.empty() && active_ == 0;
        });
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &body)
{
    parallelForWorker(n, [&body](size_t i, int) { body(i); });
}

void
ThreadPool::parallelForWorker(
    size_t n, const std::function<void(size_t, int)> &body)
{
    if (n == 0)
        return;
    if (jobs_ <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i, 0);
        return;
    }
    auto next = std::make_shared<std::atomic<size_t>>(0);
    auto abort = std::make_shared<std::atomic<bool>>(false);
    size_t spawn = std::min(static_cast<size_t>(jobs_), n);
    for (size_t w = 0; w < spawn; ++w) {
        const int slot = static_cast<int>(w);
        submit([next, abort, n, slot, &body] {
            for (size_t i = next->fetch_add(1); i < n;
                 i = next->fetch_add(1)) {
                // A thrown body aborts the whole loop instead of
                // grinding through the remaining indices first.
                if (abort->load(std::memory_order_relaxed))
                    return;
                try {
                    body(i, slot);
                } catch (...) {
                    abort->store(true, std::memory_order_relaxed);
                    throw;
                }
            }
        });
    }
    wait();
}

int
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return jobsFromEnv(hw > 0 ? static_cast<int>(hw) : 1);
}

int
ThreadPool::jobsFromEnv(int fallback)
{
    const char *s = std::getenv("DMS_JOBS");
    if (s == nullptr)
        return fallback;
    int v = 0;
    if (!parseInt(s, v) || v <= 0) {
        warn("DMS_JOBS='%s' is not a positive integer; using %d",
             s, fallback);
        return fallback;
    }
    return v;
}

} // namespace dms
