#ifndef DMS_SUPPORT_TABLE_H
#define DMS_SUPPORT_TABLE_H

/**
 * @file
 * Minimal ASCII table / CSV formatter for benchmark output. Every
 * bench binary prints its figure data through this so the rows the
 * paper reports are easy to diff.
 */

#include <string>
#include <vector>

namespace dms {

/** Column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (must match header width if one was set). */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    static std::string num(int v);
    static std::string pct(double fraction, int precision = 1);

    /** Render as aligned ASCII. */
    std::string ascii() const;

    /** Render as CSV (RFC-4180-lite, no quoting of commas needed). */
    std::string csv() const;

    /** Print the ASCII form to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dms

#endif // DMS_SUPPORT_TABLE_H
