#ifndef DMS_SUPPORT_STRINGS_H
#define DMS_SUPPORT_STRINGS_H

/**
 * @file
 * Small string helpers used by config parsing and emitters.
 */

#include <string>
#include <string_view>
#include <vector>

namespace dms {

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Strip leading/trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Parse a non-negative integer; returns false on garbage. */
bool parseInt(std::string_view s, int &out);

} // namespace dms

#endif // DMS_SUPPORT_STRINGS_H
