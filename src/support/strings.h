#ifndef DMS_SUPPORT_STRINGS_H
#define DMS_SUPPORT_STRINGS_H

/**
 * @file
 * Small string helpers used by config parsing and emitters.
 */

#include <string>
#include <string_view>
#include <vector>

namespace dms {

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Strip leading/trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Parse a non-negative integer; returns false on garbage. */
bool parseInt(std::string_view s, int &out);

/**
 * Parse a possibly-negative integer; same strictness as parseInt
 * (no trailing garbage, no overflow). Used where the textual
 * formats carry signed values (memory offsets, const literals).
 */
bool parseSignedInt(std::string_view s, int &out);

/**
 * Checked integer environment knob: @p fallback when @p var is
 * unset; values that are not integers >= @p lo — garbage, trailing
 * junk, overflow, or too small — are rejected with a warning. The
 * strict-parse path every DMS_* knob goes through.
 */
int envInt(const char *var, int fallback, int lo = 1);

} // namespace dms

#endif // DMS_SUPPORT_STRINGS_H
