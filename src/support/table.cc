#include "support/table.h"

#include <algorithm>
#include <cstdio>

#include "support/diag.h"

namespace dms {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!header_.empty()) {
        DMS_ASSERT(cells.size() == header_.size(),
                   "row width %zu != header width %zu",
                   cells.size(), header_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    return strfmt("%.*f", precision, v);
}

std::string
Table::num(int v)
{
    return strfmt("%d", v);
}

std::string
Table::pct(double fraction, int precision)
{
    return strfmt("%.*f%%", precision, fraction * 100.0);
}

std::string
Table::ascii() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto fmtRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t i = 0; i < cells.size(); ++i) {
            line += strfmt("%-*s", static_cast<int>(widths[i]) + 2,
                           cells[i].c_str());
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!title_.empty())
        out += "== " + title_ + " ==\n";
    if (!header_.empty()) {
        out += fmtRow(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
    }
    for (const auto &r : rows_)
        out += fmtRow(r);
    return out;
}

std::string
Table::csv() const
{
    auto join = [](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                line += ",";
            line += cells[i];
        }
        return line + "\n";
    };
    std::string out;
    if (!header_.empty())
        out += join(header_);
    for (const auto &r : rows_)
        out += join(r);
    return out;
}

void
Table::print() const
{
    std::fputs(ascii().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace dms
