#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/diag.h"

namespace dms {

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::min() const
{
    DMS_ASSERT(n_ > 0, "min() of empty accumulator");
    return min_;
}

double
Accumulator::max() const
{
    DMS_ASSERT(n_ > 0, "max() of empty accumulator");
    return max_;
}

double
Accumulator::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
Accumulator::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

void
Samples::add(double x)
{
    ++n_;
    sum_ += x;
    max_ = n_ == 1 ? x : std::max(max_, x);
    if (cap_ == 0 || values_.size() < cap_) {
        values_.push_back(x);
        return;
    }
    // Reservoir (algorithm R): keep x with probability cap/n, in
    // a uniformly random slot. The LCG keeps this deterministic
    // and allocation-free.
    lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
    std::uint64_t slot = (lcg_ >> 16) % n_;
    if (slot < cap_)
        values_[slot] = x;
}

void
Samples::merge(const Samples &other)
{
    DMS_ASSERT(cap_ == 0 && other.cap_ == 0,
               "merge of reservoir-capped Samples unsupported");
    if (other.n_ > 0)
        max_ = n_ == 0 ? other.max_ : std::max(max_, other.max_);
    n_ += other.n_;
    sum_ += other.sum_;
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
}

double
Samples::mean() const
{
    return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

double
Samples::max() const
{
    return n_ == 0 ? 0.0 : max_;
}

double
Samples::percentile(double p) const
{
    DMS_ASSERT(p >= 0.0 && p <= 100.0, "percentile %f out of range",
               p);
    if (values_.empty())
        return 0.0;
    std::vector<double> scratch(values_);
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(scratch.size())));
    if (rank > 0)
        --rank; // nearest-rank is 1-based
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<long>(rank),
                     scratch.end());
    return scratch[rank];
}

Histogram::Histogram(int lo, int width, int buckets)
    : lo_(lo), width_(width), counts_(static_cast<size_t>(buckets), 0)
{
    DMS_ASSERT(width > 0 && buckets > 0, "bad histogram shape");
}

void
Histogram::add(int value)
{
    int b = (value - lo_) / width_;
    b = std::clamp(b, 0, numBuckets() - 1);
    ++counts_[static_cast<size_t>(b)];
    ++total_;
}

double
Histogram::fraction(int b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bucketCount(b)) /
           static_cast<double>(total_);
}

std::string
Histogram::bucketLabel(int b) const
{
    int lo = lo_ + b * width_;
    return strfmt("[%d,%d)", lo, lo + width_);
}

} // namespace dms
