#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/diag.h"

namespace dms {

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::min() const
{
    DMS_ASSERT(n_ > 0, "min() of empty accumulator");
    return min_;
}

double
Accumulator::max() const
{
    DMS_ASSERT(n_ > 0, "max() of empty accumulator");
    return max_;
}

double
Accumulator::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
Accumulator::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Histogram::Histogram(int lo, int width, int buckets)
    : lo_(lo), width_(width), counts_(static_cast<size_t>(buckets), 0)
{
    DMS_ASSERT(width > 0 && buckets > 0, "bad histogram shape");
}

void
Histogram::add(int value)
{
    int b = (value - lo_) / width_;
    b = std::clamp(b, 0, numBuckets() - 1);
    ++counts_[static_cast<size_t>(b)];
    ++total_;
}

double
Histogram::fraction(int b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bucketCount(b)) /
           static_cast<double>(total_);
}

std::string
Histogram::bucketLabel(int b) const
{
    int lo = lo_ + b * width_;
    return strfmt("[%d,%d)", lo, lo + width_);
}

} // namespace dms
