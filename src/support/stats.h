#ifndef DMS_SUPPORT_STATS_H
#define DMS_SUPPORT_STATS_H

/**
 * @file
 * Streaming statistics accumulators used by the evaluation harness.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace dms {

/** Streaming min/max/mean/stddev accumulator (Welford's algorithm). */
class Accumulator
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation; 0 for fewer than two samples. */
    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-bucket histogram over integer values. */
class Histogram
{
  public:
    /** Buckets [lo, lo+width), ...; out-of-range clamps to ends. */
    Histogram(int lo, int width, int buckets);

    void add(int value);

    std::uint64_t total() const { return total_; }
    std::uint64_t bucketCount(int b) const { return counts_.at(b); }
    int numBuckets() const { return static_cast<int>(counts_.size()); }
    /** Fraction of samples in bucket b (0 if empty histogram). */
    double fraction(int b) const;
    /** Human-readable bucket label such as "[4,8)". */
    std::string bucketLabel(int b) const;

  private:
    int lo_;
    int width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace dms

#endif // DMS_SUPPORT_STATS_H
