#ifndef DMS_SUPPORT_STATS_H
#define DMS_SUPPORT_STATS_H

/**
 * @file
 * Streaming statistics accumulators used by the evaluation harness.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace dms {

/** Streaming min/max/mean/stddev accumulator (Welford's algorithm). */
class Accumulator
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation; 0 for fewer than two samples. */
    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Sample store with exact percentile extraction, used by the
 * bench harnesses and the load-generator clients. With a non-zero
 * @p cap the store keeps a uniform reservoir (algorithm R,
 * deterministic LCG) of that many samples, so memory stays
 * bounded over a long run while count/mean/max remain exact over
 * every sample ever added and percentiles are unbiased estimates.
 * cap 0 keeps everything (exact percentiles). Not thread-safe:
 * callers that share one instance across threads hold their own
 * lock. The serve hot path records into the wait-free
 * obs::LatencyHistogram instead and keeps this class as the exact
 * oracle its accuracy tests compare against. Percentiles use the
 * nearest-rank definition on a scratch copy, so add() stays O(1)
 * on the hot path.
 */
class Samples
{
  public:
    explicit Samples(std::uint64_t cap = 0) : cap_(cap) {}

    void add(double x);

    /** Samples ever added (not bounded by the reservoir cap). */
    std::uint64_t count() const { return n_; }
    /** Exact mean over every sample added. */
    double mean() const;
    /** Exact max over every sample added. */
    double max() const;

    /**
     * Nearest-rank percentile for @p p in [0, 100] over the
     * resident samples; 0 when none were recorded.
     */
    double percentile(double p) const;

    /**
     * Fold @p other into this store. Supported for uncapped
     * stores only (a reservoir merge would need per-sample
     * weights); asserts otherwise. Lets per-thread collectors
     * combine without sharing a lock on the hot path.
     */
    void merge(const Samples &other);

  private:
    std::uint64_t cap_;
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
    std::uint64_t lcg_ = 0x2545f4914f6cdd1dULL;
    std::vector<double> values_;
};

/** Fixed-bucket histogram over integer values. */
class Histogram
{
  public:
    /** Buckets [lo, lo+width), ...; out-of-range clamps to ends. */
    Histogram(int lo, int width, int buckets);

    void add(int value);

    std::uint64_t total() const { return total_; }
    std::uint64_t bucketCount(int b) const { return counts_.at(b); }
    int numBuckets() const { return static_cast<int>(counts_.size()); }
    /** Fraction of samples in bucket b (0 if empty histogram). */
    double fraction(int b) const;
    /** Human-readable bucket label such as "[4,8)". */
    std::string bucketLabel(int b) const;

  private:
    int lo_;
    int width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace dms

#endif // DMS_SUPPORT_STATS_H
