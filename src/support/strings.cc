#include "support/strings.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

#include "support/diag.h"

namespace dms {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

bool
parseInt(std::string_view s, int &out)
{
    std::string t = trim(s);
    if (t.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(t.c_str(), &end, 10);
    if (end == nullptr || end == t.c_str() || *end != '\0')
        return false; // empty digits or trailing garbage ("12x")
    if (errno == ERANGE || v < 0 || v > INT_MAX)
        return false; // out of int range
    out = static_cast<int>(v);
    return true;
}

bool
parseSignedInt(std::string_view s, int &out)
{
    std::string t = trim(s);
    if (t.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(t.c_str(), &end, 10);
    if (end == nullptr || end == t.c_str() || *end != '\0')
        return false; // empty digits or trailing garbage
    if (errno == ERANGE || v < INT_MIN || v > INT_MAX)
        return false; // out of int range
    out = static_cast<int>(v);
    return true;
}

int
envInt(const char *var, int fallback, int lo)
{
    const char *s = std::getenv(var);
    if (s == nullptr)
        return fallback;
    int v = 0;
    if (!parseSignedInt(s, v) || v < lo) {
        warn("%s='%s' is not an integer >= %d; using %d", var, s,
             lo, fallback);
        return fallback;
    }
    return v;
}

} // namespace dms
