#ifndef DMS_SUPPORT_TYPES_H
#define DMS_SUPPORT_TYPES_H

/**
 * @file
 * Fundamental integer typedefs shared by every DMS module.
 */

#include <cstdint>

namespace dms {

/** Index of an operation inside a DDG. Negative means "invalid". */
using OpId = std::int32_t;

/** Index of an edge inside a DDG. Negative means "invalid". */
using EdgeId = std::int32_t;

/** Cluster number within the ring, in [0, numClusters). */
using ClusterId = std::int32_t;

/** Absolute schedule time (cycle) of an operation instance. */
using Cycle = std::int32_t;

/** Sentinel for "no operation". */
inline constexpr OpId kInvalidOp = -1;

/** Sentinel for "no edge". */
inline constexpr EdgeId kInvalidEdge = -1;

/** Sentinel for "no cluster assigned". */
inline constexpr ClusterId kInvalidCluster = -1;

/** Sentinel for "not scheduled". */
inline constexpr Cycle kUnscheduled = INT32_MIN;

} // namespace dms

#endif // DMS_SUPPORT_TYPES_H
