#ifndef DMS_SUPPORT_FAULTINJECT_H
#define DMS_SUPPORT_FAULTINJECT_H

/**
 * @file
 * Deterministic fault injection for the serving stack.
 *
 * The compile service and the pipeline thread named *fault sites*
 * through their hot points (queue enqueue, cache lookup/insert,
 * worker compile entry, every pipeline stage boundary). A site is a
 * single inline check that is a relaxed atomic load plus a
 * never-taken branch when no plan is armed — zero overhead and
 * bit-identical behavior on the production path.
 *
 * Arming a FaultPlan (programmatically or via the DMS_FAULTS
 * environment knob) turns chosen sites into chaos: a firing site
 * throws an InjectedFault (a std::runtime_error the service maps to
 * a structured Failed result), sleeps (injected latency), or throws
 * a CancelledError (injected cancellation, mapped to Expired).
 *
 * Firing decisions are *deterministic per (site, hit index)*: the
 * i-th execution of a site fires iff a hash of (entry seed, site
 * name, i) falls under the configured rate. Thread interleaving
 * only permutes which request observes which hit index; the fired
 * count for a given hit count is reproducible, which is what the
 * chaos tests pin.
 *
 * DMS_FAULTS grammar (comma-separated entries):
 *
 *   site:rate:seed[:kind]
 *
 *   site   a registered site name ("serve.worker.compile") or a
 *          prefix wildcard ("serve.*", "pipeline.*", "*")
 *   rate   firing probability per hit in [0, 1]
 *   seed   64-bit decimal seed for the firing hash
 *   kind   "error" (default), "cancel", or "delay=<micros>"
 *
 * Example: DMS_FAULTS="serve.*:0.15:1337,pipeline.*:0.1:42"
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dms {

/** What an armed fault site does when it fires. */
enum class FaultKind : std::uint8_t {
    Error,  ///< throw InjectedFault
    Delay,  ///< sleep for delayMicros
    Cancel, ///< throw CancelledError
};

/** One entry of a fault plan: which sites, how often, what. */
struct FaultSpec
{
    /** Site name, or a prefix wildcard ending in '*'. */
    std::string site;
    double rate = 0.0;
    std::uint64_t seed = 0;
    FaultKind kind = FaultKind::Error;
    int delayMicros = 0;
};

/** Thrown by a firing Error site; carries the site name. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site);
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/**
 * Thrown when a cancellation (deadline expiry or an injected
 * Cancel fault) stops a compilation between pipeline stages.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Cooperative cancellation: a shared flag plus an optional
 * deadline. The pipeline polls cancelled() at stage boundaries;
 * the service arms one per deadline-carrying request. Configure
 * (setDeadline) before sharing across threads; cancel() and
 * cancelled() are thread-safe afterwards.
 */
class CancelToken
{
  public:
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    void
    setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadline_ = deadline;
        hasDeadline_ = true;
    }

    bool
    cancelled() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        return hasDeadline_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

  private:
    std::atomic<bool> cancelled_{false};
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
};

/** A parsed, armable set of FaultSpecs. */
class FaultPlan
{
  public:
    /** Append one spec (programmatic plans). */
    void add(FaultSpec spec) { specs_.push_back(std::move(spec)); }

    /**
     * Parse the DMS_FAULTS grammar into this plan (appending).
     * False (with @p error set, no partial append) on a malformed
     * spec string.
     */
    bool parse(const std::string &text, std::string &error);

    const std::vector<FaultSpec> &specs() const { return specs_; }
    bool empty() const { return specs_.empty(); }

  private:
    std::vector<FaultSpec> specs_;
};

/** Per-site observation counters for an armed plan. */
struct FaultSiteStats
{
    std::string site;
    std::uint64_t hits = 0;  ///< times the site executed
    std::uint64_t fired = 0; ///< times a fault was injected
};

namespace detail {
/** Non-null iff a plan is armed; the one load on the fast path. */
extern std::atomic<const void *> g_faultPlan;
void faultPointSlow(const char *site);
} // namespace detail

/**
 * A named fault site. Free when disarmed: one relaxed load and a
 * never-taken branch. When a plan is armed, the slow path matches
 * @p site against the plan and may throw InjectedFault /
 * CancelledError or sleep.
 */
inline void
faultPoint(const char *site)
{
    if (__builtin_expect(detail::g_faultPlan.load(
                             std::memory_order_relaxed) != nullptr,
                         0))
        detail::faultPointSlow(site);
}

/**
 * Install @p plan process-wide (replacing any armed plan) and
 * reset the per-site counters. Not safe against concurrent
 * faultPoint() executions: quiesce (no in-flight compiles) before
 * re-arming or disarming — the chaos surfaces arm before starting
 * a service and disarm after draining it.
 */
void armFaults(FaultPlan plan);

/** Remove the armed plan; every site is free again. */
void disarmFaults();

/** True while a plan is armed. */
bool faultsArmed();

/**
 * Arm from the DMS_FAULTS environment knob, if set and non-empty.
 * A malformed value is rejected with a warning (nothing armed).
 * Returns true iff a plan was armed. Idempotent: re-invocation
 * while armed keeps the current plan and counters.
 */
bool armFaultsFromEnv();

/**
 * Counters for every site observed since the plan was armed
 * (sorted by site name). Empty when disarmed.
 */
std::vector<FaultSiteStats> faultStats();

/** Sum of fired counts across all sites; 0 when disarmed. */
std::uint64_t faultsInjected();

} // namespace dms

#endif // DMS_SUPPORT_FAULTINJECT_H
