#ifndef DMS_SUPPORT_BITS_H
#define DMS_SUPPORT_BITS_H

/**
 * @file
 * Word-level bit scans for the free-slot bitmasks of the modulo
 * reservation table. C++17 has no <bit>, so the GCC/Clang builtins
 * are used with a portable fallback.
 */

#include <cstdint>

namespace dms {

/** Index of the lowest set bit; @p v must be non-zero. */
inline int
countTrailingZeros(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(v);
#else
    int n = 0;
    while ((v & 1) == 0) {
        v >>= 1;
        ++n;
    }
    return n;
#endif
}

} // namespace dms

#endif // DMS_SUPPORT_BITS_H
