#include "machine/reservation.h"

#include "support/diag.h"

namespace dms {

ReservationTable::ReservationTable(const MachineModel &machine, int ii)
    : machine_(machine), ii_(ii)
{
    DMS_ASSERT(ii >= 1, "bad II %d", ii);
    block_.resize(
        static_cast<size_t>(machine.numClusters()) * kNumFuClasses);
    int off = 0;
    for (ClusterId c = 0; c < machine.numClusters(); ++c) {
        for (int cls = 0; cls < kNumFuClasses; ++cls) {
            block_[static_cast<size_t>(c) * kNumFuClasses +
                   static_cast<size_t>(cls)] = off;
            off += machine.fusPerCluster(static_cast<FuClass>(cls)) *
                   ii_;
        }
    }
    slots_.assign(static_cast<size_t>(off), kInvalidOp);
}

size_t
ReservationTable::index(ClusterId cluster, FuClass cls, int instance,
                        int row) const
{
    DMS_ASSERT(cluster >= 0 && cluster < machine_.numClusters(),
               "bad cluster %d", cluster);
    DMS_ASSERT(row >= 0 && row < ii_, "bad row %d", row);
    int per = machine_.fusPerCluster(cls);
    DMS_ASSERT(instance >= 0 && instance < per,
               "bad instance %d of class %s", instance,
               fuClassName(cls));
    int base = block_[static_cast<size_t>(cluster) * kNumFuClasses +
                      static_cast<size_t>(cls)];
    return static_cast<size_t>(base + instance * ii_ + row);
}

OpId
ReservationTable::at(ClusterId cluster, FuClass cls, int instance,
                     int row) const
{
    return slots_[index(cluster, cls, instance, row)];
}

int
ReservationTable::freeInstance(ClusterId cluster, FuClass cls,
                               int row) const
{
    int per = machine_.fusPerCluster(cls);
    for (int i = 0; i < per; ++i) {
        if (at(cluster, cls, i, row) == kInvalidOp)
            return i;
    }
    return -1;
}

void
ReservationTable::place(OpId op, ClusterId cluster, FuClass cls,
                        int instance, int row)
{
    size_t idx = index(cluster, cls, instance, row);
    DMS_ASSERT(slots_[idx] == kInvalidOp,
               "slot (c%d,%s,%d,row%d) already holds op%d", cluster,
               fuClassName(cls), instance, row, slots_[idx]);
    slots_[idx] = op;
}

void
ReservationTable::clear(OpId op, ClusterId cluster, FuClass cls,
                        int instance, int row)
{
    size_t idx = index(cluster, cls, instance, row);
    DMS_ASSERT(slots_[idx] == op,
               "slot (c%d,%s,%d,row%d) holds op%d, not op%d", cluster,
               fuClassName(cls), instance, row, slots_[idx], op);
    slots_[idx] = kInvalidOp;
}

int
ReservationTable::freeSlotCount(ClusterId cluster, FuClass cls) const
{
    int per = machine_.fusPerCluster(cls);
    int free_slots = 0;
    for (int i = 0; i < per; ++i) {
        for (int row = 0; row < ii_; ++row) {
            if (at(cluster, cls, i, row) == kInvalidOp)
                ++free_slots;
        }
    }
    return free_slots;
}

std::vector<OpId>
ReservationTable::occupants(ClusterId cluster, FuClass cls,
                            int row) const
{
    std::vector<OpId> out;
    int per = machine_.fusPerCluster(cls);
    for (int i = 0; i < per; ++i) {
        OpId o = at(cluster, cls, i, row);
        if (o != kInvalidOp)
            out.push_back(o);
    }
    return out;
}

} // namespace dms
