#include "machine/reservation.h"

#include <algorithm>

#include "support/bits.h"
#include "support/diag.h"

namespace dms {

namespace {

/** Mask with the low @p n bits set (n in [0, 64]). */
inline std::uint64_t
lowBits(int n)
{
    return n >= 64 ? ~0ULL : (1ULL << n) - 1;
}

} // namespace

ReservationTable::ReservationTable(const MachineModel &machine, int ii)
    : machine_(machine)
{
    reset(ii);
}

void
ReservationTable::reset(int ii)
{
    DMS_ASSERT(ii >= 1, "bad II %d", ii);
    ii_ = ii;
    words_ = (ii + 63) / 64;

    const size_t blocks =
        static_cast<size_t>(machine_.numClusters()) * kNumFuClasses;
    block_.resize(blocks);
    free_count_.resize(blocks);
    free_rows_.assign(blocks * static_cast<size_t>(words_), 0);
    free_insts_.resize(blocks * static_cast<size_t>(ii_));

    int off = 0;
    for (ClusterId c = 0; c < machine_.numClusters(); ++c) {
        for (int cls = 0; cls < kNumFuClasses; ++cls) {
            const size_t b = blockIndex(c, static_cast<FuClass>(cls));
            const int per =
                machine_.fusPerCluster(static_cast<FuClass>(cls));
            DMS_ASSERT(per <= 64, "more than 64 %s units per cluster",
                       fuClassName(static_cast<FuClass>(cls)));
            block_[b] = off;
            off += per * ii_;
            free_count_[b] = per * ii_;

            const std::uint64_t inst_mask = lowBits(per);
            for (int row = 0; row < ii_; ++row) {
                free_insts_[b * static_cast<size_t>(ii_) +
                            static_cast<size_t>(row)] = inst_mask;
            }
            if (per > 0) {
                std::uint64_t *rows =
                    &free_rows_[b * static_cast<size_t>(words_)];
                for (int w = 0; w < words_; ++w) {
                    int bits_here =
                        std::min(64, ii_ - 64 * w);
                    rows[w] = lowBits(bits_here);
                }
            }
        }
    }
    slots_.assign(static_cast<size_t>(off), kInvalidOp);
}

size_t
ReservationTable::index(ClusterId cluster, FuClass cls, int instance,
                        int row) const
{
    DMS_ASSERT(cluster >= 0 && cluster < machine_.numClusters(),
               "bad cluster %d", cluster);
    DMS_ASSERT(row >= 0 && row < ii_, "bad row %d", row);
    int per = machine_.fusPerCluster(cls);
    DMS_ASSERT(instance >= 0 && instance < per,
               "bad instance %d of class %s", instance,
               fuClassName(cls));
    int base = block_[blockIndex(cluster, cls)];
    return static_cast<size_t>(base + instance * ii_ + row);
}

OpId
ReservationTable::at(ClusterId cluster, FuClass cls, int instance,
                     int row) const
{
    return slots_[index(cluster, cls, instance, row)];
}

int
ReservationTable::freeInstance(ClusterId cluster, FuClass cls,
                               int row) const
{
    std::uint64_t m = free_insts_[rowIndex(cluster, cls, row)];
    return m != 0 ? countTrailingZeros(m) : -1;
}

void
ReservationTable::place(OpId op, ClusterId cluster, FuClass cls,
                        int instance, int row)
{
    size_t idx = index(cluster, cls, instance, row);
    DMS_ASSERT(slots_[idx] == kInvalidOp,
               "slot (c%d,%s,%d,row%d) already holds op%d", cluster,
               fuClassName(cls), instance, row, slots_[idx]);
    slots_[idx] = op;

    std::uint64_t &insts = free_insts_[rowIndex(cluster, cls, row)];
    insts &= ~(1ULL << instance);
    if (insts == 0) {
        free_rows_[blockIndex(cluster, cls) *
                       static_cast<size_t>(words_) +
                   static_cast<size_t>(row / 64)] &=
            ~(1ULL << (row % 64));
    }
    --free_count_[blockIndex(cluster, cls)];
}

void
ReservationTable::clear(OpId op, ClusterId cluster, FuClass cls,
                        int instance, int row)
{
    size_t idx = index(cluster, cls, instance, row);
    DMS_ASSERT(slots_[idx] == op,
               "slot (c%d,%s,%d,row%d) holds op%d, not op%d", cluster,
               fuClassName(cls), instance, row, slots_[idx], op);
    slots_[idx] = kInvalidOp;

    std::uint64_t &insts = free_insts_[rowIndex(cluster, cls, row)];
    if (insts == 0) {
        free_rows_[blockIndex(cluster, cls) *
                       static_cast<size_t>(words_) +
                   static_cast<size_t>(row / 64)] |=
            1ULL << (row % 64);
    }
    insts |= 1ULL << instance;
    ++free_count_[blockIndex(cluster, cls)];
}

Cycle
ReservationTable::firstFreeCycle(ClusterId cluster, FuClass cls,
                                 Cycle early) const
{
    DMS_ASSERT(early >= 0, "negative early cycle %d", early);
    const std::uint64_t *rows =
        &free_rows_[blockIndex(cluster, cls) *
                    static_cast<size_t>(words_)];
    const int r0 = early % ii_;

    // First free row at or after r0, then wrap to rows before r0:
    // the circular order a linear probe of [early, early + II)
    // visits.
    int w0 = r0 / 64;
    std::uint64_t word = rows[w0] & ~lowBits(r0 % 64);
    int row = -1;
    if (word != 0) {
        row = 64 * w0 + countTrailingZeros(word);
    } else {
        for (int w = w0 + 1; w < words_; ++w) {
            if (rows[w] != 0) {
                row = 64 * w + countTrailingZeros(rows[w]);
                break;
            }
        }
    }
    if (row < 0) {
        for (int w = 0; w <= w0; ++w) {
            std::uint64_t wrap =
                w == w0 ? rows[w] & lowBits(r0 % 64) : rows[w];
            if (wrap != 0) {
                row = 64 * w + countTrailingZeros(wrap);
                break;
            }
        }
    }
    if (row < 0)
        return kUnscheduled;
    return early + (row - r0 + (row < r0 ? ii_ : 0));
}

std::vector<OpId>
ReservationTable::occupants(ClusterId cluster, FuClass cls,
                            int row) const
{
    std::vector<OpId> out;
    int per = machine_.fusPerCluster(cls);
    for (int i = 0; i < per; ++i) {
        OpId o = at(cluster, cls, i, row);
        if (o != kInvalidOp)
            out.push_back(o);
    }
    return out;
}

} // namespace dms
