#include "machine/desc.h"

#include <array>
#include <vector>

#include "support/diag.h"
#include "support/strings.h"

namespace dms {

namespace {

/** Whitespace-split one line into tokens. */
std::vector<std::string>
tokenize(std::string_view line)
{
    std::vector<std::string> toks;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
        size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t')
            ++i;
        if (i > start)
            toks.emplace_back(line.substr(start, i - start));
    }
    return toks;
}

/** "key=value" split; false if there is no '='. */
bool
splitKeyValue(const std::string &tok, std::string &key,
              std::string &value)
{
    size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= tok.size()) {
        return false;
    }
    key = tok.substr(0, eq);
    value = tok.substr(eq + 1);
    return true;
}

bool
opcodeByName(const std::string &name, Opcode &out)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        if (name == opcodeName(static_cast<Opcode>(i))) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

bool
fuClassByKey(const std::string &key, FuClass &out)
{
    if (key == "ldst") {
        out = FuClass::LdSt;
    } else if (key == "add") {
        out = FuClass::Add;
    } else if (key == "mul") {
        out = FuClass::Mul;
    } else if (key == "copy") {
        out = FuClass::Copy;
    } else {
        return false;
    }
    return true;
}

/** Mutable parse state; committed to a MachineModel at the end. */
struct ParseState
{
    std::string name;
    int clusters = 1;
    TopologyKind topo = TopologyKind::Ring;
    int meshRows = 0;
    int meshCols = 0;
    RegFileKind regfile = RegFileKind::Conventional;
    std::array<int, kNumFuClasses> fus = {1, 1, 1, 0};
    LatencyModel lat;

    bool sawMachine = false;
    bool sawClusters = false;
    bool sawTopology = false;
    bool sawRegfile = false;
    bool sawFus = false;

    /**
     * Opcodes already given a latency. Several `latency` lines are
     * fine; the same opcode twice is a silent last-writer-wins
     * hazard, so it is rejected.
     */
    std::array<bool, kNumOpcodes> sawLatency{};

    /**
     * Lines the shape keys appeared on, so validation that spans
     * several lines (mesh dims vs cluster count, queue files vs
     * copy units) can still point at the offending line.
     */
    int topologyLine = 0;
    int regfileLine = 0;
};

} // namespace

bool
machineFromText(const std::string &text, MachineModel &out,
                std::string &error)
{
    ParseState st;
    int lineno = 0;
    auto fail = [&](const std::string &msg) {
        error = strfmt("line %d: %s", lineno, msg.c_str());
        return false;
    };

    for (std::string line : split(text, '\n')) {
        ++lineno;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::vector<std::string> toks = tokenize(line);
        if (toks.empty())
            continue;
        const std::string &key = toks[0];

        if (key == "machine") {
            if (st.sawMachine)
                return fail("duplicate 'machine'");
            if (toks.size() != 2)
                return fail("'machine' takes exactly one name");
            st.name = toks[1];
            st.sawMachine = true;
        } else if (key == "clusters") {
            if (st.sawClusters)
                return fail("duplicate 'clusters'");
            int v = 0;
            if (toks.size() != 2 || !parseInt(toks[1], v) || v < 1)
                return fail("'clusters' needs a positive integer");
            st.clusters = v;
            st.sawClusters = true;
        } else if (key == "topology") {
            if (st.sawTopology)
                return fail("duplicate 'topology'");
            st.sawTopology = true;
            st.topologyLine = lineno;
            if (toks.size() == 2 && toks[1] == "ring") {
                st.topo = TopologyKind::Ring;
            } else if (toks.size() == 2 && toks[1] == "crossbar") {
                st.topo = TopologyKind::Crossbar;
            } else if (toks.size() == 3 && toks[1] == "mesh") {
                st.topo = TopologyKind::Mesh;
                std::vector<std::string> dims =
                    split(toks[2], 'x');
                int r = 0, c = 0;
                if (dims.size() != 2 || !parseInt(dims[0], r) ||
                    !parseInt(dims[1], c) || r < 1 || c < 1) {
                    return fail("mesh dims must be RxC, e.g. "
                                "'topology mesh 2x3'");
                }
                st.meshRows = r;
                st.meshCols = c;
            } else {
                return fail("topology must be 'ring', 'crossbar' "
                            "or 'mesh RxC'");
            }
        } else if (key == "regfile") {
            if (st.sawRegfile)
                return fail("duplicate 'regfile'");
            st.sawRegfile = true;
            st.regfileLine = lineno;
            if (toks.size() == 2 && toks[1] == "queues") {
                st.regfile = RegFileKind::Queues;
            } else if (toks.size() == 2 &&
                       toks[1] == "conventional") {
                st.regfile = RegFileKind::Conventional;
            } else {
                return fail("regfile must be 'queues' or "
                            "'conventional'");
            }
        } else if (key == "fus") {
            if (st.sawFus)
                return fail("duplicate 'fus'");
            st.sawFus = true;
            if (toks.size() < 2)
                return fail("'fus' needs class=count entries");
            std::array<bool, kNumFuClasses> seen{};
            for (size_t i = 1; i < toks.size(); ++i) {
                std::string k, v;
                FuClass cls;
                int n = 0;
                if (!splitKeyValue(toks[i], k, v))
                    return fail(strfmt("malformed fus entry '%s'",
                                       toks[i].c_str()));
                if (!fuClassByKey(k, cls))
                    return fail(strfmt("unknown FU class '%s' "
                                       "(ldst|add|mul|copy)",
                                       k.c_str()));
                if (seen[static_cast<size_t>(cls)])
                    return fail(strfmt("duplicate FU class '%s'; "
                                       "an earlier entry already "
                                       "set it",
                                       k.c_str()));
                seen[static_cast<size_t>(cls)] = true;
                if (!parseInt(v, n) || n > 64)
                    return fail(strfmt("FU count '%s' out of range "
                                       "[0, 64]", v.c_str()));
                st.fus[static_cast<size_t>(cls)] = n;
            }
        } else if (key == "latency") {
            if (toks.size() < 2)
                return fail("'latency' needs opcode=cycles entries");
            for (size_t i = 1; i < toks.size(); ++i) {
                std::string k, v;
                Opcode opc;
                int n = 0;
                if (!splitKeyValue(toks[i], k, v))
                    return fail(strfmt("malformed latency entry "
                                       "'%s'", toks[i].c_str()));
                if (!opcodeByName(k, opc))
                    return fail(strfmt("unknown opcode '%s'",
                                       k.c_str()));
                if (st.sawLatency[static_cast<size_t>(opc)])
                    return fail(strfmt("duplicate latency for "
                                       "opcode '%s'; an earlier "
                                       "entry already set it",
                                       k.c_str()));
                st.sawLatency[static_cast<size_t>(opc)] = true;
                if (!parseInt(v, n))
                    return fail(strfmt("latency '%s' is not a "
                                       "non-negative integer",
                                       v.c_str()));
                st.lat.set(opc, n);
            }
        } else {
            return fail(strfmt("unknown key '%s'", key.c_str()));
        }
    }

    // Shape validation mirrors MachineModel::custom() but reports
    // instead of panicking: this is user input. The checks span
    // several lines, so each error points at the line that set the
    // constraint. The product is taken in 64 bits — RxC near
    // INT_MAX must not wrap around into a value that happens to
    // pass the comparison.
    if (st.topo == TopologyKind::Mesh &&
        static_cast<long long>(st.meshRows) * st.meshCols !=
            st.clusters) {
        error = strfmt("line %d: mesh %dx%d does not cover %d "
                       "clusters", st.topologyLine, st.meshRows,
                       st.meshCols, st.clusters);
        return false;
    }
    // `regfile queues` is honoured on every topology (each
    // directed link gets a CQRF); what it always demands on a
    // multi-cluster machine is a copy unit to drive the links.
    if (st.regfile == RegFileKind::Queues && st.clusters > 1 &&
        st.fus[static_cast<size_t>(FuClass::Copy)] < 1) {
        error = strfmt("line %d: a multi-cluster queue-file "
                       "machine needs copy units (fus copy=...)",
                       st.regfileLine);
        return false;
    }

    out = MachineModel::custom(st.clusters, st.regfile, st.fus,
                               st.topo, st.meshRows, st.meshCols);
    out.latency() = st.lat;
    out.setName(st.name);
    return true;
}

MachineModel
machineFromTextOrDie(const std::string &text)
{
    MachineModel m = MachineModel::unclustered(1);
    std::string error;
    if (!machineFromText(text, m, error))
        fatal("bad machine description: %s", error.c_str());
    return m;
}

std::string
machineToText(const MachineModel &machine)
{
    std::string out;
    if (!machine.name().empty())
        out += strfmt("machine %s\n", machine.name().c_str());
    out += strfmt("clusters %d\n", machine.numClusters());
    if (machine.topology() == TopologyKind::Mesh) {
        out += strfmt("topology mesh %dx%d\n", machine.meshRows(),
                      machine.meshCols());
    } else {
        out += strfmt("topology %s\n",
                      topologyName(machine.topology()));
    }
    out += strfmt("regfile %s\n",
                  machine.regFileKind() == RegFileKind::Queues
                      ? "queues"
                      : "conventional");
    out += strfmt("fus ldst=%d add=%d mul=%d copy=%d\n",
                  machine.fusPerCluster(FuClass::LdSt),
                  machine.fusPerCluster(FuClass::Add),
                  machine.fusPerCluster(FuClass::Mul),
                  machine.fusPerCluster(FuClass::Copy));
    const LatencyModel defaults;
    for (int i = 0; i < kNumOpcodes; ++i) {
        Opcode opc = static_cast<Opcode>(i);
        if (machine.latencyOf(opc) != defaults.of(opc)) {
            out += strfmt("latency %s=%d\n", opcodeName(opc),
                          machine.latencyOf(opc));
        }
    }
    return out;
}

std::string
expandMachineTemplate(std::string_view tmpl, int clusters)
{
    std::string out;
    out.reserve(tmpl.size() + 8);
    const std::string value = strfmt("%d", clusters);
    for (size_t i = 0; i < tmpl.size(); ++i) {
        if (tmpl[i] == '$' && i + 1 < tmpl.size() &&
            tmpl[i + 1] == 'C') {
            out += value;
            ++i;
        } else {
            out += tmpl[i];
        }
    }
    return out;
}

} // namespace dms
