#ifndef DMS_MACHINE_RESERVATION_H
#define DMS_MACHINE_RESERVATION_H

/**
 * @file
 * Modulo reservation table (MRT). Modulo scheduling requires that
 * an operation issued at absolute time t occupies its functional
 * unit in row t mod II; two operations conflict iff they need the
 * same (cluster, FU class, FU instance, row). FUs are fully
 * pipelined, so one issue occupies one row (see DESIGN.md).
 */

#include <vector>

#include "ir/opcode.h"
#include "machine/machine.h"
#include "support/types.h"

namespace dms {

/** Modulo reservation table for one II. */
class ReservationTable
{
  public:
    ReservationTable(const MachineModel &machine, int ii);

    int ii() const { return ii_; }

    /** Occupant of a slot, or kInvalidOp. */
    OpId at(ClusterId cluster, FuClass cls, int instance,
            int row) const;

    /** First free instance at (cluster, cls, row), or -1. */
    int freeInstance(ClusterId cluster, FuClass cls, int row) const;

    /** True if some instance is free at (cluster, cls, row). */
    bool
    hasFree(ClusterId cluster, FuClass cls, int row) const
    {
        return freeInstance(cluster, cls, row) >= 0;
    }

    /** Place an op; the slot must be empty. */
    void place(OpId op, ClusterId cluster, FuClass cls, int instance,
               int row);

    /** Clear a slot; it must hold @p op. */
    void clear(OpId op, ClusterId cluster, FuClass cls, int instance,
               int row);

    /**
     * Number of free (instance, row) slots of a class in a cluster —
     * the quantity DMS maximizes when choosing between the two chain
     * directions ("the number of free slots left available to
     * schedule move operations in any cluster").
     */
    int freeSlotCount(ClusterId cluster, FuClass cls) const;

    /** Occupants of every instance at (cluster, cls, row). */
    std::vector<OpId> occupants(ClusterId cluster, FuClass cls,
                                int row) const;

  private:
    size_t index(ClusterId cluster, FuClass cls, int instance,
                 int row) const;

    const MachineModel &machine_;
    int ii_;
    /** Start offset of each (cluster, class) block in slots_. */
    std::vector<int> block_;
    std::vector<OpId> slots_;
};

} // namespace dms

#endif // DMS_MACHINE_RESERVATION_H
