#ifndef DMS_MACHINE_RESERVATION_H
#define DMS_MACHINE_RESERVATION_H

/**
 * @file
 * Modulo reservation table (MRT). Modulo scheduling requires that
 * an operation issued at absolute time t occupies its functional
 * unit in row t mod II; two operations conflict iff they need the
 * same (cluster, FU class, FU instance, row). FUs are fully
 * pipelined, so one issue occupies one row (see DESIGN.md).
 *
 * The table maintains three derived structures alongside the raw
 * slots so the scheduler's inner-loop queries are O(1):
 *
 *  - a per-(cluster, class, row) bitmask of *free instances*, so
 *    hasFree()/freeInstance() are a single mask test / bit scan;
 *  - a per-(cluster, class) bitmask of *rows with free capacity*
 *    (one bit per row, packed in 64-bit words), so firstFreeCycle()
 *    scans O(II/64) words instead of probing O(II x instances)
 *    slots;
 *  - a per-(cluster, class) free-slot counter, so freeSlotCount()
 *    (queried per cluster on every strategy-2 evaluation) is O(1).
 */

#include <cstdint>
#include <vector>

#include "ir/opcode.h"
#include "machine/machine.h"
#include "support/diag.h"
#include "support/types.h"

namespace dms {

/** Modulo reservation table for one II. */
class ReservationTable
{
  public:
    ReservationTable(const MachineModel &machine, int ii);

    /**
     * Clear every slot and re-shape the table for a new II, reusing
     * the existing allocations (the II-ladder reset path).
     */
    void reset(int ii);

    int ii() const { return ii_; }

    /** Occupant of a slot, or kInvalidOp. */
    OpId at(ClusterId cluster, FuClass cls, int instance,
            int row) const;

    /** First free instance at (cluster, cls, row), or -1. O(1). */
    int
    freeInstance(ClusterId cluster, FuClass cls, int row) const;

    /** True if some instance is free at (cluster, cls, row). O(1). */
    bool
    hasFree(ClusterId cluster, FuClass cls, int row) const
    {
        return free_insts_[rowIndex(cluster, cls, row)] != 0;
    }

    /** Place an op; the slot must be empty. */
    void place(OpId op, ClusterId cluster, FuClass cls, int instance,
               int row);

    /** Clear a slot; it must hold @p op. */
    void clear(OpId op, ClusterId cluster, FuClass cls, int instance,
               int row);

    /**
     * Number of free (instance, row) slots of a class in a cluster —
     * the quantity DMS maximizes when choosing between the two chain
     * directions ("the number of free slots left available to
     * schedule move operations in any cluster"). O(1).
     */
    int
    freeSlotCount(ClusterId cluster, FuClass cls) const
    {
        return free_count_[blockIndex(cluster, cls)];
    }

    /**
     * Rau's time-slot search over the row bitmask: the first cycle
     * t in [early, early + II - 1] whose row t mod II has a free
     * instance, or kUnscheduled when every row is occupied.
     */
    Cycle firstFreeCycle(ClusterId cluster, FuClass cls,
                         Cycle early) const;

    /** Occupants of every instance at (cluster, cls, row). */
    std::vector<OpId> occupants(ClusterId cluster, FuClass cls,
                                int row) const;

  private:
    size_t index(ClusterId cluster, FuClass cls, int instance,
                 int row) const;

    size_t
    blockIndex(ClusterId cluster, FuClass cls) const
    {
        return static_cast<size_t>(cluster) * kNumFuClasses +
               static_cast<size_t>(cls);
    }

    size_t
    rowIndex(ClusterId cluster, FuClass cls, int row) const
    {
        DMS_ASSERT(cluster >= 0 && cluster < machine_.numClusters(),
                   "bad cluster %d", cluster);
        DMS_ASSERT(row >= 0 && row < ii_, "bad row %d", row);
        return blockIndex(cluster, cls) * static_cast<size_t>(ii_) +
               static_cast<size_t>(row);
    }

    const MachineModel &machine_;
    int ii_;
    /** 64-bit words per (cluster, class) row bitmask. */
    int words_;
    /** Start offset of each (cluster, class) block in slots_. */
    std::vector<int> block_;
    std::vector<OpId> slots_;
    /** Free-instance mask per (cluster, class, row). */
    std::vector<std::uint64_t> free_insts_;
    /** Rows-with-capacity mask per (cluster, class), words_ each. */
    std::vector<std::uint64_t> free_rows_;
    /** Free slots per (cluster, class). */
    std::vector<int> free_count_;
};

} // namespace dms

#endif // DMS_MACHINE_RESERVATION_H
