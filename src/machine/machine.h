#ifndef DMS_MACHINE_MACHINE_H
#define DMS_MACHINE_MACHINE_H

/**
 * @file
 * Machine description for the clustered VLIW architecture of paper
 * section 2: a collection of clusters connected in a bidirectional
 * ring, each with a small set of functional units and a private
 * queue register file (LRF), adjacent clusters communicating through
 * Communication Queue Register Files (CQRFs). The same description
 * also expresses the unclustered reference machine (one cluster, a
 * conventional multi-read register file, no copy units).
 */

#include <array>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "support/types.h"

namespace dms {

/**
 * Register-file organization of a machine. Queue files impose the
 * single-use property (copy pre-pass) and communication constraints;
 * the conventional file does not.
 */
enum class RegFileKind : std::uint8_t {
    Conventional,  ///< central multi-ported RF (unclustered baseline)
    Queues,        ///< LRF/CQRF queue files (the paper's proposal)
};

/** Machine configuration and ring topology. */
class MachineModel
{
  public:
    /**
     * The paper's clustered configuration: @p clusters clusters,
     * each with 1 L/S + 1 ADD + 1 MUL plus @p copy_fus copy units
     * (1 in the paper; more models the "additional hardware
     * support" the conclusions suggest).
     */
    static MachineModel clusteredRing(int clusters, int copy_fus = 1);

    /**
     * Unclustered machine of equal width: a single cluster holding
     * @p width_clusters of each useful FU, a conventional register
     * file, no copy units, no communication constraints.
     */
    static MachineModel unclustered(int width_clusters);

    /** @name Shape */
    /// @{
    int numClusters() const { return num_clusters_; }
    bool clustered() const { return rf_kind_ == RegFileKind::Queues; }
    RegFileKind regFileKind() const { return rf_kind_; }

    /** FUs of one class inside one cluster. */
    int fusPerCluster(FuClass cls) const;

    /** Total FUs of one class across the machine. */
    int totalFus(FuClass cls) const;

    /** Total useful FUs (excludes copy units), the paper's x-axis. */
    int usefulFuCount() const;
    /// @}

    /** @name Latencies */
    /// @{
    const LatencyModel &latency() const { return lat_; }
    LatencyModel &latency() { return lat_; }
    int latencyOf(Opcode opc) const { return lat_.of(opc); }
    /// @}

    /** @name Ring topology */
    /// @{

    /** Minimal hop count between clusters (over either direction). */
    int ringDistance(ClusterId a, ClusterId b) const;

    /**
     * Directly connected: same cluster or ring neighbours. A flow
     * dependence between directly connected clusters needs no move
     * operations (it maps onto the LRF or one CQRF).
     */
    bool directlyConnected(ClusterId a, ClusterId b) const;

    /** Hops from @p a to @p b walking in @p dir (+1 or -1). */
    int hopsAlong(ClusterId a, ClusterId b, int dir) const;

    /** Next cluster from @p c walking in @p dir (+1 or -1). */
    ClusterId neighbor(ClusterId c, int dir) const;

    /**
     * Clusters strictly between @p a and @p b walking in @p dir —
     * the clusters whose copy units must host the move operations
     * of a chain from a producer in @p a to a consumer in @p b
     * (paper figure 3 shows the two options).
     */
    std::vector<ClusterId> pathBetween(ClusterId a, ClusterId b,
                                       int dir) const;
    /// @}

    /** Human-readable description, e.g. "4-cluster ring (12 FUs)". */
    std::string describe() const;

  private:
    MachineModel() = default;

    int num_clusters_ = 1;
    RegFileKind rf_kind_ = RegFileKind::Conventional;
    std::array<int, kNumFuClasses> fus_per_cluster_ = {1, 1, 1, 0};
    LatencyModel lat_;
};

} // namespace dms

#endif // DMS_MACHINE_MACHINE_H
