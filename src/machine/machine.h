#ifndef DMS_MACHINE_MACHINE_H
#define DMS_MACHINE_MACHINE_H

/**
 * @file
 * Machine description for the clustered VLIW architecture of paper
 * section 2: a collection of clusters connected by an inter-cluster
 * network, each with a small set of functional units and a private
 * queue register file (LRF), connected clusters communicating
 * through Communication Queue Register Files (CQRFs). The same
 * description also expresses the unclustered reference machine (one
 * cluster, a conventional multi-read register file, no copy units).
 *
 * The paper evaluates a bidirectional ring; the topology here is a
 * *parameter* of the model (ring, torus mesh, or full crossbar), so
 * alternative interconnects are data rather than code. A machine can
 * also be built from a small declarative text format — see
 * machine/desc.h.
 */

#include <array>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "support/types.h"

namespace dms {

/**
 * Register-file organization of a machine. Queue files impose the
 * single-use property (copy pre-pass) and communication constraints;
 * the conventional file does not.
 */
enum class RegFileKind : std::uint8_t {
    Conventional,  ///< central multi-ported RF (unclustered baseline)
    Queues,        ///< LRF/CQRF queue files (the paper's proposal)
};

/** Inter-cluster network shape. */
enum class TopologyKind : std::uint8_t {
    Ring,      ///< bidirectional ring (the paper's configuration)
    Mesh,      ///< 2-D torus mesh, dimension-order routed
    Crossbar,  ///< full crossbar: every pair directly connected
};

/** Lower-case topology mnemonic, e.g. "ring". */
const char *topologyName(TopologyKind kind);

/**
 * One directed inter-cluster link of the network: the boundary a
 * value crosses when a producer in @c src feeds a consumer in
 * @c dst one hop away. Each link carries its own CQRF, so queue
 * register allocation is per-link rather than per-ring-direction.
 */
struct InterClusterLink
{
    ClusterId src = kInvalidCluster;
    ClusterId dst = kInvalidCluster;
};

inline bool
operator==(const InterClusterLink &a, const InterClusterLink &b)
{
    return a.src == b.src && a.dst == b.dst;
}

/** Machine configuration and topology. */
class MachineModel
{
  public:
    /**
     * The paper's clustered configuration: @p clusters clusters in a
     * ring, each with 1 L/S + 1 ADD + 1 MUL plus @p copy_fus copy
     * units (1 in the paper; more models the "additional hardware
     * support" the conclusions suggest).
     */
    static MachineModel clusteredRing(int clusters, int copy_fus = 1);

    /**
     * Unclustered machine of equal width: a single cluster holding
     * @p width_clusters of each useful FU, a conventional register
     * file, no copy units, no communication constraints.
     */
    static MachineModel unclustered(int width_clusters);

    /**
     * Fully general constructor behind the declarative description:
     * any cluster count, register-file kind, per-cluster FU mix and
     * topology. For @c TopologyKind::Mesh, @p mesh_rows x
     * @p mesh_cols must equal @p clusters; the dims are ignored for
     * other topologies. Panics on invalid shapes (the text parser in
     * machine/desc.h validates first and reports line numbers).
     */
    static MachineModel custom(int clusters, RegFileKind rf_kind,
                               const std::array<int, kNumFuClasses>
                                   &fus_per_cluster,
                               TopologyKind topology =
                                   TopologyKind::Ring,
                               int mesh_rows = 0, int mesh_cols = 0);

    /** @name Shape */
    /// @{
    int numClusters() const { return num_clusters_; }
    bool clustered() const { return rf_kind_ == RegFileKind::Queues; }
    RegFileKind regFileKind() const { return rf_kind_; }

    /** FUs of one class inside one cluster. Inline: hit on every
     * reservation-table probe of the scheduler inner loop. */
    int
    fusPerCluster(FuClass cls) const
    {
        return fus_per_cluster_[static_cast<int>(cls)];
    }

    /** Total FUs of one class across the machine. */
    int totalFus(FuClass cls) const;

    /** Total useful FUs (excludes copy units), the paper's x-axis. */
    int usefulFuCount() const;

    /** Optional name from the machine description ("" if unnamed). */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    /// @}

    /** @name Latencies */
    /// @{
    const LatencyModel &latency() const { return lat_; }
    LatencyModel &latency() { return lat_; }
    int latencyOf(Opcode opc) const { return lat_.of(opc); }
    /// @}

    /** @name Topology */
    /// @{

    TopologyKind topology() const { return topo_; }
    int meshRows() const { return mesh_rows_; }
    int meshCols() const { return mesh_cols_; }

    /** Minimal hop count between clusters. */
    int distance(ClusterId a, ClusterId b) const;

    /** Legacy name for distance() from the ring-only model. */
    int ringDistance(ClusterId a, ClusterId b) const
    {
        return distance(a, b);
    }

    /**
     * Directly connected: same cluster or network neighbours. A flow
     * dependence between directly connected clusters needs no move
     * operations (it maps onto the LRF or one CQRF).
     */
    bool directlyConnected(ClusterId a, ClusterId b) const;

    /**
     * Deterministic route alternatives between two clusters (paper
     * figure 3 shows the ring's two options). Every topology offers
     * kNumRoutes candidate routes; some may coincide.
     *
     *  - ring: route 0 walks direction +1, route 1 direction -1;
     *  - mesh: route 0 is column-first, route 1 row-first
     *    dimension-order (torus-shortest per dimension, ties +1);
     *  - crossbar: both routes are the direct hop (no intermediates).
     */
    static constexpr int kNumRoutes = 2;

    /** Hops a route takes from @p a to @p b. */
    int routeLength(ClusterId a, ClusterId b, int route) const;

    /**
     * Clusters strictly between @p a and @p b along @p route — the
     * clusters whose copy units must host the move operations of a
     * chain from a producer in @p a to a consumer in @p b. Written
     * into @p out (cleared first); allocation-free when @p out has
     * capacity.
     */
    void routeBetween(ClusterId a, ClusterId b, int route,
                      std::vector<ClusterId> &out) const;

    /**
     * @name Directed inter-cluster links
     *
     * Every topology enumerates its one-hop links in a fixed,
     * deterministic order: cluster-major, @c linksPerCluster()
     * slots per source cluster. Link ids index the per-link CQRFs
     * of queue register allocation.
     *
     *  - ring: slot 0 walks +1, slot 1 walks -1, so link
     *    2c / 2c+1 is exactly the legacy "CQRF+ / CQRF- of
     *    cluster c" layout (kept even when the two slots coincide
     *    on tiny rings);
     *  - mesh: per source, the distinct torus neighbours in order
     *    column +1, column -1, row +1, row -1 (dimensions of size
     *    1 contribute no link, size 2 a single one);
     *  - crossbar: per source, every other cluster by ascending id.
     */
    /// @{

    /** Directed one-hop links leaving each cluster (uniform). */
    int linksPerCluster() const;

    /** Total directed links; CQRF count of the machine. */
    int numLinks() const
    {
        return num_clusters_ * linksPerCluster();
    }

    /** Endpoints of link @p id. */
    InterClusterLink linkAt(int id) const;

    /**
     * Link id from @p src to @p dst, or -1 when the clusters are
     * not distinct one-hop neighbours. When two slots of @p src
     * reach the same @p dst (2-cluster ring), the first slot wins —
     * matching the legacy "+1 direction first" file choice.
     */
    int linkBetween(ClusterId src, ClusterId dst) const;

    /// @}
    /** @name Ring-specific queries (assert TopologyKind::Ring) */
    /// @{

    /** Hops from @p a to @p b walking in @p dir (+1 or -1). */
    int hopsAlong(ClusterId a, ClusterId b, int dir) const;

    /** Next cluster from @p c walking in @p dir (+1 or -1). */
    ClusterId neighbor(ClusterId c, int dir) const;

    /**
     * Ring form of routeBetween: clusters strictly between @p a and
     * @p b walking in @p dir (+1 or -1), written into @p out.
     */
    void pathBetween(ClusterId a, ClusterId b, int dir,
                     std::vector<ClusterId> &out) const;

    /** Allocating convenience overload of the above. */
    std::vector<ClusterId> pathBetween(ClusterId a, ClusterId b,
                                       int dir) const;
    /// @}

    /** Human-readable description, e.g. "4-cluster ring (12 FUs)". */
    std::string describe() const;

  private:
    MachineModel() = default;

    int num_clusters_ = 1;
    RegFileKind rf_kind_ = RegFileKind::Conventional;
    TopologyKind topo_ = TopologyKind::Ring;
    int mesh_rows_ = 1;
    int mesh_cols_ = 1;
    std::array<int, kNumFuClasses> fus_per_cluster_ = {1, 1, 1, 0};
    LatencyModel lat_;
    std::string name_;
};

/**
 * Structural equality (shape, topology, latencies and name) — what
 * the description round-trip tests compare.
 */
bool operator==(const MachineModel &a, const MachineModel &b);
inline bool
operator!=(const MachineModel &a, const MachineModel &b)
{
    return !(a == b);
}

} // namespace dms

#endif // DMS_MACHINE_MACHINE_H
