/**
 * @file
 * Topology queries of the machine model. The paper's machine is a
 * bidirectional ring; mesh (2-D torus, dimension-order routed) and
 * full-crossbar variants are expressed by the same API so that the
 * interconnect is configuration data, not scheduler code. Every
 * topology answers distance / direct-connectivity queries plus
 * kNumRoutes deterministic route alternatives (what DMS strategy 2
 * chooses between).
 */

#include <algorithm>

#include "machine/machine.h"
#include "support/diag.h"

namespace dms {

namespace {

/** Torus hop count along one dimension of size n. */
int
torusDelta(int a, int b, int n)
{
    int d = std::abs(a - b);
    return std::min(d, n - d);
}

/**
 * Step direction (+1/-1) that shortens |from -> to| on a torus
 * dimension of size n, ties toward +1.
 */
int
torusStep(int from, int to, int n)
{
    int fwd = ((to - from) % n + n) % n;
    int bwd = ((from - to) % n + n) % n;
    return fwd <= bwd ? +1 : -1;
}

/**
 * Distinct one-hop neighbours along a torus dimension of size n:
 * none for n=1, one for n=2 (+1 and -1 coincide), two otherwise.
 */
int
torusNeighbours(int n)
{
    return n >= 3 ? 2 : n - 1;
}

} // namespace

int
MachineModel::distance(ClusterId a, ClusterId b) const
{
    DMS_ASSERT(a >= 0 && a < num_clusters_, "bad cluster %d", a);
    DMS_ASSERT(b >= 0 && b < num_clusters_, "bad cluster %d", b);
    switch (topo_) {
      case TopologyKind::Ring:
        return torusDelta(a, b, num_clusters_);
      case TopologyKind::Mesh: {
        int ra = a / mesh_cols_, ca = a % mesh_cols_;
        int rb = b / mesh_cols_, cb = b % mesh_cols_;
        return torusDelta(ra, rb, mesh_rows_) +
               torusDelta(ca, cb, mesh_cols_);
      }
      case TopologyKind::Crossbar:
        return a == b ? 0 : 1;
    }
    panic("bad topology kind %d", static_cast<int>(topo_));
}

bool
MachineModel::directlyConnected(ClusterId a, ClusterId b) const
{
    return distance(a, b) <= 1;
}

int
MachineModel::hopsAlong(ClusterId a, ClusterId b, int dir) const
{
    DMS_ASSERT(topo_ == TopologyKind::Ring,
               "hopsAlong is a ring query (topology is %s)",
               topologyName(topo_));
    DMS_ASSERT(dir == 1 || dir == -1, "bad direction %d", dir);
    DMS_ASSERT(a >= 0 && a < num_clusters_, "bad cluster %d", a);
    DMS_ASSERT(b >= 0 && b < num_clusters_, "bad cluster %d", b);
    int delta = dir > 0 ? b - a : a - b;
    return ((delta % num_clusters_) + num_clusters_) % num_clusters_;
}

ClusterId
MachineModel::neighbor(ClusterId c, int dir) const
{
    DMS_ASSERT(topo_ == TopologyKind::Ring,
               "neighbor is a ring query (topology is %s)",
               topologyName(topo_));
    DMS_ASSERT(dir == 1 || dir == -1, "bad direction %d", dir);
    int n = (c + dir + num_clusters_) % num_clusters_;
    return static_cast<ClusterId>(n);
}

void
MachineModel::pathBetween(ClusterId a, ClusterId b, int dir,
                          std::vector<ClusterId> &out) const
{
    out.clear();
    int hops = hopsAlong(a, b, dir);
    ClusterId c = a;
    for (int i = 1; i < hops; ++i) {
        c = neighbor(c, dir);
        out.push_back(c);
    }
}

std::vector<ClusterId>
MachineModel::pathBetween(ClusterId a, ClusterId b, int dir) const
{
    std::vector<ClusterId> mid;
    pathBetween(a, b, dir, mid);
    return mid;
}

int
MachineModel::linksPerCluster() const
{
    switch (topo_) {
      case TopologyKind::Ring:
        // Always two slots (+1 and -1), even on rings small enough
        // for them to coincide: the 2c/2c+1 CQRF layout of the ring
        // machine is part of the allocation's stable output.
        return 2;
      case TopologyKind::Mesh:
        return torusNeighbours(mesh_rows_) +
               torusNeighbours(mesh_cols_);
      case TopologyKind::Crossbar:
        return num_clusters_ - 1;
    }
    panic("bad topology kind %d", static_cast<int>(topo_));
}

InterClusterLink
MachineModel::linkAt(int id) const
{
    DMS_ASSERT(id >= 0 && id < numLinks(), "bad link %d", id);
    const int per = linksPerCluster();
    const ClusterId src = static_cast<ClusterId>(id / per);
    int slot = id % per;
    switch (topo_) {
      case TopologyKind::Ring:
        return {src, neighbor(src, slot == 0 ? +1 : -1)};
      case TopologyKind::Mesh: {
        const int r = src / mesh_cols_, c = src % mesh_cols_;
        const int col_slots = torusNeighbours(mesh_cols_);
        if (slot < col_slots) {
            int step = slot == 0 ? +1 : -1;
            int nc = ((c + step) % mesh_cols_ + mesh_cols_) %
                     mesh_cols_;
            return {src,
                    static_cast<ClusterId>(r * mesh_cols_ + nc)};
        }
        slot -= col_slots;
        int step = slot == 0 ? +1 : -1;
        int nr =
            ((r + step) % mesh_rows_ + mesh_rows_) % mesh_rows_;
        return {src, static_cast<ClusterId>(nr * mesh_cols_ + c)};
      }
      case TopologyKind::Crossbar:
        return {src,
                static_cast<ClusterId>(slot < src ? slot : slot + 1)};
    }
    panic("bad topology kind %d", static_cast<int>(topo_));
}

int
MachineModel::linkBetween(ClusterId src, ClusterId dst) const
{
    DMS_ASSERT(src >= 0 && src < num_clusters_, "bad cluster %d",
               src);
    DMS_ASSERT(dst >= 0 && dst < num_clusters_, "bad cluster %d",
               dst);
    if (src == dst)
        return -1;
    const int per = linksPerCluster();
    for (int slot = 0; slot < per; ++slot) {
        int id = src * per + slot;
        if (linkAt(id).dst == dst)
            return id;
    }
    return -1;
}

int
MachineModel::routeLength(ClusterId a, ClusterId b, int route) const
{
    DMS_ASSERT(route >= 0 && route < kNumRoutes, "bad route %d",
               route);
    switch (topo_) {
      case TopologyKind::Ring:
        return hopsAlong(a, b, route == 0 ? +1 : -1);
      case TopologyKind::Mesh:
        // Dimension-order routes are torus-shortest per dimension,
        // so both alternatives have minimal total length.
        return distance(a, b);
      case TopologyKind::Crossbar:
        return distance(a, b);
    }
    panic("bad topology kind %d", static_cast<int>(topo_));
}

void
MachineModel::routeBetween(ClusterId a, ClusterId b, int route,
                           std::vector<ClusterId> &out) const
{
    DMS_ASSERT(route >= 0 && route < kNumRoutes, "bad route %d",
               route);
    switch (topo_) {
      case TopologyKind::Ring:
        pathBetween(a, b, route == 0 ? +1 : -1, out);
        return;
      case TopologyKind::Mesh: {
        out.clear();
        DMS_ASSERT(a >= 0 && a < num_clusters_, "bad cluster %d", a);
        DMS_ASSERT(b >= 0 && b < num_clusters_, "bad cluster %d", b);
        int r = a / mesh_cols_, c = a % mesh_cols_;
        const int rb = b / mesh_cols_, cb = b % mesh_cols_;
        // Route 0 resolves columns first, route 1 rows first; each
        // dimension walks its torus-shortest direction (ties +1).
        for (int phase = 0; phase < 2; ++phase) {
            bool cols_now = (route == 0) == (phase == 0);
            if (cols_now) {
                int step = torusStep(c, cb, mesh_cols_);
                while (c != cb) {
                    c = ((c + step) % mesh_cols_ + mesh_cols_) %
                        mesh_cols_;
                    if (r != rb || c != cb)
                        out.push_back(r * mesh_cols_ + c);
                }
            } else {
                int step = torusStep(r, rb, mesh_rows_);
                while (r != rb) {
                    r = ((r + step) % mesh_rows_ + mesh_rows_) %
                        mesh_rows_;
                    if (r != rb || c != cb)
                        out.push_back(r * mesh_cols_ + c);
                }
            }
        }
        return;
      }
      case TopologyKind::Crossbar:
        // Everything is directly connected; no intermediate hops.
        out.clear();
        return;
    }
    panic("bad topology kind %d", static_cast<int>(topo_));
}

} // namespace dms
