#include "machine/machine.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

int
MachineModel::ringDistance(ClusterId a, ClusterId b) const
{
    DMS_ASSERT(a >= 0 && a < num_clusters_, "bad cluster %d", a);
    DMS_ASSERT(b >= 0 && b < num_clusters_, "bad cluster %d", b);
    int d = std::abs(a - b);
    return std::min(d, num_clusters_ - d);
}

bool
MachineModel::directlyConnected(ClusterId a, ClusterId b) const
{
    return ringDistance(a, b) <= 1;
}

int
MachineModel::hopsAlong(ClusterId a, ClusterId b, int dir) const
{
    DMS_ASSERT(dir == 1 || dir == -1, "bad direction %d", dir);
    DMS_ASSERT(a >= 0 && a < num_clusters_, "bad cluster %d", a);
    DMS_ASSERT(b >= 0 && b < num_clusters_, "bad cluster %d", b);
    int delta = dir > 0 ? b - a : a - b;
    return ((delta % num_clusters_) + num_clusters_) % num_clusters_;
}

ClusterId
MachineModel::neighbor(ClusterId c, int dir) const
{
    DMS_ASSERT(dir == 1 || dir == -1, "bad direction %d", dir);
    int n = (c + dir + num_clusters_) % num_clusters_;
    return static_cast<ClusterId>(n);
}

std::vector<ClusterId>
MachineModel::pathBetween(ClusterId a, ClusterId b, int dir) const
{
    std::vector<ClusterId> mid;
    int hops = hopsAlong(a, b, dir);
    ClusterId c = a;
    for (int i = 1; i < hops; ++i) {
        c = neighbor(c, dir);
        mid.push_back(c);
    }
    return mid;
}

} // namespace dms
