#include "machine/machine.h"

#include "support/diag.h"

namespace dms {

const char *
topologyName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Ring: return "ring";
      case TopologyKind::Mesh: return "mesh";
      case TopologyKind::Crossbar: return "crossbar";
      default: break;
    }
    panic("bad topology kind %d", static_cast<int>(kind));
}

MachineModel
MachineModel::clusteredRing(int clusters, int copy_fus)
{
    DMS_ASSERT(clusters >= 1, "need at least one cluster");
    DMS_ASSERT(copy_fus >= 1, "clustered machine needs copy units");
    return custom(clusters, RegFileKind::Queues,
                  {1, 1, 1, copy_fus});
}

MachineModel
MachineModel::unclustered(int width_clusters)
{
    DMS_ASSERT(width_clusters >= 1, "need positive width");
    return custom(1, RegFileKind::Conventional,
                  {width_clusters, width_clusters, width_clusters, 0});
}

MachineModel
MachineModel::custom(int clusters, RegFileKind rf_kind,
                     const std::array<int, kNumFuClasses>
                         &fus_per_cluster,
                     TopologyKind topology, int mesh_rows,
                     int mesh_cols)
{
    DMS_ASSERT(clusters >= 1, "need at least one cluster");
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        // The reservation table tracks free instances in one 64-bit
        // mask per (cluster, class, row).
        DMS_ASSERT(fus_per_cluster[static_cast<size_t>(cls)] >= 0 &&
                       fus_per_cluster[static_cast<size_t>(cls)] <= 64,
                   "FU count %d out of range for class %s",
                   fus_per_cluster[static_cast<size_t>(cls)],
                   fuClassName(static_cast<FuClass>(cls)));
    }
    DMS_ASSERT(rf_kind != RegFileKind::Queues || clusters == 1 ||
                   fus_per_cluster[static_cast<size_t>(
                       FuClass::Copy)] >= 1,
               "a multi-cluster queue-file machine needs copy units");

    MachineModel m;
    m.num_clusters_ = clusters;
    m.rf_kind_ = rf_kind;
    m.fus_per_cluster_ = fus_per_cluster;
    m.topo_ = topology;
    if (topology == TopologyKind::Mesh) {
        DMS_ASSERT(mesh_rows >= 1 && mesh_cols >= 1 &&
                       static_cast<long long>(mesh_rows) *
                               mesh_cols == clusters,
                   "mesh %dx%d does not cover %d clusters",
                   mesh_rows, mesh_cols, clusters);
        m.mesh_rows_ = mesh_rows;
        m.mesh_cols_ = mesh_cols;
    } else {
        m.mesh_rows_ = 1;
        m.mesh_cols_ = clusters;
    }
    return m;
}

int
MachineModel::totalFus(FuClass cls) const
{
    return fusPerCluster(cls) * num_clusters_;
}

int
MachineModel::usefulFuCount() const
{
    return totalFus(FuClass::LdSt) + totalFus(FuClass::Add) +
           totalFus(FuClass::Mul);
}

std::string
MachineModel::describe() const
{
    if (clustered()) {
        if (topo_ == TopologyKind::Mesh) {
            return strfmt("%d-cluster %dx%d mesh (%d useful FUs, "
                          "%d copy/cl)",
                          num_clusters_, mesh_rows_, mesh_cols_,
                          usefulFuCount(),
                          fusPerCluster(FuClass::Copy));
        }
        return strfmt("%d-cluster %s (%d useful FUs, %d copy/cl)",
                      num_clusters_, topologyName(topo_),
                      usefulFuCount(),
                      fusPerCluster(FuClass::Copy));
    }
    return strfmt("unclustered (%d useful FUs)", usefulFuCount());
}

bool
operator==(const MachineModel &a, const MachineModel &b)
{
    if (a.numClusters() != b.numClusters() ||
        a.regFileKind() != b.regFileKind() ||
        a.topology() != b.topology() || a.name() != b.name()) {
        return false;
    }
    if (a.topology() == TopologyKind::Mesh &&
        (a.meshRows() != b.meshRows() ||
         a.meshCols() != b.meshCols())) {
        return false;
    }
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        if (a.fusPerCluster(static_cast<FuClass>(cls)) !=
            b.fusPerCluster(static_cast<FuClass>(cls))) {
            return false;
        }
    }
    for (int opc = 0; opc < kNumOpcodes; ++opc) {
        if (a.latencyOf(static_cast<Opcode>(opc)) !=
            b.latencyOf(static_cast<Opcode>(opc))) {
            return false;
        }
    }
    return true;
}

} // namespace dms
