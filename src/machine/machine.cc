#include "machine/machine.h"

#include "support/diag.h"

namespace dms {

MachineModel
MachineModel::clusteredRing(int clusters, int copy_fus)
{
    DMS_ASSERT(clusters >= 1, "need at least one cluster");
    DMS_ASSERT(copy_fus >= 1, "clustered machine needs copy units");
    MachineModel m;
    m.num_clusters_ = clusters;
    m.rf_kind_ = RegFileKind::Queues;
    m.fus_per_cluster_[static_cast<int>(FuClass::LdSt)] = 1;
    m.fus_per_cluster_[static_cast<int>(FuClass::Add)] = 1;
    m.fus_per_cluster_[static_cast<int>(FuClass::Mul)] = 1;
    m.fus_per_cluster_[static_cast<int>(FuClass::Copy)] = copy_fus;
    return m;
}

MachineModel
MachineModel::unclustered(int width_clusters)
{
    DMS_ASSERT(width_clusters >= 1, "need positive width");
    MachineModel m;
    m.num_clusters_ = 1;
    m.rf_kind_ = RegFileKind::Conventional;
    m.fus_per_cluster_[static_cast<int>(FuClass::LdSt)] =
        width_clusters;
    m.fus_per_cluster_[static_cast<int>(FuClass::Add)] =
        width_clusters;
    m.fus_per_cluster_[static_cast<int>(FuClass::Mul)] =
        width_clusters;
    m.fus_per_cluster_[static_cast<int>(FuClass::Copy)] = 0;
    return m;
}

int
MachineModel::fusPerCluster(FuClass cls) const
{
    return fus_per_cluster_[static_cast<int>(cls)];
}

int
MachineModel::totalFus(FuClass cls) const
{
    return fusPerCluster(cls) * num_clusters_;
}

int
MachineModel::usefulFuCount() const
{
    return totalFus(FuClass::LdSt) + totalFus(FuClass::Add) +
           totalFus(FuClass::Mul);
}

std::string
MachineModel::describe() const
{
    if (clustered()) {
        return strfmt("%d-cluster ring (%d useful FUs, %d copy/cl)",
                      num_clusters_, usefulFuCount(),
                      fusPerCluster(FuClass::Copy));
    }
    return strfmt("unclustered (%d useful FUs)", usefulFuCount());
}

} // namespace dms
