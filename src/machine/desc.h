#ifndef DMS_MACHINE_DESC_H
#define DMS_MACHINE_DESC_H

/**
 * @file
 * Declarative machine descriptions: a small line-oriented text
 * format from which a MachineModel is built, so experiment configs
 * (eval/runner sweeps, dmsc --machine, tests) are data instead of
 * compiled-in factory calls. Format, one "key value..." per line:
 *
 *   # the paper's 4-cluster ring
 *   machine ring4                 # optional name
 *   clusters 4
 *   topology ring                 # ring | crossbar | mesh RxC
 *   regfile queues                # queues | conventional
 *   fus ldst=1 add=1 mul=1 copy=1
 *   latency mul=2 div=8           # optional opcode overrides
 *
 * Defaults when a key is absent: 1 cluster, ring topology, a
 * conventional register file, fus ldst=1 add=1 mul=1 copy=0 and the
 * default latency table. Every key except `latency` may appear at
 * most once. Sweep templates may use the placeholder `$C`
 * (expandMachineTemplate substitutes the cluster count), which is
 * how eval/runner derives one machine per configuration from a
 * single description.
 */

#include <string>
#include <string_view>

#include "machine/machine.h"

namespace dms {

/**
 * Parse the textual format into @p out. Returns false and fills
 * @p error (prefixed "line N: ") on malformed input; @p out is
 * unspecified then.
 */
bool machineFromText(const std::string &text, MachineModel &out,
                     std::string &error);

/** Parsing front-end that fatal()s on malformed input. */
MachineModel machineFromTextOrDie(const std::string &text);

/**
 * Serialize a machine into the canonical description: every shape
 * key explicit, plus `latency` lines for opcodes that differ from
 * the default table. machineFromText() round-trips it.
 */
std::string machineToText(const MachineModel &machine);

/** Replace every `$C` in @p tmpl with the decimal @p clusters. */
std::string expandMachineTemplate(std::string_view tmpl,
                                  int clusters);

} // namespace dms

#endif // DMS_MACHINE_DESC_H
