#ifndef DMS_IR_VERIFY_H
#define DMS_IR_VERIFY_H

/**
 * @file
 * Structural DDG verification. Run after construction and after
 * every transform; a valid DDG is a precondition of the schedulers.
 */

#include <string>
#include <vector>

#include "ir/ddg.h"

namespace dms {

/** Options controlling which DDG invariants are enforced. */
struct DdgVerifyOptions
{
    /**
     * Enforce flow fan-out <= limit (the queue-file single-use
     * property after the copy pre-pass). <= 0 disables the check.
     */
    int maxFlowFanout = 0;
};

/**
 * Check structural invariants:
 *  - adjacency lists and edge endpoints are consistent and live;
 *  - no operand slot of an op is fed by two active flow edges, and
 *    slots are within the opcode's arity;
 *  - every dependence cycle has positive total distance (a zero-
 *    distance cycle cannot be executed by any schedule);
 *  - replaced edges are flow edges between live ops;
 *  - optional fan-out bound (see options).
 *
 * @return list of human-readable problems; empty means valid.
 */
std::vector<std::string> verifyDdg(const Ddg &ddg,
                                   const DdgVerifyOptions &opts = {});

/** Convenience: panic with the first problem if the DDG is invalid. */
void checkDdg(const Ddg &ddg, const DdgVerifyOptions &opts = {});

/**
 * Topological order of live ops over zero-distance active edges.
 * Panics if a zero-distance cycle exists (verifyDdg reports it
 * first in normal flows).
 */
std::vector<OpId> topoOrderZeroDistance(const Ddg &ddg);

} // namespace dms

#endif // DMS_IR_VERIFY_H
