#include "ir/prepass.h"

#include <algorithm>

#include "ir/scc.h"
#include "support/diag.h"

namespace dms {

PrepassStats
singleUsePrepass(Ddg &ddg, int copy_latency, int max_fanout)
{
    DMS_ASSERT(max_fanout >= 2, "max fan-out must be >= 2");
    PrepassStats stats;

    // SCC membership: consumers on the producer's recurrence cycle
    // must stay directly attached, or the copy latency would
    // lengthen the cycle and raise RecMII for every machine.
    std::vector<int> scc_of(static_cast<size_t>(ddg.numOps()), -1);
    {
        auto sccs = stronglyConnectedComponents(ddg);
        for (size_t s = 0; s < sccs.size(); ++s) {
            if (sccs[s].size() < 2)
                continue;
            for (OpId id : sccs[s])
                scc_of[static_cast<size_t>(id)] =
                    static_cast<int>(s);
        }
    }
    auto on_producer_cycle = [&](OpId producer, OpId consumer) {
        if (producer == consumer)
            return true; // self-loop recurrence
        int s = scc_of[static_cast<size_t>(producer)];
        return s >= 0 &&
               s == scc_of[static_cast<size_t>(consumer)];
    };

    // Snapshot: ops added during the rewrite (the copies) already
    // satisfy the bound and must not be revisited.
    const int orig_ops = ddg.numOps();

    for (OpId id = 0; id < orig_ops; ++id) {
        if (!ddg.opLive(id))
            continue;

        // Collect live flow uses of this value.
        std::vector<EdgeId> uses;
        for (EdgeId e : ddg.op(id).outs) {
            if (ddg.edgeLive(e) && ddg.edge(e).kind == DepKind::Flow)
                uses.push_back(e);
        }
        int k = static_cast<int>(uses.size());
        if (k <= max_fanout)
            continue;

        ++stats.opsRewritten;

        // Recurrence consumers first (cycle length is sacred), then
        // tightest distance; ties broken by edge id for
        // determinism.
        std::sort(uses.begin(), uses.end(),
                  [&](EdgeId a, EdgeId b) {
                      bool ca = on_producer_cycle(id,
                                                  ddg.edge(a).dst);
                      bool cb = on_producer_cycle(id,
                                                  ddg.edge(b).dst);
                      if (ca != cb)
                          return ca;
                      int da = ddg.edge(a).distance;
                      int db = ddg.edge(b).distance;
                      return da != db ? da < db : a < b;
                  });

        // Build: u -> {use0, .., use(m-2), cp}; cp inherits the
        // remaining uses, recursively satisfying the bound. The
        // producer keeps max_fanout - 1 real uses plus the copy.
        OpId cur = id;
        size_t next_use = 0;
        size_t remaining = uses.size();
        while (remaining > static_cast<size_t>(max_fanout)) {
            // Keep (max_fanout - 1) uses on cur, spill the rest.
            size_t keep = static_cast<size_t>(max_fanout) - 1;
            for (size_t i = 0; i < keep; ++i) {
                EdgeId e = uses[next_use + i];
                if (cur != id) {
                    // Re-target the use to read from the copy.
                    const Edge ed = ddg.edge(e);
                    ddg.removeEdge(e);
                    ddg.addEdge(cur, ed.dst, DepKind::Flow,
                                ed.distance, copy_latency,
                                ed.operandIndex);
                }
            }
            next_use += keep;
            remaining -= keep;

            OpId cp = ddg.addOp(Opcode::Copy, OpOrigin::CopyOp);
            ddg.op(cp).origId = ddg.op(id).origId;
            ddg.op(cp).iterOffset = ddg.op(id).iterOffset;
            int lat = cur == id ? ddg.edge(uses[0]).latency
                                : copy_latency;
            ddg.addEdge(cur, cp, DepKind::Flow, 0, lat, 0);
            ++stats.copiesInserted;
            cur = cp;
        }
        // Attach the final <= max_fanout uses to the last copy.
        for (size_t i = next_use; i < uses.size(); ++i) {
            EdgeId e = uses[i];
            const Edge ed = ddg.edge(e);
            ddg.removeEdge(e);
            ddg.addEdge(cur, ed.dst, DepKind::Flow, ed.distance,
                        copy_latency, ed.operandIndex);
        }
    }

    return stats;
}

} // namespace dms
