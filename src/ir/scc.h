#ifndef DMS_IR_SCC_H
#define DMS_IR_SCC_H

/**
 * @file
 * Strongly-connected components of a DDG (Tarjan). Recurrences —
 * the loops of the dependence graph — live inside non-trivial SCCs;
 * RecMII is computed per SCC and set 2 of the paper's evaluation is
 * exactly the loops whose DDGs have no non-trivial SCC.
 */

#include <functional>
#include <vector>

#include "ir/ddg.h"

namespace dms {

/** One strongly-connected component: the member op ids. */
using Scc = std::vector<OpId>;

/**
 * Visit every SCC in Tarjan emission order without materializing a
 * vector per component: @p fn receives the members sorted
 * ascending, valid only for the duration of the call. This is the
 * allocation-light form recMii (called once per scheduling run,
 * i.e. on the fig5 hot path) iterates.
 */
void forEachScc(const Ddg &ddg,
                const std::function<void(const OpId *, size_t)> &fn);

/**
 * All SCCs over live ops and active edges (every dependence kind
 * participates; any kind of cycle constrains the II).
 */
std::vector<Scc> stronglyConnectedComponents(const Ddg &ddg);

/** True if the DDG contains a dependence cycle (a recurrence). */
bool hasRecurrence(const Ddg &ddg);

} // namespace dms

#endif // DMS_IR_SCC_H
