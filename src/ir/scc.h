#ifndef DMS_IR_SCC_H
#define DMS_IR_SCC_H

/**
 * @file
 * Strongly-connected components of a DDG (Tarjan). Recurrences —
 * the loops of the dependence graph — live inside non-trivial SCCs;
 * RecMII is computed per SCC and set 2 of the paper's evaluation is
 * exactly the loops whose DDGs have no non-trivial SCC.
 */

#include <vector>

#include "ir/ddg.h"

namespace dms {

/** One strongly-connected component: the member op ids. */
using Scc = std::vector<OpId>;

/**
 * All SCCs over live ops and active edges (every dependence kind
 * participates; any kind of cycle constrains the II).
 */
std::vector<Scc> stronglyConnectedComponents(const Ddg &ddg);

/** True if the DDG contains a dependence cycle (a recurrence). */
bool hasRecurrence(const Ddg &ddg);

} // namespace dms

#endif // DMS_IR_SCC_H
