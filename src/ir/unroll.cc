#include "ir/unroll.h"

#include "support/diag.h"

namespace dms {

Ddg
unrollDdg(const Ddg &ddg, int factor)
{
    DMS_ASSERT(factor >= 1, "bad unroll factor %d", factor);
    DMS_ASSERT(ddg.unrollFactor() == 1, "re-unrolling a body");

    Ddg out;
    out.setUnrollFactor(factor);

    // new id of (original op, copy j); -1 for dead originals.
    std::vector<std::vector<OpId>> ids(
        static_cast<size_t>(ddg.numOps()),
        std::vector<OpId>(static_cast<size_t>(factor), kInvalidOp));

    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        const Operation &o = ddg.op(id);
        DMS_ASSERT(o.origin == OpOrigin::Original,
                   "unrolling a transformed body (op %d)", id);
        for (int j = 0; j < factor; ++j) {
            OpId nid = out.addOp(o.opc, o.origin);
            Operation &n = out.op(nid);
            n.origId = o.origId;
            n.iterOffset = j;
            n.memStream = o.memStream;
            n.memOffset = o.memOffset;
            n.literal = o.literal;
            ids[static_cast<size_t>(id)][static_cast<size_t>(j)] = nid;
        }
    }

    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeLive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        DMS_ASSERT(!ed.replaced, "unrolling a body with chains");
        for (int j = 0; j < factor; ++j) {
            // Consumer copy j consumes from producer copy j', where
            // j' = (j - d) mod f, carried (d - j + j') / f new
            // iterations back.
            int jp = ((j - ed.distance) % factor + factor) % factor;
            int ndist = (ed.distance - j + jp) / factor;
            DMS_ASSERT(ndist >= 0, "negative unrolled distance");
            OpId src =
                ids[static_cast<size_t>(ed.src)][static_cast<size_t>(jp)];
            OpId dst =
                ids[static_cast<size_t>(ed.dst)][static_cast<size_t>(j)];
            out.addEdge(src, dst, ed.kind, ndist, ed.latency,
                        ed.operandIndex);
        }
    }

    return out;
}

} // namespace dms
