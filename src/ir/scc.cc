#include "ir/scc.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

namespace {

/** Iterative Tarjan SCC (explicit stack; DDGs can be deep). */
struct TarjanState
{
    const Ddg &ddg;
    const std::function<void(const OpId *, size_t)> &emit;
    std::vector<int> index;
    std::vector<int> lowlink;
    std::vector<bool> on_stack;
    std::vector<OpId> stack;
    int next_index = 0;

    TarjanState(const Ddg &g,
                const std::function<void(const OpId *, size_t)> &fn)
        : ddg(g), emit(fn),
          index(static_cast<size_t>(g.numOps()), -1),
          lowlink(static_cast<size_t>(g.numOps()), -1),
          on_stack(static_cast<size_t>(g.numOps()), false)
    {}

    void
    run(OpId root)
    {
        struct Frame { OpId v; size_t edge_pos; };
        std::vector<Frame> frames;
        frames.push_back({root, 0});
        index[static_cast<size_t>(root)] = next_index;
        lowlink[static_cast<size_t>(root)] = next_index;
        ++next_index;
        stack.push_back(root);
        on_stack[static_cast<size_t>(root)] = true;

        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &outs = ddg.op(f.v).outs;
            bool descended = false;
            while (f.edge_pos < outs.size()) {
                EdgeId e = outs[f.edge_pos];
                ++f.edge_pos;
                if (!ddg.edgeActive(e))
                    continue;
                OpId w = ddg.edge(e).dst;
                size_t wi = static_cast<size_t>(w);
                if (index[wi] < 0) {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    ++next_index;
                    stack.push_back(w);
                    on_stack[wi] = true;
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                } else if (on_stack[wi]) {
                    size_t vi = static_cast<size_t>(f.v);
                    lowlink[vi] = std::min(lowlink[vi], index[wi]);
                }
            }
            if (descended)
                continue;

            // Finished v: pop frame, close SCC if root.
            OpId v = f.v;
            size_t vi = static_cast<size_t>(v);
            frames.pop_back();
            if (!frames.empty()) {
                size_t pi = static_cast<size_t>(frames.back().v);
                lowlink[pi] = std::min(lowlink[pi], lowlink[vi]);
            }
            if (lowlink[vi] == index[vi]) {
                // Emit the SCC in place from the Tarjan stack: sort
                // its segment, hand it to the visitor, then pop.
                size_t base = stack.size();
                while (true) {
                    --base;
                    on_stack[static_cast<size_t>(stack[base])] =
                        false;
                    if (stack[base] == v)
                        break;
                }
                std::sort(stack.begin() +
                              static_cast<std::ptrdiff_t>(base),
                          stack.end());
                emit(stack.data() + base, stack.size() - base);
                stack.resize(base);
            }
        }
    }
};

} // namespace

void
forEachScc(const Ddg &ddg,
           const std::function<void(const OpId *, size_t)> &fn)
{
    TarjanState st(ddg, fn);
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (ddg.opLive(id) &&
            st.index[static_cast<size_t>(id)] < 0) {
            st.run(id);
        }
    }
}

std::vector<Scc>
stronglyConnectedComponents(const Ddg &ddg)
{
    std::vector<Scc> sccs;
    forEachScc(ddg, [&](const OpId *ops, size_t n) {
        sccs.emplace_back(ops, ops + n);
    });
    return sccs;
}

bool
hasRecurrence(const Ddg &ddg)
{
    // A non-trivial SCC or a self-loop means a dependence cycle.
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (ddg.edgeActive(e) && ddg.edge(e).src == ddg.edge(e).dst)
            return true;
    }
    for (const Scc &scc : stronglyConnectedComponents(ddg)) {
        if (scc.size() > 1)
            return true;
    }
    return false;
}

} // namespace dms
