#ifndef DMS_IR_UNROLL_H
#define DMS_IR_UNROLL_H

/**
 * @file
 * DDG-level loop unrolling. The paper unrolls loop bodies "to
 * provide additional operations to the scheduler whenever
 * necessary" [9] before modulo scheduling; we do the same at the
 * dependence-graph level.
 */

#include "ir/ddg.h"

namespace dms {

/**
 * Unroll a loop body @p factor times.
 *
 * Each original operation u becomes copies u#0..u#(f-1), where copy
 * j handles original iteration I*f + j of new iteration I. An edge
 * (u -> v, distance d) becomes, for each consumer copy j, an edge
 * from producer copy (j - d) mod f with new distance
 * (d - j + (j - d) mod f) / f. Copies keep the original op's
 * @c origId and record @c iterOffset = j so the simulator can map
 * executed iterations back to original iterations.
 *
 * @pre factor >= 1 and the input body is not itself unrolled.
 * @return a fresh DDG with unrollFactor() == factor.
 */
Ddg unrollDdg(const Ddg &ddg, int factor);

} // namespace dms

#endif // DMS_IR_UNROLL_H
