#include "ir/dot.h"

#include "support/diag.h"

namespace dms {

std::string
ddgToDot(const Ddg &ddg, const std::string &name)
{
    std::string out = "digraph " + name + " {\n";
    out += "  node [shape=box, fontname=monospace];\n";
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        const Operation &o = ddg.op(id);
        const char *color =
            o.origin == OpOrigin::MoveOp ? "lightblue" :
            o.origin == OpOrigin::CopyOp ? "lightyellow" : "white";
        out += strfmt("  n%d [label=\"%s\", style=filled, "
                      "fillcolor=%s];\n",
                      id, ddg.opLabel(id).c_str(), color);
    }
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeLive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        std::string attrs;
        switch (ed.kind) {
          case DepKind::Flow:
            attrs = ed.replaced ? "style=dotted, color=gray"
                                : "color=black";
            break;
          case DepKind::Anti:
            attrs = "color=red, style=dashed";
            break;
          case DepKind::Output:
            attrs = "color=purple, style=dashed";
            break;
          case DepKind::Memory:
            attrs = "color=brown, style=dashed";
            break;
        }
        std::string label;
        if (ed.distance > 0)
            label = strfmt("d=%d", ed.distance);
        out += strfmt("  n%d -> n%d [%s%s%s];\n", ed.src, ed.dst,
                      attrs.c_str(),
                      label.empty() ? "" : ", label=\"",
                      label.empty() ? "" : (label + "\"").c_str());
    }
    out += "}\n";
    return out;
}

} // namespace dms
