#ifndef DMS_IR_DOT_H
#define DMS_IR_DOT_H

/**
 * @file
 * Graphviz DOT export of a DDG, for debugging and documentation.
 */

#include <string>

#include "ir/ddg.h"

namespace dms {

/** Render the DDG as a DOT digraph named @p name. */
std::string ddgToDot(const Ddg &ddg, const std::string &name = "ddg");

} // namespace dms

#endif // DMS_IR_DOT_H
