#ifndef DMS_IR_PREPASS_H
#define DMS_IR_PREPASS_H

/**
 * @file
 * Single-use lifetime pre-pass (paper section 3, last paragraph).
 *
 * The CQRF/LRF queue files allow a value to be read only once from
 * any of their FIFO queues, so prior to modulo scheduling "all
 * multiple-use lifetimes are transformed into single-use lifetimes
 * using copy operations". The transformation also limits the number
 * of immediate flow successors of any operation to two (one LRF
 * destination plus one CQRF destination), which is what keeps
 * partitioning among limited-connectivity clusters tractable.
 */

#include "ir/ddg.h"

namespace dms {

/** Statistics reported by the pre-pass. */
struct PrepassStats
{
    int copiesInserted = 0;
    int opsRewritten = 0;
};

/**
 * Rewrite every operation with flow fan-out > @p max_fanout into a
 * chain of Copy operations so that no operation has more than
 * @p max_fanout flow successors.
 *
 * Consumers are attached in ascending iteration-distance order:
 * loop-carried uses have II*distance cycles of natural slack, so
 * they tolerate the extra copy latency deeper in the chain, while
 * the tightest (distance-0) use stays attached to the producer.
 * All producer->copy edges carry distance 0; each consumer keeps its
 * original distance and operand slot on the final hop.
 *
 * @param copy_latency latency of the inserted Copy operations.
 * @return statistics about the rewrite.
 */
PrepassStats singleUsePrepass(Ddg &ddg, int copy_latency,
                              int max_fanout = 2);

} // namespace dms

#endif // DMS_IR_PREPASS_H
