#include "ir/verify.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

std::vector<std::string>
verifyDdg(const Ddg &ddg, const DdgVerifyOptions &opts)
{
    std::vector<std::string> problems;
    auto complain = [&](std::string s) {
        problems.push_back(std::move(s));
    };

    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        const Operation &o = ddg.op(id);

        for (EdgeId e : o.ins) {
            if (!ddg.edgeLive(e))
                complain(strfmt("op%d lists dead in-edge %d", id, e));
            else if (ddg.edge(e).dst != id)
                complain(strfmt("in-edge %d of op%d has dst %d",
                                e, id, ddg.edge(e).dst));
        }
        for (EdgeId e : o.outs) {
            if (!ddg.edgeLive(e))
                complain(strfmt("op%d lists dead out-edge %d", id, e));
            else if (ddg.edge(e).src != id)
                complain(strfmt("out-edge %d of op%d has src %d",
                                e, id, ddg.edge(e).src));
        }

        // Operand slots: each slot fed at most once, slots < arity.
        int arity = opcodeArity(o.opc);
        bool slot_used[2] = {false, false};
        for (EdgeId e : ddg.flowInputs(id)) {
            int slot = ddg.edge(e).operandIndex;
            if (slot < 0 || slot >= 2) {
                complain(strfmt("edge %d has bad operand slot %d",
                                e, slot));
                continue;
            }
            if (slot >= arity) {
                complain(strfmt("%s: operand slot %d >= arity %d",
                                ddg.opLabel(id).c_str(), slot, arity));
            }
            if (slot_used[slot]) {
                complain(strfmt("%s: operand slot %d fed twice",
                                ddg.opLabel(id).c_str(), slot));
            }
            slot_used[slot] = true;
        }

        if (opts.maxFlowFanout > 0 &&
            ddg.flowFanout(id) > opts.maxFlowFanout) {
            complain(strfmt("%s: flow fan-out %d exceeds limit %d",
                            ddg.opLabel(id).c_str(), ddg.flowFanout(id),
                            opts.maxFlowFanout));
        }
    }

    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeLive(e))
            continue;
        const Edge &ed = ddg.edge(e);
        if (!ddg.opLive(ed.src) || !ddg.opLive(ed.dst))
            complain(strfmt("edge %d touches dead op", e));
        if (ed.distance < 0)
            complain(strfmt("edge %d has negative distance", e));
        if (ed.replaced && ed.kind != DepKind::Flow)
            complain(strfmt("edge %d replaced but not flow", e));
    }

    // Zero-distance cycle detection via Kahn's algorithm on the
    // subgraph of active zero-distance edges.
    {
        std::vector<int> indeg(static_cast<size_t>(ddg.numOps()), 0);
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            if (ddg.edgeActive(e) && ddg.edge(e).distance == 0)
                ++indeg[static_cast<size_t>(ddg.edge(e).dst)];
        }
        std::vector<OpId> queue;
        int live = 0;
        for (OpId id = 0; id < ddg.numOps(); ++id) {
            if (!ddg.opLive(id))
                continue;
            ++live;
            if (indeg[static_cast<size_t>(id)] == 0)
                queue.push_back(id);
        }
        int visited = 0;
        while (!queue.empty()) {
            OpId id = queue.back();
            queue.pop_back();
            ++visited;
            for (EdgeId e : ddg.op(id).outs) {
                if (!ddg.edgeActive(e) || ddg.edge(e).distance != 0)
                    continue;
                OpId dst = ddg.edge(e).dst;
                if (--indeg[static_cast<size_t>(dst)] == 0)
                    queue.push_back(dst);
            }
        }
        if (visited != live)
            complain("zero-distance dependence cycle present");
    }

    return problems;
}

void
checkDdg(const Ddg &ddg, const DdgVerifyOptions &opts)
{
    auto problems = verifyDdg(ddg, opts);
    if (!problems.empty())
        panic("invalid DDG: %s", problems.front().c_str());
}

std::vector<OpId>
topoOrderZeroDistance(const Ddg &ddg)
{
    std::vector<int> indeg(static_cast<size_t>(ddg.numOps()), 0);
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (ddg.edgeActive(e) && ddg.edge(e).distance == 0)
            ++indeg[static_cast<size_t>(ddg.edge(e).dst)];
    }
    std::vector<OpId> order;
    std::vector<OpId> queue;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (ddg.opLive(id) && indeg[static_cast<size_t>(id)] == 0)
            queue.push_back(id);
    }
    while (!queue.empty()) {
        OpId id = queue.back();
        queue.pop_back();
        order.push_back(id);
        for (EdgeId e : ddg.op(id).outs) {
            if (!ddg.edgeActive(e) || ddg.edge(e).distance != 0)
                continue;
            OpId dst = ddg.edge(e).dst;
            if (--indeg[static_cast<size_t>(dst)] == 0)
                queue.push_back(dst);
        }
    }
    DMS_ASSERT(static_cast<int>(order.size()) == ddg.liveOpCount(),
               "zero-distance cycle in DDG");
    return order;
}

} // namespace dms
