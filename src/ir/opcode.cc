#include "ir/opcode.h"

#include "support/diag.h"

namespace dms {

const char *
opcodeName(Opcode opc)
{
    switch (opc) {
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Const: return "const";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Copy: return "copy";
      case Opcode::Move: return "move";
      default: break;
    }
    panic("bad opcode %d", static_cast<int>(opc));
}

const char *
fuClassName(FuClass cls)
{
    switch (cls) {
      case FuClass::LdSt: return "LS";
      case FuClass::Add: return "ADD";
      case FuClass::Mul: return "MUL";
      case FuClass::Copy: return "COPY";
      default: break;
    }
    panic("bad fu class %d", static_cast<int>(cls));
}

FuClass
fuClassOf(Opcode opc)
{
    switch (opc) {
      case Opcode::Load:
      case Opcode::Store:
        return FuClass::LdSt;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Const:
        return FuClass::Add;
      case Opcode::Mul:
      case Opcode::Div:
        return FuClass::Mul;
      case Opcode::Copy:
      case Opcode::Move:
        return FuClass::Copy;
      default:
        break;
    }
    panic("bad opcode %d", static_cast<int>(opc));
}

int
opcodeArity(Opcode opc)
{
    switch (opc) {
      case Opcode::Load:
      case Opcode::Const:
        return 0;
      case Opcode::Store:
      case Opcode::Copy:
      case Opcode::Move:
        return 1;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
        return 2;
      default:
        break;
    }
    panic("bad opcode %d", static_cast<int>(opc));
}

bool
producesValue(Opcode opc)
{
    return opc != Opcode::Store;
}

bool
isUseful(Opcode opc)
{
    return opc != Opcode::Copy && opc != Opcode::Move;
}

LatencyModel::LatencyModel()
{
    set(Opcode::Load, 2);
    set(Opcode::Store, 1);
    set(Opcode::Add, 1);
    set(Opcode::Sub, 1);
    set(Opcode::Const, 1);
    set(Opcode::Mul, 2);
    set(Opcode::Div, 8);
    set(Opcode::Copy, 1);
    set(Opcode::Move, 1);
}

void
LatencyModel::set(Opcode opc, int cycles)
{
    DMS_ASSERT(cycles >= 0, "negative latency");
    lat_[static_cast<int>(opc)] = cycles;
}

} // namespace dms
