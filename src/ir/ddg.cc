#include "ir/ddg.h"

#include <algorithm>

#include "support/diag.h"

namespace dms {

const char *
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::Flow: return "flow";
      case DepKind::Anti: return "anti";
      case DepKind::Output: return "output";
      case DepKind::Memory: return "memory";
      default: break;
    }
    panic("bad dep kind %d", static_cast<int>(kind));
}

OpId
Ddg::addOp(Opcode opc, OpOrigin origin)
{
    Operation o;
    o.opc = opc;
    o.origin = origin;
    ops_.push_back(std::move(o));
    ++live_ops_;
    OpId id = static_cast<OpId>(ops_.size()) - 1;
    if (origin == OpOrigin::Original)
        ops_.back().origId = id;
    return id;
}

void
Ddg::resetTo(const Ddg &original)
{
    DMS_ASSERT(this != &original, "resetTo self");
    // Vector copy-assignment reuses the destination buffers when
    // capacity allows — including the per-operation ins/outs
    // vectors of the common prefix — which is what makes repeated
    // attempts allocation-free in steady state. An attached
    // listener survives (and fires nothing); it must rebuild its
    // own state after the reset.
    ops_ = original.ops_;
    edges_ = original.edges_;
    live_ops_ = original.live_ops_;
    unroll_factor_ = original.unroll_factor_;
}

EdgeId
Ddg::addEdge(OpId src, OpId dst, DepKind kind, int distance,
             int latency, int operand_index)
{
    DMS_ASSERT(opLive(src) && opLive(dst),
               "edge between dead ops %d -> %d", src, dst);
    DMS_ASSERT(distance >= 0, "negative distance %d", distance);
    DMS_ASSERT(latency >= 0, "negative latency %d", latency);
    if (kind == DepKind::Flow) {
        DMS_ASSERT(producesValue(op(src).opc),
                   "flow edge from non-value op %s",
                   opLabel(src).c_str());
        DMS_ASSERT(operand_index == 0 || operand_index == 1,
                   "flow edge needs an operand slot (got %d)",
                   operand_index);
    } else {
        DMS_ASSERT(operand_index < 0,
                   "operand index on non-flow edge");
    }

    Edge e;
    e.src = src;
    e.dst = dst;
    e.kind = kind;
    e.distance = distance;
    e.latency = latency;
    e.operandIndex = operand_index;
    edges_.push_back(e);
    EdgeId id = static_cast<EdgeId>(edges_.size()) - 1;
    ops_[static_cast<size_t>(src)].outs.push_back(id);
    ops_[static_cast<size_t>(dst)].ins.push_back(id);
    if (listener_ != nullptr)
        listener_->onEdgeActivated(id);
    return id;
}

void
Ddg::removeEdge(EdgeId eid)
{
    Edge &e = edge(eid);
    DMS_ASSERT(!e.dead, "removing dead edge %d", eid);
    if (listener_ != nullptr && !e.replaced)
        listener_->onEdgeDeactivated(eid);
    auto unlink = [eid](std::vector<EdgeId> &v) {
        auto it = std::find(v.begin(), v.end(), eid);
        DMS_ASSERT(it != v.end(), "edge %d missing from adjacency",
                   eid);
        v.erase(it);
    };
    unlink(ops_[static_cast<size_t>(e.src)].outs);
    unlink(ops_[static_cast<size_t>(e.dst)].ins);
    e.dead = true;
    e.replaced = false;
}

void
Ddg::removeOp(OpId id)
{
    Operation &o = op(id);
    DMS_ASSERT(!o.dead, "removing dead op %d", id);
    DMS_ASSERT(o.ins.empty() && o.outs.empty(),
               "removing op %s with live edges", opLabel(id).c_str());
    o.dead = true;
    --live_ops_;
}

void
Ddg::markReplaced(EdgeId eid)
{
    Edge &e = edge(eid);
    DMS_ASSERT(!e.dead && !e.replaced, "bad replace of edge %d", eid);
    DMS_ASSERT(e.kind == DepKind::Flow, "replacing non-flow edge");
    if (listener_ != nullptr)
        listener_->onEdgeDeactivated(eid);
    e.replaced = true;
}

void
Ddg::unmarkReplaced(EdgeId eid)
{
    Edge &e = edge(eid);
    DMS_ASSERT(!e.dead && e.replaced, "bad unreplace of edge %d", eid);
    e.replaced = false;
    if (listener_ != nullptr)
        listener_->onEdgeActivated(eid);
}

std::vector<OpId>
Ddg::liveOps() const
{
    std::vector<OpId> out;
    out.reserve(static_cast<size_t>(live_ops_));
    for (OpId id = 0; id < numOps(); ++id) {
        if (!ops_[static_cast<size_t>(id)].dead)
            out.push_back(id);
    }
    return out;
}

std::vector<int>
Ddg::opCountByClass() const
{
    std::vector<int> counts(kNumFuClasses, 0);
    for (OpId id = 0; id < numOps(); ++id) {
        const Operation &o = ops_[static_cast<size_t>(id)];
        if (!o.dead)
            ++counts[static_cast<int>(fuClassOf(o.opc))];
    }
    return counts;
}

int
Ddg::usefulOpCount() const
{
    int n = 0;
    for (OpId id = 0; id < numOps(); ++id) {
        const Operation &o = ops_[static_cast<size_t>(id)];
        if (!o.dead && isUseful(o.opc))
            ++n;
    }
    return n;
}

int
Ddg::flowFanout(OpId id) const
{
    int n = 0;
    for (EdgeId e : op(id).outs) {
        if (edgeLive(e) && edge(e).kind == DepKind::Flow)
            ++n;
    }
    return n;
}

std::vector<EdgeId>
Ddg::flowInputs(OpId id) const
{
    std::vector<EdgeId> out;
    for (EdgeId e : op(id).ins) {
        // Active only: a replaced edge's value arrives through its
        // chain, whose final edge feeds the same operand slot.
        if (edgeActive(e) && edge(e).kind == DepKind::Flow &&
            edge(e).operandIndex >= 0) {
            out.push_back(e);
        }
    }
    return out;
}

std::string
Ddg::opLabel(OpId id) const
{
    return strfmt("op%d:%s", id, opcodeName(op(id).opc));
}

} // namespace dms
