#ifndef DMS_IR_DDG_H
#define DMS_IR_DDG_H

/**
 * @file
 * Data dependence graph (DDG) of an innermost loop, the structure
 * every modulo scheduler in this repository operates on (paper
 * section 3: "a data dependence graph is used to represent the
 * dependencies between operations of the innermost loop").
 *
 * The graph is deliberately mutable: DMS inserts copy operations in
 * the single-use pre-pass and splices chains of move operations in
 * (and back out, on backtracking) while scheduling. Removed
 * operations and edges become tombstones so identifiers stay stable
 * across mutation.
 */

#include <string>
#include <vector>

#include "ir/opcode.h"
#include "support/diag.h"
#include "support/types.h"

namespace dms {

/** Kind of a dependence edge. */
enum class DepKind : std::uint8_t {
    Flow,    ///< true register dependence; carries a value
    Anti,    ///< write-after-read ordering
    Output,  ///< write-after-write ordering
    Memory,  ///< memory ordering (store/load aliasing)
};

const char *depKindName(DepKind kind);

/** Why an operation exists. */
enum class OpOrigin : std::uint8_t {
    Original,  ///< part of the source loop body
    CopyOp,    ///< inserted by the single-use lifetime pre-pass
    MoveOp,    ///< inserted by a DMS chain (strategy 2)
};

/**
 * One loop-body operation. Plain data; the graph owns the adjacency.
 */
struct Operation
{
    Opcode opc = Opcode::Add;
    OpOrigin origin = OpOrigin::Original;
    bool dead = false;

    /**
     * Identity of the op (or, for copies/moves, of the operation
     * that originally produced the forwarded value) in the loop this
     * DDG was derived from. Used by the simulator to compare stored
     * values against the reference interpreter across unrolling and
     * the copy pre-pass.
     */
    OpId origId = kInvalidOp;

    /** Which original iteration this op handles (unrolled bodies). */
    int iterOffset = 0;

    /** Memory stream id for Load/Store; -1 otherwise. */
    int memStream = -1;

    /** Constant index offset into the stream (models a[i+k]). */
    int memOffset = 0;

    /** Literal for Const operations. */
    std::int64_t literal = 0;

    /** In-edge ids (live and dead; check Edge::dead). */
    std::vector<EdgeId> ins;

    /** Out-edge ids. */
    std::vector<EdgeId> outs;
};

/** One dependence edge. */
struct Edge
{
    OpId src = kInvalidOp;
    OpId dst = kInvalidOp;
    DepKind kind = DepKind::Flow;

    /** Iteration distance (>= 0; loop-carried if > 0). */
    int distance = 0;

    /**
     * Dependence latency: the schedule must satisfy
     * time(dst) >= time(src) + latency - II * distance.
     */
    int latency = 0;

    /**
     * Operand slot of @c dst this edge feeds (0 or 1), or -1 for
     * edges that do not carry a value (Anti/Output/Memory). Chain
     * splicing preserves the slot so execution semantics survive.
     */
    int operandIndex = -1;

    bool dead = false;

    /**
     * True while a DMS chain of moves stands in for this edge. A
     * replaced edge imposes no constraints itself (the moves do) but
     * is remembered so backtracking can restore it.
     */
    bool replaced = false;
};

/**
 * Observer of edge-activation changes. The incremental affinity
 * bookkeeping of DMS needs to know when an edge starts or stops
 * constraining the schedule; all four mutation paths (addEdge,
 * removeEdge, markReplaced, unmarkReplaced) report through this so
 * the observer cannot fall out of sync with chain splicing.
 * resetTo() rebuilds the graph wholesale and fires nothing — an
 * attached observer must rebuild its state afterwards.
 */
class DdgListener
{
  public:
    /** @p e just became active (constrains the schedule). */
    virtual void onEdgeActivated(EdgeId e) = 0;

    /** @p e (still readable) just stopped being active. */
    virtual void onEdgeDeactivated(EdgeId e) = 0;

  protected:
    ~DdgListener() = default;
};

/**
 * Mutable data dependence graph of one innermost loop iteration.
 */
class Ddg
{
  public:
    Ddg() = default;

    /** @name Construction */
    /// @{

    /** Add an operation; returns its id. */
    OpId addOp(Opcode opc, OpOrigin origin = OpOrigin::Original);

    /**
     * Make this graph a copy of @p original while reusing the
     * existing allocations (including each operation's adjacency
     * buffers), so one scratch graph serves every (II, restart)
     * attempt of a scheduling run without churning the allocator.
     */
    void resetTo(const Ddg &original);

    /**
     * Add a dependence edge.
     *
     * @param operand_index operand slot for Flow edges; -1 otherwise.
     */
    EdgeId addEdge(OpId src, OpId dst, DepKind kind, int distance,
                   int latency, int operand_index = -1);

    /// @}
    /** @name Mutation (pre-pass and chain splicing) */
    /// @{

    /** Remove an edge (tombstoned; unlinked from adjacency). */
    void removeEdge(EdgeId e);

    /** Remove an op; it must have no live edges left. */
    void removeOp(OpId id);

    /** Hide an edge behind a chain of moves. */
    void markReplaced(EdgeId e);

    /** Restore a hidden edge when its chain dissolves. */
    void unmarkReplaced(EdgeId e);

    /// @}
    /** @name Access */
    /// @{

    /** Total ids ever allocated, including tombstones. */
    int numOps() const { return static_cast<int>(ops_.size()); }
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /** Live (non-tombstoned) operation count. */
    int liveOpCount() const { return live_ops_; }

    /**
     * Op/edge accessors are defined inline (below the class): the
     * scheduler inner loop hits them millions of times per run and
     * the call overhead dominated the hot-path profile when they
     * lived in ddg.cc. The bounds asserts survive NDEBUG.
     */
    const Operation &op(OpId id) const;
    Operation &op(OpId id);
    const Edge &edge(EdgeId e) const;
    Edge &edge(EdgeId e);

    bool opLive(OpId id) const { return !op(id).dead; }
    bool edgeLive(EdgeId e) const { return !edge(e).dead; }

    /**
     * True if the edge currently constrains the schedule: live and
     * not replaced by a chain.
     */
    bool edgeActive(EdgeId e) const;

    /** All live op ids, ascending. */
    std::vector<OpId> liveOps() const;

    /** Live op count per functional-unit class. */
    std::vector<int> opCountByClass() const;

    /** Count of live useful (non copy/move) operations. */
    int usefulOpCount() const;

    /** Live flow out-degree (number of value uses). */
    int flowFanout(OpId id) const;

    /**
     * Active flow in-edges feeding operand slots, any order.
     * Replaced edges are excluded: their value flows through the
     * chain's final edge instead.
     */
    std::vector<EdgeId> flowInputs(OpId id) const;

    /// @}
    /** @name Loop metadata */
    /// @{

    /** Unroll factor this body was produced with (1 = not unrolled). */
    int unrollFactor() const { return unroll_factor_; }
    void setUnrollFactor(int f) { unroll_factor_ = f; }

    /// @}

    /** Human-readable label such as "op7:mul". */
    std::string opLabel(OpId id) const;

    /**
     * Attach (or clear, with nullptr) the mutation observer. Not
     * owned; the caller keeps it alive while attached. Copying a
     * Ddg copies the pointer, so clear it before handing a graph to
     * another owner.
     */
    void setListener(DdgListener *listener) { listener_ = listener; }
    DdgListener *listener() const { return listener_; }

  private:
    std::vector<Operation> ops_;
    std::vector<Edge> edges_;
    int live_ops_ = 0;
    int unroll_factor_ = 1;
    DdgListener *listener_ = nullptr;
};

inline const Operation &
Ddg::op(OpId id) const
{
    DMS_ASSERT(id >= 0 && id < numOps(), "bad op id %d", id);
    return ops_[static_cast<size_t>(id)];
}

inline Operation &
Ddg::op(OpId id)
{
    DMS_ASSERT(id >= 0 && id < numOps(), "bad op id %d", id);
    return ops_[static_cast<size_t>(id)];
}

inline const Edge &
Ddg::edge(EdgeId e) const
{
    DMS_ASSERT(e >= 0 && e < numEdges(), "bad edge id %d", e);
    return edges_[static_cast<size_t>(e)];
}

inline Edge &
Ddg::edge(EdgeId e)
{
    DMS_ASSERT(e >= 0 && e < numEdges(), "bad edge id %d", e);
    return edges_[static_cast<size_t>(e)];
}

inline bool
Ddg::edgeActive(EdgeId e) const
{
    const Edge &ed = edge(e);
    return !ed.dead && !ed.replaced;
}

} // namespace dms

#endif // DMS_IR_DDG_H
