#ifndef DMS_IR_OPCODE_H
#define DMS_IR_OPCODE_H

/**
 * @file
 * Operation opcodes for innermost-loop bodies, the functional-unit
 * classes that execute them, and the default latency model.
 *
 * The machine model of the paper gives each cluster one load/store
 * unit, one adder, one multiplier, and one copy unit. The copy unit
 * executes the two "bookkeeping" opcodes the paper introduces:
 *
 *  - @c Copy : duplicates a value inside a cluster (single-use
 *    lifetime pre-pass, paper section 3, last paragraph);
 *  - @c Move : forwards a value one ring hop, reading one CQRF and
 *    writing the next (chain operations, paper figure 3).
 *
 * Copy and Move are never counted as useful work in IPC figures,
 * exactly as in the paper's evaluation.
 */

#include <cstdint>

namespace dms {

/** Opcode of a loop-body operation. */
enum class Opcode : std::uint8_t {
    Load,   ///< memory read, executes on the L/S unit
    Store,  ///< memory write, executes on the L/S unit
    Add,    ///< integer/float addition
    Sub,    ///< subtraction (adder class)
    Const,  ///< literal generator (adder class)
    Mul,    ///< multiplication
    Div,    ///< division (multiplier class, long latency)
    Copy,   ///< intra-cluster duplicate (copy unit, not useful work)
    Move,   ///< inter-cluster one-hop forward (copy unit, not useful)
    kNumOpcodes,
};

inline constexpr int kNumOpcodes =
    static_cast<int>(Opcode::kNumOpcodes);

/** Functional-unit class an opcode executes on. */
enum class FuClass : std::uint8_t {
    LdSt,  ///< load/store unit
    Add,   ///< adder
    Mul,   ///< multiplier
    Copy,  ///< copy unit (copy and move operations only)
    kNumClasses,
};

inline constexpr int kNumFuClasses =
    static_cast<int>(FuClass::kNumClasses);

/** Short mnemonic, e.g. "mul". */
const char *opcodeName(Opcode opc);

/** Short class name, e.g. "MUL". */
const char *fuClassName(FuClass cls);

/** FU class that executes the given opcode. */
FuClass fuClassOf(Opcode opc);

/** Number of data operands the opcode consumes (0, 1 or 2). */
int opcodeArity(Opcode opc);

/** True if the opcode produces a register value. */
bool producesValue(Opcode opc);

/**
 * True if the opcode performs useful computation. Copy and Move are
 * bookkeeping introduced by partitioning; the paper excludes them
 * from all performance figures.
 */
bool isUseful(Opcode opc);

/**
 * Operation latency table. Values are typical for late-90s VLIW
 * cores and configurable per machine model; the paper does not
 * publish its latencies, so these defaults are documented in
 * DESIGN.md and used everywhere.
 */
class LatencyModel
{
  public:
    /** Build the default table. */
    LatencyModel();

    /** Latency in cycles of an opcode's result. */
    int of(Opcode opc) const { return lat_[static_cast<int>(opc)]; }

    /** Override one opcode's latency (tests and ablations). */
    void set(Opcode opc, int cycles);

  private:
    int lat_[kNumOpcodes];
};

} // namespace dms

#endif // DMS_IR_OPCODE_H
