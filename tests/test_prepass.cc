/**
 * @file
 * Single-use lifetime pre-pass: fan-out bound, copy counts,
 * semantics preservation, and interaction with distances.
 */

#include <gtest/gtest.h>

#include "ir/prepass.h"
#include "ir/scc.h"
#include "ir/verify.h"
#include "sim/reference.h"
#include "workload/kernels.h"

namespace dms {
namespace {

Ddg
fanoutGraph(int consumers)
{
    LoopBuilder b;
    OpId x = b.load(0);
    for (int i = 0; i < consumers; ++i)
        b.store(1 + i, x);
    return b.take();
}

TEST(Prepass, FanoutTwoUntouched)
{
    Ddg g = fanoutGraph(2);
    PrepassStats st = singleUsePrepass(g, 1);
    EXPECT_EQ(st.copiesInserted, 0);
    EXPECT_EQ(st.opsRewritten, 0);
}

TEST(Prepass, FanoutThreeNeedsOneCopy)
{
    Ddg g = fanoutGraph(3);
    PrepassStats st = singleUsePrepass(g, 1);
    EXPECT_EQ(st.copiesInserted, 1);
    EXPECT_EQ(st.opsRewritten, 1);
    DdgVerifyOptions opts;
    opts.maxFlowFanout = 2;
    EXPECT_TRUE(verifyDdg(g, opts).empty());
}

TEST(Prepass, LargeFanoutChains)
{
    for (int k = 3; k <= 9; ++k) {
        Ddg g = fanoutGraph(k);
        PrepassStats st = singleUsePrepass(g, 1);
        EXPECT_EQ(st.copiesInserted, k - 2) << "fanout " << k;
        DdgVerifyOptions opts;
        opts.maxFlowFanout = 2;
        EXPECT_TRUE(verifyDdg(g, opts).empty()) << "fanout " << k;
    }
}

TEST(Prepass, BoundsEveryKernel)
{
    for (Loop k : namedKernels()) {
        singleUsePrepass(k.ddg, 1);
        DdgVerifyOptions opts;
        opts.maxFlowFanout = 2;
        EXPECT_TRUE(verifyDdg(k.ddg, opts).empty()) << k.name;
    }
}

TEST(Prepass, PreservesSemantics)
{
    for (Loop k : namedKernels()) {
        StoreLog before = referenceExecute(k.ddg, 20);
        singleUsePrepass(k.ddg, 1);
        StoreLog after = referenceExecute(k.ddg, 20);
        auto problems = compareStoreLogs(before, after);
        EXPECT_TRUE(problems.empty())
            << k.name << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

TEST(Prepass, PreservesSemanticsAcrossDistances)
{
    // stencil3: one load consumed at distances 0, 1 and 2.
    Loop k = kernelStencil3();
    StoreLog before = referenceExecute(k.ddg, 30);
    PrepassStats st = singleUsePrepass(k.ddg, 1);
    EXPECT_EQ(st.copiesInserted, 1);
    StoreLog after = referenceExecute(k.ddg, 30);
    EXPECT_TRUE(compareStoreLogs(before, after).empty());
}

TEST(Prepass, TightestConsumerStaysOnProducer)
{
    // Consumers at distances 2, 0, 1: the distance-0 use must stay
    // directly attached to the producer after rewriting.
    Ddg h;
    OpId ld = h.addOp(Opcode::Load);
    h.op(ld).memStream = 0;
    OpId u0 = h.addOp(Opcode::Store);
    h.op(u0).memStream = 1;
    OpId u1 = h.addOp(Opcode::Store);
    h.op(u1).memStream = 2;
    OpId u2 = h.addOp(Opcode::Store);
    h.op(u2).memStream = 3;
    h.addEdge(ld, u2, DepKind::Flow, 2, 2, 0);
    h.addEdge(ld, u0, DepKind::Flow, 0, 2, 0);
    h.addEdge(ld, u1, DepKind::Flow, 1, 2, 0);
    singleUsePrepass(h, 1);

    // The edge still leaving ld toward a store must be distance 0.
    int direct_stores = 0;
    for (EdgeId e : h.op(ld).outs) {
        const Edge &ed = h.edge(e);
        if (!h.edgeLive(e))
            continue;
        if (h.op(ed.dst).opc == Opcode::Store) {
            EXPECT_EQ(ed.distance, 0);
            ++direct_stores;
        }
    }
    EXPECT_EQ(direct_stores, 1);
}

TEST(Prepass, CopyOnRecurrencePathRaisesRecMii)
{
    // An accumulator consumed by itself plus 3 stores: the copy
    // chain can lengthen non-recurrence paths, but the self-edge
    // must stay direct (distance sorting puts the d=1 self use
    // second, still within the producer's two slots).
    LoopBuilder b;
    OpId x = b.load(0);
    OpId acc = b.add1(x);
    b.flow(acc, acc, 1, 1);
    b.store(1, acc);
    b.store(2, acc);
    b.store(3, acc);
    Ddg g = b.take();
    int rec_before = 0;
    {
        rec_before = hasRecurrence(g) ? 1 : 0;
        EXPECT_EQ(rec_before, 1);
    }
    StoreLog before = referenceExecute(g, 16);
    singleUsePrepass(g, 1);
    EXPECT_TRUE(hasRecurrence(g));
    StoreLog after = referenceExecute(g, 16);
    EXPECT_TRUE(compareStoreLogs(before, after).empty());
}

TEST(Prepass, CopiesCarryProducerIdentity)
{
    Ddg g = fanoutGraph(5);
    singleUsePrepass(g, 1);
    for (OpId id = 0; id < g.numOps(); ++id) {
        if (g.opLive(id) && g.op(id).origin == OpOrigin::CopyOp) {
            EXPECT_EQ(g.op(id).origId, 0); // the load
        }
    }
}

TEST(Prepass, HigherFanoutLimitInsertsFewerCopies)
{
    Ddg g3 = fanoutGraph(7);
    Ddg g4 = fanoutGraph(7);
    PrepassStats s2 = singleUsePrepass(g3, 1, 2);
    PrepassStats s4 = singleUsePrepass(g4, 1, 4);
    EXPECT_GT(s2.copiesInserted, s4.copiesInserted);
}

} // namespace
} // namespace dms
