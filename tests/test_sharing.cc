/**
 * @file
 * Queue sharing: pairwise FIFO compatibility, depth accounting,
 * and end-to-end reductions on real schedules.
 */

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "regalloc/sharing.h"
#include "sched/ims.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace dms {
namespace {

/** Two independent load->store lifetimes in one cluster. */
struct Fixture
{
    Fixture()
    {
        LoopBuilder b;
        ld0 = b.load(0);
        st0 = b.store(2, ld0);
        ld1 = b.load(1);
        st1 = b.store(3, ld1);
        ddg = b.take();
    }

    Ddg ddg;
    OpId ld0, st0, ld1, st1;
};

TEST(Sharing, CompatibleWhenOrderConsistent)
{
    Fixture f;
    MachineModel m = MachineModel::unclustered(2);
    // II=4: ld0@0 (ready 2) used @4; ld1@1 (ready 3) used @6.
    // Enter order 2,3; exit order 4,6 - consistent.
    PartialSchedule ps(f.ddg, m, 4);
    ASSERT_TRUE(ps.tryPlace(f.ld0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st0, 4, 0));
    ASSERT_TRUE(ps.tryPlace(f.ld1, 1, 0));
    ASSERT_TRUE(ps.tryPlace(f.st1, 6, 0));

    QueueAllocation qa = allocateQueues(f.ddg, m, ps);
    ASSERT_EQ(qa.lifetimes.size(), 2u);
    EXPECT_TRUE(canShareQueue(qa.lifetimes[0], qa.lifetimes[1], 4,
                              f.ddg, ps));

    SharedAllocation sa = shareQueues(qa, f.ddg, ps);
    EXPECT_EQ(sa.queuesBefore, 2);
    EXPECT_EQ(sa.queuesAfter, 1);
    EXPECT_GT(sa.reduction(), 0.4);
}

TEST(Sharing, IncompatibleWhenOvertaking)
{
    Fixture f;
    MachineModel m = MachineModel::unclustered(2);
    // II=4: ld0 ready @2 used @9; ld1 ready @3 used @6:
    // enters 2 then 3, exits 9 after 6 -> ld1 overtakes ld0.
    PartialSchedule ps(f.ddg, m, 4);
    ASSERT_TRUE(ps.tryPlace(f.ld0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st0, 9, 0));
    ASSERT_TRUE(ps.tryPlace(f.ld1, 1, 0));
    ASSERT_TRUE(ps.tryPlace(f.st1, 6, 0));

    QueueAllocation qa = allocateQueues(f.ddg, m, ps);
    EXPECT_FALSE(canShareQueue(qa.lifetimes[0], qa.lifetimes[1], 4,
                               f.ddg, ps));
    SharedAllocation sa = shareQueues(qa, f.ddg, ps);
    EXPECT_EQ(sa.queuesAfter, 2);
}

TEST(Sharing, PortConflictsBlockSharing)
{
    Fixture f;
    MachineModel m = MachineModel::unclustered(2);
    // Same ready cycle mod II (both loads at row 0 impossible on
    // one L/S unit; use two cycles II apart -> same phase).
    PartialSchedule ps(f.ddg, m, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st0, 3, 0));
    ASSERT_TRUE(ps.tryPlace(f.ld1, 2, 0)); // ready 4 = 2 + II
    ASSERT_TRUE(ps.tryPlace(f.st1, 5, 0));

    QueueAllocation qa = allocateQueues(f.ddg, m, ps);
    // Enter phases differ by exactly II -> write-port conflict.
    EXPECT_FALSE(canShareQueue(qa.lifetimes[0], qa.lifetimes[1], 2,
                               f.ddg, ps));
}

TEST(Sharing, DifferentFilesNeverShare)
{
    Fixture f;
    MachineModel m = MachineModel::clusteredRing(2);
    PartialSchedule ps(f.ddg, m, 4);
    ASSERT_TRUE(ps.tryPlace(f.ld0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st0, 5, 0)); // LRF cluster 0
    ASSERT_TRUE(ps.tryPlace(f.ld1, 1, 1));
    ASSERT_TRUE(ps.tryPlace(f.st1, 6, 1)); // LRF cluster 1
    QueueAllocation qa = allocateQueues(f.ddg, m, ps);
    EXPECT_FALSE(canShareQueue(qa.lifetimes[0], qa.lifetimes[1], 4,
                               f.ddg, ps));
}

TEST(Sharing, DepthCoversAllMembers)
{
    Fixture f;
    MachineModel m = MachineModel::unclustered(2);
    PartialSchedule ps(f.ddg, m, 4);
    ASSERT_TRUE(ps.tryPlace(f.ld0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st0, 4, 0));
    ASSERT_TRUE(ps.tryPlace(f.ld1, 1, 0));
    ASSERT_TRUE(ps.tryPlace(f.st1, 6, 0));
    QueueAllocation qa = allocateQueues(f.ddg, m, ps);
    SharedAllocation sa = shareQueues(qa, f.ddg, ps);
    ASSERT_EQ(sa.queues.size(), 1u);
    // Spans: 2 and 3 at II=4 -> each depth 1; overlap [3,4) holds
    // both values at once.
    EXPECT_EQ(sa.queues[0].depth, 2);
}

TEST(Sharing, NeverMergesIncompatiblePairsOnRealSchedules)
{
    for (const Loop &k : namedKernels()) {
        MachineModel m = MachineModel::clusteredRing(4);
        Ddg body = k.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(body, m);
        ASSERT_TRUE(out.sched.ok) << k.name;
        QueueAllocation qa =
            allocateQueues(*out.ddg, m, *out.sched.schedule);
        SharedAllocation sa =
            shareQueues(qa, *out.ddg, *out.sched.schedule);

        EXPECT_LE(sa.queuesAfter, sa.queuesBefore) << k.name;
        for (const SharedQueue &q : sa.queues) {
            EXPECT_GE(q.depth, 1) << k.name;
            for (size_t i = 0; i < q.members.size(); ++i) {
                for (size_t j = i + 1; j < q.members.size(); ++j) {
                    EXPECT_TRUE(canShareQueue(
                        qa.lifetimes[static_cast<size_t>(
                            q.members[i])],
                        qa.lifetimes[static_cast<size_t>(
                            q.members[j])],
                        out.sched.ii, *out.ddg,
                        *out.sched.schedule))
                        << k.name;
                }
            }
        }
    }
}

TEST(Sharing, ReducesQueuesSomewhere)
{
    // Across a synthetic sample, sharing must find at least some
    // opportunities (deep pipelines have many short lifetimes).
    int reduced = 0;
    for (const Loop &k : synthesizeSuite(321, 20)) {
        MachineModel m = MachineModel::unclustered(2);
        SchedOutcome out = scheduleIms(k.ddg, m);
        ASSERT_TRUE(out.ok);
        QueueAllocation qa =
            allocateQueues(k.ddg, m, *out.schedule);
        SharedAllocation sa =
            shareQueues(qa, k.ddg, *out.schedule);
        reduced += sa.queuesAfter < sa.queuesBefore;
    }
    EXPECT_GT(reduced, 5);
}

TEST(Sharing, DifferentLinksNeverShareOnACrossbar)
{
    // Two lifetimes leaving cluster 0 for different clusters of a
    // crossbar have phase patterns that would be compatible in one
    // file — but they cross different links, so each CQRF keeps
    // its own queue.
    Fixture f;
    MachineModel m = MachineModel::custom(
        3, RegFileKind::Queues, {2, 2, 2, 1},
        TopologyKind::Crossbar);
    PartialSchedule ps(f.ddg, m, 4);
    ASSERT_TRUE(ps.tryPlace(f.ld0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st0, 4, 1)); // link 0->1
    ASSERT_TRUE(ps.tryPlace(f.ld1, 1, 0));
    ASSERT_TRUE(ps.tryPlace(f.st1, 6, 2)); // link 0->2

    QueueAllocation qa = allocateQueues(f.ddg, m, ps);
    ASSERT_EQ(qa.lifetimes.size(), 2u);
    EXPECT_NE(qa.lifetimes[0].link, qa.lifetimes[1].link);
    EXPECT_FALSE(canShareQueue(qa.lifetimes[0], qa.lifetimes[1], 4,
                               f.ddg, ps));
    SharedAllocation sa = shareQueues(qa, f.ddg, ps);
    EXPECT_EQ(sa.queuesAfter, 2);
}

TEST(Sharing, MeshSharingStaysWithinOneLink)
{
    // End to end on a torus mesh: after sharing, every queue's
    // members live in the same file — same location, same cluster,
    // same link.
    MachineModel m = MachineModel::custom(
        6, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        2, 3);
    for (const Loop &k : namedKernels()) {
        Ddg body = k.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(body, m);
        ASSERT_TRUE(out.sched.ok) << k.name;
        QueueAllocation qa =
            allocateQueues(*out.ddg, m, *out.sched.schedule);
        SharedAllocation sa =
            shareQueues(qa, *out.ddg, *out.sched.schedule);
        EXPECT_LE(sa.queuesAfter, sa.queuesBefore) << k.name;
        for (const SharedQueue &q : sa.queues) {
            ASSERT_FALSE(q.members.empty());
            const Lifetime &first =
                qa.lifetimes[static_cast<size_t>(q.members[0])];
            for (int mem : q.members) {
                const Lifetime &lt =
                    qa.lifetimes[static_cast<size_t>(mem)];
                EXPECT_EQ(lt.location, first.location) << k.name;
                EXPECT_EQ(lt.cluster, first.cluster) << k.name;
                EXPECT_EQ(lt.link, first.link) << k.name;
            }
        }
    }
}

TEST(Sharing, SharedDepthNeverBelowMaxMemberDepth)
{
    Loop k = kernelFir8();
    MachineModel m = MachineModel::clusteredRing(2);
    Ddg body = k.ddg;
    singleUsePrepass(body, 1);
    DmsOutcome out = scheduleDms(body, m);
    ASSERT_TRUE(out.sched.ok);
    QueueAllocation qa =
        allocateQueues(*out.ddg, m, *out.sched.schedule);
    SharedAllocation sa =
        shareQueues(qa, *out.ddg, *out.sched.schedule);
    for (const SharedQueue &q : sa.queues) {
        int max_member = 0;
        for (int mem : q.members) {
            max_member = std::max(
                max_member,
                qa.lifetimes[static_cast<size_t>(mem)].depth);
        }
        EXPECT_GE(q.depth, max_member);
    }
}

} // namespace
} // namespace dms
