/**
 * @file
 * Staged-pipeline tests. The centerpiece is the old-vs-new matrix
 * equivalence: the pre-refactor runner flow (direct factory
 * machines, singleUsePrepass, scheduleIms/scheduleDms, the inline
 * perf arithmetic) is reimplemented here verbatim and the
 * pipeline-based runMatrix must reproduce it LoopRun-for-LoopRun —
 * the figures 4-6 data cannot move. Also covered: stage lists,
 * optional regalloc/codegen stages, and scheduler selection by
 * configuration (twophase through the runner).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/twophase.h"
#include "core/pipeline.h"
#include "eval/runner.h"
#include "ir/prepass.h"
#include "machine/desc.h"
#include "sched/verifier.h"
#include "workload/suite.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

/** ---- Pre-refactor cell flow, kept as the reference ---------- */

long
legacyIterations(const Loop &loop, int unroll_factor)
{
    long iters =
        (loop.tripCount + unroll_factor - 1) / unroll_factor;
    return std::max<long>(iters, 1);
}

void
legacyFillPerf(LoopRun &run, const Ddg &ddg,
               const PartialSchedule &ps)
{
    run.stageCount = ps.maxTime() / ps.ii() + 1;
    run.cycles = (run.iterations + run.stageCount - 1) *
                 static_cast<long>(ps.ii());
    run.usefulIssues =
        static_cast<long>(ddg.usefulOpCount()) * run.iterations;
}

LoopRun
legacyUnclustered(const Loop &loop, int width)
{
    MachineModel machine = MachineModel::unclustered(width);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);

    LoopRun run;
    run.unrollFactor = body.unrollFactor();
    run.iterations = legacyIterations(loop, run.unrollFactor);

    SchedOutcome out = scheduleIms(body, machine, SchedParams{});
    run.ok = out.ok;
    run.mii = out.mii;
    if (!out.ok)
        return run;
    run.ii = out.ii;
    checkSchedule(body, machine, *out.schedule);
    legacyFillPerf(run, body, *out.schedule);
    return run;
}

LoopRun
legacyClustered(const Loop &loop, int clusters)
{
    MachineModel machine = MachineModel::clusteredRing(clusters);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);
    PrepassStats pp =
        singleUsePrepass(body, machine.latencyOf(Opcode::Copy));

    LoopRun run;
    run.unrollFactor = body.unrollFactor();
    run.copiesInserted = pp.copiesInserted;
    run.iterations = legacyIterations(loop, run.unrollFactor);

    DmsOutcome out = scheduleDms(body, machine, DmsParams{});
    run.ok = out.sched.ok;
    run.mii = out.sched.mii;
    if (!out.sched.ok)
        return run;
    run.ii = out.sched.ii;
    run.movesInserted = out.sched.movesInserted;
    checkSchedule(*out.ddg, machine, *out.sched.schedule);
    legacyFillPerf(run, *out.ddg, *out.sched.schedule);

    // Queue pressure, recounted here from the raw allocation as an
    // independent check of the regalloc->perf->LoopRun plumbing.
    QueueAllocation qa =
        allocateQueues(*out.ddg, machine, *out.sched.schedule);
    run.queuesRequired = static_cast<int>(qa.lifetimes.size());
    run.queueStorage = qa.totalStorage;
    for (const QueueFileStats &f : qa.lrf)
        run.queueFiles += f.queues > 0;
    for (const QueueFileStats &f : qa.cqrf) {
        run.queueFiles += f.queues > 0;
        run.maxLinkQueues = std::max(run.maxLinkQueues, f.queues);
    }
    return run;
}

/** ---- Tests -------------------------------------------------- */

TEST(Pipeline, StandardStageList)
{
    Pipeline standard{PipelineOptions{}};
    EXPECT_EQ(standard.stageNames(),
              (std::vector<std::string>{"unroll", "prepass", "mii",
                                        "schedule", "verify",
                                        "perf"}));

    PipelineOptions full;
    full.regalloc = true;
    full.codegen = true;
    Pipeline everything{full};
    EXPECT_EQ(everything.stageNames(),
              (std::vector<std::string>{"unroll", "prepass", "mii",
                                        "schedule", "regalloc",
                                        "codegen", "verify",
                                        "perf"}));

    PipelineOptions lean;
    lean.verify = false;
    lean.perf = false;
    Pipeline minimal{lean};
    EXPECT_EQ(minimal.stageNames(),
              (std::vector<std::string>{"unroll", "prepass", "mii",
                                        "schedule"}));
}

TEST(Pipeline, MatrixMatchesLegacyFlow)
{
    std::vector<Loop> suite = standardSuite(kSuiteSeed, 25);

    RunnerOptions opts;
    opts.maxClusters = 4;
    opts.progress = false;
    opts.jobs = 1;
    std::vector<ConfigRun> matrix = runMatrix(suite, opts);

    ASSERT_EQ(matrix.size(), 4u);
    for (int c = 1; c <= 4; ++c) {
        const ConfigRun &cfg = matrix[static_cast<size_t>(c - 1)];
        ASSERT_EQ(cfg.clusters, c);
        ASSERT_EQ(cfg.unclustered.size(), suite.size());
        ASSERT_EQ(cfg.clustered.size(), suite.size());
        for (size_t li = 0; li < suite.size(); ++li) {
            EXPECT_EQ(cfg.unclustered[li],
                      legacyUnclustered(suite[li], c))
                << "unclustered loop " << li << " clusters " << c;
            EXPECT_EQ(cfg.clustered[li],
                      legacyClustered(suite[li], c))
                << "clustered loop " << li << " clusters " << c;
        }
    }

    // Parallel workers reuse per-worker contexts; results must not
    // depend on the cell-to-worker assignment.
    opts.jobs = 4;
    EXPECT_EQ(runMatrix(suite, opts), matrix);
}

TEST(Pipeline, RunLoopWrappersMatchLegacyFlow)
{
    Loop loop = kernelFir8();
    EXPECT_EQ(runLoopUnclustered(loop, 4, SchedParams{}, true),
              legacyUnclustered(loop, 4));
    EXPECT_EQ(runLoopClustered(loop, 4, DmsParams{}, true),
              legacyClustered(loop, 4));
}

TEST(Pipeline, TwophaseSelectableThroughRunnerConfig)
{
    std::vector<Loop> suite = standardSuite(kSuiteSeed, 8);
    RunnerOptions opts;
    opts.maxClusters = 4;
    opts.progress = false;
    opts.jobs = 1;
    opts.clusteredScheduler = "twophase";
    std::vector<ConfigRun> matrix = runMatrix(suite, opts);

    int scheduled = 0;
    for (const ConfigRun &cfg : matrix) {
        for (const LoopRun &run : cfg.clustered) {
            if (run.ok) {
                ++scheduled;
                EXPECT_GE(run.ii, run.mii);
            }
        }
    }
    EXPECT_GT(scheduled, 0);
}

TEST(Pipeline, TwophaseIgnoresBodyMiiHints)
{
    // Phase 2 of the two-phase baseline schedules the
    // move-augmented graph, whose RecMII exceeds the body's for
    // several of these loops (recurrences crossing far clusters) —
    // e.g. synth0003/0013/0032 on the 8-cluster ring. The pipeline
    // MII stage computes *body* bounds; if the twophase adapter
    // forwarded them as trusted hints, the II ladder would start
    // below the true RecMII and the height relaxation would
    // diverge. The pipeline must reproduce the direct entry point.
    std::vector<Loop> suite = standardSuite(kSuiteSeed, 40);
    MachineModel machine = MachineModel::clusteredRing(8);

    PipelineOptions po;
    po.scheduler = "twophase";
    Pipeline pipeline(po);
    CompilationContext ctx;
    for (size_t i = 0; i < suite.size(); ++i) {
        bool ok = pipeline.run(suite[i], machine, ctx);

        Ddg body = applyUnrollPolicy(suite[i].ddg, machine);
        singleUsePrepass(body, machine.latencyOf(Opcode::Copy));
        TwoPhaseOutcome direct = scheduleTwoPhase(body, machine);

        ASSERT_EQ(ok, direct.sched.ok) << "loop " << i;
        EXPECT_EQ(ctx.result.sched.mii, direct.sched.mii)
            << "loop " << i;
        if (ok) {
            EXPECT_EQ(ctx.result.sched.ii, direct.sched.ii)
                << "loop " << i;
        }
    }
}

TEST(Pipeline, CustomMachineTemplateDrivesTheSweep)
{
    // Two copy units per cluster can only help: every II must be
    // <= the single-copy-unit configuration's.
    std::vector<Loop> suite = standardSuite(kSuiteSeed, 8);
    RunnerOptions opts;
    opts.maxClusters = 4;
    opts.progress = false;
    opts.jobs = 1;
    std::vector<ConfigRun> base = runMatrix(suite, opts);

    opts.clusteredMachine = "clusters $C\n"
                            "topology ring\n"
                            "regfile queues\n"
                            "fus ldst=1 add=1 mul=1 copy=2\n";
    std::vector<ConfigRun> wide = runMatrix(suite, opts);
    for (size_t ci = 0; ci < base.size(); ++ci) {
        for (size_t li = 0; li < suite.size(); ++li) {
            const LoopRun &b = base[ci].clustered[li];
            const LoopRun &w = wide[ci].clustered[li];
            if (b.ok && w.ok) {
                EXPECT_LE(w.ii, b.ii) << "loop " << li;
            }
        }
    }
}

TEST(Pipeline, RegallocAndCodegenStagesFillTheContext)
{
    Loop loop = kernelFir8();
    MachineModel machine = MachineModel::clusteredRing(4);

    PipelineOptions po;
    po.regalloc = true;
    po.codegen = true;
    Pipeline pipeline(po);
    CompilationContext ctx;
    ASSERT_TRUE(pipeline.run(loop, machine, ctx));

    ASSERT_TRUE(ctx.queuesValid);
    EXPECT_FALSE(ctx.queues.lifetimes.empty());

    ASSERT_TRUE(ctx.kernelValid);
    EXPECT_EQ(ctx.kernel.ii, ctx.result.sched.ii);
    ASSERT_TRUE(ctx.perfValid);
    EXPECT_EQ(ctx.kernel.cyclesFor(ctx.iterations),
              ctx.perf.cycles);
    EXPECT_EQ(ctx.kernel.stageCount, ctx.perf.stageCount);

    // MII stage agrees with the scheduler's own bookkeeping.
    EXPECT_EQ(ctx.mii, ctx.result.sched.mii);
    EXPECT_EQ(ctx.resMii, ctx.result.sched.resMii);
    EXPECT_EQ(ctx.recMii, ctx.result.sched.recMii);
}

TEST(Pipeline, DmsRunsOnCrossbarAndMeshTopologies)
{
    // Topology is configuration: the same pipeline schedules the
    // paper's ring, a torus mesh and a full crossbar. On the
    // crossbar every pair is directly connected, so no move
    // operations can ever be needed.
    Loop loop = kernelFir8();
    for (const char *desc :
         {"clusters 6\ntopology mesh 2x3\nregfile queues\n"
          "fus ldst=1 add=1 mul=1 copy=1\n",
          "clusters 6\ntopology crossbar\nregfile queues\n"
          "fus ldst=1 add=1 mul=1 copy=1\n"}) {
        MachineModel machine = machineFromTextOrDie(desc);
        Pipeline pipeline{PipelineOptions{}};
        CompilationContext ctx;
        ASSERT_TRUE(pipeline.run(loop, machine, ctx))
            << machine.describe();
        EXPECT_GE(ctx.result.sched.ii, ctx.mii);
        if (machine.topology() == TopologyKind::Crossbar) {
            EXPECT_EQ(ctx.result.sched.movesInserted, 0);
        }
    }
}

TEST(Pipeline, RegallocRunsOnEveryQueueFileTopology)
{
    // The regalloc stage must not skip any queue-file machine:
    // ring, mesh and crossbar all get an allocation, and the perf
    // record carries the pressure numbers.
    Loop loop = kernelFir8();
    for (const char *desc :
         {"clusters 6\ntopology ring\nregfile queues\n"
          "fus ldst=1 add=1 mul=1 copy=1\n",
          "clusters 6\ntopology mesh 2x3\nregfile queues\n"
          "fus ldst=1 add=1 mul=1 copy=1\n",
          "clusters 6\ntopology crossbar\nregfile queues\n"
          "fus ldst=1 add=1 mul=1 copy=1\n"}) {
        MachineModel machine = machineFromTextOrDie(desc);
        PipelineOptions po;
        po.regalloc = true;
        Pipeline pipeline(po);
        CompilationContext ctx;
        ASSERT_TRUE(pipeline.run(loop, machine, ctx))
            << machine.describe();
        ASSERT_TRUE(ctx.queuesValid) << machine.describe();
        EXPECT_FALSE(ctx.queues.lifetimes.empty());
        EXPECT_GT(ctx.perf.queues, 0) << machine.describe();
        EXPECT_GT(ctx.perf.queueFiles, 0) << machine.describe();
        EXPECT_GT(ctx.perf.queueStorage, 0) << machine.describe();
        // Every CQRF lifetime crosses a real link of the topology.
        for (const Lifetime &lt : ctx.queues.lifetimes) {
            if (lt.location != QueueLocation::Cqrf)
                continue;
            ASSERT_GE(lt.link, 0);
            ASSERT_LT(lt.link, machine.numLinks());
            EXPECT_EQ(machine.linkAt(lt.link).src, lt.cluster);
            EXPECT_EQ(machine.distance(
                          machine.linkAt(lt.link).src,
                          machine.linkAt(lt.link).dst),
                      1);
        }
    }

    // A conventional machine has no queue files: stage skips and
    // the perf record stays clean.
    PipelineOptions po;
    po.scheduler = "ims";
    po.regalloc = true;
    Pipeline pipeline(po);
    CompilationContext plain;
    ASSERT_TRUE(
        pipeline.run(loop, MachineModel::unclustered(6), plain));
    EXPECT_FALSE(plain.queuesValid);
    EXPECT_EQ(plain.perf.queues, 0);
}

} // namespace
