/**
 * @file
 * Iterative Modulo Scheduling: II optimality on known kernels,
 * legality everywhere, budget behaviour, and the fixed-assignment
 * variant the two-phase baseline uses.
 */

#include <gtest/gtest.h>

#include "sched/ims.h"
#include "sched/mii.h"
#include "sched/verifier.h"
#include "workload/kernels.h"

namespace dms {
namespace {

TEST(Ims, DaxpyAchievesMiiAcrossWidths)
{
    Loop k = kernelDaxpy();
    for (int w : {1, 2, 4}) {
        MachineModel m = MachineModel::unclustered(w);
        SchedOutcome out = scheduleIms(k.ddg, m);
        ASSERT_TRUE(out.ok) << "width " << w;
        EXPECT_EQ(out.ii, out.mii) << "width " << w;
        checkSchedule(k.ddg, m, *out.schedule);
    }
}

TEST(Ims, DaxpyIiValues)
{
    // 2 loads + 1 store on w L/S units: ResMII = ceil(3/w).
    Loop k = kernelDaxpy();
    EXPECT_EQ(scheduleIms(k.ddg, MachineModel::unclustered(1)).ii, 3);
    EXPECT_EQ(scheduleIms(k.ddg, MachineModel::unclustered(2)).ii, 2);
    EXPECT_EQ(scheduleIms(k.ddg, MachineModel::unclustered(3)).ii, 1);
}

TEST(Ims, RecurrenceBoundsHold)
{
    Loop k = kernelHorner(); // RecMII 3
    MachineModel wide = MachineModel::unclustered(8);
    SchedOutcome out = scheduleIms(k.ddg, wide);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.recMii, 3);
    EXPECT_EQ(out.ii, 3);
    checkSchedule(k.ddg, wide, *out.schedule);
}

TEST(Ims, AllKernelsLegalOnAllWidths)
{
    for (const Loop &k : namedKernels()) {
        for (int w : {1, 2, 3, 5, 10}) {
            MachineModel m = MachineModel::unclustered(w);
            SchedOutcome out = scheduleIms(k.ddg, m);
            ASSERT_TRUE(out.ok) << k.name << " width " << w;
            EXPECT_GE(out.ii, out.mii);
            checkSchedule(k.ddg, m, *out.schedule);
        }
    }
}

TEST(Ims, IiNeverBelowMii)
{
    for (const Loop &k : namedKernels()) {
        MachineModel m = MachineModel::unclustered(2);
        SchedOutcome out = scheduleIms(k.ddg, m);
        ASSERT_TRUE(out.ok);
        EXPECT_GE(out.ii, minII(k.ddg, m)) << k.name;
    }
}

TEST(Ims, SchedulesAreDeterministic)
{
    Loop k = kernelFir8();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome a = scheduleIms(k.ddg, m);
    SchedOutcome b = scheduleIms(k.ddg, m);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.ii, b.ii);
    for (OpId id = 0; id < k.ddg.numOps(); ++id) {
        EXPECT_EQ(a.schedule->timeOf(id), b.schedule->timeOf(id));
    }
}

TEST(Ims, TightBudgetMayCostIi)
{
    // With a budget of nearly zero the first II attempt fails and
    // II grows; the result must still be legal.
    Loop k = kernelFir8();
    MachineModel m = MachineModel::unclustered(1);
    SchedParams strict;
    strict.budgetRatio = 1;
    SchedOutcome out = scheduleIms(k.ddg, m, strict);
    ASSERT_TRUE(out.ok);
    checkSchedule(k.ddg, m, *out.schedule);

    SchedParams roomy;
    roomy.budgetRatio = 16;
    SchedOutcome better = scheduleIms(k.ddg, m, roomy);
    ASSERT_TRUE(better.ok);
    EXPECT_LE(better.ii, out.ii);
}

TEST(Ims, MaxIiCapReturnsFailure)
{
    Loop k = kernelFir8(); // MII 9 on width 1
    MachineModel m = MachineModel::unclustered(1);
    SchedParams p;
    p.maxII = 2; // below MII: no attempt can start
    SchedOutcome out = scheduleIms(k.ddg, m, p);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.attempts, 0);
}

TEST(Ims, BudgetUsedReported)
{
    Loop k = kernelDotProduct();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    EXPECT_GE(out.budgetUsed, k.ddg.liveOpCount());
}

TEST(Ims, StagesOverlapIterations)
{
    // FIR on a narrow machine: the schedule must span multiple
    // stages (software pipelining actually happened).
    Loop k = kernelFir8();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    int sc = out.schedule->maxTime() / out.ii + 1;
    EXPECT_GE(sc, 2);
}

TEST(ImsFixed, RespectsAssignment)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::clusteredRing(2);
    // Everything in cluster 1.
    std::vector<ClusterId> assign(
        static_cast<size_t>(k.ddg.numOps()), 1);
    SchedOutcome out = scheduleImsFixed(k.ddg, m, assign);
    ASSERT_TRUE(out.ok);
    for (OpId id = 0; id < k.ddg.numOps(); ++id)
        EXPECT_EQ(out.schedule->clusterOf(id), 1);
    checkSchedule(k.ddg, m, *out.schedule);
}

TEST(ImsFixed, SplitAssignmentUsesBothClusters)
{
    // daxpy: ld x (0), ld y (1), mul (2), add (3), st (4).
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::clusteredRing(2);
    std::vector<ClusterId> assign{0, 1, 0, 1, 1};
    SchedOutcome out = scheduleImsFixed(k.ddg, m, assign);
    ASSERT_TRUE(out.ok);
    checkSchedule(k.ddg, m, *out.schedule);
    EXPECT_EQ(out.schedule->clusterOf(0), 0);
    EXPECT_EQ(out.schedule->clusterOf(4), 1);
    // Two L/S units now: ResMII 2 for the three memory ops.
    EXPECT_LE(out.ii, 3);
}

TEST(Ims, UnclusteredIgnoresCommunication)
{
    // A deep chain schedules fine on one cluster (no comm rules).
    LoopBuilder b;
    OpId v = b.load(0);
    for (int i = 0; i < 12; ++i)
        v = b.add1(v);
    b.store(1, v);
    Ddg g = b.take();
    MachineModel m = MachineModel::unclustered(1);
    SchedOutcome out = scheduleIms(g, m);
    ASSERT_TRUE(out.ok);
    checkSchedule(g, m, *out.schedule);
}

TEST(DefaultMaxII, GrowsWithMii)
{
    EXPECT_GT(defaultMaxII(1), 1);
    EXPECT_GT(defaultMaxII(10), defaultMaxII(1));
}

} // namespace
} // namespace dms
