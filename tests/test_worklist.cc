/**
 * @file
 * Worklist tests: pop order against a brute-force reference
 * (highest height first, ties to lowest id) over random height
 * tables, re-push deduplication, and the rank-compressed path for
 * sparse height ranges that would previously have tripped the
 * dense bucket array's range limit.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sched/worklist.h"
#include "support/rng.h"

namespace {

using namespace dms;

/** A DDG of n independent add ops (heights come from the table). */
Ddg
flatDdg(int n)
{
    Ddg ddg;
    for (int i = 0; i < n; ++i)
        ddg.addOp(Opcode::Add);
    return ddg;
}

/** Brute-force reference order: height desc, id asc. */
std::vector<OpId>
referenceOrder(const Heights &heights, int n)
{
    std::vector<OpId> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](OpId a, OpId b) {
                         return heights[static_cast<size_t>(a)] >
                                heights[static_cast<size_t>(b)];
                     });
    return order;
}

TEST(Worklist, PopOrderMatchesBruteForce)
{
    Rng rng(0x11aa22u);
    for (int round = 0; round < 50; ++round) {
        const int n = rng.range(1, 40);
        Ddg ddg = flatDdg(n);
        Heights heights(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            heights[static_cast<size_t>(i)] =
                rng.range(-20, 20); // dense path, duplicates likely
        }
        Worklist wl;
        wl.build(ddg, heights);
        EXPECT_EQ(wl.size(), n);
        for (OpId expect : referenceOrder(heights, n))
            EXPECT_EQ(wl.pop(), expect);
        EXPECT_TRUE(wl.empty());
        EXPECT_EQ(wl.pop(), kInvalidOp);
    }
}

TEST(Worklist, SparseHeightsUseBoundedBuckets)
{
    // Height ranges far beyond the old 1<<24 dense-array limit:
    // rank compression keeps the bucket count at the number of
    // distinct heights, and the order is unchanged.
    Rng rng(0x33bb44u);
    const int n = 64;
    Ddg ddg = flatDdg(n);
    Heights heights(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        std::int64_t h =
            static_cast<std::int64_t>(rng.range(0, 1 << 30)) *
            rng.range(1, 1 << 10);
        heights[static_cast<size_t>(i)] = h;
    }
    heights[0] = heights[1]; // at least one duplicate

    Worklist wl;
    wl.build(ddg, heights);
    for (OpId expect : referenceOrder(heights, n))
        EXPECT_EQ(wl.pop(), expect);
    EXPECT_TRUE(wl.empty());
}

TEST(Worklist, RepushDeduplicatesAndReorders)
{
    const int n = 8;
    Ddg ddg = flatDdg(n);
    Heights heights = {5, 3, 9, 3, 7, 1, 9, 2};

    Worklist wl;
    wl.build(ddg, heights);
    EXPECT_EQ(wl.pop(), 2); // height 9, lowest id
    EXPECT_EQ(wl.pop(), 6); // height 9
    EXPECT_EQ(wl.pop(), 4); // height 7

    // Re-push an evicted op; duplicate pushes collapse.
    wl.push(2);
    wl.push(2);
    EXPECT_EQ(wl.size(), n - 2);
    EXPECT_EQ(wl.pop(), 2);
    EXPECT_EQ(wl.pop(), 0); // height 5
    EXPECT_EQ(wl.pop(), 1); // height 3, id 1 before id 3
    EXPECT_EQ(wl.pop(), 3);
    EXPECT_EQ(wl.pop(), 7);
    EXPECT_EQ(wl.pop(), 5);
    EXPECT_TRUE(wl.empty());
}

} // namespace
