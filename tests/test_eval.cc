/**
 * @file
 * Evaluation harness: per-loop runs, the matrix, and figure
 * generation on a reduced suite (integration-level).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "eval/figures.h"
#include "eval/runner.h"

namespace dms {
namespace {

RunnerOptions
quickOptions(int max_clusters)
{
    RunnerOptions opts;
    opts.maxClusters = max_clusters;
    opts.progress = false;
    return opts;
}

TEST(Runner, UnclusteredLoopRun)
{
    Loop k = kernelDaxpy();
    LoopRun run = runLoopUnclustered(k, 2, SchedParams{}, true);
    ASSERT_TRUE(run.ok);
    EXPECT_GE(run.ii, run.mii);
    EXPECT_GE(run.unrollFactor, 1);
    EXPECT_GT(run.cycles, 0);
    EXPECT_GT(run.usefulIssues, 0);
    EXPECT_EQ(run.movesInserted, 0);
    EXPECT_EQ(run.copiesInserted, 0);
}

TEST(Runner, ClusteredLoopRun)
{
    Loop k = kernelFir8();
    LoopRun run = runLoopClustered(k, 4, DmsParams{}, true);
    ASSERT_TRUE(run.ok);
    EXPECT_GE(run.ii, run.mii);
    EXPECT_GT(run.cycles, 0);
}

TEST(Runner, IterationsAccountForUnrolling)
{
    Loop k = kernelDaxpy();
    k.tripCount = 100;
    LoopRun narrow = runLoopUnclustered(k, 1, SchedParams{}, true);
    LoopRun wide = runLoopUnclustered(k, 8, SchedParams{}, true);
    ASSERT_TRUE(narrow.ok && wide.ok);
    EXPECT_EQ(narrow.iterations * narrow.unrollFactor >= 100, true);
    EXPECT_EQ(wide.iterations * wide.unrollFactor >= 100, true);
    EXPECT_LT(wide.cycles, narrow.cycles);
}

TEST(Runner, MatrixShape)
{
    auto suite = standardSuite(kSuiteSeed, 6);
    auto matrix = runMatrix(suite, quickOptions(3));
    ASSERT_EQ(matrix.size(), 3u);
    for (size_t c = 0; c < matrix.size(); ++c) {
        EXPECT_EQ(matrix[c].clusters, static_cast<int>(c) + 1);
        EXPECT_EQ(matrix[c].unclustered.size(), suite.size());
        EXPECT_EQ(matrix[c].clustered.size(), suite.size());
    }
}

TEST(Runner, ClusteredNeverBeatsUnclusteredIi)
{
    // The unclustered machine is a relaxation of the clustered one
    // (no comm constraints, no copies): its II is a lower bound.
    auto suite = standardSuite(kSuiteSeed, 10);
    auto matrix = runMatrix(suite, quickOptions(4));
    for (const ConfigRun &cfg : matrix) {
        for (size_t i = 0; i < suite.size(); ++i) {
            ASSERT_TRUE(cfg.unclustered[i].ok);
            ASSERT_TRUE(cfg.clustered[i].ok);
            EXPECT_LE(cfg.unclustered[i].ii, cfg.clustered[i].ii)
                << suite[i].name << " @ " << cfg.clusters;
        }
    }
}

TEST(Runner, EnvOverride)
{
    ::setenv("DMS_SUITE_COUNT", "77", 1);
    EXPECT_EQ(suiteCountFromEnv(1258), 77);
    ::unsetenv("DMS_SUITE_COUNT");
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::setenv("DMS_SUITE_COUNT", "garbage", 1);
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::unsetenv("DMS_SUITE_COUNT");
}

TEST(Runner, EnvOverrideRejectsTrailingGarbageAndOverflow)
{
    // "12x" must not silently become 12 (the old atoi behavior).
    ::setenv("DMS_SUITE_COUNT", "12x", 1);
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::setenv("DMS_SUITE_COUNT", "99999999999999999999", 1);
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::setenv("DMS_SUITE_COUNT", "5000000000", 1); // > INT_MAX
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::setenv("DMS_SUITE_COUNT", "-5", 1);
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::setenv("DMS_SUITE_COUNT", "0", 1);
    EXPECT_EQ(suiteCountFromEnv(1258), 1258);
    ::setenv("DMS_SUITE_COUNT", " 42 ", 1); // whitespace is fine
    EXPECT_EQ(suiteCountFromEnv(1258), 42);
    ::unsetenv("DMS_SUITE_COUNT");
}

TEST(Runner, MatrixDeterministicAcrossJobCounts)
{
    // Same seed + same suite => identical ConfigRun results at
    // jobs=1 and jobs=N: every cell is an independent deterministic
    // scheduling problem writing its own pre-sized slot.
    auto suite = standardSuite(kSuiteSeed, 8);
    RunnerOptions serial = quickOptions(3);
    serial.jobs = 1;
    auto base = runMatrix(suite, serial);
    for (int jobs : {2, 4, 8}) {
        RunnerOptions par = quickOptions(3);
        par.jobs = jobs;
        auto m = runMatrix(suite, par);
        ASSERT_EQ(m.size(), base.size()) << "jobs=" << jobs;
        for (size_t c = 0; c < m.size(); ++c)
            EXPECT_EQ(m[c], base[c])
                << "config " << c << " jobs=" << jobs;
    }
}

TEST(Runner, MatrixHonorsDmsJobsEnv)
{
    // jobs=0 defers to DMS_JOBS; garbage falls back safely. The
    // result must match the serial matrix either way.
    auto suite = standardSuite(kSuiteSeed, 5);
    RunnerOptions serial = quickOptions(2);
    serial.jobs = 1;
    auto base = runMatrix(suite, serial);

    ::setenv("DMS_JOBS", "3", 1);
    RunnerOptions env = quickOptions(2);
    env.jobs = 0;
    auto m = runMatrix(suite, env);
    ::unsetenv("DMS_JOBS");
    ASSERT_EQ(m.size(), base.size());
    for (size_t c = 0; c < m.size(); ++c)
        EXPECT_EQ(m[c], base[c]);
}

TEST(Figures, Figure4RowsAndBounds)
{
    auto suite = standardSuite(kSuiteSeed, 12);
    auto matrix = runMatrix(suite, quickOptions(4));
    Table t = figure4(suite, matrix);
    std::string csv = t.csv();
    // Header + one row per cluster count.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
    EXPECT_NE(csv.find("clusters"), std::string::npos);
}

TEST(Figures, Figure5NormalizesTo100)
{
    auto suite = standardSuite(kSuiteSeed, 12);
    auto matrix = runMatrix(suite, quickOptions(3));
    Table t = figure5(suite, matrix);
    std::string csv = t.csv();
    // First data row starts at FUs=3 with 100.00 for unclustered.
    EXPECT_NE(csv.find("3,100.00"), std::string::npos);
}

TEST(Figures, Figure6IpcWithinMachineWidth)
{
    auto suite = standardSuite(kSuiteSeed, 12);
    auto matrix = runMatrix(suite, quickOptions(3));
    auto set1 = selectSet(suite, LoopSet::Set1);
    for (const ConfigRun &cfg : matrix) {
        double ipc = aggregateIpc(cfg.unclustered, set1);
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, cfg.clusters * 3.0);
    }
    Table t = figure6(suite, matrix);
    EXPECT_FALSE(t.csv().empty());
}

TEST(Figures, CyclesMonotoneInMachineWidth)
{
    // More FUs never slow the unclustered machine down (same
    // unrolled body or better).
    auto suite = standardSuite(kSuiteSeed, 10);
    auto matrix = runMatrix(suite, quickOptions(4));
    auto set1 = selectSet(suite, LoopSet::Set1);
    double prev = 0.0;
    for (size_t c = 0; c < matrix.size(); ++c) {
        double cyc = totalCycles(matrix[c].unclustered, set1);
        if (c > 0) {
            EXPECT_LE(cyc, prev * 1.02); // small slack for ceil()
        }
        prev = cyc;
    }
}

} // namespace
} // namespace dms
