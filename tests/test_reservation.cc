/**
 * @file
 * Invariant suite for the incremental reservation table: the O(1)
 * free-instance masks, row bitmasks and free-slot counters must
 * agree with a brute-force scan of the raw slots after any sequence
 * of place/clear operations, and firstFreeCycle() must match the
 * linear window probe it replaced.
 */

#include <gtest/gtest.h>

#include "machine/machine.h"
#include "machine/reservation.h"
#include "support/rng.h"

namespace {

using namespace dms;

/** Brute-force first free instance at (cluster, cls, row). */
int
bruteFreeInstance(const ReservationTable &rt,
                  const MachineModel &machine, ClusterId c,
                  FuClass cls, int row)
{
    for (int i = 0; i < machine.fusPerCluster(cls); ++i) {
        if (rt.at(c, cls, i, row) == kInvalidOp)
            return i;
    }
    return -1;
}

/** Brute-force free slots of (cluster, cls). */
int
bruteFreeSlotCount(const ReservationTable &rt,
                   const MachineModel &machine, ClusterId c,
                   FuClass cls)
{
    int n = 0;
    for (int i = 0; i < machine.fusPerCluster(cls); ++i) {
        for (int row = 0; row < rt.ii(); ++row) {
            if (rt.at(c, cls, i, row) == kInvalidOp)
                ++n;
        }
    }
    return n;
}

/** Brute-force linear probe of [early, early + II). */
Cycle
bruteFirstFreeCycle(const ReservationTable &rt,
                    const MachineModel &machine, ClusterId c,
                    FuClass cls, Cycle early)
{
    for (Cycle t = early; t < early + rt.ii(); ++t) {
        if (bruteFreeInstance(rt, machine, c, cls, t % rt.ii()) >= 0)
            return t;
    }
    return kUnscheduled;
}

/** Check every derived structure against the raw slots. */
void
checkAllInvariants(const ReservationTable &rt,
                   const MachineModel &machine)
{
    for (ClusterId c = 0; c < machine.numClusters(); ++c) {
        for (int cl = 0; cl < kNumFuClasses; ++cl) {
            FuClass cls = static_cast<FuClass>(cl);
            ASSERT_EQ(rt.freeSlotCount(c, cls),
                      bruteFreeSlotCount(rt, machine, c, cls))
                << "freeSlotCount(c" << c << "," << fuClassName(cls)
                << ")";
            for (int row = 0; row < rt.ii(); ++row) {
                int brute =
                    bruteFreeInstance(rt, machine, c, cls, row);
                ASSERT_EQ(rt.freeInstance(c, cls, row), brute)
                    << "freeInstance(c" << c << ","
                    << fuClassName(cls) << ",row" << row << ")";
                ASSERT_EQ(rt.hasFree(c, cls, row), brute >= 0);
            }
            if (machine.fusPerCluster(cls) == 0)
                continue;
            for (Cycle early : {0, 1, rt.ii() - 1, rt.ii(),
                                3 * rt.ii() + 1, 1000}) {
                ASSERT_EQ(
                    rt.firstFreeCycle(c, cls, early),
                    bruteFirstFreeCycle(rt, machine, c, cls, early))
                    << "firstFreeCycle(c" << c << ","
                    << fuClassName(cls) << ",early" << early
                    << ") at II " << rt.ii();
            }
        }
    }
}

/** One occupied slot, for replayable randomized place/clear. */
struct Occupied
{
    OpId op;
    ClusterId cluster;
    FuClass cls;
    int instance;
    int row;
};

/**
 * Drive a random place/clear sequence, checking the invariants
 * after every burst of mutations.
 */
void
fuzzTable(const MachineModel &machine, int ii, std::uint64_t seed,
          int steps)
{
    Rng rng(seed);
    ReservationTable rt(machine, ii);
    std::vector<Occupied> live;
    OpId next_op = 0;

    for (int s = 0; s < steps; ++s) {
        bool place = live.empty() || rng.chance(0.6);
        if (place) {
            ClusterId c = rng.range(0, machine.numClusters() - 1);
            FuClass cls =
                static_cast<FuClass>(rng.range(0, kNumFuClasses - 1));
            if (machine.fusPerCluster(cls) == 0)
                continue;
            int row = rng.range(0, ii - 1);
            int inst = rt.freeInstance(c, cls, row);
            if (inst < 0)
                continue; // row full; try another step
            OpId op = next_op++;
            rt.place(op, c, cls, inst, row);
            live.push_back({op, c, cls, inst, row});
        } else {
            size_t pick = static_cast<size_t>(
                rng.range(0, static_cast<int>(live.size()) - 1));
            Occupied o = live[pick];
            live[pick] = live.back();
            live.pop_back();
            rt.clear(o.op, o.cluster, o.cls, o.instance, o.row);
        }
        if (s % 7 == 0)
            checkAllInvariants(rt, machine);
    }
    checkAllInvariants(rt, machine);

    // Reset must restore an all-free table at a new II and keep the
    // invariants across a second fuzzing round.
    int ii2 = (ii % 5) + 1;
    rt.reset(ii2);
    for (ClusterId c = 0; c < machine.numClusters(); ++c) {
        for (int cl = 0; cl < kNumFuClasses; ++cl) {
            FuClass cls = static_cast<FuClass>(cl);
            EXPECT_EQ(rt.freeSlotCount(c, cls),
                      machine.fusPerCluster(cls) * ii2);
        }
    }
    checkAllInvariants(rt, machine);
}

TEST(ReservationInvariants, ClusteredSmallII)
{
    fuzzTable(MachineModel::clusteredRing(4), 3, 0x1234, 400);
}

TEST(ReservationInvariants, ClusteredMultiCopyUnits)
{
    fuzzTable(MachineModel::clusteredRing(3, 4), 5, 0x5678, 400);
}

TEST(ReservationInvariants, UnclusteredWide)
{
    fuzzTable(MachineModel::unclustered(8), 4, 0x9abc, 400);
}

TEST(ReservationInvariants, IiCrossesWordBoundary)
{
    // II 65 and 130 exercise multi-word row bitmasks, including the
    // wrap-around scan of firstFreeCycle.
    fuzzTable(MachineModel::clusteredRing(2), 65, 0xdef0, 600);
    fuzzTable(MachineModel::clusteredRing(2), 130, 0x1357, 600);
}

TEST(ReservationInvariants, IiOne)
{
    fuzzTable(MachineModel::clusteredRing(2), 1, 0x2468, 100);
}

TEST(ReservationInvariants, FullRowThenWrap)
{
    // Deterministic corner: fill every Add row except a wrapped
    // one and check the circular search lands there.
    MachineModel m = MachineModel::clusteredRing(2);
    ReservationTable rt(m, 4);
    // Rows 1, 2, 3 of cluster 0's single adder occupied; row 0 free.
    rt.place(10, 0, FuClass::Add, 0, 1);
    rt.place(11, 0, FuClass::Add, 0, 2);
    rt.place(12, 0, FuClass::Add, 0, 3);
    // Searching from early = 2 must wrap past rows 2, 3 to row 0 at
    // cycle 4.
    EXPECT_EQ(rt.firstFreeCycle(0, FuClass::Add, 2), 4);
    // From early = 0 the free row is immediate.
    EXPECT_EQ(rt.firstFreeCycle(0, FuClass::Add, 0), 0);
    rt.place(13, 0, FuClass::Add, 0, 0);
    EXPECT_EQ(rt.firstFreeCycle(0, FuClass::Add, 0), kUnscheduled);
    EXPECT_EQ(rt.firstFreeCycle(0, FuClass::Add, 7), kUnscheduled);
    rt.clear(11, 0, FuClass::Add, 0, 2);
    EXPECT_EQ(rt.firstFreeCycle(0, FuClass::Add, 3), 6);
}

} // namespace
