/**
 * @file
 * Deterministic corruption fuzzing of the textual front doors. The
 * contract under test: a machine description or loop body with
 * arbitrary bytes flipped, inserted, deleted or truncated either
 * still parses or produces a *located* diagnostic through the lint
 * entry points — it never crashes, hangs, or reports a line number
 * outside the text. A fixed xorshift stream keeps every run
 * identical, so a failure is a plain regression, not a flake.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/analyze.h"
#include "machine/desc.h"
#include "workload/kernels.h"
#include "workload/text.h"

namespace dms {
namespace {

/** xorshift64*: tiny, seedable, platform-stable. */
struct FuzzRng
{
    std::uint64_t state;

    explicit FuzzRng(std::uint64_t seed) : state(seed | 1) {}

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1DULL;
    }

    /** Uniform-ish in [0, n). */
    std::size_t
    below(std::size_t n)
    {
        return static_cast<std::size_t>(next() % n);
    }
};

/** Bytes the corruptor may write: printable, separators, controls. */
char
fuzzByte(FuzzRng &rng)
{
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 =#\t\n\r-$";
    return kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
}

/** Flip / insert / delete 1-4 bytes, or truncate. */
std::string
corrupt(const std::string &text, FuzzRng &rng)
{
    std::string out = text;
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < edits && !out.empty(); ++i) {
        const std::size_t pos = rng.below(out.size());
        switch (rng.below(4)) {
        case 0:
            out[pos] = fuzzByte(rng);
            break;
        case 1:
            out.insert(pos, 1, fuzzByte(rng));
            break;
        case 2:
            out.erase(pos, 1);
            break;
        default:
            out.resize(pos);
            break;
        }
    }
    return out;
}

int
lineCount(const std::string &text)
{
    int lines = 1;
    for (char c : text) {
        if (c == '\n')
            ++lines;
    }
    return lines;
}

/** Every diagnostic's line must point inside the corrupted text. */
void
expectLocated(const DiagnosticSink &sink, const std::string &text,
              std::uint64_t seed)
{
    for (const Diagnostic &d : sink.diagnostics()) {
        EXPECT_GE(d.loc.line, 0) << "seed " << seed;
        EXPECT_LE(d.loc.line, lineCount(text))
            << "seed " << seed << ": " << d.render();
    }
}

TEST(LintFuzz, CorruptedMachineTextParsesOrDiagnoses)
{
    const std::string seedText =
        machineToText(MachineModel::clusteredRing(4));
    for (std::uint64_t seed = 1; seed <= 400; ++seed) {
        FuzzRng rng(seed * 0x9E3779B97F4A7C15ULL);
        const std::string text = corrupt(seedText, rng);
        MachineModel parsed = MachineModel::unclustered(1);
        std::string error;
        const bool ok = machineFromText(text, parsed, error);

        DiagnosticSink sink;
        lintMachineText(text, "fuzz.machine", sink);
        if (!ok) {
            // A reject must surface as a parse diagnostic; lint
            // and the parser must agree on rejection.
            EXPECT_TRUE(!sink.empty()) << "seed " << seed;
        }
        expectLocated(sink, text, seed);
    }
}

TEST(LintFuzz, CorruptedLoopTextParsesOrDiagnoses)
{
    const std::string seedText = loopToText(kernelDaxpy());
    for (std::uint64_t seed = 1; seed <= 400; ++seed) {
        FuzzRng rng(seed * 0xBF58476D1CE4E5B9ULL);
        const std::string text = corrupt(seedText, rng);
        Loop loop;
        std::string error;
        const bool ok = loopFromText(text, loop, error);

        DiagnosticSink sink;
        lintLoopText(text, "fuzz.loop", sink);
        if (!ok) {
            EXPECT_TRUE(!sink.empty()) << "seed " << seed;
        }
        expectLocated(sink, text, seed);
    }
}

TEST(LintFuzz, CorruptedTemplateExpandsOrDiagnoses)
{
    const std::string seedText =
        "machine sweep\n"
        "clusters $C\n"
        "topology ring\n"
        "regfile queues\n"
        "fus ldst=1 add=1 mul=1 copy=1\n";
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        FuzzRng rng(seed * 0x94D049BB133111EBULL);
        const std::string text = corrupt(seedText, rng);
        DiagnosticSink sink;
        lintMachineTemplate(text, "fuzz.mtmpl", sink);
        expectLocated(sink, text, seed);
    }
}

} // namespace
} // namespace dms
