/**
 * @file
 * Compile-service tests: env-knob hardening, cold/warm parity
 * (bit-identical cached results), single-flight dedup under
 * concurrent duplicate requests (the ASan/TSan-relevant hammer),
 * sweep routing equivalence, capacity eviction, and graceful
 * rejection of malformed requests.
 */

#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "codegen/emit.h"
#include "core/dms.h"
#include "eval/runner.h"
#include "machine/desc.h"
#include "sched/mii.h"
#include "sched/scheduler.h"
#include "serve/cache.h"
#include "serve/service.h"
#include "support/strings.h"
#include "workload/suite.h"
#include "workload/text.h"

namespace dms {
namespace {

/** Canonical request for one named kernel on the paper's ring. */
CompileRequest
kernelRequest(const char *kernel, bool codegen = true)
{
    Loop loop;
    std::string error;
    EXPECT_TRUE(loadLoopSpec(
        (std::string("kernel:") + kernel).c_str(), loop, error))
        << error;
    PipelineOptions po;
    po.scheduler = "dms";
    po.regalloc = true;
    po.codegen = codegen;
    return makeRequest(loop, MachineModel::clusteredRing(4), po);
}

TEST(ServeOptionsEnv, StrictKnobParsing)
{
    // Garbage, trailing junk, overflow and out-of-range values all
    // fall back to the defaults (same strict path as DMS_JOBS).
    ::setenv("DMS_SERVE_QUEUE_DEPTH", "12x", 1);
    ::setenv("DMS_SERVE_SHARDS", "99999999999999", 1);
    ::setenv("DMS_SERVE_CACHE_CAP", "0", 1);
    ::setenv("DMS_SERVE_WORKERS", "banana", 1);
    ServeOptions defaults;
    ServeOptions opts = ServeOptions::fromEnv();
    EXPECT_EQ(opts.queueDepth, defaults.queueDepth);
    EXPECT_EQ(opts.shards, defaults.shards);
    EXPECT_EQ(opts.cacheCapacity, defaults.cacheCapacity);
    EXPECT_EQ(opts.workers, defaults.workers);

    ::setenv("DMS_SERVE_QUEUE_DEPTH", "17", 1);
    ::setenv("DMS_SERVE_SHARDS", "3", 1);
    ::setenv("DMS_SERVE_CACHE_CAP", "100", 1);
    ::setenv("DMS_SERVE_WORKERS", "2", 1);
    opts = ServeOptions::fromEnv();
    EXPECT_EQ(opts.queueDepth, 17);
    EXPECT_EQ(opts.shards, 3);
    EXPECT_EQ(opts.cacheCapacity, 100);
    EXPECT_EQ(opts.workers, 2);

    ::unsetenv("DMS_SERVE_QUEUE_DEPTH");
    ::unsetenv("DMS_SERVE_SHARDS");
    ::unsetenv("DMS_SERVE_CACHE_CAP");
    ::unsetenv("DMS_SERVE_WORKERS");
}

TEST(ServeCache, FnvMatchesReference)
{
    // FNV-1a reference values (RFC draft test vectors).
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

/**
 * The acceptance-criteria parity test: a warm cache hit returns
 * results bit-identical to the cold compile — the same LoopRun
 * (every placement-derived field) and the same emitted kernel text
 * — and identical to the direct (service-less) pipeline.
 */
TEST(Serve, WarmHitBitIdenticalToColdCompile)
{
    ServeOptions so;
    so.workers = 2;
    CompileService service(so);

    CompileRequest req = kernelRequest("fir8");
    CompileService::ResultPtr cold = service.compile(req);
    ASSERT_TRUE(cold->parsed);
    ASSERT_TRUE(cold->ok);

    CompileService::Ticket warm_ticket = service.submit(req);
    EXPECT_EQ(warm_ticket.source, CompileService::Source::Hit);
    CompileService::ResultPtr warm = warm_ticket.future.get();

    // A hit returns the *same* cached object...
    EXPECT_EQ(warm.get(), cold.get());
    // ...and the direct pipeline produces the identical artifacts.
    Loop loop;
    std::string error;
    ASSERT_TRUE(loadLoopSpec("kernel:fir8", loop, error));
    MachineModel machine = MachineModel::clusteredRing(4);
    PipelineOptions po;
    po.scheduler = "dms";
    po.regalloc = true;
    po.codegen = true;
    Pipeline pipeline(po);
    CompilationContext ctx;
    LoopRun direct = runLoop(pipeline, loop, machine, ctx);
    EXPECT_TRUE(warm->run == direct);
    std::string direct_kernel = emitPipelinedCode(
        ctx.scheduledDdg(), machine, ctx.kernel,
        ctx.queuesValid ? &ctx.queues : nullptr);
    EXPECT_EQ(warm->kernelText, direct_kernel);
    EXPECT_FALSE(warm->kernelText.empty());

    ServeStats stats = service.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

/** Different spellings of one request land on one cache entry. */
TEST(Serve, CanonicalizationUnifiesSpellings)
{
    ServeOptions so;
    so.workers = 1;
    CompileService service(so);

    CompileRequest req = kernelRequest("daxpy",
                                       /*codegen=*/false);
    CompileService::ResultPtr first = service.compile(req);
    ASSERT_TRUE(first->ok);

    // Same loop, different spelling: comments, blank lines, and a
    // gap in the op numbering (ids 10, 20, ... instead of dense).
    CompileRequest alias = req;
    std::string respelled = "# a comment\n";
    for (const std::string &line : split(req.loopText, '\n')) {
        respelled += line;
        respelled += "\n\n";
    }
    alias.loopText = respelled;
    CompileService::Ticket t = service.submit(alias);
    EXPECT_EQ(t.source, CompileService::Source::Hit);
    EXPECT_EQ(t.future.get().get(), first.get());
}

/**
 * The hammer: many threads submit the same requests concurrently.
 * Single-flight dedup must compile each distinct request exactly
 * once, every duplicate must coalesce or hit, and every client
 * must see the same result object. Run under the ASan/UBSan CI
 * job, this is also the data-race check for the queue and cache.
 */
TEST(Serve, SingleFlightDedupUnderConcurrency)
{
    ServeOptions so;
    so.workers = 3;
    so.queueDepth = 8; // small: exercise producer backpressure
    CompileService service(so);

    const char *kernels[] = {"fir8", "daxpy", "iir2", "horner"};
    constexpr int kClients = 8;
    constexpr int kPerClient = 40;

    std::vector<CompileRequest> requests;
    for (const char *k : kernels)
        requests.push_back(kernelRequest(k));

    std::vector<CompileService::ResultPtr>
        seen(kClients * kPerClient);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kPerClient; ++i) {
                const CompileRequest &req =
                    requests[static_cast<size_t>(i) %
                             requests.size()];
                seen[static_cast<size_t>(c * kPerClient + i)] =
                    service.compile(req);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    // Every duplicate resolved to the one cached object per key.
    for (int i = 0; i < kClients * kPerClient; ++i) {
        size_t key = static_cast<size_t>(i) % requests.size();
        ASSERT_TRUE(seen[static_cast<size_t>(i)] != nullptr);
        EXPECT_EQ(seen[static_cast<size_t>(i)].get(),
                  seen[key].get());
    }

    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients * kPerClient));
    // Exactly one cold compile per distinct request; everything
    // else was deduplicated (hit or coalesced).
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits + stats.coalesced,
              stats.requests - stats.misses);
    EXPECT_EQ(stats.invalid, 0u);
}

/** Malformed requests are rejected without killing the service. */
TEST(Serve, InvalidRequestsRejectedGracefully)
{
    ServeOptions so;
    so.workers = 1;
    CompileService service(so);

    CompileRequest bad;
    bad.loopText = "op 0 frobnicate\n";
    bad.machineText = machineToText(MachineModel::clusteredRing(2));
    CompileService::ResultPtr r = service.compile(bad);
    EXPECT_FALSE(r->parsed);
    EXPECT_NE(r->error.find("unknown opcode"), std::string::npos);

    CompileRequest bad_machine = kernelRequest("daxpy");
    bad_machine.machineText = "clusters banana\n";
    r = service.compile(bad_machine);
    EXPECT_FALSE(r->parsed);
    EXPECT_FALSE(r->error.empty());

    // Unknown scheduler names and scheduler/machine mismatches
    // are data errors too: rejected in submit(), never handed to
    // a worker (whose fatal() would kill the whole service).
    CompileRequest bad_sched = kernelRequest("daxpy");
    bad_sched.options.scheduler = "bogus";
    r = service.compile(bad_sched);
    EXPECT_FALSE(r->parsed);
    EXPECT_NE(r->error.find("unknown scheduler"),
              std::string::npos);

    CompileRequest mismatched = kernelRequest("daxpy");
    mismatched.options.scheduler = "dms";
    mismatched.machineText =
        machineToText(MachineModel::unclustered(4));
    r = service.compile(mismatched);
    EXPECT_FALSE(r->parsed);
    EXPECT_NE(r->error.find("does not support"),
              std::string::npos);

    // The service still works afterwards.
    CompileService::ResultPtr good =
        service.compile(kernelRequest("daxpy"));
    EXPECT_TRUE(good->ok);
    EXPECT_EQ(service.stats().invalid, 4u);
}

/**
 * Flow-edge latencies in the loop text come from the machine's
 * latency model (overrides included), so a request against a
 * `latency`-overridden machine schedules with the same edges the
 * direct pipeline sees for a loop built against that model.
 */
TEST(Serve, MachineLatencyModelShapesFlowEdges)
{
    std::string machine_text = "clusters 2\n"
                               "topology ring\n"
                               "regfile queues\n"
                               "fus ldst=1 add=1 mul=1 copy=1\n"
                               "latency mul=5\n";
    MachineModel machine = machineFromTextOrDie(machine_text);

    CompileRequest req;
    req.loopText = loopToText(kernelIir2());
    req.machineText = machine_text;
    req.options.scheduler = "dms";
    req.options.regalloc = true;

    ServeOptions so;
    so.workers = 1;
    CompileService service(so);
    CompileService::ResultPtr served = service.compile(req);
    ASSERT_TRUE(served->parsed) << served->error;
    ASSERT_TRUE(served->ok);

    Loop direct_loop =
        loopFromText(req.loopText, machine.latency());
    PipelineOptions po;
    po.scheduler = "dms";
    po.regalloc = true;
    Pipeline pipeline(po);
    CompilationContext ctx;
    LoopRun direct = runLoop(pipeline, direct_loop, machine, ctx);
    EXPECT_TRUE(served->run == direct);
    // The override actually bit: iir2's recurrence runs through a
    // mul, so mul=5 pushes the recurrence-bound II beyond the
    // default-latency machine's.
    CompilationContext ctx2;
    LoopRun default_lat = runLoop(
        pipeline, loopFromText(req.loopText),
        MachineModel::clusteredRing(2), ctx2);
    EXPECT_GT(direct.ii, default_lat.ii);
}

/** Capacity-bounded: old ready entries are evicted and recompile. */
TEST(Serve, EvictionRecompilesEvictedKeys)
{
    ServeOptions so;
    so.workers = 1;
    so.shards = 1; // one shard => strict FIFO eviction order
    so.cacheCapacity = 2;
    CompileService service(so);

    const char *kernels[] = {"fir8", "daxpy", "iir2", "horner"};
    for (const char *k : kernels)
        ASSERT_TRUE(service.compile(kernelRequest(k))->ok) << k;
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_GT(stats.evictions, 0u);

    // fir8 was evicted: recompiles (a miss, not a hit) and still
    // produces the bit-identical result.
    CompileService::ResultPtr again =
        service.compile(kernelRequest("fir8"));
    stats = service.stats();
    EXPECT_EQ(stats.misses, 5u);
    EXPECT_TRUE(again->ok);
}

// --- eviction policies --------------------------------------------------

/** Insert @p key as a ready entry with the given compile cost. */
void
insertReady(ResultCache &cache, const std::string &key,
            double costMs = 1.0)
{
    std::shared_ptr<CacheEntry> entry;
    ASSERT_EQ(cache.acquire(key, fnv1a64(key), entry),
              ResultCache::Lookup::Inserted)
        << key;
    entry->costMs.store(costMs, std::memory_order_relaxed);
    entry->ready.store(true, std::memory_order_release);
    entry->promise.set_value(std::make_shared<CompileResult>());
}

bool
resident(ResultCache &cache, const std::string &key)
{
    return cache.find(key, fnv1a64(key)) != nullptr;
}

/** LRU: a find() refreshes recency, so the victim is the coldest. */
TEST(CacheEviction, LruEvictsLeastRecentlyTouched)
{
    ResultCache cache(/*shards=*/1, /*capacity=*/3,
                      EvictPolicy::Lru);
    insertReady(cache, "a");
    insertReady(cache, "b");
    insertReady(cache, "c");
    // Touch a then b: c is now the least recently used.
    EXPECT_TRUE(resident(cache, "a"));
    EXPECT_TRUE(resident(cache, "b"));
    insertReady(cache, "d");
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(resident(cache, "c"));
    EXPECT_TRUE(resident(cache, "a"));
    EXPECT_TRUE(resident(cache, "b"));
    EXPECT_TRUE(resident(cache, "d"));
}

/** FIFO ignores touches: insertion order alone picks the victim. */
TEST(CacheEviction, FifoIgnoresRecency)
{
    ResultCache cache(/*shards=*/1, /*capacity=*/3,
                      EvictPolicy::Fifo);
    insertReady(cache, "a");
    insertReady(cache, "b");
    insertReady(cache, "c");
    EXPECT_TRUE(resident(cache, "a")); // touch changes nothing
    insertReady(cache, "d");
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(resident(cache, "a"));
    EXPECT_TRUE(resident(cache, "b"));
}

/** Cost-aware keeps the expensive entries, evicts the cheap one. */
TEST(CacheEviction, CostEvictsTheCheapestEntry)
{
    ResultCache cache(/*shards=*/1, /*capacity=*/3,
                      EvictPolicy::Cost);
    insertReady(cache, "pricey", 400.0);
    insertReady(cache, "cheap", 2.0);
    insertReady(cache, "mid", 60.0);
    insertReady(cache, "new", 10.0);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(resident(cache, "cheap"));
    EXPECT_TRUE(resident(cache, "pricey"));
    EXPECT_TRUE(resident(cache, "mid"));
    EXPECT_TRUE(resident(cache, "new"));
}

TEST(CacheEviction, PolicyNamesRoundTrip)
{
    for (EvictPolicy p : {EvictPolicy::Fifo, EvictPolicy::Lru,
                          EvictPolicy::Cost}) {
        EvictPolicy back = EvictPolicy::Fifo;
        EXPECT_TRUE(evictPolicyFromName(evictPolicyName(p), back));
        EXPECT_EQ(back, p);
    }
    EvictPolicy p = EvictPolicy::Lru;
    EXPECT_FALSE(evictPolicyFromName("mru", p));
    EXPECT_EQ(p, EvictPolicy::Lru); // unchanged on reject
}

TEST(CacheEviction, EnvKnobSelectsThePolicy)
{
    ::setenv("DMS_SERVE_EVICT", "cost", 1);
    EXPECT_EQ(ServeOptions::fromEnv().eviction, EvictPolicy::Cost);
    ::setenv("DMS_SERVE_EVICT", "lru", 1);
    EXPECT_EQ(ServeOptions::fromEnv().eviction, EvictPolicy::Lru);
    // Unknown names warn and keep the default.
    ::setenv("DMS_SERVE_EVICT", "banana", 1);
    EXPECT_EQ(ServeOptions::fromEnv().eviction, EvictPolicy::Fifo);
    ::unsetenv("DMS_SERVE_EVICT");
}

/**
 * Sweep routing: a matrix run through the service must be
 * bit-identical to the direct path, and a second run must be
 * served from the cache.
 */
TEST(Serve, MatrixViaServiceBitIdentical)
{
    std::vector<Loop> suite = standardSuite(kSuiteSeed, 4);
    suite.resize(6); // 4 synth + 2 kernels: keep the test quick

    RunnerOptions direct;
    direct.maxClusters = 3;
    direct.progress = false;
    direct.jobs = 1;
    std::vector<ConfigRun> want = runMatrix(suite, direct);

    ServeOptions so;
    so.workers = 2;
    CompileService service(so);
    RunnerOptions routed = direct;
    routed.service = &service;
    std::vector<ConfigRun> got = runMatrix(suite, routed);
    EXPECT_TRUE(got == want);

    ServeStats after_first = service.stats();
    EXPECT_EQ(after_first.hits + after_first.coalesced, 0u);

    // Second sweep: every cell is a cache hit, same matrix.
    std::vector<ConfigRun> warm = runMatrix(suite, routed);
    EXPECT_TRUE(warm == want);
    ServeStats after_second = service.stats();
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_EQ(after_second.hits - after_first.hits,
              after_first.misses);
}

/**
 * DMS behind a deliberately corrupt RecMII hint: the regression
 * shape for the computeHeights budget-exhaustion panic. A hostile
 * knownRecMii below the true RecMII used to drive height relaxation
 * into its divergence budget and fatal() the worker — killing the
 * whole daemon. It must instead surface as a failed attempt
 * (recovered at a legal II) or, with a capped ladder, as a
 * structured Unschedulable result.
 */
class HostileHintScheduler : public Scheduler
{
  public:
    const char *name() const override { return "hostile-hints"; }

    bool
    supports(const MachineModel &machine) const override
    {
        return machine.clustered();
    }

    SchedulerResult
    schedule(const Ddg &body, const MachineModel &machine,
             const SchedulerConfig &config) override
    {
        DmsParams params = config.dms;
        params.knownRecMii = 1; // the lie: true RecMII is larger
        DmsOutcome out = scheduleDms(body, machine, params);
        SchedulerResult result;
        result.sched = std::move(out.sched);
        result.ddg = std::move(out.ddg);
        return result;
    }
};

std::unique_ptr<Scheduler>
makeHostileHintScheduler()
{
    return std::make_unique<HostileHintScheduler>();
}

TEST(Serve, HostileMiiHintIsRecoverableNotFatal)
{
    SchedulerRegistry::instance().add("hostile-hints",
                                      &makeHostileHintScheduler);

    // acc = acc * x + y: the two-op recurrence puts the true RecMII
    // (mul + add latency) well above the resource bound the hostile
    // hint lets the ladder start from.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId ml = b.mul1(ld);
    OpId ad = b.add1(ml);
    b.flow(ad, ml, 1, 1);
    b.store(1, ad);
    Loop loop;
    loop.name = "hostile";
    loop.ddg = b.take();
    const int rec = recMii(loop.ddg);
    ASSERT_GT(rec, 1);

    ServeOptions so;
    so.workers = 1;
    CompileService service(so);
    MachineModel machine = MachineModel::clusteredRing(2);

    PipelineOptions po;
    po.scheduler = "hostile-hints";

    // Uncapped ladder: the early rungs diverge (II below RecMII)
    // but count as failed attempts, and the ladder succeeds at a
    // legal II instead of taking the process down.
    CompileService::ResultPtr ok =
        service.compile(makeRequest(loop, machine, po));
    ASSERT_EQ(ok->status, CompileStatus::Ok);
    EXPECT_GE(ok->run.ii, rec);

    // Ladder capped below the true RecMII: every rung diverges and
    // the request resolves as structured Unschedulable.
    po.config.dms.maxII = rec - 1;
    CompileService::ResultPtr failed =
        service.compile(makeRequest(loop, machine, po));
    EXPECT_EQ(failed->status, CompileStatus::Unschedulable);
    EXPECT_FALSE(failed->ok);

    // The daemon survived: an ordinary request still compiles.
    CompileService::ResultPtr after =
        service.compile(kernelRequest("daxpy"));
    EXPECT_EQ(after->status, CompileStatus::Ok);
}

} // namespace
} // namespace dms
