/**
 * @file
 * Property-based sweeps: seeded random loops scheduled on random
 * machine shapes, asserting the invariants of the whole pipeline —
 * II >= MII, schedule legality, communication discipline, queue
 * allocation sanity, and simulated semantics equal to sequential
 * execution.
 */

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "ir/verify.h"
#include "regalloc/queue_alloc.h"
#include "sched/ims.h"
#include "sched/mii.h"
#include "sched/verifier.h"
#include "sim/exec.h"
#include "workload/synth.h"
#include "workload/unroll_policy.h"

namespace dms {
namespace {

class RandomLoopDms
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(RandomLoopDms, FullPipelineInvariants)
{
    auto [seed, clusters] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
    SynthParams sp;
    Loop loop = synthesizeLoop(rng, sp, seed);

    MachineModel machine = MachineModel::clusteredRing(clusters);
    Ddg body = loop.ddg;
    singleUsePrepass(body, machine.latencyOf(Opcode::Copy));

    DdgVerifyOptions vopts;
    vopts.maxFlowFanout = 2;
    ASSERT_TRUE(verifyDdg(body, vopts).empty());

    int mii = minII(body, machine);
    DmsOutcome out = scheduleDms(body, machine);
    ASSERT_TRUE(out.sched.ok) << loop.name;

    // II >= MII always.
    EXPECT_GE(out.sched.ii, mii);

    // Full legality, including communication rules.
    auto problems =
        verifySchedule(*out.ddg, machine, *out.sched.schedule);
    ASSERT_TRUE(problems.empty())
        << loop.name << ": " << problems[0];

    // Every active flow edge maps onto an LRF or a CQRF.
    QueueAllocation qa =
        allocateQueues(*out.ddg, machine, *out.sched.schedule);
    for (const Lifetime &lt : qa.lifetimes) {
        EXPECT_GE(lt.span, 0);
        EXPECT_GE(lt.depth, 1);
    }

    // End to end: pipelined execution computes the loop.
    auto sim_problems = simulateAndCheck(*out.ddg, machine,
                                         *out.sched.schedule, 12);
    EXPECT_TRUE(sim_problems.empty())
        << loop.name << ": "
        << (sim_problems.empty() ? "" : sim_problems[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLoopDms,
    ::testing::Combine(::testing::Range(0, 25),
                       ::testing::Values(2, 4, 7, 10)),
    [](const auto &info) {
        return "s" + std::to_string(std::get<0>(info.param)) +
               "_c" + std::to_string(std::get<1>(info.param));
    });

class RandomLoopIms : public ::testing::TestWithParam<int>
{};

TEST_P(RandomLoopIms, UnclusteredInvariants)
{
    int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 1);
    SynthParams sp;
    Loop loop = synthesizeLoop(rng, sp, seed);

    for (int width : {1, 3, 7}) {
        MachineModel machine = MachineModel::unclustered(width);
        SchedOutcome out = scheduleIms(loop.ddg, machine);
        ASSERT_TRUE(out.ok) << loop.name;
        EXPECT_GE(out.ii, minII(loop.ddg, machine));
        checkSchedule(loop.ddg, machine, *out.schedule);
        auto problems = simulateAndCheck(loop.ddg, machine,
                                         *out.schedule, 10);
        EXPECT_TRUE(problems.empty())
            << loop.name << " w" << width << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLoopIms,
                         ::testing::Range(0, 30));

class UnrolledRandomLoop : public ::testing::TestWithParam<int>
{};

TEST_P(UnrolledRandomLoop, PolicyPipelineOnWideMachines)
{
    int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 31337 + 5);
    SynthParams sp;
    sp.maxOps = 16; // small bodies so unrolling actually triggers
    Loop loop = synthesizeLoop(rng, sp, seed);

    MachineModel machine = MachineModel::clusteredRing(8);
    Ddg body = applyUnrollPolicy(loop.ddg, machine);
    int factor = body.unrollFactor();
    singleUsePrepass(body, machine.latencyOf(Opcode::Copy));

    DmsOutcome out = scheduleDms(body, machine);
    ASSERT_TRUE(out.sched.ok) << loop.name;
    checkSchedule(*out.ddg, machine, *out.sched.schedule);

    // Simulate 8 unrolled iterations and compare with the original
    // body over 8 * factor iterations.
    SimResult sim =
        simulateSchedule(*out.ddg, machine, *out.sched.schedule, 8);
    ASSERT_TRUE(sim.ok)
        << loop.name << ": " << sim.problems[0];
    StoreLog ref = referenceExecute(loop.ddg, 8L * factor);
    auto problems = compareStoreLogs(ref, sim.log);
    EXPECT_TRUE(problems.empty())
        << loop.name << " x" << factor << ": "
        << (problems.empty() ? "" : problems[0]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnrolledRandomLoop,
                         ::testing::Range(0, 15));

TEST(PropertyBudget, HigherBudgetNeverWorsensIi)
{
    Rng rng(2024);
    SynthParams sp;
    for (int i = 0; i < 10; ++i) {
        Loop loop = synthesizeLoop(rng, sp, i);
        MachineModel m = MachineModel::clusteredRing(5);
        Ddg body = loop.ddg;
        singleUsePrepass(body, 1);

        DmsParams small;
        small.budgetRatio = 2;
        DmsParams big;
        big.budgetRatio = 12;
        DmsOutcome a = scheduleDms(body, m, small);
        DmsOutcome b = scheduleDms(body, m, big);
        ASSERT_TRUE(a.sched.ok && b.sched.ok);
        EXPECT_LE(b.sched.ii, a.sched.ii) << loop.name;
    }
}

TEST(PropertyCopyFus, MoreCopyUnitsNeverWorsenIi)
{
    // Ablation A2's premise: extra copy units can only help.
    Rng rng(515);
    SynthParams sp;
    for (int i = 0; i < 10; ++i) {
        Loop loop = synthesizeLoop(rng, sp, i);
        Ddg body = loop.ddg;
        singleUsePrepass(body, 1);
        MachineModel one = MachineModel::clusteredRing(6, 1);
        MachineModel two = MachineModel::clusteredRing(6, 2);
        DmsOutcome a = scheduleDms(body, one);
        DmsOutcome b = scheduleDms(body, two);
        ASSERT_TRUE(a.sched.ok && b.sched.ok);
        EXPECT_LE(b.sched.mii, a.sched.mii);
    }
}

} // namespace
} // namespace dms
