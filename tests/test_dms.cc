/**
 * @file
 * The DMS core: legality across cluster counts, chain behaviour,
 * strategy interplay, the ablation switches, and the paper's
 * qualitative claims on small cases.
 */

#include <gtest/gtest.h>

#include "core/chain.h"
#include "core/comm.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/ims.h"
#include "sched/verifier.h"
#include "workload/kernels.h"

namespace dms {
namespace {

/** Pre-passed copy of a kernel body. */
Ddg
prepped(const Loop &k, const MachineModel &m)
{
    Ddg body = k.ddg;
    singleUsePrepass(body, m.latencyOf(Opcode::Copy));
    return body;
}

class DmsOnKernels
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(DmsOnKernels, LegalOnEveryKernel)
{
    auto [clusters, kernel_idx] = GetParam();
    Loop k = namedKernels()[static_cast<size_t>(kernel_idx)];
    MachineModel m = MachineModel::clusteredRing(clusters);
    Ddg body = prepped(k, m);
    DmsOutcome out = scheduleDms(body, m);
    ASSERT_TRUE(out.sched.ok) << k.name << " @ " << clusters;
    EXPECT_GE(out.sched.ii, out.sched.mii);
    checkSchedule(*out.ddg, m, *out.sched.schedule);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DmsOnKernels,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8, 10),
                       ::testing::Range(0, 16)),
    [](const auto &info) {
        return "c" +
               std::to_string(std::get<0>(info.param)) + "_k" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Dms, SingleClusterMatchesImsIi)
{
    // With one cluster there are no communication constraints and
    // no copies (fan-out <= 2 kernels): DMS must equal IMS.
    for (const Loop &k : namedKernels()) {
        MachineModel cm = MachineModel::clusteredRing(1);
        Ddg body = prepped(k, cm);
        if (body.liveOpCount() != k.ddg.liveOpCount())
            continue; // copies inserted; not an exact IMS analog
        DmsOutcome d = scheduleDms(body, cm);
        MachineModel um = MachineModel::unclustered(1);
        SchedOutcome i = scheduleIms(k.ddg, um);
        ASSERT_TRUE(d.sched.ok && i.ok) << k.name;
        EXPECT_EQ(d.sched.ii, i.ii) << k.name;
    }
}

TEST(Dms, RejectsUnclusteredMachine)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(2);
    EXPECT_DEATH(scheduleDms(k.ddg, m), "clustered");
}

TEST(Dms, NoMovesOnSmallRings)
{
    // 2- and 3-cluster rings are fully connected: chains are
    // impossible by construction, so no moves may appear.
    for (int c : {1, 2, 3}) {
        for (const Loop &k : namedKernels()) {
            MachineModel m = MachineModel::clusteredRing(c);
            Ddg body = prepped(k, m);
            DmsOutcome out = scheduleDms(body, m);
            ASSERT_TRUE(out.sched.ok);
            EXPECT_EQ(out.sched.movesInserted, 0)
                << k.name << " @ " << c;
        }
    }
}

/**
 * A deep dependence chain wider than the machine: scheduling it on
 * many clusters at a small II forces producer/consumer pairs far
 * apart, exercising chains.
 */
Ddg
wideChainBody()
{
    LoopBuilder b;
    std::vector<OpId> vals;
    for (int i = 0; i < 6; ++i)
        vals.push_back(b.load(i));
    // Three parallel chains of adds joined at the end.
    OpId a = b.add(vals[0], vals[1]);
    OpId c = b.add(vals[2], vals[3]);
    OpId e = b.add(vals[4], vals[5]);
    OpId a2 = b.add1(a);
    OpId c2 = b.add1(c);
    OpId e2 = b.add1(e);
    OpId j1 = b.add(a2, c2);
    OpId j2 = b.add(j1, e2);
    b.store(6, j2);
    b.store(7, j1);
    Ddg g = b.take();
    singleUsePrepass(g, 1);
    return g;
}

TEST(Dms, WideBodySchedulesOnBigRings)
{
    for (int c : {4, 6, 8, 10}) {
        MachineModel m = MachineModel::clusteredRing(c);
        Ddg body = wideChainBody();
        DmsOutcome out = scheduleDms(body, m);
        ASSERT_TRUE(out.sched.ok) << c << " clusters";
        checkSchedule(*out.ddg, m, *out.sched.schedule);
    }
}

TEST(Dms, MovesAppearWhenLoadsArePinnedApart)
{
    // 15 loads force L/S pressure across a 5-ring (3 per cluster at
    // II=3); consumers joining distant values need chains.
    LoopBuilder b;
    std::vector<OpId> loads;
    for (int i = 0; i < 15; ++i)
        loads.push_back(b.load(i));
    OpId acc = b.add(loads[0], loads[14]);
    for (int i = 1; i < 14; ++i)
        acc = b.add(acc, loads[i]);
    b.store(20, acc);
    Ddg g = b.take();
    singleUsePrepass(g, 1);

    MachineModel m = MachineModel::clusteredRing(5);
    DmsOutcome out = scheduleDms(g, m);
    ASSERT_TRUE(out.sched.ok);
    checkSchedule(*out.ddg, m, *out.sched.schedule);
    // The II cannot be below L/S pressure: 15 loads + 1 store on 5
    // units.
    EXPECT_GE(out.sched.ii, 4);
}

TEST(Dms, ChainsDisabledStillLegal)
{
    // Ablation A1: without strategy 2 DMS degrades to the IPPS'98
    // scheme; schedules stay legal but II may grow.
    DmsParams no_chains;
    no_chains.enableChains = false;
    for (int c : {4, 8}) {
        MachineModel m = MachineModel::clusteredRing(c);
        Ddg body = wideChainBody();
        DmsOutcome out = scheduleDms(body, m, no_chains);
        ASSERT_TRUE(out.sched.ok) << c;
        checkSchedule(*out.ddg, m, *out.sched.schedule);
        EXPECT_EQ(out.sched.movesInserted, 0);
    }
}

TEST(Dms, ChainRuleVariantsLegal)
{
    for (ChainSelectRule rule : {ChainSelectRule::MaxFreeSlots,
                                 ChainSelectRule::ShortestPath}) {
        DmsParams p;
        p.chainRule = rule;
        MachineModel m = MachineModel::clusteredRing(8);
        Ddg body = wideChainBody();
        DmsOutcome out = scheduleDms(body, m, p);
        ASSERT_TRUE(out.sched.ok);
        checkSchedule(*out.ddg, m, *out.sched.schedule);
    }
}

TEST(Dms, S3PolicyVariantsLegal)
{
    for (S3ClusterPolicy pol : {S3ClusterPolicy::PreferCommOk,
                                S3ClusterPolicy::RoundRobin}) {
        DmsParams p;
        p.s3Policy = pol;
        MachineModel m = MachineModel::clusteredRing(6);
        Ddg body = wideChainBody();
        DmsOutcome out = scheduleDms(body, m, p);
        ASSERT_TRUE(out.sched.ok);
        checkSchedule(*out.ddg, m, *out.sched.schedule);
    }
}

TEST(Dms, TransformedGraphKeepsOriginalOps)
{
    MachineModel m = MachineModel::clusteredRing(6);
    Ddg body = wideChainBody();
    int orig_live = body.liveOpCount();
    DmsOutcome out = scheduleDms(body, m);
    ASSERT_TRUE(out.sched.ok);
    // Every original op survives; moves only add.
    int live_non_moves = 0;
    for (OpId id = 0; id < out.ddg->numOps(); ++id) {
        if (out.ddg->opLive(id) &&
            out.ddg->op(id).origin != OpOrigin::MoveOp) {
            ++live_non_moves;
        }
    }
    EXPECT_EQ(live_non_moves, orig_live);
    EXPECT_EQ(out.ddg->liveOpCount() - live_non_moves,
              out.sched.movesInserted);
}

TEST(ChainRegistryTest, CreateSplicesAndDissolveRestores)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId s = b.store(1, x);
    Ddg g = b.take();
    EdgeId orig = 0;
    (void)s;

    MachineModel m = MachineModel::clusteredRing(6);
    PartialSchedule ps(g, m, 2);

    ChainRegistry reg;
    int cid = reg.create(g, orig, {1, 2}, 1);
    EXPECT_FALSE(g.edgeActive(orig));
    EXPECT_EQ(g.liveOpCount(), 4); // +2 moves
    const Chain &ch = reg.chain(cid);
    ASSERT_EQ(ch.moves.size(), 2u);
    EXPECT_EQ(reg.chainOfMove(ch.moves[0]), cid);
    EXPECT_EQ(g.edge(ch.edges[0]).distance, 0);
    EXPECT_EQ(g.edge(ch.edges[0]).latency, 2); // load latency

    // Schedule the moves, then dissolve; everything must revert.
    ASSERT_TRUE(ps.tryPlace(ch.moves[0], 2, 1));
    ASSERT_TRUE(ps.tryPlace(ch.moves[1], 3, 2));
    reg.dissolve(cid, g, ps);
    EXPECT_TRUE(g.edgeActive(orig));
    EXPECT_EQ(g.liveOpCount(), 2);
    EXPECT_EQ(ps.scheduledCount(), 0);
    EXPECT_EQ(reg.chainOfMove(ch.moves[0]), -1);
    EXPECT_EQ(reg.liveChainCount(), 0);
}

TEST(ChainRegistryTest, DistanceTravelsOnFirstEdge)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId a = b.add1(x);
    b.flow(a, a, 1, 1);
    OpId st = b.store(1, a);
    Ddg g = b.take();

    // Chain the a->store edge (distance 0) and a synthetic carried
    // edge: check distance handling via the self-loop's metadata.
    EdgeId a_to_store = kInvalidEdge;
    for (EdgeId e : g.op(st).ins)
        a_to_store = e;
    ASSERT_NE(a_to_store, kInvalidEdge);

    ChainRegistry reg;
    int cid = reg.create(g, a_to_store, {3}, 1);
    const Chain &ch = reg.chain(cid);
    EXPECT_EQ(g.edge(ch.edges[0]).distance, 0);
    EXPECT_EQ(g.edge(ch.edges.back()).operandIndex, 0);
}

TEST(ChainRegistryTest, ChainsTouchingFindsEndpoints)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId st = b.store(1, x);
    Ddg g = b.take();
    ChainRegistry reg;
    int cid = reg.create(g, 0, {2}, 1);
    auto touching_producer = reg.chainsTouching(g, x);
    auto touching_consumer = reg.chainsTouching(g, st);
    ASSERT_EQ(touching_producer.size(), 1u);
    EXPECT_EQ(touching_producer[0], cid);
    ASSERT_EQ(touching_consumer.size(), 1u);
    // The move itself is not an endpoint.
    EXPECT_TRUE(
        reg.chainsTouching(g, reg.chain(cid).moves[0]).empty());
}

TEST(CommQueries, ConflictDetection)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId st = b.store(1, x);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(6);
    PartialSchedule ps(g, m, 2);

    ASSERT_TRUE(ps.tryPlace(x, 0, 0));
    EXPECT_TRUE(commOkAt(g, ps, m, st, 0));
    EXPECT_TRUE(commOkAt(g, ps, m, st, 1));
    EXPECT_TRUE(commOkAt(g, ps, m, st, 5));
    EXPECT_FALSE(commOkAt(g, ps, m, st, 2));
    EXPECT_FALSE(commOkAt(g, ps, m, st, 3));

    auto far = farPredecessorEdges(g, ps, m, st, 3);
    ASSERT_EQ(far.size(), 1u);
    EXPECT_TRUE(farPredecessorEdges(g, ps, m, st, 1).empty());

    ASSERT_TRUE(ps.tryPlace(st, 4, 3));
    auto peers = commConflictPeers(g, ps, m, st);
    ASSERT_EQ(peers.size(), 1u);
    EXPECT_EQ(peers[0], x);
}

TEST(CommQueries, AffinityOrdersByDistance)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId st = b.store(1, x);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(8);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(x, 0, 5));
    auto order = clustersByAffinity(g, ps, m, st);
    ASSERT_EQ(order.size(), 8u);
    EXPECT_EQ(order[0], 5); // producer's own cluster first
}

TEST(Dms, StressWithManyIiAttempts)
{
    // Tiny budget: II must rise but a legal schedule still emerges.
    DmsParams p;
    p.budgetRatio = 1;
    MachineModel m = MachineModel::clusteredRing(7);
    Ddg body = wideChainBody();
    DmsOutcome out = scheduleDms(body, m, p);
    ASSERT_TRUE(out.sched.ok);
    checkSchedule(*out.ddg, m, *out.sched.schedule);
}

} // namespace
} // namespace dms
