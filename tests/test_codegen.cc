/**
 * @file
 * Kernel construction, cycle model, IPC accounting, and the
 * assembly emitters.
 */

#include <gtest/gtest.h>

#include "codegen/emit.h"
#include "codegen/perf.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/ims.h"
#include "workload/kernels.h"

namespace dms {
namespace {

TEST(Kernel, RowsHoldAllOps)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(1);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    PipelinedLoop loop = buildPipelinedLoop(k.ddg, *out.schedule);
    EXPECT_EQ(loop.ii, out.ii);
    size_t total = 0;
    for (const auto &row : loop.rows)
        total += row.size();
    EXPECT_EQ(total, static_cast<size_t>(k.ddg.liveOpCount()));
}

TEST(Kernel, StageNumbers)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(1);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    PipelinedLoop loop = buildPipelinedLoop(k.ddg, *out.schedule);
    for (const auto &row : loop.rows) {
        for (const KernelSlot &s : row) {
            EXPECT_EQ(s.stage,
                      out.schedule->timeOf(s.op) / loop.ii);
            EXPECT_LT(s.stage, loop.stageCount);
        }
    }
}

TEST(Kernel, CycleModel)
{
    PipelinedLoop loop;
    loop.ii = 4;
    loop.stageCount = 3;
    EXPECT_EQ(loop.rampCycles(), 8);
    // (N + SC - 1) * II.
    EXPECT_EQ(loop.cyclesFor(1), 12);
    EXPECT_EQ(loop.cyclesFor(100), 408);
    EXPECT_EQ(loop.cyclesFor(0), 0);
}

TEST(Perf, IpcCountsOnlyUsefulOps)
{
    // Build a schedule containing copies and verify they are not
    // in the numerator.
    Loop k = kernelStencil3(); // pre-pass inserts a copy
    MachineModel m = MachineModel::clusteredRing(2);
    Ddg body = k.ddg;
    singleUsePrepass(body, m.latencyOf(Opcode::Copy));
    ASSERT_GT(body.liveOpCount(), k.ddg.liveOpCount());
    DmsOutcome out = scheduleDms(body, m);
    ASSERT_TRUE(out.sched.ok);

    LoopPerf perf = evaluatePerf(*out.ddg, *out.sched.schedule, 50);
    EXPECT_EQ(perf.usefulOps, k.ddg.liveOpCount());
    EXPECT_GT(perf.ipc, 0.0);
    EXPECT_LE(perf.ipc, m.usefulFuCount());
    EXPECT_EQ(perf.cycles,
              (50 + perf.stageCount - 1) *
                  static_cast<long>(perf.ii));
}

TEST(Perf, IpcApproachesWidthForParallelLoops)
{
    // color_convert: 21 independent useful ops; on a wide machine
    // the steady state should sustain good IPC.
    Loop k = kernelColorConvert();
    MachineModel m = MachineModel::unclustered(7);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    // Mul pressure binds: 9 muls on 7 units -> II 2, so the best
    // possible useful IPC is 21/2 = 10.5.
    LoopPerf perf = evaluatePerf(k.ddg, *out.schedule, 10000);
    EXPECT_GT(perf.ipc, 10.0);
    EXPECT_LE(perf.ipc, 10.5);
}

TEST(Emit, KernelShowsOpsAndStages)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::clusteredRing(2);
    Ddg body = k.ddg;
    singleUsePrepass(body, 1);
    DmsOutcome out = scheduleDms(body, m);
    ASSERT_TRUE(out.sched.ok);
    PipelinedLoop loop =
        buildPipelinedLoop(*out.ddg, *out.sched.schedule);
    std::string txt = emitKernel(*out.ddg, m, loop);
    EXPECT_NE(txt.find("kernel: II="), std::string::npos);
    EXPECT_NE(txt.find("load"), std::string::npos);
    EXPECT_NE(txt.find("c1:"), std::string::npos);
}

TEST(Emit, PipelinedCodeHasAllPhases)
{
    Loop k = kernelFir8();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    PipelinedLoop loop = buildPipelinedLoop(k.ddg, *out.schedule);
    std::string txt = emitPipelinedCode(k.ddg, m, loop);
    EXPECT_NE(txt.find("prologue:"), std::string::npos);
    EXPECT_NE(txt.find("kernel (repeat):"), std::string::npos);
    EXPECT_NE(txt.find("epilogue:"), std::string::npos);
}

TEST(Emit, PrologueRampsUpIterations)
{
    // In the prologue, iteration subscripts never exceed the
    // current stage index.
    Loop k = kernelFir8();
    MachineModel m = MachineModel::unclustered(1);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    PipelinedLoop loop = buildPipelinedLoop(k.ddg, *out.schedule);
    std::string txt = emitPipelinedCode(k.ddg, m, loop);
    // i0 must appear before any i1.
    size_t first_i0 = txt.find("[i0]");
    size_t first_i1 = txt.find("[i1]");
    if (first_i1 != std::string::npos) {
        ASSERT_NE(first_i0, std::string::npos);
        EXPECT_LT(first_i0, first_i1);
    }
}

} // namespace
} // namespace dms
