/**
 * @file
 * Thread pool unit tests: task execution, drain semantics,
 * parallelFor index coverage, exception propagation, and the
 * DMS_JOBS environment knob.
 */

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/thread_pool.h"

namespace dms {
namespace {

TEST(ThreadPool, JobsDefaultsArePositive)
{
    ::unsetenv("DMS_JOBS");
    ThreadPool p;
    EXPECT_GE(p.jobs(), 1);
    ThreadPool p1(1);
    EXPECT_EQ(p1.jobs(), 1);
    ThreadPool p4(4);
    EXPECT_EQ(p4.jobs(), 4);
}

TEST(ThreadPool, SubmitRunsEveryTask)
{
    for (int jobs : {1, 2, 4}) {
        ThreadPool pool(jobs);
        std::atomic<int> sum{0};
        for (int i = 1; i <= 100; ++i)
            pool.submit([&sum, i] { sum += i; });
        pool.wait();
        EXPECT_EQ(sum.load(), 5050) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, WaitIsIdempotentAndReusable)
{
    ThreadPool pool(3);
    pool.wait(); // no tasks: returns immediately
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    pool.wait();
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce)
{
    for (int jobs : {1, 2, 8}) {
        ThreadPool pool(jobs);
        const size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << " jobs=" << jobs;
    }
}

TEST(ThreadPool, ParallelForZeroAndFewerItemsThanWorkers)
{
    ThreadPool pool(8);
    pool.parallelFor(0, [](size_t) { FAIL(); });
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DeterministicOutputSlotsAcrossJobCounts)
{
    // Each index writes its own slot: results must match the
    // serial order no matter how many workers interleave.
    const size_t n = 256;
    std::vector<long> serial(n);
    ThreadPool one(1);
    one.parallelFor(n, [&](size_t i) {
        serial[i] = static_cast<long>(i * i + 7);
    });
    for (int jobs : {2, 4, 8}) {
        std::vector<long> par(n);
        ThreadPool pool(jobs);
        pool.parallelFor(n, [&](size_t i) {
            par[i] = static_cast<long>(i * i + 7);
        });
        EXPECT_EQ(par, serial) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, ExceptionsPropagateToParallelFor)
{
    for (int jobs : {1, 4}) {
        ThreadPool pool(jobs);
        EXPECT_THROW(pool.parallelFor(32,
                                      [](size_t i) {
                                          if (i == 13)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error)
            << "jobs=" << jobs;
        // The pool stays usable after a failed run.
        std::atomic<int> count{0};
        pool.parallelFor(8, [&](size_t) { ++count; });
        EXPECT_EQ(count.load(), 8);
    }
}

TEST(ThreadPool, JobsFromEnvChecksItsInput)
{
    ::setenv("DMS_JOBS", "6", 1);
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 6);
    ::setenv("DMS_JOBS", "6x", 1); // trailing garbage
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2);
    ::setenv("DMS_JOBS", "garbage", 1);
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2);
    ::setenv("DMS_JOBS", "0", 1);
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2);
    ::setenv("DMS_JOBS", "-3", 1);
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2);
    ::setenv("DMS_JOBS", "99999999999999999999", 1); // overflow
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2);
    ::unsetenv("DMS_JOBS");
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2);
    ::setenv("DMS_JOBS", "3", 1);
    ThreadPool pool;
    EXPECT_EQ(pool.jobs(), 3);
    ::unsetenv("DMS_JOBS");
}

} // namespace
} // namespace dms
