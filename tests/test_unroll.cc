/**
 * @file
 * Loop unrolling: distance re-wiring, semantics preservation
 * against the reference interpreter, and the unroll policy.
 */

#include <gtest/gtest.h>

#include "ir/scc.h"
#include "ir/unroll.h"
#include "ir/verify.h"
#include "sched/mii.h"
#include "sim/reference.h"
#include "workload/kernels.h"
#include "workload/unroll_policy.h"

namespace dms {
namespace {

TEST(Unroll, FactorOneIsIdentityShape)
{
    Loop k = kernelDaxpy();
    Ddg u = unrollDdg(k.ddg, 1);
    EXPECT_EQ(u.liveOpCount(), k.ddg.liveOpCount());
    EXPECT_EQ(u.unrollFactor(), 1);
}

TEST(Unroll, CopiesOpsAndEdges)
{
    Loop k = kernelDaxpy();
    Ddg u = unrollDdg(k.ddg, 3);
    EXPECT_EQ(u.liveOpCount(), 3 * k.ddg.liveOpCount());
    EXPECT_EQ(u.unrollFactor(), 3);
    EXPECT_TRUE(verifyDdg(u).empty());
}

TEST(Unroll, RecordsOriginalIdentity)
{
    Loop k = kernelDaxpy();
    Ddg u = unrollDdg(k.ddg, 2);
    int offsets[2] = {0, 0};
    for (OpId id = 0; id < u.numOps(); ++id) {
        ASSERT_GE(u.op(id).origId, 0);
        ASSERT_LT(u.op(id).origId, k.ddg.numOps());
        ++offsets[u.op(id).iterOffset];
    }
    EXPECT_EQ(offsets[0], k.ddg.liveOpCount());
    EXPECT_EQ(offsets[1], k.ddg.liveOpCount());
}

TEST(Unroll, DistanceOneRecurrenceRewiring)
{
    // acc self-loop d=1, unroll 2: copy1 <- copy0 (d=0),
    // copy0 <- copy1 (d=1).
    Loop k = kernelDotProduct();
    Ddg u = unrollDdg(k.ddg, 2);
    int d0 = 0;
    int d1 = 0;
    for (EdgeId e = 0; e < u.numEdges(); ++e) {
        const Edge &ed = u.edge(e);
        const Operation &src = u.op(ed.src);
        const Operation &dst = u.op(ed.dst);
        if (src.origId == dst.origId && src.opc == Opcode::Add) {
            // the accumulator chain
            if (ed.distance == 0)
                ++d0;
            else if (ed.distance == 1)
                ++d1;
        }
    }
    EXPECT_EQ(d0, 1);
    EXPECT_EQ(d1, 1);
    EXPECT_TRUE(hasRecurrence(u));
}

TEST(Unroll, RecMiiScalesWithFactor)
{
    Loop k = kernelHorner(); // RecMII 3
    for (int f : {2, 3, 4}) {
        Ddg u = unrollDdg(k.ddg, f);
        EXPECT_EQ(recMii(u), 3 * f) << "factor " << f;
    }
}

TEST(Unroll, DistanceTwoSplitsAcrossCopies)
{
    // d=2 self-loop unrolled by 2: each copy gets d=1 self edge.
    LoopBuilder b;
    OpId x = b.load(0);
    OpId a = b.add1(x);
    b.flow(a, a, 1, 2);
    b.store(1, a);
    Ddg g = b.take();
    Ddg u = unrollDdg(g, 2);
    int self_d1 = 0;
    for (EdgeId e = 0; e < u.numEdges(); ++e) {
        const Edge &ed = u.edge(e);
        if (ed.src == ed.dst) {
            EXPECT_EQ(ed.distance, 1);
            ++self_d1;
        }
    }
    EXPECT_EQ(self_d1, 2);
}

class UnrollSemantics : public ::testing::TestWithParam<int>
{};

TEST_P(UnrollSemantics, PreservesStoredValues)
{
    const int factor = GetParam();
    for (const Loop &k : namedKernels()) {
        long orig_iters = 24; // divisible by 2,3,4,6,8
        StoreLog ref = referenceExecute(k.ddg, orig_iters);

        Ddg u = unrollDdg(k.ddg, factor);
        StoreLog unrolled =
            referenceExecute(u, orig_iters / factor);

        auto problems = compareStoreLogs(ref, unrolled);
        EXPECT_TRUE(problems.empty())
            << k.name << " x" << factor << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollSemantics,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(UnrollPolicy, NarrowMachineKeepsBody)
{
    Loop k = kernelLivermoreHydro(); // 9 ops
    MachineModel m = MachineModel::clusteredRing(1);
    EXPECT_EQ(chooseUnrollFactor(k.ddg, m), 1);
}

TEST(UnrollPolicy, WideMachineUnrolls)
{
    Loop k = kernelDaxpy(); // 5 ops, no recurrence
    MachineModel wide = MachineModel::clusteredRing(8); // 24 FUs
    EXPECT_GT(chooseUnrollFactor(k.ddg, wide), 1);
}

TEST(UnrollPolicy, RecurrenceBoundsUnrolling)
{
    // Horner: RecMII 3 per iteration; unrolling cannot beat the
    // recurrence, so the policy should stay at factor 1 (rate is
    // flat at 3.0 for every u and ties go to the smallest).
    Loop k = kernelHorner();
    MachineModel wide = MachineModel::clusteredRing(10);
    EXPECT_EQ(chooseUnrollFactor(k.ddg, wide), 1);
}

TEST(UnrollPolicy, RateNeverWorsens)
{
    for (const Loop &k : namedKernels()) {
        for (int c : {1, 4, 8}) {
            MachineModel m = MachineModel::clusteredRing(c);
            int u = chooseUnrollFactor(k.ddg, m);
            ASSERT_GE(u, 1);
            ASSERT_LE(u, 8);
            // The chosen body must not have a worse per-original-
            // iteration MII than the original body.
            Ddg body = applyUnrollPolicy(k.ddg, m);
            double rate_u =
                static_cast<double>(minII(body, m)) /
                body.unrollFactor();
            double rate_1 =
                static_cast<double>(minII(k.ddg, m));
            EXPECT_LE(rate_u, rate_1 + 1e-9)
                << k.name << " on " << c << " clusters";
        }
    }
}

TEST(UnrollPolicy, MaxOpsCapRespected)
{
    Loop k = kernelColorConvert(); // 21 ops
    MachineModel wide = MachineModel::clusteredRing(10);
    Ddg body = applyUnrollPolicy(k.ddg, wide, 8, 64);
    EXPECT_LE(body.liveOpCount(), 64);
}

} // namespace
} // namespace dms
