/**
 * @file
 * Height-ladder correctness: the incremental table must be
 * bit-identical to a full recompute at every rung (the delta-height
 * fuzz oracle), divergence below RecMII must be a recoverable
 * failure rather than a panic, and the speculative II ladder must
 * produce byte-identical schedules to the serial one.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/mii.h"
#include "sched/priority.h"
#include "support/rng.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

/** Randomize edge latencies so loop-carried edges exercise negative
 *  modulo weights (latency - II * distance < 0) as well as large
 *  positive ones. */
void
perturbLatencies(Ddg &ddg, Rng &rng)
{
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (!ddg.edgeLive(e))
            continue;
        Edge &ed = ddg.edge(e);
        ed.latency = ed.distance > 0 ? rng.range(0, 6)
                                     : rng.range(1, 5);
    }
}

TEST(HeightLadder, DeltaEqualsFullOverFuzzedLadders)
{
    Rng rng(0x1adde2ULL);
    int laddersWithAffected = 0;
    for (const Loop &loop : synthesizeSuite(0xfee1500dULL, 40)) {
        Ddg body = loop.ddg;
        perturbLatencies(body, rng);
        const int base = std::max(1, recMii(body));
        const int rungs = rng.range(3, 9);

        HeightLadder ladder;
        for (int ii = base; ii < base + rungs; ++ii) {
            ASSERT_TRUE(ladder.ensure(body, ii));
            // Same-II repeat must reuse the table verbatim.
            const long reuses = ladder.verbatimReuses();
            ASSERT_TRUE(ladder.ensure(body, ii));
            EXPECT_EQ(ladder.verbatimReuses(), reuses + 1);

            EXPECT_EQ(ladder.heights(), computeHeights(body, ii))
                << "delta heights diverged from full recompute at II "
                << ii;
        }
        EXPECT_EQ(ladder.fullRelaxations(), 1);
        EXPECT_EQ(ladder.deltaRelaxations(), rungs - 1);
        if (ladder.affectedOps() > 0)
            ++laddersWithAffected;
    }
    // The suite must actually exercise the delta path: most synth
    // loops carry a recurrence or a loop-carried memory edge.
    EXPECT_GT(laddersWithAffected, 10);
}

TEST(HeightLadder, AcyclicBodyHasEmptyAffectedSet)
{
    // No loop-carried edge anywhere: every height is II-independent
    // and stepping the ladder must touch nothing.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId ml = b.mul1(ld);
    b.store(1, b.add1(ml));
    Ddg body = b.take();

    HeightLadder ladder;
    ASSERT_TRUE(ladder.ensure(body, 1));
    EXPECT_EQ(ladder.affectedOps(), 0);
    ASSERT_TRUE(ladder.ensure(body, 2));
    EXPECT_EQ(ladder.heights(), computeHeights(body, 2));
}

TEST(HeightLadder, RecoversAfterDivergence)
{
    // acc = acc * x + y, a two-op recurrence: RecMII is the cycle's
    // latency sum, well above 1.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId ml = b.mul1(ld);
    OpId ad = b.add1(ml);
    b.flow(ad, ml, 1, 1);
    b.store(1, ad);
    Ddg body = b.take();
    const int rec = recMii(body);
    ASSERT_GT(rec, 1);

    HeightLadder ladder;
    EXPECT_FALSE(ladder.ensure(body, rec - 1));
    // Climb past RecMII: the invalidated table must rebuild fully.
    ASSERT_TRUE(ladder.ensure(body, rec));
    EXPECT_EQ(ladder.heights(), computeHeights(body, rec));
    ASSERT_TRUE(ladder.ensure(body, rec + 1));
    EXPECT_EQ(ladder.heights(), computeHeights(body, rec + 1));
}

TEST(Priority, TryComputeHeightsFailsBelowRecMii)
{
    for (const Loop &loop : namedKernels()) {
        const int rec = recMii(loop.ddg);
        Heights h;
        if (rec > 1) {
            EXPECT_FALSE(tryComputeHeights(loop.ddg, rec - 1, h))
                << loop.name << " converged below RecMII";
        }
        ASSERT_TRUE(tryComputeHeights(loop.ddg, rec, h))
            << loop.name << " diverged at RecMII";
        EXPECT_EQ(h, computeHeights(loop.ddg, rec));
    }
}

/** FNV-1a over a stream of 64-bit words. */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/** Hash every placement plus the attempt/budget accounting. */
std::uint64_t
ladderFingerprint(int speculate)
{
    Fnv fnv;
    for (const Loop &loop : namedKernels()) {
        for (int clusters : {2, 4, 8}) {
            MachineModel machine =
                MachineModel::clusteredRing(clusters);
            Ddg body = applyUnrollPolicy(loop.ddg, machine);
            singleUsePrepass(body,
                             machine.latencyOf(Opcode::Copy));
            DmsParams params;
            params.speculateII = speculate;
            DmsOutcome out = scheduleDms(body, machine, params);

            fnv.mix(static_cast<std::uint64_t>(clusters));
            fnv.mix(out.sched.ok ? 1 : 0);
            fnv.mix(static_cast<std::uint64_t>(out.sched.attempts));
            fnv.mix(
                static_cast<std::uint64_t>(out.sched.budgetUsed));
            if (!out.sched.ok)
                continue;
            fnv.mix(static_cast<std::uint64_t>(out.sched.ii));
            fnv.mix(static_cast<std::uint64_t>(
                out.sched.movesInserted));
            const Ddg &g = *out.ddg;
            const PartialSchedule &ps = *out.sched.schedule;
            for (OpId id = 0; id < g.numOps(); ++id) {
                if (!g.opLive(id) || !ps.isScheduled(id))
                    continue;
                const Placement &p = ps.placement(id);
                fnv.mix(static_cast<std::uint64_t>(id));
                fnv.mix(static_cast<std::uint64_t>(p.time));
                fnv.mix(static_cast<std::uint64_t>(p.cluster));
                fnv.mix(static_cast<std::uint64_t>(p.fuInstance));
            }
        }
    }
    return fnv.value();
}

TEST(SpeculativeLadder, ByteIdenticalToSerial)
{
    // speculateII = 1 forces the two-lane walk even on single-core
    // hosts, so this exercises the concurrent path everywhere.
    EXPECT_EQ(ladderFingerprint(0), ladderFingerprint(1));
}

} // namespace
