/**
 * @file
 * Two-phase partition-then-schedule baseline: legality, assignment
 * discipline, and the comparison DMS is supposed to win on average.
 */

#include <gtest/gtest.h>

#include "baseline/twophase.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/verifier.h"
#include "sim/exec.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace dms {
namespace {

TEST(TwoPhase, LegalOnAllKernels)
{
    for (const Loop &k : namedKernels()) {
        for (int c : {2, 4, 8}) {
            MachineModel m = MachineModel::clusteredRing(c);
            Ddg body = k.ddg;
            singleUsePrepass(body, m.latencyOf(Opcode::Copy));
            TwoPhaseOutcome out = scheduleTwoPhase(body, m);
            ASSERT_TRUE(out.sched.ok) << k.name << " @ " << c;
            checkSchedule(*out.ddg, m, *out.sched.schedule);
        }
    }
}

TEST(TwoPhase, HonoursItsAssignment)
{
    Loop k = kernelFir8();
    MachineModel m = MachineModel::clusteredRing(4);
    Ddg body = k.ddg;
    singleUsePrepass(body, 1);
    TwoPhaseOutcome out = scheduleTwoPhase(body, m);
    ASSERT_TRUE(out.sched.ok);
    for (OpId id = 0; id < out.ddg->numOps(); ++id) {
        if (!out.ddg->opLive(id))
            continue;
        EXPECT_EQ(out.sched.schedule->clusterOf(id),
                  out.assignment[static_cast<size_t>(id)]);
    }
}

TEST(TwoPhase, InsertedMovesAreOneHop)
{
    // On a big ring the partitioner must bridge far edges itself;
    // the schedule verifier checks every move is one hop.
    LoopBuilder b;
    std::vector<OpId> loads;
    for (int i = 0; i < 12; ++i)
        loads.push_back(b.load(i));
    OpId acc = b.add(loads[0], loads[1]);
    for (int i = 2; i < 12; ++i)
        acc = b.add(acc, loads[i]);
    b.store(15, acc);
    Ddg g = b.take();
    singleUsePrepass(g, 1);

    MachineModel m = MachineModel::clusteredRing(6);
    TwoPhaseOutcome out = scheduleTwoPhase(g, m);
    ASSERT_TRUE(out.sched.ok);
    checkSchedule(*out.ddg, m, *out.sched.schedule);
}

TEST(TwoPhase, SimulatesCorrectly)
{
    for (const Loop &k : namedKernels()) {
        MachineModel m = MachineModel::clusteredRing(4);
        Ddg body = k.ddg;
        singleUsePrepass(body, 1);
        TwoPhaseOutcome out = scheduleTwoPhase(body, m);
        ASSERT_TRUE(out.sched.ok) << k.name;
        auto problems = simulateAndCheck(*out.ddg, m,
                                         *out.sched.schedule, 25);
        EXPECT_TRUE(problems.empty())
            << k.name << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

TEST(TwoPhase, DmsWinsOrTiesOnAverage)
{
    // The paper's motivation: single-phase integration avoids the
    // II loss of committing to a partition up front. Compare on a
    // small synthetic sample at 4 clusters.
    auto loops = synthesizeSuite(1234, 40);
    MachineModel m = MachineModel::clusteredRing(4);
    long dms_total = 0;
    long two_total = 0;
    int dms_wins = 0;
    int two_wins = 0;
    for (const Loop &k : loops) {
        Ddg body = k.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome d = scheduleDms(body, m);
        TwoPhaseOutcome t = scheduleTwoPhase(body, m);
        ASSERT_TRUE(d.sched.ok) << k.name;
        ASSERT_TRUE(t.sched.ok) << k.name;
        dms_total += d.sched.ii;
        two_total += t.sched.ii;
        dms_wins += d.sched.ii < t.sched.ii;
        two_wins += t.sched.ii < d.sched.ii;
    }
    EXPECT_LE(dms_total, two_total);
    EXPECT_GE(dms_wins, two_wins);
}

} // namespace
} // namespace dms
