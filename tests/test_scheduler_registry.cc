/**
 * @file
 * Scheduler registry tests: builtin registration, lookup behavior,
 * machine-support predicates, and adapter outcomes matching the
 * direct scheduler entry points bit for bit.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/twophase.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/scheduler.h"
#include "workload/kernels.h"

namespace {

using namespace dms;

TEST(SchedulerRegistry, BuiltinsRegistered)
{
    std::vector<std::string> names =
        SchedulerRegistry::instance().names();
    for (const char *expected : {"dms", "ims", "twophase"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(),
                              expected) != names.end())
            << "missing " << expected;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SchedulerRegistry, UnknownNameYieldsNull)
{
    EXPECT_EQ(SchedulerRegistry::instance().create("nope"), nullptr);
    EXPECT_FALSE(SchedulerRegistry::instance().contains("nope"));
    EXPECT_TRUE(SchedulerRegistry::instance().contains("dms"));
}

TEST(SchedulerRegistry, DuplicateRegistrationRejected)
{
    EXPECT_FALSE(SchedulerRegistry::instance().add(
        "dms", [] { return std::unique_ptr<Scheduler>(); }));
}

TEST(SchedulerRegistry, SupportPredicates)
{
    MachineModel ring = MachineModel::clusteredRing(4);
    MachineModel wide = MachineModel::unclustered(4);
    auto &reg = SchedulerRegistry::instance();

    auto ims = reg.create("ims");
    auto dms = reg.create("dms");
    auto twophase = reg.create("twophase");
    ASSERT_NE(ims, nullptr);
    ASSERT_NE(dms, nullptr);
    ASSERT_NE(twophase, nullptr);

    EXPECT_STREQ(ims->name(), "ims");
    EXPECT_STREQ(dms->name(), "dms");
    EXPECT_STREQ(twophase->name(), "twophase");

    EXPECT_TRUE(ims->supports(wide));
    EXPECT_FALSE(ims->supports(ring));
    EXPECT_TRUE(dms->supports(ring));
    EXPECT_FALSE(dms->supports(wide));
    EXPECT_TRUE(twophase->supports(ring));
    EXPECT_FALSE(twophase->supports(wide));
}

/** Placement-for-placement comparison of two schedules. */
void
expectSameSchedule(const Ddg &ddg, const SchedOutcome &a,
                   const SchedOutcome &b)
{
    ASSERT_EQ(a.ok, b.ok);
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.mii, b.mii);
    EXPECT_EQ(a.movesInserted, b.movesInserted);
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        const Placement &pa = a.schedule->placement(id);
        const Placement &pb = b.schedule->placement(id);
        EXPECT_EQ(pa.time, pb.time) << "op " << id;
        EXPECT_EQ(pa.cluster, pb.cluster) << "op " << id;
        EXPECT_EQ(pa.fuInstance, pb.fuInstance) << "op " << id;
    }
}

TEST(SchedulerRegistry, AdaptersMatchDirectEntryPoints)
{
    Loop loop = kernelFir8();
    SchedulerConfig config;

    { // ims
        MachineModel m = MachineModel::unclustered(4);
        auto s = SchedulerRegistry::instance().create("ims");
        SchedulerResult via = s->schedule(loop.ddg, m, config);
        SchedOutcome direct = scheduleIms(loop.ddg, m);
        EXPECT_EQ(via.ddg, nullptr);
        expectSameSchedule(loop.ddg, via.sched, direct);
    }

    { // dms and twophase share the pre-passed body
        MachineModel m = MachineModel::clusteredRing(4);
        Ddg body = loop.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));

        auto s = SchedulerRegistry::instance().create("dms");
        SchedulerResult via = s->schedule(body, m, config);
        DmsOutcome direct = scheduleDms(body, m);
        ASSERT_NE(via.ddg, nullptr);
        expectSameSchedule(*via.ddg, via.sched, direct.sched);

        auto t = SchedulerRegistry::instance().create("twophase");
        SchedulerResult tvia = t->schedule(body, m, config);
        TwoPhaseOutcome tdirect = scheduleTwoPhase(body, m);
        ASSERT_NE(tvia.ddg, nullptr);
        expectSameSchedule(*tvia.ddg, tvia.sched, tdirect.sched);
    }
}

} // namespace
