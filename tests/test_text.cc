/**
 * @file
 * Textual DDG serialization: round trips, error handling, and
 * semantic equivalence of parsed loops.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/reference.h"
#include "support/diag.h"
#include "workload/synth.h"
#include "workload/text.h"

namespace dms {
namespace {

TEST(Text, SerializeMentionsEverything)
{
    Loop k = kernelDotProduct();
    std::string txt = loopToText(k);
    EXPECT_NE(txt.find("loop dot_product trip 500"),
              std::string::npos);
    EXPECT_NE(txt.find("op 2 mul"), std::string::npos);
    EXPECT_NE(txt.find("dist=1"), std::string::npos);
    EXPECT_NE(txt.find("slot=1"), std::string::npos);
}

TEST(Text, RoundTripAllKernels)
{
    for (const Loop &k : namedKernels()) {
        Loop back = loopFromText(loopToText(k));
        EXPECT_EQ(back.name, k.name);
        EXPECT_EQ(back.tripCount, k.tripCount);
        EXPECT_EQ(back.ddg.liveOpCount(), k.ddg.liveOpCount());
        EXPECT_EQ(back.recurrence, k.recurrence);
        // Semantics: identical store logs.
        auto problems = compareStoreLogs(
            referenceExecute(k.ddg, 12),
            referenceExecute(back.ddg, 12));
        EXPECT_TRUE(problems.empty())
            << k.name << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

TEST(Text, RoundTripSyntheticLoops)
{
    for (const Loop &k : synthesizeSuite(99, 25)) {
        Loop back = loopFromText(loopToText(k));
        EXPECT_EQ(back.ddg.liveOpCount(), k.ddg.liveOpCount());
        auto problems = compareStoreLogs(
            referenceExecute(k.ddg, 8),
            referenceExecute(back.ddg, 8));
        EXPECT_TRUE(problems.empty()) << k.name;
    }
}

/**
 * The canonical form is load-bearing as the serve-cache key: one
 * parse must be a fixed point, i.e. serializing the re-parsed loop
 * reproduces the text byte for byte. Fuzz over the synthetic
 * generator (several seeds) plus every named kernel.
 */
TEST(Text, FuzzCanonicalRoundTripIsFixedPoint)
{
    std::vector<Loop> loops;
    for (std::uint64_t seed : {1ULL, 42ULL, 0xfeedULL}) {
        for (Loop &l : synthesizeSuite(seed, 60))
            loops.push_back(std::move(l));
    }
    for (Loop &k : namedKernels())
        loops.push_back(std::move(k));

    for (const Loop &l : loops) {
        std::string t1 = loopToText(l);
        Loop back = loopFromText(t1);
        std::string t2 = loopToText(back);
        ASSERT_EQ(t2, t1) << "canonicalization drift for '"
                          << l.name << "'";
    }
}

/**
 * Dead ops leave id gaps in the graph; the canonical serialization
 * renumbers densely so the text of a gappy graph equals the text
 * of its re-parsed (dense) self.
 */
TEST(Text, DeadOpsSerializeDense)
{
    Loop l = kernelDotProduct();
    // Graft a dead op into the middle: add and remove again.
    OpId extra = l.ddg.addOp(Opcode::Add);
    l.ddg.removeOp(extra);
    std::string t1 = loopToText(l);
    EXPECT_EQ(t1, loopToText(loopFromText(t1)));
    // Dense ids: the serialized op count is the live count, and no
    // id beyond it appears.
    EXPECT_EQ(t1.find(strfmt("op %d", l.ddg.liveOpCount())),
              std::string::npos);
}

/**
 * offset= and lit= are signed in the format (negative stencil
 * offsets, negative constants); the parser must accept what the
 * serializer emits.
 */
TEST(Text, NegativeOffsetAndLiteralRoundTrip)
{
    Loop l;
    l.name = "neg";
    l.tripCount = 10;
    OpId ld = l.ddg.addOp(Opcode::Load);
    l.ddg.op(ld).memStream = 0;
    l.ddg.op(ld).memOffset = -2;
    OpId c = l.ddg.addOp(Opcode::Const);
    l.ddg.op(c).literal = -7;
    OpId add = l.ddg.addOp(Opcode::Add);
    OpId st = l.ddg.addOp(Opcode::Store);
    l.ddg.op(st).memStream = 1;
    l.ddg.op(st).memOffset = -1;
    l.ddg.addEdge(ld, add, DepKind::Flow, 0, 2, 0);
    l.ddg.addEdge(c, add, DepKind::Flow, 0, 0, 1);
    l.ddg.addEdge(add, st, DepKind::Flow, 0, 1, 0);

    std::string t1 = loopToText(l);
    EXPECT_NE(t1.find("offset=-2"), std::string::npos);
    EXPECT_NE(t1.find("lit=-7"), std::string::npos);
    Loop back = loopFromText(t1);
    EXPECT_EQ(back.ddg.op(0).memOffset, -2);
    EXPECT_EQ(back.ddg.op(1).literal, -7);
    EXPECT_EQ(loopToText(back), t1);
}

TEST(Text, NonFatalParseReportsErrors)
{
    Loop out;
    std::string error;
    EXPECT_FALSE(loopFromText("op 0 frobnicate\n", out, error));
    EXPECT_NE(error.find("unknown opcode"), std::string::npos);
    EXPECT_NE(error.find("line 1"), std::string::npos);

    error.clear();
    EXPECT_TRUE(loopFromText(loopToText(kernelFir8()), out, error));
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(out.name, "fir8");
}

TEST(Text, LoadLoopSpecSharedLoader)
{
    Loop out;
    std::string error;
    EXPECT_TRUE(loadLoopSpec("kernel:daxpy", out, error));
    EXPECT_EQ(out.name, "daxpy");
    EXPECT_FALSE(loadLoopSpec("kernel:nosuch", out, error));
    EXPECT_NE(error.find("unknown kernel"), std::string::npos);
    EXPECT_FALSE(loadLoopSpec("/nonexistent/path.loop", out,
                              error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(Text, ParsesCommentsAndBlanks)
{
    Loop l = loopFromText("# header\n\nloop t trip 7\n"
                          "op 0 load stream=3 offset=2\n"
                          "# mid comment\n"
                          "op 1 store stream=4\n"
                          "edge 0 1 flow dist=0 slot=0\n");
    EXPECT_EQ(l.name, "t");
    EXPECT_EQ(l.tripCount, 7);
    EXPECT_EQ(l.ddg.op(0).memStream, 3);
    EXPECT_EQ(l.ddg.op(0).memOffset, 2);
    EXPECT_FALSE(l.recurrence);
}

TEST(Text, ParsesConstLiteral)
{
    Loop l = loopFromText("loop c trip 1\n"
                          "op 0 const lit=42\n"
                          "op 1 store stream=0\n"
                          "edge 0 1 flow dist=0 slot=0\n");
    EXPECT_EQ(l.ddg.op(0).literal, 42);
}

TEST(Text, NonFlowEdgesTakeExplicitLatency)
{
    Loop l = loopFromText("loop m trip 1\n"
                          "op 0 load stream=0\n"
                          "op 1 store stream=0\n"
                          "edge 0 1 flow dist=0 slot=0\n"
                          "edge 1 0 memory dist=1 lat=3\n");
    bool found = false;
    for (EdgeId e = 0; e < l.ddg.numEdges(); ++e) {
        if (l.ddg.edge(e).kind == DepKind::Memory) {
            EXPECT_EQ(l.ddg.edge(e).latency, 3);
            EXPECT_EQ(l.ddg.edge(e).distance, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Text, FlowLatencyComesFromModel)
{
    LatencyModel lat;
    lat.set(Opcode::Load, 9);
    Loop l = loopFromText("loop x trip 1\n"
                          "op 0 load stream=0\n"
                          "op 1 store stream=1\n"
                          "edge 0 1 flow dist=0 slot=0\n",
                          lat);
    EXPECT_EQ(l.ddg.edge(0).latency, 9);
}

using TextDeath = ::testing::Test;

TEST(TextDeath, RejectsUnknownOpcode)
{
    EXPECT_EXIT(loopFromText("op 0 frobnicate\n"),
                ::testing::ExitedWithCode(1), "unknown opcode");
}

TEST(TextDeath, RejectsUnknownDirective)
{
    EXPECT_EXIT(loopFromText("banana 1 2\n"),
                ::testing::ExitedWithCode(1), "unknown directive");
}

TEST(TextDeath, RejectsDanglingEdge)
{
    EXPECT_EXIT(loopFromText("op 0 load\nedge 0 5 flow slot=0\n"),
                ::testing::ExitedWithCode(1), "unknown op");
}

TEST(TextDeath, RejectsDuplicateOpId)
{
    EXPECT_EXIT(loopFromText("op 0 load\nop 0 load\n"),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(TextDeath, RejectsZeroDistanceCycle)
{
    EXPECT_EXIT(loopFromText("loop z trip 1\n"
                             "op 0 add\nop 1 add\n"
                             "edge 0 1 flow dist=0 slot=0\n"
                             "edge 1 0 flow dist=0 slot=0\n"),
                ::testing::ExitedWithCode(1), "invalid loop");
}

} // namespace
} // namespace dms
