/**
 * @file
 * Textual DDG serialization: round trips, error handling, and
 * semantic equivalence of parsed loops.
 */

#include <gtest/gtest.h>

#include "sim/reference.h"
#include "workload/synth.h"
#include "workload/text.h"

namespace dms {
namespace {

TEST(Text, SerializeMentionsEverything)
{
    Loop k = kernelDotProduct();
    std::string txt = loopToText(k);
    EXPECT_NE(txt.find("loop dot_product trip 500"),
              std::string::npos);
    EXPECT_NE(txt.find("op 2 mul"), std::string::npos);
    EXPECT_NE(txt.find("dist=1"), std::string::npos);
    EXPECT_NE(txt.find("slot=1"), std::string::npos);
}

TEST(Text, RoundTripAllKernels)
{
    for (const Loop &k : namedKernels()) {
        Loop back = loopFromText(loopToText(k));
        EXPECT_EQ(back.name, k.name);
        EXPECT_EQ(back.tripCount, k.tripCount);
        EXPECT_EQ(back.ddg.liveOpCount(), k.ddg.liveOpCount());
        EXPECT_EQ(back.recurrence, k.recurrence);
        // Semantics: identical store logs.
        auto problems = compareStoreLogs(
            referenceExecute(k.ddg, 12),
            referenceExecute(back.ddg, 12));
        EXPECT_TRUE(problems.empty())
            << k.name << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

TEST(Text, RoundTripSyntheticLoops)
{
    for (const Loop &k : synthesizeSuite(99, 25)) {
        Loop back = loopFromText(loopToText(k));
        EXPECT_EQ(back.ddg.liveOpCount(), k.ddg.liveOpCount());
        auto problems = compareStoreLogs(
            referenceExecute(k.ddg, 8),
            referenceExecute(back.ddg, 8));
        EXPECT_TRUE(problems.empty()) << k.name;
    }
}

TEST(Text, ParsesCommentsAndBlanks)
{
    Loop l = loopFromText("# header\n\nloop t trip 7\n"
                          "op 0 load stream=3 offset=2\n"
                          "# mid comment\n"
                          "op 1 store stream=4\n"
                          "edge 0 1 flow dist=0 slot=0\n");
    EXPECT_EQ(l.name, "t");
    EXPECT_EQ(l.tripCount, 7);
    EXPECT_EQ(l.ddg.op(0).memStream, 3);
    EXPECT_EQ(l.ddg.op(0).memOffset, 2);
    EXPECT_FALSE(l.recurrence);
}

TEST(Text, ParsesConstLiteral)
{
    Loop l = loopFromText("loop c trip 1\n"
                          "op 0 const lit=42\n"
                          "op 1 store stream=0\n"
                          "edge 0 1 flow dist=0 slot=0\n");
    EXPECT_EQ(l.ddg.op(0).literal, 42);
}

TEST(Text, NonFlowEdgesTakeExplicitLatency)
{
    Loop l = loopFromText("loop m trip 1\n"
                          "op 0 load stream=0\n"
                          "op 1 store stream=0\n"
                          "edge 0 1 flow dist=0 slot=0\n"
                          "edge 1 0 memory dist=1 lat=3\n");
    bool found = false;
    for (EdgeId e = 0; e < l.ddg.numEdges(); ++e) {
        if (l.ddg.edge(e).kind == DepKind::Memory) {
            EXPECT_EQ(l.ddg.edge(e).latency, 3);
            EXPECT_EQ(l.ddg.edge(e).distance, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Text, FlowLatencyComesFromModel)
{
    LatencyModel lat;
    lat.set(Opcode::Load, 9);
    Loop l = loopFromText("loop x trip 1\n"
                          "op 0 load stream=0\n"
                          "op 1 store stream=1\n"
                          "edge 0 1 flow dist=0 slot=0\n",
                          lat);
    EXPECT_EQ(l.ddg.edge(0).latency, 9);
}

using TextDeath = ::testing::Test;

TEST(TextDeath, RejectsUnknownOpcode)
{
    EXPECT_EXIT(loopFromText("op 0 frobnicate\n"),
                ::testing::ExitedWithCode(1), "unknown opcode");
}

TEST(TextDeath, RejectsUnknownDirective)
{
    EXPECT_EXIT(loopFromText("banana 1 2\n"),
                ::testing::ExitedWithCode(1), "unknown directive");
}

TEST(TextDeath, RejectsDanglingEdge)
{
    EXPECT_EXIT(loopFromText("op 0 load\nedge 0 5 flow slot=0\n"),
                ::testing::ExitedWithCode(1), "unknown op");
}

TEST(TextDeath, RejectsDuplicateOpId)
{
    EXPECT_EXIT(loopFromText("op 0 load\nop 0 load\n"),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(TextDeath, RejectsZeroDistanceCycle)
{
    EXPECT_EXIT(loopFromText("loop z trip 1\n"
                             "op 0 add\nop 1 add\n"
                             "edge 0 1 flow dist=0 slot=0\n"
                             "edge 1 0 flow dist=0 slot=0\n"),
                ::testing::ExitedWithCode(1), "invalid loop");
}

} // namespace
} // namespace dms
