/**
 * @file
 * Network front-end tests: wire escape/framing round trips, a
 * deterministic framing-fuzz pass over corrupted request lines
 * (parse or structured reject — never a crash), live-server abuse
 * (garbage lines, oversized lines, mid-request disconnects) that
 * must leave the daemon serving, and the socket-parity pin: a TCP
 * round trip returns results bit-identical to the in-process
 * CompileService, including a cache-hit round trip.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include "core/dms.h"
#include "machine/desc.h"
#include "serve/net.h"
#include "serve/service.h"
#include "support/rng.h"
#include "workload/suite.h"
#include "workload/text.h"

namespace dms {
namespace {

/** Canonical compile request for one named kernel on the ring. */
CompileRequest
kernelRequest(const char *kernel, bool codegen = true)
{
    Loop loop;
    std::string error;
    EXPECT_TRUE(loadLoopSpec(
        (std::string("kernel:") + kernel).c_str(), loop, error))
        << error;
    PipelineOptions po;
    po.scheduler = "dms";
    po.regalloc = true;
    po.codegen = codegen;
    return makeRequest(loop, MachineModel::clusteredRing(4), po);
}

/** Every field of the two results, compared bit-for-bit. */
void
expectResultsIdentical(const CompileResult &a,
                       const CompileResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.parsed, b.parsed);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.failSite, b.failSite);
    EXPECT_TRUE(a.run == b.run);
    EXPECT_EQ(a.kernelText, b.kernelText);
}

/** Raw loopback TCP connection, bypassing NetClient's framing. */
int
rawConnect(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawSend(int fd, const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off,
                           bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Read one '\n'-terminated line (newline stripped). */
bool
rawReadLine(int fd, std::string &line)
{
    line.clear();
    char c = 0;
    while (true) {
        ssize_t n = ::recv(fd, &c, 1, 0);
        if (n <= 0)
            return false;
        if (c == '\n')
            return true;
        line.push_back(c);
    }
}

// --- framing ------------------------------------------------------------

TEST(Wire, EscapeRoundTripsEveryReservedByte)
{
    const std::string nasty("a\\b\tc\nd\re\\\\\t\t\n\n", 16);
    const std::string esc = wireEscape(nasty);
    EXPECT_EQ(esc.find('\t'), std::string::npos);
    EXPECT_EQ(esc.find('\n'), std::string::npos);
    EXPECT_EQ(esc.find('\r'), std::string::npos);
    std::string back;
    ASSERT_TRUE(wireUnescape(esc, back));
    EXPECT_EQ(back, nasty);

    // Random byte soup round-trips too.
    Rng rng(0x5eedULL);
    for (int iter = 0; iter < 200; ++iter) {
        std::string s;
        const int len = rng.range(0, 64);
        for (int i = 0; i < len; ++i)
            s.push_back(static_cast<char>(rng.range(0, 255)));
        std::string out;
        ASSERT_TRUE(wireUnescape(wireEscape(s), out));
        EXPECT_EQ(out, s);
    }
}

TEST(Wire, UnescapeRejectsBadEscapes)
{
    std::string out;
    EXPECT_FALSE(wireUnescape("dangling\\", out));
    EXPECT_FALSE(wireUnescape("unknown\\q", out));
    EXPECT_TRUE(wireUnescape("fine\\\\\\t\\n\\r", out));
    EXPECT_EQ(out, "fine\\\t\n\r");
}

TEST(Wire, RequestLineRoundTripsEveryField)
{
    WireRequest req;
    req.verb = WireRequest::Verb::Compile;
    req.request = kernelRequest("fir8");
    req.request.deadlineMs = 750;
    req.request.options.forceUnroll = 2;
    req.request.options.unrollMaxFactor = 4;
    req.request.options.unrollMaxOps = 256;
    req.request.options.verify = false;

    const std::string line = wireRequestToLine(req);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    WireRequest back;
    std::string error;
    ASSERT_TRUE(wireRequestFromLine(line, back, error)) << error;
    EXPECT_EQ(back.verb, WireRequest::Verb::Compile);
    EXPECT_EQ(back.request.loopText, req.request.loopText);
    EXPECT_EQ(back.request.machineText, req.request.machineText);
    EXPECT_EQ(back.request.options.scheduler,
              req.request.options.scheduler);
    EXPECT_EQ(back.request.deadlineMs, 750);
    EXPECT_EQ(back.request.options.forceUnroll, 2);
    EXPECT_EQ(back.request.options.unrollMaxFactor, 4);
    EXPECT_EQ(back.request.options.unrollMaxOps, 256);
    EXPECT_FALSE(back.request.options.verify);
    EXPECT_TRUE(back.request.options.regalloc);
    EXPECT_TRUE(back.request.options.codegen);

    WireRequest stats;
    stats.verb = WireRequest::Verb::Stats;
    WireRequest statsBack;
    ASSERT_TRUE(wireRequestFromLine(wireRequestToLine(stats),
                                    statsBack, error))
        << error;
    EXPECT_EQ(statsBack.verb, WireRequest::Verb::Stats);
}

TEST(Wire, ResultLineRoundTripsEveryField)
{
    CompileResult r;
    r.status = CompileStatus::Ok;
    r.parsed = true;
    r.ok = true;
    r.error = "line 3:\tnot really\n";
    r.failSite = "serve.cache.lookup";
    r.run.ok = true;
    r.run.ii = 7;
    r.run.mii = 6;
    r.run.stageCount = 3;
    r.run.unrollFactor = 2;
    r.run.movesInserted = 11;
    r.run.copiesInserted = 4;
    r.run.iterations = 64;
    r.run.cycles = 513;
    r.run.usefulIssues = 1024;
    r.run.queueFiles = 5;
    r.run.queuesRequired = 17;
    r.run.queueStorage = 40;
    r.run.maxLinkQueues = 3;
    r.kernelText = "stage 0:\n  alu0.add r1, r2\n";

    CompileResult back;
    std::string error;
    ASSERT_TRUE(
        wireResultFromLine(wireResultToLine(r), back, error))
        << error;
    expectResultsIdentical(r, back);
}

TEST(Wire, FramingFuzzNeverCrashesTheParser)
{
    // Deterministic corruption of a real request line: byte flips,
    // insertions, deletions and truncations. Every mutant must
    // either parse or produce a framing error — never crash, never
    // return success with an empty loop/machine.
    WireRequest req;
    req.request = kernelRequest("fir8", false);
    const std::string pristine = wireRequestToLine(req);

    Rng rng(0xfeedfaceULL);
    for (int iter = 0; iter < 3000; ++iter) {
        std::string line = pristine;
        const int edits = rng.range(1, 8);
        for (int e = 0; e < edits && !line.empty(); ++e) {
            const size_t pos = static_cast<size_t>(rng.range(
                0, static_cast<int>(line.size()) - 1));
            switch (rng.range(0, 3)) {
            case 0:
                line[pos] = static_cast<char>(rng.range(0, 255));
                break;
            case 1:
                line.insert(pos, 1,
                            static_cast<char>(rng.range(0, 255)));
                break;
            case 2:
                line.erase(pos, 1);
                break;
            default:
                line.resize(pos);
                break;
            }
        }
        // Mutants that still parse (e.g. a value flipped inside
        // the escaped loop text) are the service's problem — it
        // answers Invalid. The parser's contract here is only:
        // a verdict, an error message on reject, no crash.
        WireRequest out;
        std::string error;
        if (!wireRequestFromLine(line, out, error)) {
            EXPECT_FALSE(error.empty());
        }
    }
}

// --- live server abuse --------------------------------------------------

TEST(NetServer, GarbageAndDisconnectsLeaveTheServerServing)
{
    ServeOptions so;
    so.workers = 2;
    CompileService service(so);
    NetServer server(service);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    // Garbage lines get a structured Invalid response on the same
    // connection — parse-or-reject, never a dropped socket.
    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    for (const char *junk :
         {"not a protocol line", "dms1\tcompile\tloop=\\q",
          "dms1\tfrobnicate", "dms1\tcompile\tmystery=1"}) {
        ASSERT_TRUE(rawSend(fd, std::string(junk) + "\n"));
        std::string respLine;
        ASSERT_TRUE(rawReadLine(fd, respLine)) << junk;
        CompileResult resp;
        ASSERT_TRUE(wireResultFromLine(respLine, resp, error))
            << error;
        EXPECT_EQ(resp.status, CompileStatus::Invalid) << junk;
        EXPECT_FALSE(resp.error.empty());
    }
    // A mid-request disconnect (partial line, no newline) is
    // dropped without a response and without hurting the server.
    ASSERT_TRUE(rawSend(fd, "dms1\tcompile\tloop="));
    ::close(fd);

    // The server still compiles for the next client.
    NetClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server.port(), 5000, error))
        << error;
    CompileResult result;
    ASSERT_TRUE(
        client.compile(kernelRequest("fir8", false), result, error))
        << error;
    EXPECT_EQ(result.status, CompileStatus::Ok);

    const ServeStats stats = server.stats();
    EXPECT_GE(stats.netFramingRejects, 4u);
    EXPECT_LE(stats.netFramingRejects, stats.invalid);
    EXPECT_LE(stats.netFramingRejects, stats.netRequests);
    EXPECT_GE(stats.netBytesIn, stats.netRequests);
    server.stop();
}

TEST(NetServer, OversizedLineIsRejectedAndTheConnectionSurvives)
{
    ServeOptions so;
    so.workers = 2;
    CompileService service(so);
    NetServerOptions no;
    no.maxLineBytes = 4096;
    NetServer server(service, no);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(
        rawSend(fd, std::string(10000, 'x') + "\n"));
    std::string respLine;
    ASSERT_TRUE(rawReadLine(fd, respLine));
    CompileResult resp;
    ASSERT_TRUE(wireResultFromLine(respLine, resp, error)) << error;
    EXPECT_EQ(resp.status, CompileStatus::Invalid);

    // Same connection, next line: a well-formed compile succeeds.
    WireRequest req;
    req.request = kernelRequest("fir8", false);
    ASSERT_TRUE(rawSend(fd, wireRequestToLine(req) + "\n"));
    ASSERT_TRUE(rawReadLine(fd, respLine));
    ASSERT_TRUE(wireResultFromLine(respLine, resp, error)) << error;
    EXPECT_EQ(resp.status, CompileStatus::Ok);
    ::close(fd);
    server.stop();
}

// --- socket parity (acceptance pin) -------------------------------------

TEST(NetServer, TcpRoundTripIsBitIdenticalToInProcessService)
{
    const CompileRequest req = kernelRequest("fir8");

    // Ground truth: the in-process service, no sockets anywhere.
    ServeOptions so;
    so.workers = 2;
    CompileService direct(so);
    CompileService::ResultPtr truth = direct.compile(req);
    ASSERT_TRUE(truth->parsed);
    ASSERT_TRUE(truth->ok);
    ASSERT_FALSE(truth->kernelText.empty());

    // The same request over TCP against a fresh service.
    CompileService service(so);
    NetServer server(service);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    NetClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server.port(), 5000, error))
        << error;

    CompileResult cold;
    ASSERT_TRUE(client.compile(req, cold, error)) << error;
    expectResultsIdentical(*truth, cold);

    // And the cache-hit round trip: same wire request again must
    // be a hit server-side and byte-identical client-side.
    CompileResult warm;
    ASSERT_TRUE(client.compile(req, warm, error)) << error;
    expectResultsIdentical(*truth, warm);

    const ServeStats stats = server.stats();
    EXPECT_GE(stats.hits, 1u);
    EXPECT_EQ(stats.netRequests, 2u);
    EXPECT_EQ(stats.netConnections, 1u);
    EXPECT_EQ(stats.netFramingRejects, 0u);

    // The stats verb round-trips the snapshot text too.
    std::string statsText;
    ASSERT_TRUE(client.fetchStats(statsText, error)) << error;
    ServeStats fetched;
    ASSERT_TRUE(serveStatsFromText(statsText, fetched, error))
        << error;
    EXPECT_EQ(fetched.hits, stats.hits);
    EXPECT_EQ(fetched.netConnections, 1u);
    server.stop();
}

TEST(NetServer, MetricsVerbRoundTripsAndLintsClean)
{
    ServeOptions so;
    so.workers = 2;
    CompileService service(so);
    NetServer server(service);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    NetClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server.port(), 5000, error))
        << error;

    const CompileRequest req = kernelRequest("fir8");
    CompileResult cold, warm;
    ASSERT_TRUE(client.compile(req, cold, error)) << error;
    ASSERT_TRUE(client.compile(req, warm, error)) << error;

    // The wire snapshot parses back through metricsFromText and
    // is canonical: re-emitting it is byte-identical.
    std::string text;
    ASSERT_TRUE(client.fetchMetrics(text, error)) << error;
    obs::MetricsSnapshot snap;
    ASSERT_TRUE(obs::metricsFromText(text, snap, error)) << error;
    EXPECT_EQ(obs::metricsToText(snap), text);

    const auto *requests = snap.findCounter("serve.requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->value, 2u);
    const auto *hits = snap.findCounter("serve.hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->value, 1u);
    const auto *conns = snap.findCounter("net.connections");
    ASSERT_NE(conns, nullptr);
    EXPECT_GE(conns->value, 1u);
    const auto *latency = snap.findHistogram("serve.latency_ms");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->hist.count, 2u);

    // And it satisfies its own lint.
    DiagnosticSink sink;
    lintMetricsText(text, "wire.metrics", sink);
    EXPECT_TRUE(sink.empty()) << sink.renderText();

    // The trace verb answers too (empty export: tracing is not
    // armed here), and the export parses.
    std::string traceJson;
    ASSERT_TRUE(client.fetchTrace(traceJson, error)) << error;
    std::vector<std::vector<obs::TraceSpan>> traces;
    ASSERT_TRUE(obs::tracesFromJson(traceJson, traces, error))
        << error;
    server.stop();
}

TEST(NetServer, ConcurrentStatsAndMetricsPollingUnderLoad)
{
    // Satellite of the lock-free stats refactor: snapshots are
    // plain atomic reads now, so clients hammering the stats and
    // metrics verbs while compile load runs must see consistent
    // text (this test is the TSan witness for the hot path).
    ServeOptions so;
    so.workers = 2;
    CompileService service(so);
    NetServer server(service);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    const int port = server.port();

    const char *kernels[] = {"fir8", "iir2", "dot_product"};
    std::atomic<bool> done{false};
    std::atomic<int> compileFailures{0};
    std::atomic<int> pollFailures{0};

    std::vector<std::thread> compilers;
    for (int c = 0; c < 3; ++c) {
        compilers.emplace_back([&, c] {
            NetClient nc;
            std::string err;
            if (!nc.connect("127.0.0.1", port, 5000, err)) {
                compileFailures.fetch_add(1);
                return;
            }
            for (int i = 0; i < 15; ++i) {
                CompileResult out;
                if (!nc.compile(kernelRequest(kernels[(c + i) % 3]),
                                out, err) ||
                    !out.ok)
                    compileFailures.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> pollers;
    for (int p = 0; p < 2; ++p) {
        pollers.emplace_back([&] {
            NetClient nc;
            std::string err;
            if (!nc.connect("127.0.0.1", port, 5000, err)) {
                pollFailures.fetch_add(1);
                return;
            }
            while (!done.load(std::memory_order_relaxed)) {
                std::string text;
                ServeStats s;
                if (!nc.fetchStats(text, err) ||
                    !serveStatsFromText(text, s, err)) {
                    pollFailures.fetch_add(1);
                    break;
                }
                obs::MetricsSnapshot snap;
                if (!nc.fetchMetrics(text, err) ||
                    !obs::metricsFromText(text, snap, err)) {
                    pollFailures.fetch_add(1);
                    break;
                }
            }
        });
    }
    for (std::thread &t : compilers)
        t.join();
    done.store(true);
    for (std::thread &t : pollers)
        t.join();

    EXPECT_EQ(compileFailures.load(), 0);
    EXPECT_EQ(pollFailures.load(), 0);

    // The final snapshot both parses and satisfies the counter
    // identities the lint audits.
    DiagnosticSink sink;
    lintMetricsText(obs::metricsToText(server.metrics()),
                    "hammer.metrics", sink);
    EXPECT_TRUE(sink.empty()) << sink.renderText();
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.requests, 45u);
    EXPECT_EQ(stats.latencySamples, 45u);
    server.stop();
}

} // namespace
} // namespace dms
