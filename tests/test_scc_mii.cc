/**
 * @file
 * SCC detection and MII bounds (ResMII / RecMII) against
 * hand-computed values.
 */

#include <gtest/gtest.h>

#include "ir/scc.h"
#include "machine/machine.h"
#include "sched/mii.h"
#include "workload/kernels.h"

namespace dms {
namespace {

TEST(Scc, AcyclicGraphHasTrivialSccs)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId y = b.mul1(x);
    b.store(1, y);
    Ddg g = b.take();
    auto sccs = stronglyConnectedComponents(g);
    EXPECT_EQ(sccs.size(), 3u);
    for (const auto &scc : sccs)
        EXPECT_EQ(scc.size(), 1u);
    EXPECT_FALSE(hasRecurrence(g));
}

TEST(Scc, SelfLoopIsRecurrence)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId acc = b.add1(x);
    b.flow(acc, acc, 1, 1);
    b.store(1, acc);
    Ddg g = b.take();
    EXPECT_TRUE(hasRecurrence(g));
}

TEST(Scc, TwoOpCycleDetected)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId a = b.add1(x);
    OpId m = b.mul1(a);
    b.flow(m, a, 1, 1);
    b.store(1, m);
    Ddg g = b.take();
    auto sccs = stronglyConnectedComponents(g);
    size_t big = 0;
    for (const auto &scc : sccs)
        big = std::max(big, scc.size());
    EXPECT_EQ(big, 2u);
    EXPECT_TRUE(hasRecurrence(g));
}

TEST(Scc, ReplacedEdgesDoNotParticipate)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId a = b.add1(x);
    EdgeId back = b.flow(a, a, 1, 1);
    b.store(1, a);
    Ddg g = b.take();
    g.markReplaced(back);
    EXPECT_FALSE(hasRecurrence(g));
}

TEST(ResMii, CeilingOfClassPressure)
{
    // 4 loads+stores on 1 L/S unit -> ResMII 4.
    LoopBuilder b;
    OpId l1 = b.load(0);
    OpId l2 = b.load(1);
    OpId s = b.add(l1, l2);
    b.store(2, s);
    b.store(3, s);
    Ddg g = b.take();
    EXPECT_EQ(resMii(g, MachineModel::clusteredRing(1)), 4);
    EXPECT_EQ(resMii(g, MachineModel::clusteredRing(2)), 2);
    EXPECT_EQ(resMii(g, MachineModel::clusteredRing(4)), 1);
    EXPECT_EQ(resMii(g, MachineModel::unclustered(2)), 2);
}

TEST(ResMii, CopyOpsPressCopyUnits)
{
    LoopBuilder b;
    OpId x = b.load(0);
    b.store(1, x);
    Ddg g = b.take();
    OpId c1 = g.addOp(Opcode::Copy, OpOrigin::CopyOp);
    OpId c2 = g.addOp(Opcode::Copy, OpOrigin::CopyOp);
    OpId c3 = g.addOp(Opcode::Copy, OpOrigin::CopyOp);
    g.addEdge(x, c1, DepKind::Flow, 0, 2, 0);
    g.addEdge(c1, c2, DepKind::Flow, 0, 1, 0);
    g.addEdge(c2, c3, DepKind::Flow, 0, 1, 0);
    // 3 copies / 1 copy unit = 3.
    EXPECT_EQ(resMii(g, MachineModel::clusteredRing(1)), 3);
    // ...or 2 copy units per cluster = ceil(3/2) = 2 (A2 ablation).
    EXPECT_EQ(resMii(g, MachineModel::clusteredRing(1, 2)), 2);
}

TEST(RecMii, AcyclicIsOne)
{
    EXPECT_EQ(recMii(kernelDaxpy().ddg), 1);
    EXPECT_EQ(recMii(kernelFir8().ddg), 1);
}

TEST(RecMii, AccumulatorSelfLoop)
{
    // add (lat 1) self-loop distance 1 -> RecMII = 1.
    EXPECT_EQ(recMii(kernelDotProduct().ddg), 1);
}

TEST(RecMii, LatencyOverDistanceRatio)
{
    // mul (lat 2) -> add (lat 1) -> mul, back distance 1:
    // cycle latency 3, distance 1 -> RecMII 3.
    LoopBuilder b;
    OpId x = b.load(0);
    OpId m = b.mul1(x);
    OpId a = b.add1(m);
    b.flow(a, m, 1, 1);
    b.store(1, a);
    Ddg g = b.take();
    EXPECT_EQ(recMii(g), 3);
}

TEST(RecMii, DistanceTwoHalvesTheBound)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId m = b.mul1(x);
    OpId a = b.add1(m);
    b.flow(a, m, 1, 2); // same cycle, distance 2
    b.store(1, a);
    Ddg g = b.take();
    EXPECT_EQ(recMii(g), 2); // ceil(3/2)
}

TEST(RecMii, HornerIsMulPlusAdd)
{
    // mul(2) + add(1) over distance 1 -> 3.
    EXPECT_EQ(recMii(kernelHorner().ddg), 3);
}

TEST(RecMii, LongLatencyDivRecurrence)
{
    // div(8) + sub(1) over distance 2 -> ceil(9/2) = 5.
    EXPECT_EQ(recMii(kernelMixedLongLatency().ddg), 5);
}

TEST(RecMii, TakesMaxOverCycles)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId a = b.add1(x); // fast accumulator: 1/1
    b.flow(a, a, 1, 1);
    OpId m = b.mul1(x); // slow 2-op cycle: (2+1)/1 = 3
    OpId c = b.add1(m);
    b.flow(c, m, 1, 1);
    b.store(1, a);
    b.store(2, c);
    Ddg g = b.take();
    EXPECT_EQ(recMii(g), 3);
}

TEST(RecMii, MemoryEdgeCyclesCount)
{
    // store -> load memory dep (dist 1) closing a flow path:
    // load(2) -> add(1) -> store, mem lat 1 => cycle lat 4, d 1.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId a = b.add1(ld);
    OpId st = b.store(0, a);
    b.memDep(st, ld, 1, 1);
    Ddg g = b.take();
    EXPECT_EQ(recMii(g), 4);
}

TEST(MinII, MaxOfBounds)
{
    Loop horner = kernelHorner(); // RecMII 3, tiny ResMII
    MachineModel m1 = MachineModel::clusteredRing(1);
    EXPECT_EQ(minII(horner.ddg, m1), 3);

    Loop fir = kernelFir8(); // 8 loads+1 store on 1 L/S: ResMII 9
    EXPECT_EQ(minII(fir.ddg, m1), 9);
    MachineModel m3 = MachineModel::clusteredRing(3);
    EXPECT_EQ(minII(fir.ddg, m3), 3);
}

TEST(KernelFacts, RecurrenceFlagsMatch)
{
    EXPECT_FALSE(kernelDaxpy().recurrence);
    EXPECT_TRUE(kernelDotProduct().recurrence);
    EXPECT_TRUE(kernelIir2().recurrence);
    EXPECT_FALSE(kernelComplexMultiply().recurrence);
    EXPECT_FALSE(kernelColorConvert().recurrence);
    EXPECT_TRUE(kernelPrefixSum().recurrence);
    EXPECT_FALSE(kernelFftButterfly().recurrence);
}

TEST(KernelFacts, AllSixteenBuildAndVerify)
{
    auto kernels = namedKernels();
    EXPECT_EQ(kernels.size(), 16u);
    for (const Loop &k : kernels) {
        EXPECT_GT(k.ddg.liveOpCount(), 0) << k.name;
        EXPECT_GT(k.tripCount, 0) << k.name;
    }
}

} // namespace
} // namespace dms
