/**
 * @file
 * Observability tests: the lock-free latency histogram against the
 * exact nearest-rank Samples store (the ≤5% relative-error bound,
 * exact count and max, snapshot merge), the canonical metrics text
 * round trip and its strict parser, span trees and their JSON
 * round trip, the bounded TraceLog, and the determinism pins — an
 * armed tracer records the same span tree for the same request,
 * and a disarmed tracer records nothing at all.
 */

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "machine/desc.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/net.h"
#include "serve/service.h"
#include "support/rng.h"
#include "support/stats.h"
#include "workload/text.h"

namespace dms {
namespace {

using obs::HistogramSnapshot;
using obs::LatencyHistogram;

/**
 * The documented error bound: a sub-bucket spans 1/16 of an
 * octave, so the bucket midpoint is within 1/(2*16) = 3.125% of
 * any sample in the bucket. The histogram advertises ≤5%.
 */
constexpr double kRelErrBound = 0.05;

void
expectPercentilesWithinBound(const std::vector<double> &samples_ms)
{
    LatencyHistogram hist;
    Samples exact;
    for (double v : samples_ms) {
        hist.record(v);
        exact.add(v);
    }
    const HistogramSnapshot snap = hist.snapshot();

    // Count and max are exact, never sketched.
    EXPECT_EQ(snap.count, exact.count());
    EXPECT_DOUBLE_EQ(snap.maxMs, exact.max());

    // Conservation: every sample is in exactly one bucket.
    std::uint64_t in_buckets = 0;
    for (const auto &b : snap.buckets)
        in_buckets += b.second;
    EXPECT_EQ(in_buckets, snap.count);

    for (double p : {50.0, 90.0, 99.0}) {
        const double want = exact.percentile(p);
        const double got = snap.percentile(p);
        ASSERT_GT(want, 0.0);
        EXPECT_LE(std::abs(got - want) / want, kRelErrBound)
            << "p" << p << ": exact " << want << " histogram "
            << got;
    }
}

TEST(LatencyHistogram, UniformWorkloadWithinBound)
{
    Rng rng(0x9d5u);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i)
        samples.push_back(0.01 + rng.uniform() * 9.99);
    expectPercentilesWithinBound(samples);
}

TEST(LatencyHistogram, ZipfSkewedWorkloadWithinBound)
{
    // A cache-like mix: most requests land in a tight hit band,
    // a heavy tail compiles for milliseconds.
    Rng rng(0x51bfu);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        if (u < 0.8)
            samples.push_back(0.004 + rng.uniform() * 0.01);
        else
            samples.push_back(
                1.0 / (0.01 + rng.uniform())); // ~[1, 100] ms
    }
    expectPercentilesWithinBound(samples);
}

TEST(LatencyHistogram, BimodalWorkloadWithinBound)
{
    Rng rng(0xb1d0u);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.5))
            samples.push_back(0.05 * (1.0 + 0.2 * rng.uniform()));
        else
            samples.push_back(5.0 * (1.0 + 0.2 * rng.uniform()));
    }
    expectPercentilesWithinBound(samples);
}

TEST(LatencyHistogram, BucketBoundsContainTheirValues)
{
    Rng rng(0xfeedu);
    for (int i = 0; i < 5000; ++i) {
        const double v = std::exp(rng.uniform() * 18.0 - 6.0);
        const int b = LatencyHistogram::bucketFor(v);
        ASSERT_GE(b, 0);
        ASSERT_LT(b, LatencyHistogram::kBuckets);
        if (b == 0 || b == LatencyHistogram::kBuckets - 1)
            continue; // under/overflow buckets clamp
        EXPECT_LE(LatencyHistogram::bucketLoMs(b), v);
        EXPECT_GT(LatencyHistogram::bucketHiMs(b), v);
    }
}

TEST(LatencyHistogram, SnapshotMergeMatchesCombinedRecording)
{
    Rng rng(0x31337u);
    LatencyHistogram a, b, both;
    for (int i = 0; i < 4000; ++i) {
        const double v = 0.002 + rng.uniform() * 20.0;
        (i % 2 == 0 ? a : b).record(v);
        both.record(v);
    }
    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const HistogramSnapshot want = both.snapshot();
    EXPECT_EQ(merged.count, want.count);
    EXPECT_DOUBLE_EQ(merged.maxMs, want.maxMs);
    EXPECT_EQ(merged.buckets, want.buckets);
    EXPECT_DOUBLE_EQ(merged.percentile(99), want.percentile(99));
}

// --- metrics text ------------------------------------------------------

TEST(Metrics, TextRoundTripIsByteIdentical)
{
    obs::MetricsRegistry reg;
    reg.counter("serve.requests").inc(341);
    reg.counter("serve.hits").inc(7);
    reg.gauge("serve.queue_depth").set(3.5);
    obs::LatencyHistogram &h = reg.histogram("serve.latency_ms");
    Rng rng(0xabcu);
    for (int i = 0; i < 300; ++i)
        h.record(0.01 + rng.uniform() * 4.0);

    const std::string text = obs::metricsToText(reg.snapshot());
    obs::MetricsSnapshot parsed;
    std::string error;
    ASSERT_TRUE(obs::metricsFromText(text, parsed, error))
        << error;
    EXPECT_EQ(obs::metricsToText(parsed), text);

    const auto *req = parsed.findCounter("serve.requests");
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->value, 341u);
    const auto *lat = parsed.findHistogram("serve.latency_ms");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->hist.count, 300u);

    // The canonical snapshot lints clean.
    DiagnosticSink sink;
    lintMetricsText(text, "unit.metrics", sink);
    EXPECT_TRUE(sink.empty()) << sink.renderText();
}

TEST(Metrics, ParserRejectsMalformedText)
{
    obs::MetricsSnapshot out;
    std::string error;
    EXPECT_FALSE(obs::metricsFromText("counter a 1\n", out, error));
    EXPECT_NE(error.find("header"), std::string::npos);
    EXPECT_FALSE(obs::metricsFromText(
        "dmsmetrics v1\ncounter serve.requests -3\n", out, error));
    EXPECT_FALSE(obs::metricsFromText(
        "dmsmetrics v1\nblorb x 1\n", out, error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
    EXPECT_FALSE(obs::metricsFromText(
        "dmsmetrics v1\nhistogram h count=1 sum=1 max=1 "
        "buckets=5:1,3:2\n",
        out, error));
}

TEST(Metrics, RegistryReturnsStableCells)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("x");
    a.inc();
    // Registering more cells must not move the first one.
    for (int i = 0; i < 100; ++i)
        reg.counter("c" + std::to_string(i)).inc();
    EXPECT_EQ(&reg.counter("x"), &a);
    EXPECT_EQ(reg.counter("x").value(), 1u);
}

// --- traces ------------------------------------------------------------

TEST(Trace, SpanTreeAndJsonRoundTrip)
{
    auto trace = std::make_shared<obs::Trace>();
    const int root = trace->openSpan("request");
    {
        obs::ScopedSpan compile(trace.get(), "compile");
        obs::ScopedSpan stage(trace.get(), "schedule");
        stage.note("ii=7");
    }
    try {
        obs::ScopedSpan failing(trace.get(), "verify");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    trace->failSpan(root, "exception");
    trace->finish();

    ASSERT_EQ(trace->spans().size(), 4u);
    EXPECT_EQ(trace->spans()[0].name, "request");
    EXPECT_EQ(trace->spans()[0].parent, -1);
    EXPECT_EQ(trace->spans()[1].name, "compile");
    EXPECT_EQ(trace->spans()[1].parent, 0);
    EXPECT_EQ(trace->spans()[2].name, "schedule");
    EXPECT_EQ(trace->spans()[2].parent, 1);
    EXPECT_EQ(trace->spans()[2].note, "ii=7");
    // The unwound span and the annotated root are both failed.
    EXPECT_TRUE(trace->spans()[3].failed);
    EXPECT_TRUE(trace->spans()[0].failed);
    EXPECT_EQ(trace->spans()[0].note, "exception");

    const std::string json = obs::tracesToJson({trace});
    std::vector<std::vector<obs::TraceSpan>> parsed;
    std::string error;
    ASSERT_TRUE(obs::tracesFromJson(json, parsed, error)) << error;
    ASSERT_EQ(parsed.size(), 1u);
    ASSERT_EQ(parsed[0].size(), 4u);
    for (size_t i = 0; i < parsed[0].size(); ++i) {
        EXPECT_EQ(parsed[0][i].name, trace->spans()[i].name);
        EXPECT_EQ(parsed[0][i].parent, trace->spans()[i].parent);
        EXPECT_EQ(parsed[0][i].failed, trace->spans()[i].failed);
        EXPECT_EQ(parsed[0][i].note, trace->spans()[i].note);
    }

    // The canonical export lints clean (spans nest by
    // construction: children close before their parents).
    DiagnosticSink sink;
    lintTraceText(json, "unit.trace", sink);
    EXPECT_TRUE(sink.empty()) << sink.renderText();
}

TEST(Trace, LogIsBoundedAndCountsDrops)
{
    obs::TraceLog &log = obs::TraceLog::instance();
    log.clear();
    log.setCap(4);
    for (int i = 0; i < 9; ++i) {
        auto t = std::make_shared<obs::Trace>();
        t->openSpan("request");
        t->finish();
        log.commit(std::move(t));
    }
    EXPECT_EQ(log.traces().size(), 4u);
    EXPECT_EQ(log.dropped(), 5u);
    log.clear();
    EXPECT_TRUE(log.traces().empty());
    EXPECT_EQ(log.dropped(), 0u);
    log.setCap(256);
}

/** One fir8 compile request on the paper's 4-cluster ring. */
CompileRequest
fir8Request()
{
    Loop loop;
    std::string error;
    EXPECT_TRUE(loadLoopSpec("kernel:fir8", loop, error)) << error;
    PipelineOptions po;
    po.scheduler = "dms";
    po.regalloc = true;
    po.codegen = true;
    return makeRequest(loop, MachineModel::clusteredRing(4), po);
}

/** (name, parent) skeleton of every committed trace, in order. */
std::vector<std::vector<std::pair<std::string, int>>>
committedSkeletons()
{
    std::vector<std::vector<std::pair<std::string, int>>> out;
    for (const auto &trace : obs::TraceLog::instance().traces()) {
        std::vector<std::pair<std::string, int>> spans;
        for (const obs::TraceSpan &s : trace->spans())
            spans.emplace_back(s.name, s.parent);
        out.push_back(std::move(spans));
    }
    return out;
}

/**
 * Compile @p req on a fresh single-worker service and return the
 * committed span skeletons. The service is destroyed (workers
 * joined) before the log is read, so every commit is visible.
 */
std::vector<std::vector<std::pair<std::string, int>>>
traceOneRequest(const CompileRequest &req)
{
    obs::TraceLog::instance().clear();
    {
        ServeOptions so;
        so.workers = 1;
        CompileService service(so);
        CompileService::ResultPtr result = service.compile(req);
        EXPECT_TRUE(result->ok);
    }
    return committedSkeletons();
}

TEST(Trace, ArmedServiceRecordsTheSameSpanTreeEveryRun)
{
    obs::armTrace(256);
    const CompileRequest req = fir8Request();
    const auto first = traceOneRequest(req);
    const auto second = traceOneRequest(req);
    obs::disarmTrace();
    obs::TraceLog::instance().clear();

    ASSERT_EQ(first.size(), 1u);
    // Names, nesting and counts are deterministic; durations are
    // not compared.
    EXPECT_EQ(first, second);

    const auto &spans = first[0];
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans[0], (std::pair<std::string, int>("request", -1)));
    auto count = [&](const char *name) {
        return std::count_if(spans.begin(), spans.end(),
                             [&](const auto &s) {
                                 return s.first == name;
                             });
    };
    // The request missed the (fresh) cache and compiled: the
    // pipeline stages and at least one scheduler rung are there.
    EXPECT_EQ(count("cache.lookup"), 1);
    EXPECT_EQ(count("cache.insert"), 1);
    EXPECT_EQ(count("queue.push"), 1);
    EXPECT_EQ(count("compile"), 1);
    EXPECT_EQ(count("schedule"), 1);
    EXPECT_EQ(count("codegen"), 1);
    EXPECT_GE(count("sched.attempt"), 1);
}

TEST(Trace, DisarmedServiceRecordsNothing)
{
    ASSERT_FALSE(obs::traceArmed());
    const auto traces = traceOneRequest(fir8Request());
    EXPECT_TRUE(traces.empty());
    EXPECT_EQ(obs::TraceLog::instance().dropped(), 0u);
}

TEST(Trace, ArmedCompileIsBitIdenticalToDisarmed)
{
    // Tracing must be purely observational: the same request
    // compiled with the tracer disarmed and armed yields the same
    // schedule, down to every wire-serialized field (II, cycles,
    // moves, queue allocation, kernel text).
    const CompileRequest req = fir8Request();
    std::string disarmed_line;
    {
        ASSERT_FALSE(obs::traceArmed());
        CompileService service;
        disarmed_line = wireResultToLine(*service.compile(req));
    }
    std::string armed_line;
    {
        obs::armTrace(16);
        CompileService service;
        armed_line = wireResultToLine(*service.compile(req));
        obs::disarmTrace();
        obs::TraceLog::instance().clear();
    }
    EXPECT_EQ(armed_line, disarmed_line);
}

} // namespace
} // namespace dms
