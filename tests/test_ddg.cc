/**
 * @file
 * Unit tests for the DDG: construction, mutation (the chain-splice
 * machinery DMS depends on), structural verification, and DOT
 * export.
 */

#include <gtest/gtest.h>

#include "ir/ddg.h"
#include "ir/dot.h"
#include "ir/verify.h"

namespace dms {
namespace {

TEST(Opcode, ClassesAndArity)
{
    EXPECT_EQ(fuClassOf(Opcode::Load), FuClass::LdSt);
    EXPECT_EQ(fuClassOf(Opcode::Store), FuClass::LdSt);
    EXPECT_EQ(fuClassOf(Opcode::Add), FuClass::Add);
    EXPECT_EQ(fuClassOf(Opcode::Sub), FuClass::Add);
    EXPECT_EQ(fuClassOf(Opcode::Const), FuClass::Add);
    EXPECT_EQ(fuClassOf(Opcode::Mul), FuClass::Mul);
    EXPECT_EQ(fuClassOf(Opcode::Div), FuClass::Mul);
    EXPECT_EQ(fuClassOf(Opcode::Copy), FuClass::Copy);
    EXPECT_EQ(fuClassOf(Opcode::Move), FuClass::Copy);

    EXPECT_EQ(opcodeArity(Opcode::Load), 0);
    EXPECT_EQ(opcodeArity(Opcode::Store), 1);
    EXPECT_EQ(opcodeArity(Opcode::Add), 2);
    EXPECT_EQ(opcodeArity(Opcode::Move), 1);
}

TEST(Opcode, UsefulnessMatchesPaper)
{
    // Copy units "do not perform any useful computation".
    EXPECT_FALSE(isUseful(Opcode::Copy));
    EXPECT_FALSE(isUseful(Opcode::Move));
    EXPECT_TRUE(isUseful(Opcode::Load));
    EXPECT_TRUE(isUseful(Opcode::Mul));
}

TEST(Opcode, ValueProduction)
{
    EXPECT_FALSE(producesValue(Opcode::Store));
    EXPECT_TRUE(producesValue(Opcode::Load));
    EXPECT_TRUE(producesValue(Opcode::Move));
}

TEST(LatencyModelTest, DefaultsAndOverride)
{
    LatencyModel lat;
    EXPECT_EQ(lat.of(Opcode::Load), 2);
    EXPECT_EQ(lat.of(Opcode::Add), 1);
    EXPECT_EQ(lat.of(Opcode::Div), 8);
    lat.set(Opcode::Add, 3);
    EXPECT_EQ(lat.of(Opcode::Add), 3);
}

Ddg
smallGraph()
{
    // load -> add -> store, plus add self-loop (distance 1).
    Ddg g;
    OpId ld = g.addOp(Opcode::Load);
    OpId add = g.addOp(Opcode::Add);
    OpId st = g.addOp(Opcode::Store);
    g.addEdge(ld, add, DepKind::Flow, 0, 2, 0);
    g.addEdge(add, add, DepKind::Flow, 1, 1, 1);
    g.addEdge(add, st, DepKind::Flow, 0, 1, 0);
    return g;
}

TEST(Ddg, ConstructionBasics)
{
    Ddg g = smallGraph();
    EXPECT_EQ(g.numOps(), 3);
    EXPECT_EQ(g.liveOpCount(), 3);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_EQ(g.op(0).opc, Opcode::Load);
    EXPECT_EQ(g.op(0).origId, 0);
    EXPECT_EQ(g.opLabel(1), "op1:add");
    EXPECT_TRUE(verifyDdg(g).empty());
}

TEST(Ddg, AdjacencyLists)
{
    Ddg g = smallGraph();
    EXPECT_EQ(g.op(0).outs.size(), 1u);
    EXPECT_EQ(g.op(1).ins.size(), 2u); // load + self loop
    EXPECT_EQ(g.op(1).outs.size(), 2u);
    EXPECT_EQ(g.op(2).ins.size(), 1u);
}

TEST(Ddg, FlowFanoutAndInputs)
{
    Ddg g = smallGraph();
    EXPECT_EQ(g.flowFanout(0), 1);
    EXPECT_EQ(g.flowFanout(1), 2); // self + store
    auto ins = g.flowInputs(1);
    EXPECT_EQ(ins.size(), 2u);
}

TEST(Ddg, CountsByClass)
{
    Ddg g = smallGraph();
    auto counts = g.opCountByClass();
    EXPECT_EQ(counts[static_cast<int>(FuClass::LdSt)], 2);
    EXPECT_EQ(counts[static_cast<int>(FuClass::Add)], 1);
    EXPECT_EQ(counts[static_cast<int>(FuClass::Mul)], 0);
    EXPECT_EQ(g.usefulOpCount(), 3);
}

TEST(Ddg, RemoveEdgeUnlinks)
{
    Ddg g = smallGraph();
    g.removeEdge(0);
    EXPECT_FALSE(g.edgeLive(0));
    EXPECT_EQ(g.op(0).outs.size(), 0u);
    EXPECT_EQ(g.op(1).ins.size(), 1u);
    EXPECT_TRUE(verifyDdg(g).empty());
}

TEST(Ddg, RemoveOpRequiresNoEdges)
{
    Ddg g;
    OpId a = g.addOp(Opcode::Load);
    EXPECT_EQ(g.liveOpCount(), 1);
    g.removeOp(a);
    EXPECT_EQ(g.liveOpCount(), 0);
    EXPECT_FALSE(g.opLive(a));
}

TEST(Ddg, ReplacedEdgesAreInactive)
{
    Ddg g = smallGraph();
    EXPECT_TRUE(g.edgeActive(0));
    g.markReplaced(0);
    EXPECT_FALSE(g.edgeActive(0));
    EXPECT_TRUE(g.edgeLive(0));
    g.unmarkReplaced(0);
    EXPECT_TRUE(g.edgeActive(0));
}

TEST(Ddg, CopySemantics)
{
    Ddg g = smallGraph();
    Ddg copy = g; // per-II-attempt copy in DMS
    copy.markReplaced(0);
    EXPECT_TRUE(g.edgeActive(0));
    EXPECT_FALSE(copy.edgeActive(0));
    OpId mv = copy.addOp(Opcode::Move, OpOrigin::MoveOp);
    EXPECT_EQ(copy.numOps(), 4);
    EXPECT_EQ(g.numOps(), 3);
    EXPECT_EQ(copy.op(mv).origin, OpOrigin::MoveOp);
}

TEST(Ddg, UsefulCountExcludesCopyAndMove)
{
    Ddg g = smallGraph();
    g.addOp(Opcode::Copy, OpOrigin::CopyOp);
    g.addOp(Opcode::Move, OpOrigin::MoveOp);
    EXPECT_EQ(g.liveOpCount(), 5);
    EXPECT_EQ(g.usefulOpCount(), 3);
}

TEST(DdgVerify, DetectsZeroDistanceCycle)
{
    Ddg g;
    OpId a = g.addOp(Opcode::Add);
    OpId b = g.addOp(Opcode::Add);
    g.addEdge(a, b, DepKind::Flow, 0, 1, 0);
    g.addEdge(b, a, DepKind::Flow, 0, 1, 0);
    auto problems = verifyDdg(g);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("zero-distance"), std::string::npos);
}

TEST(DdgVerify, AcceptsPositiveDistanceCycle)
{
    Ddg g;
    OpId a = g.addOp(Opcode::Add);
    OpId b = g.addOp(Opcode::Add);
    g.addEdge(a, b, DepKind::Flow, 0, 1, 0);
    g.addEdge(b, a, DepKind::Flow, 1, 1, 0);
    EXPECT_TRUE(verifyDdg(g).empty());
}

TEST(DdgVerify, DetectsDoubleFedSlot)
{
    Ddg g;
    OpId a = g.addOp(Opcode::Load);
    OpId b = g.addOp(Opcode::Load);
    OpId c = g.addOp(Opcode::Add);
    g.addEdge(a, c, DepKind::Flow, 0, 2, 0);
    g.addEdge(b, c, DepKind::Flow, 0, 2, 0); // same slot 0
    auto problems = verifyDdg(g);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("fed twice"), std::string::npos);
}

TEST(DdgVerify, DetectsSlotBeyondArity)
{
    Ddg g;
    OpId a = g.addOp(Opcode::Load);
    OpId st = g.addOp(Opcode::Store);
    g.addEdge(a, st, DepKind::Flow, 0, 2, 1); // store arity 1
    auto problems = verifyDdg(g);
    ASSERT_FALSE(problems.empty());
}

TEST(DdgVerify, FanoutBoundOption)
{
    Ddg g;
    OpId a = g.addOp(Opcode::Load);
    for (int i = 0; i < 3; ++i) {
        OpId s = g.addOp(Opcode::Store);
        g.addEdge(a, s, DepKind::Flow, 0, 2, 0);
    }
    EXPECT_TRUE(verifyDdg(g).empty());
    DdgVerifyOptions opts;
    opts.maxFlowFanout = 2;
    EXPECT_FALSE(verifyDdg(g, opts).empty());
}

TEST(TopoOrder, RespectsZeroDistanceEdges)
{
    Ddg g = smallGraph();
    auto order = topoOrderZeroDistance(g);
    ASSERT_EQ(order.size(), 3u);
    auto pos = [&](OpId id) {
        return std::find(order.begin(), order.end(), id) -
               order.begin();
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(1), pos(2));
}

TEST(Dot, ExportMentionsOpsAndEdges)
{
    Ddg g = smallGraph();
    std::string dot = ddgToDot(g, "g");
    EXPECT_NE(dot.find("digraph g"), std::string::npos);
    EXPECT_NE(dot.find("op0:load"), std::string::npos);
    EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
    EXPECT_NE(dot.find("d=1"), std::string::npos);
}

TEST(DepKindNames, AllNamed)
{
    EXPECT_STREQ(depKindName(DepKind::Flow), "flow");
    EXPECT_STREQ(depKindName(DepKind::Anti), "anti");
    EXPECT_STREQ(depKindName(DepKind::Output), "output");
    EXPECT_STREQ(depKindName(DepKind::Memory), "memory");
}

} // namespace
} // namespace dms
