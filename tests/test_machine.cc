/**
 * @file
 * Machine model: presets, ring topology, and the modulo
 * reservation table.
 */

#include <gtest/gtest.h>

#include "machine/machine.h"
#include "machine/reservation.h"

namespace dms {
namespace {

TEST(MachineModel, ClusteredPreset)
{
    MachineModel m = MachineModel::clusteredRing(4);
    EXPECT_TRUE(m.clustered());
    EXPECT_EQ(m.numClusters(), 4);
    EXPECT_EQ(m.fusPerCluster(FuClass::LdSt), 1);
    EXPECT_EQ(m.fusPerCluster(FuClass::Add), 1);
    EXPECT_EQ(m.fusPerCluster(FuClass::Mul), 1);
    EXPECT_EQ(m.fusPerCluster(FuClass::Copy), 1);
    EXPECT_EQ(m.usefulFuCount(), 12);
    EXPECT_EQ(m.totalFus(FuClass::Copy), 4);
}

TEST(MachineModel, UnclusteredPreset)
{
    MachineModel m = MachineModel::unclustered(5);
    EXPECT_FALSE(m.clustered());
    EXPECT_EQ(m.numClusters(), 1);
    EXPECT_EQ(m.fusPerCluster(FuClass::LdSt), 5);
    EXPECT_EQ(m.fusPerCluster(FuClass::Copy), 0);
    EXPECT_EQ(m.usefulFuCount(), 15);
}

TEST(MachineModel, ExtraCopyUnits)
{
    MachineModel m = MachineModel::clusteredRing(3, 2);
    EXPECT_EQ(m.fusPerCluster(FuClass::Copy), 2);
    EXPECT_EQ(m.usefulFuCount(), 9); // copies are not useful FUs
}

TEST(Topology, RingDistance)
{
    MachineModel m = MachineModel::clusteredRing(6);
    EXPECT_EQ(m.ringDistance(0, 0), 0);
    EXPECT_EQ(m.ringDistance(0, 1), 1);
    EXPECT_EQ(m.ringDistance(0, 5), 1);
    EXPECT_EQ(m.ringDistance(0, 2), 2);
    EXPECT_EQ(m.ringDistance(0, 3), 3);
    EXPECT_EQ(m.ringDistance(1, 4), 3);
    EXPECT_EQ(m.ringDistance(2, 5), 3);
}

TEST(Topology, SmallRingsAllAdjacent)
{
    // 2 and 3 cluster rings have no indirectly-connected pairs —
    // the paper's observation that their only overhead is copies.
    for (int c : {1, 2, 3}) {
        MachineModel m = MachineModel::clusteredRing(c);
        for (ClusterId a = 0; a < c; ++a) {
            for (ClusterId b = 0; b < c; ++b)
                EXPECT_TRUE(m.directlyConnected(a, b));
        }
    }
    MachineModel m4 = MachineModel::clusteredRing(4);
    EXPECT_FALSE(m4.directlyConnected(0, 2));
}

TEST(Topology, HopsAlongDirections)
{
    MachineModel m = MachineModel::clusteredRing(5);
    EXPECT_EQ(m.hopsAlong(1, 3, +1), 2);
    EXPECT_EQ(m.hopsAlong(1, 3, -1), 3);
    EXPECT_EQ(m.hopsAlong(3, 1, +1), 3);
    EXPECT_EQ(m.hopsAlong(3, 1, -1), 2);
    EXPECT_EQ(m.hopsAlong(2, 2, +1), 0);
}

TEST(Topology, Neighbors)
{
    MachineModel m = MachineModel::clusteredRing(4);
    EXPECT_EQ(m.neighbor(0, +1), 1);
    EXPECT_EQ(m.neighbor(3, +1), 0);
    EXPECT_EQ(m.neighbor(0, -1), 3);
    EXPECT_EQ(m.neighbor(2, -1), 1);
}

TEST(Topology, PathBetweenExcludesEndpoints)
{
    MachineModel m = MachineModel::clusteredRing(6);
    auto p = m.pathBetween(1, 4, +1); // 1 -> 2 -> 3 -> 4
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 2);
    EXPECT_EQ(p[1], 3);

    auto q = m.pathBetween(1, 4, -1); // 1 -> 0 -> 5 -> 4
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], 0);
    EXPECT_EQ(q[1], 5);

    EXPECT_TRUE(m.pathBetween(2, 3, +1).empty()); // adjacent
    EXPECT_TRUE(m.pathBetween(2, 2, +1).empty()); // same
}

TEST(Topology, TheTwoChainOptionsOfFigure3)
{
    // Producer in cluster 0, consumer in cluster 3 of an 8-ring:
    // option 1 goes through 1,2 (two moves); option 2 through
    // 7,6,5,4 (four moves).
    MachineModel m = MachineModel::clusteredRing(8);
    EXPECT_EQ(m.pathBetween(0, 3, +1).size(), 2u);
    EXPECT_EQ(m.pathBetween(0, 3, -1).size(), 4u);
}

TEST(Links, RingLayoutMatchesLegacyDirections)
{
    // The ring's link ids are the legacy CQRF layout: 2c toward
    // neighbor(c, +1), 2c+1 toward neighbor(c, -1).
    for (int clusters : {2, 4, 8}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        EXPECT_EQ(m.linksPerCluster(), 2);
        EXPECT_EQ(m.numLinks(), 2 * clusters);
        for (ClusterId c = 0; c < clusters; ++c) {
            EXPECT_EQ(m.linkAt(2 * c).src, c);
            EXPECT_EQ(m.linkAt(2 * c).dst, m.neighbor(c, +1));
            EXPECT_EQ(m.linkAt(2 * c + 1).src, c);
            EXPECT_EQ(m.linkAt(2 * c + 1).dst, m.neighbor(c, -1));
            EXPECT_EQ(m.linkBetween(c, m.neighbor(c, +1)), 2 * c);
        }
    }
    // On a 2-ring both slots reach the same neighbour; the +1 slot
    // wins, exactly like the legacy direction choice.
    MachineModel two = MachineModel::clusteredRing(2);
    EXPECT_EQ(two.linkAt(0).dst, 1);
    EXPECT_EQ(two.linkAt(1).dst, 1);
    EXPECT_EQ(two.linkBetween(0, 1), 0);
    EXPECT_EQ(two.linkBetween(1, 0), 2);
}

TEST(Links, MeshLinksAreTheDistinctTorusNeighbours)
{
    MachineModel m = MachineModel::custom(
        9, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        3, 3);
    EXPECT_EQ(m.linksPerCluster(), 4);
    EXPECT_EQ(m.numLinks(), 36);
    // Every link is one hop; every one-hop ordered pair has
    // exactly one link.
    int found = 0;
    for (int id = 0; id < m.numLinks(); ++id) {
        InterClusterLink l = m.linkAt(id);
        EXPECT_EQ(m.distance(l.src, l.dst), 1);
        EXPECT_EQ(m.linkBetween(l.src, l.dst), id);
        ++found;
    }
    int adjacent = 0;
    for (ClusterId a = 0; a < 9; ++a)
        for (ClusterId b = 0; b < 9; ++b)
            adjacent += a != b && m.distance(a, b) == 1;
    EXPECT_EQ(found, adjacent);

    // Dimensions of size 2 fold the +1/-1 neighbours into one
    // link; size 1 contributes none.
    MachineModel narrow = MachineModel::custom(
        6, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        2, 3);
    EXPECT_EQ(narrow.linksPerCluster(), 3);
    MachineModel row = MachineModel::custom(
        4, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        1, 4);
    EXPECT_EQ(row.linksPerCluster(), 2);
    MachineModel pair = MachineModel::custom(
        2, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        1, 2);
    EXPECT_EQ(pair.linksPerCluster(), 1);
    EXPECT_EQ(pair.linkBetween(0, 1), 0);
    EXPECT_EQ(pair.linkBetween(1, 0), 1);
}

TEST(Links, CrossbarLinksCoverEveryOrderedPair)
{
    MachineModel m = MachineModel::custom(
        5, RegFileKind::Queues, {1, 1, 1, 1},
        TopologyKind::Crossbar);
    EXPECT_EQ(m.linksPerCluster(), 4);
    EXPECT_EQ(m.numLinks(), 20);
    for (ClusterId a = 0; a < 5; ++a) {
        EXPECT_EQ(m.linkBetween(a, a), -1);
        for (ClusterId b = 0; b < 5; ++b) {
            if (a == b)
                continue;
            int id = m.linkBetween(a, b);
            ASSERT_GE(id, 0);
            EXPECT_EQ(m.linkAt(id).src, a);
            EXPECT_EQ(m.linkAt(id).dst, b);
        }
    }
}

TEST(Reservation, PlaceAndClear)
{
    MachineModel m = MachineModel::clusteredRing(2);
    ReservationTable rt(m, 3);
    EXPECT_EQ(rt.at(0, FuClass::Add, 0, 1), kInvalidOp);
    EXPECT_TRUE(rt.hasFree(0, FuClass::Add, 1));
    rt.place(7, 0, FuClass::Add, 0, 1);
    EXPECT_EQ(rt.at(0, FuClass::Add, 0, 1), 7);
    EXPECT_FALSE(rt.hasFree(0, FuClass::Add, 1));
    EXPECT_TRUE(rt.hasFree(0, FuClass::Add, 0));
    EXPECT_TRUE(rt.hasFree(1, FuClass::Add, 1));
    rt.clear(7, 0, FuClass::Add, 0, 1);
    EXPECT_TRUE(rt.hasFree(0, FuClass::Add, 1));
}

TEST(Reservation, FreeInstanceWithMultipleUnits)
{
    MachineModel m = MachineModel::clusteredRing(1, 3);
    ReservationTable rt(m, 2);
    EXPECT_EQ(rt.freeInstance(0, FuClass::Copy, 0), 0);
    rt.place(1, 0, FuClass::Copy, 0, 0);
    EXPECT_EQ(rt.freeInstance(0, FuClass::Copy, 0), 1);
    rt.place(2, 0, FuClass::Copy, 1, 0);
    EXPECT_EQ(rt.freeInstance(0, FuClass::Copy, 0), 2);
    rt.place(3, 0, FuClass::Copy, 2, 0);
    EXPECT_EQ(rt.freeInstance(0, FuClass::Copy, 0), -1);
}

TEST(Reservation, FreeSlotCountTracksPlacement)
{
    MachineModel m = MachineModel::clusteredRing(4);
    ReservationTable rt(m, 5);
    EXPECT_EQ(rt.freeSlotCount(2, FuClass::Copy), 5);
    rt.place(9, 2, FuClass::Copy, 0, 3);
    EXPECT_EQ(rt.freeSlotCount(2, FuClass::Copy), 4);
    EXPECT_EQ(rt.freeSlotCount(1, FuClass::Copy), 5);
}

TEST(Reservation, Occupants)
{
    MachineModel m = MachineModel::unclustered(2);
    ReservationTable rt(m, 2);
    rt.place(4, 0, FuClass::Mul, 0, 1);
    rt.place(5, 0, FuClass::Mul, 1, 1);
    auto occ = rt.occupants(0, FuClass::Mul, 1);
    ASSERT_EQ(occ.size(), 2u);
    EXPECT_EQ(occ[0], 4);
    EXPECT_EQ(occ[1], 5);
    EXPECT_TRUE(rt.occupants(0, FuClass::Mul, 0).empty());
}

TEST(MachineModel, Describe)
{
    EXPECT_NE(MachineModel::clusteredRing(4).describe().find(
                  "4-cluster"),
              std::string::npos);
    EXPECT_NE(MachineModel::unclustered(4).describe().find(
                  "unclustered"),
              std::string::npos);
}

} // namespace
} // namespace dms
