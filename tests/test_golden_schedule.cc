/**
 * @file
 * Golden-schedule regression tests: hash every placement decision of
 * the schedulers over a deterministic synthetic suite and compare
 * against constants captured from the pre-optimization scheduler.
 * Any change to pick order, slot search, eviction choice, chain
 * planning or move splicing shifts the hash, so "bit-identical
 * schedules" is checked directly rather than via aggregate cycles.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/ims.h"
#include "workload/suite.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

/** FNV-1a over a stream of 64-bit words. */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/** Mix one schedule: II, moves, and every live placement. */
void
mixSchedule(Fnv &fnv, const Ddg &ddg, const SchedOutcome &out)
{
    fnv.mix(out.ok ? 1 : 0);
    if (!out.ok)
        return;
    fnv.mix(static_cast<std::uint64_t>(out.ii));
    fnv.mix(static_cast<std::uint64_t>(out.movesInserted));
    const PartialSchedule &ps = *out.schedule;
    for (OpId id = 0; id < ddg.numOps(); ++id) {
        if (!ddg.opLive(id))
            continue;
        fnv.mix(static_cast<std::uint64_t>(id));
        fnv.mix(static_cast<std::uint64_t>(ddg.op(id).opc));
        if (!ps.isScheduled(id)) {
            fnv.mix(0xdeadULL);
            continue;
        }
        const Placement &p = ps.placement(id);
        fnv.mix(static_cast<std::uint64_t>(p.time));
        fnv.mix(static_cast<std::uint64_t>(p.cluster));
        fnv.mix(static_cast<std::uint64_t>(p.fuInstance));
    }
}

/** The suite both golden tests walk: synth loops plus kernels. */
std::vector<Loop>
goldenSuite()
{
    return standardSuite(kSuiteSeed, 60);
}

} // namespace

TEST(GoldenSchedule, DmsPlacementsUnchanged)
{
    Fnv fnv;
    for (const Loop &loop : goldenSuite()) {
        for (int clusters : {2, 4, 8}) {
            MachineModel machine =
                MachineModel::clusteredRing(clusters);
            Ddg body = applyUnrollPolicy(loop.ddg, machine);
            singleUsePrepass(body,
                             machine.latencyOf(Opcode::Copy));
            DmsOutcome out = scheduleDms(body, machine);
            fnv.mix(static_cast<std::uint64_t>(clusters));
            mixSchedule(fnv, out.sched.ok ? *out.ddg : body,
                        out.sched);
        }
    }
    // Captured from the seed scheduler (pre hot-path rework); any
    // mismatch means a placement decision changed somewhere.
    EXPECT_EQ(fnv.value(), 0x097286f7e5ec3f7eULL)
        << "DMS golden hash changed: 0x" << std::hex << fnv.value();
}

TEST(GoldenSchedule, ImsPlacementsUnchanged)
{
    Fnv fnv;
    for (const Loop &loop : goldenSuite()) {
        for (int width : {1, 4}) {
            MachineModel machine = MachineModel::unclustered(width);
            Ddg body = applyUnrollPolicy(loop.ddg, machine);
            SchedOutcome out = scheduleIms(body, machine);
            fnv.mix(static_cast<std::uint64_t>(width));
            mixSchedule(fnv, body, out);
        }
    }
    EXPECT_EQ(fnv.value(), 0x02bcf559ea65ca60ULL)
        << "IMS golden hash changed: 0x" << std::hex << fnv.value();
}
