/**
 * @file
 * PartialSchedule mechanics: placement, eviction, early starts,
 * slot search, and the forced-slot progress guarantee.
 */

#include <gtest/gtest.h>

#include "sched/schedule.h"
#include "workload/kernels.h"

namespace dms {
namespace {

struct Fixture
{
    Fixture() : machine(MachineModel::clusteredRing(2))
    {
        LoopBuilder b;
        ld = b.load(0);
        ml = b.mul1(ld);
        ad = b.add1(ml);
        st = b.store(1, ad);
        ddg = b.take();
    }

    MachineModel machine;
    Ddg ddg;
    OpId ld, ml, ad, st;
};

TEST(PartialScheduleTest, PlaceAndQuery)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    EXPECT_FALSE(ps.isScheduled(f.ld));
    EXPECT_TRUE(ps.tryPlace(f.ld, 0, 0));
    EXPECT_TRUE(ps.isScheduled(f.ld));
    EXPECT_EQ(ps.timeOf(f.ld), 0);
    EXPECT_EQ(ps.clusterOf(f.ld), 0);
    EXPECT_EQ(ps.scheduledCount(), 1);
    EXPECT_EQ(ps.maxTime(), 0);
}

TEST(PartialScheduleTest, RowConflictRejected)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    EXPECT_TRUE(ps.tryPlace(f.ld, 0, 0));
    // st is also L/S class; row 0 mod 2 == row 2 mod 2.
    EXPECT_FALSE(ps.tryPlace(f.st, 2, 0));
    // Different row fine.
    EXPECT_TRUE(ps.tryPlace(f.st, 3, 0));
    // Other cluster fine too.
    ps.unschedule(f.st);
    EXPECT_TRUE(ps.tryPlace(f.st, 2, 1));
}

TEST(PartialScheduleTest, UnscheduleFreesSlot)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    EXPECT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ps.unschedule(f.ld);
    EXPECT_FALSE(ps.isScheduled(f.ld));
    EXPECT_EQ(ps.scheduledCount(), 0);
    EXPECT_TRUE(ps.tryPlace(f.st, 0, 0));
}

TEST(PartialScheduleTest, EarlyStartFollowsLatencies)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 4);
    EXPECT_EQ(ps.earlyStart(f.ld), 0);
    ASSERT_TRUE(ps.tryPlace(f.ld, 1, 0));
    EXPECT_EQ(ps.earlyStart(f.ml), 3); // load latency 2
    ASSERT_TRUE(ps.tryPlace(f.ml, 3, 0));
    EXPECT_EQ(ps.earlyStart(f.ad), 5); // mul latency 2
}

TEST(PartialScheduleTest, EarlyStartWithDistanceCredit)
{
    // add self-loop d=1 at II=4: scheduled at t, next iteration
    // needs t+1-4 -> credit of 3 cycles.
    LoopBuilder b;
    OpId x = b.load(0);
    OpId acc = b.add1(x);
    EdgeId self = b.flow(acc, acc, 1, 1);
    b.store(1, acc);
    Ddg g = b.take();
    (void)self;
    MachineModel m = MachineModel::clusteredRing(1);
    PartialSchedule ps(g, m, 4);
    ASSERT_TRUE(ps.tryPlace(x, 0, 0));
    EXPECT_EQ(ps.earlyStart(acc), 2);
}

TEST(PartialScheduleTest, FindFreeSlotScansWindow)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    // Window for st in cluster 0 starting at 0: row 0 busy, row 1
    // free -> slot 1.
    EXPECT_EQ(ps.findFreeSlot(f.st, 0, 0), 1);
    ASSERT_TRUE(ps.tryPlace(f.st, 1, 0));
    // Now both rows busy in cluster 0.
    EXPECT_EQ(ps.findFreeSlot(f.ml, 0, 0) != kUnscheduled, true)
        << "mul class has its own unit";
    // A third L/S op would find nothing in cluster 0:
    OpId extra = f.ddg.addOp(Opcode::Load);
    EXPECT_EQ(ps.findFreeSlot(extra, 0, 5), kUnscheduled);
    EXPECT_NE(ps.findFreeSlot(extra, 1, 5), kUnscheduled);
}

TEST(PartialScheduleTest, ForcedSlotMakesProgress)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    EXPECT_EQ(ps.forcedSlot(f.ld, 4), 4); // never placed: early
    ASSERT_TRUE(ps.tryPlace(f.ld, 4, 0));
    ps.unschedule(f.ld);
    // Placed before at 4: forced moves past it even if early says 4.
    EXPECT_EQ(ps.forcedSlot(f.ld, 4), 5);
    EXPECT_EQ(ps.forcedSlot(f.ld, 9), 9);
    EXPECT_EQ(ps.placementCount(f.ld), 1);
}

TEST(PartialScheduleTest, PlaceEvictingPrefersLowHeight)
{
    Fixture f;
    MachineModel wide = MachineModel::unclustered(2); // 2 L/S units
    PartialSchedule ps(f.ddg, wide, 2);
    Heights h(static_cast<size_t>(f.ddg.numOps()), 0);
    h[static_cast<size_t>(f.ld)] = 10;
    h[static_cast<size_t>(f.st)] = 1;

    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.st, 2, 0)); // same row, instance 1

    OpId extra = f.ddg.addOp(Opcode::Load);
    std::vector<OpId> evicted;
    ps.placeEvicting(extra, 4, 0, h, evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], f.st); // lower height victim
    EXPECT_TRUE(ps.isScheduled(extra));
    EXPECT_TRUE(ps.isScheduled(f.ld));
    EXPECT_FALSE(ps.isScheduled(f.st));
}

TEST(PartialScheduleTest, PlaceEvictingNoEvictionWhenFree)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    Heights h(static_cast<size_t>(f.ddg.numOps()), 0);
    std::vector<OpId> evicted;
    ps.placeEvicting(f.ld, 1, 1, h, evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(ps.timeOf(f.ld), 1);
    EXPECT_EQ(ps.clusterOf(f.ld), 1);
}

TEST(PartialScheduleTest, ViolatedSuccessors)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ml, 2, 0));
    ASSERT_TRUE(ps.tryPlace(f.ld, 2, 0)); // ld -> ml needs +2
    auto viol = ps.violatedSuccessors(f.ld);
    ASSERT_EQ(viol.size(), 1u);
    EXPECT_EQ(viol[0], f.ml);

    ps.unschedule(f.ml);
    ASSERT_TRUE(ps.tryPlace(f.ml, 4, 0));
    EXPECT_TRUE(ps.violatedSuccessors(f.ld).empty());
}

TEST(PartialScheduleTest, GrowsWithDdg)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    OpId mv = f.ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
    EXPECT_FALSE(ps.isScheduled(mv));
    EXPECT_TRUE(ps.tryPlace(mv, 0, 1)); // copy unit of cluster 1
    EXPECT_EQ(ps.timeOf(mv), 0);
}

TEST(PartialScheduleTest, MaxTimeTracksAll)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 3);
    EXPECT_EQ(ps.maxTime(), -1);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ml, 7, 1));
    EXPECT_EQ(ps.maxTime(), 7);
    ps.unschedule(f.ml);
    EXPECT_EQ(ps.maxTime(), 0);
}

} // namespace
} // namespace dms
