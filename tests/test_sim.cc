/**
 * @file
 * End-to-end validation: the cycle-accurate simulator executes
 * every scheduler's output and the stored values must match the
 * sequential reference interpreter — across IMS, DMS, unrolling
 * and the copy pre-pass.
 */

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "ir/unroll.h"
#include "sched/ims.h"
#include "sim/exec.h"
#include "sim/value.h"
#include "workload/kernels.h"

namespace dms {
namespace {

TEST(Value, MixIsDeterministicAndSpread)
{
    EXPECT_EQ(mix64(1, 2, 3), mix64(1, 2, 3));
    EXPECT_NE(mix64(1, 2, 3), mix64(1, 2, 4));
    EXPECT_NE(mix64(0), mix64(1));
}

TEST(Value, EvalOpSemantics)
{
    Operation add;
    add.opc = Opcode::Add;
    EXPECT_EQ(evalOp(add, 3, 4, 0), 7u);
    Operation sub;
    sub.opc = Opcode::Sub;
    EXPECT_EQ(evalOp(sub, 9, 4, 0), 5u);
    Operation mul;
    mul.opc = Opcode::Mul;
    EXPECT_EQ(evalOp(mul, 3, 4, 0), 12u);
    Operation divi;
    divi.opc = Opcode::Div;
    EXPECT_EQ(evalOp(divi, 12, 4, 0), 2u); // 12 / (4|1)=5 -> 2
    Operation cp;
    cp.opc = Opcode::Copy;
    EXPECT_EQ(evalOp(cp, 42, 0, 0), 42u);
    Operation cst;
    cst.opc = Opcode::Const;
    cst.literal = 99;
    EXPECT_EQ(evalOp(cst, 0, 0, 7), 99u);
}

TEST(Value, LoadDependsOnIterationAndOffset)
{
    Operation ld;
    ld.opc = Opcode::Load;
    ld.memStream = 2;
    ld.memOffset = 1;
    // a[i+1] at iter 3 == a[i] at iter 4.
    Operation ld0 = ld;
    ld0.memOffset = 0;
    EXPECT_EQ(evalOp(ld, 0, 0, 3), evalOp(ld0, 0, 0, 4));
}

TEST(Reference, DotProductMatchesHandComputation)
{
    Loop k = kernelDotProduct();
    StoreLog log = referenceExecute(k.ddg, 3);
    ASSERT_EQ(log.records.size(), 3u);

    // Recompute by hand: acc_i = acc_{i-1} + x_i * y_i.
    std::uint64_t acc = liveInValue(3, -1); // add op id 3, iter -1
    for (long i = 0; i < 3; ++i) {
        std::uint64_t x = loadValue(0, i, 0);
        std::uint64_t y = loadValue(1, i, 0);
        acc = acc + x * y;
        EXPECT_EQ(log.records[static_cast<size_t>(i)].value, acc)
            << "iteration " << i;
    }
}

TEST(Reference, StoreLogSortingAndTruncation)
{
    StoreLog log;
    log.records.push_back({2, 5, 1});
    log.records.push_back({1, 7, 2});
    log.records.push_back({1, 2, 3});
    log.sort();
    EXPECT_EQ(log.records[0].origStore, 1);
    EXPECT_EQ(log.records[0].origIter, 2);
    StoreLog cut = log.truncated(6);
    EXPECT_EQ(cut.records.size(), 2u);
}

TEST(Reference, CompareDetectsValueMismatch)
{
    StoreLog a;
    a.records.push_back({0, 0, 1});
    StoreLog b;
    b.records.push_back({0, 0, 2});
    EXPECT_FALSE(compareStoreLogs(a, b).empty());
    EXPECT_FALSE(compareStoreLogs(a, StoreLog{}).empty());
    EXPECT_TRUE(compareStoreLogs(a, a).empty());
}

class SimulateIms : public ::testing::TestWithParam<int>
{};

TEST_P(SimulateIms, MatchesReferenceOnAllKernels)
{
    int width = GetParam();
    for (const Loop &k : namedKernels()) {
        MachineModel m = MachineModel::unclustered(width);
        SchedOutcome out = scheduleIms(k.ddg, m);
        ASSERT_TRUE(out.ok) << k.name;
        auto problems =
            simulateAndCheck(k.ddg, m, *out.schedule, 40);
        EXPECT_TRUE(problems.empty())
            << k.name << " w" << width << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SimulateIms,
                         ::testing::Values(1, 2, 4, 8));

class SimulateDms : public ::testing::TestWithParam<int>
{};

TEST_P(SimulateDms, MatchesReferenceOnAllKernels)
{
    int clusters = GetParam();
    for (const Loop &k : namedKernels()) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        Ddg body = k.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(body, m);
        ASSERT_TRUE(out.sched.ok) << k.name;
        auto problems = simulateAndCheck(*out.ddg, m,
                                         *out.sched.schedule, 40);
        EXPECT_TRUE(problems.empty())
            << k.name << " c" << clusters << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

INSTANTIATE_TEST_SUITE_P(Clusters, SimulateDms,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

TEST(Simulate, UnrolledScheduleMatchesOriginalReference)
{
    for (const Loop &k : namedKernels()) {
        Ddg unrolled = unrollDdg(k.ddg, 2);
        MachineModel m = MachineModel::clusteredRing(4);
        singleUsePrepass(unrolled, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(unrolled, m);
        ASSERT_TRUE(out.sched.ok) << k.name;

        SimResult sim = simulateSchedule(*out.ddg, m,
                                         *out.sched.schedule, 15);
        ASSERT_TRUE(sim.ok) << k.name << ": " << sim.problems[0];
        // 15 unrolled iterations == 30 original iterations.
        StoreLog ref = referenceExecute(k.ddg, 30);
        auto problems = compareStoreLogs(ref, sim.log);
        EXPECT_TRUE(problems.empty())
            << k.name << ": "
            << (problems.empty() ? "" : problems[0]);
    }
}

TEST(Simulate, ReportsCycleCount)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    SimResult sim = simulateSchedule(k.ddg, m, *out.schedule, 25);
    ASSERT_TRUE(sim.ok);
    int sc = out.schedule->maxTime() / out.ii + 1;
    EXPECT_EQ(sim.cycles, (25 + sc - 1) * out.ii);
    EXPECT_GT(sim.maxQueueOccupancy, 0);
}

TEST(Simulate, QueueOccupancyBoundedByAllocation)
{
    // The simulator's peak in-flight token count can exceed the
    // per-lifetime FIFO depth sum only if bookkeeping is broken.
    Loop k = kernelFir8();
    MachineModel m = MachineModel::clusteredRing(3);
    Ddg body = k.ddg;
    singleUsePrepass(body, 1);
    DmsOutcome out = scheduleDms(body, m);
    ASSERT_TRUE(out.sched.ok);
    SimResult sim =
        simulateSchedule(*out.ddg, m, *out.sched.schedule, 30);
    ASSERT_TRUE(sim.ok);
    EXPECT_GT(sim.maxQueueOccupancy, 0);
}

TEST(Simulate, SingleIteration)
{
    Loop k = kernelComplexMultiply();
    MachineModel m = MachineModel::unclustered(3);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    auto problems = simulateAndCheck(k.ddg, m, *out.schedule, 1);
    EXPECT_TRUE(problems.empty());
}

} // namespace
} // namespace dms
