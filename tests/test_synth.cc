/**
 * @file
 * Synthetic suite: determinism, structural validity, statistical
 * shape (set-2 fraction, op mix), and suite helpers.
 */

#include <gtest/gtest.h>

#include "ir/scc.h"
#include "ir/verify.h"
#include "workload/suite.h"
#include "workload/synth.h"

namespace dms {
namespace {

TEST(Synth, Deterministic)
{
    auto a = synthesizeSuite(42, 30);
    auto b = synthesizeSuite(42, 30);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ddg.numOps(), b[i].ddg.numOps());
        EXPECT_EQ(a[i].ddg.numEdges(), b[i].ddg.numEdges());
        EXPECT_EQ(a[i].tripCount, b[i].tripCount);
        EXPECT_EQ(a[i].recurrence, b[i].recurrence);
    }
}

TEST(Synth, DifferentSeedsDiffer)
{
    auto a = synthesizeSuite(1, 20);
    auto b = synthesizeSuite(2, 20);
    int same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        same += a[i].ddg.numOps() == b[i].ddg.numOps();
    EXPECT_LT(same, 20);
}

TEST(Synth, AllLoopsStructurallyValid)
{
    auto loops = synthesizeSuite(kSuiteSeed, 300);
    for (const Loop &k : loops) {
        EXPECT_TRUE(verifyDdg(k.ddg).empty()) << k.name;
        EXPECT_GE(k.ddg.liveOpCount(), 4) << k.name;
        EXPECT_GT(k.tripCount, 0) << k.name;
        EXPECT_EQ(k.recurrence, hasRecurrence(k.ddg)) << k.name;
    }
}

TEST(Synth, NoDeadValues)
{
    auto loops = synthesizeSuite(7, 60);
    for (const Loop &k : loops) {
        for (OpId id = 0; id < k.ddg.numOps(); ++id) {
            if (!k.ddg.opLive(id))
                continue;
            if (producesValue(k.ddg.op(id).opc)) {
                EXPECT_GT(k.ddg.flowFanout(id), 0)
                    << k.name << " " << k.ddg.opLabel(id);
            }
        }
    }
}

TEST(Synth, RecurrenceFractionNearTarget)
{
    auto loops = synthesizeSuite(kSuiteSeed, 600);
    int recs = 0;
    for (const Loop &k : loops)
        recs += k.recurrence;
    double frac = static_cast<double>(recs) / 600.0;
    EXPECT_GT(frac, 0.25);
    EXPECT_LT(frac, 0.55);
}

TEST(Synth, OpMixIsPlausible)
{
    auto loops = synthesizeSuite(kSuiteSeed, 200);
    long ls = 0;
    long add = 0;
    long mul = 0;
    long total = 0;
    for (const Loop &k : loops) {
        auto counts = k.ddg.opCountByClass();
        ls += counts[static_cast<int>(FuClass::LdSt)];
        add += counts[static_cast<int>(FuClass::Add)];
        mul += counts[static_cast<int>(FuClass::Mul)];
        total += k.ddg.liveOpCount();
    }
    EXPECT_GT(static_cast<double>(ls) / total, 0.2);
    EXPECT_LT(static_cast<double>(ls) / total, 0.65);
    EXPECT_GT(static_cast<double>(add) / total, 0.15);
    EXPECT_GT(static_cast<double>(mul) / total, 0.05);
}

TEST(Synth, SizesSpanTheRange)
{
    auto loops = synthesizeSuite(kSuiteSeed, 400);
    int small = 0;
    int large = 0;
    for (const Loop &k : loops) {
        small += k.ddg.liveOpCount() <= 10;
        large += k.ddg.liveOpCount() >= 30;
    }
    EXPECT_GT(small, 0);
    EXPECT_GT(large, 0);
}

TEST(Suite, StandardSuiteComposition)
{
    auto suite = standardSuite(kSuiteSeed, 50);
    EXPECT_EQ(suite.size(), 50u + 16u); // synth + named kernels
}

TEST(Suite, SetSelection)
{
    auto suite = standardSuite(kSuiteSeed, 100);
    auto set1 = selectSet(suite, LoopSet::Set1);
    auto set2 = selectSet(suite, LoopSet::Set2);
    EXPECT_EQ(set1.size(), suite.size());
    EXPECT_LT(set2.size(), set1.size());
    EXPECT_GT(set2.size(), 0u);
    for (size_t i : set2)
        EXPECT_FALSE(suite[i].recurrence);
}

TEST(Suite, PaperLoopCountDefault)
{
    // The default synthetic count matches the paper's 1258 loops;
    // construction only (no scheduling) to keep the test fast.
    auto suite = synthesizeSuite(kSuiteSeed, 1258);
    EXPECT_EQ(suite.size(), 1258u);
}

} // namespace
} // namespace dms
